//! Dependency-freeze guard: the workspace must stay hermetic.
//!
//! The tier-1 verify (`cargo build --release && cargo test -q`) has to
//! succeed offline with an empty cargo cache, so every dependency of every
//! crate must resolve inside the repository. This test parses each
//! `Cargo.toml` with a small std-only scanner and fails if any dependency
//! entry could reach a registry: every entry must either be a `path`
//! dependency or `workspace = true` pointing at a `[workspace.dependencies]`
//! entry that is itself `path`-based.
//!
//! If this test fails, the fix is to vendor the functionality into a
//! workspace crate (see `crates/testkit` for the precedent: it replaced
//! `rand`, `proptest`, `criterion`, `crossbeam`, and `parking_lot`).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// Repo root, derived from this file's compile-time location
/// (`<repo>/tests/hermetic.rs`).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")) // crates/hear
        .ancestors()
        .nth(2)
        .expect("crates/hear has a grandparent")
        .to_path_buf()
}

/// A single dependency entry: the key and the raw TOML that defines it.
#[derive(Debug)]
struct DepEntry {
    section: String,
    name: String,
    value: String,
}

/// Minimal TOML scan: walk `[section]` headers, and inside any
/// `*dependencies*` section collect `name = <value>` entries, including
/// multi-line inline tables. This is not a general TOML parser — it only
/// has to be strict enough that anything it cannot classify is a failure,
/// never a silent pass.
fn scan_dependencies(text: &str) -> Vec<DepEntry> {
    let mut deps = Vec::new();
    let mut section = String::new();
    let mut lines = text.lines().peekable();
    while let Some(raw) = lines.next() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        if !section.contains("dependencies") {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let mut name = name.trim().trim_matches('"').to_string();
        let mut value = value.trim().to_string();
        // Inline tables may span lines until braces balance.
        while value.matches('{').count() > value.matches('}').count() {
            let next = lines.next().expect("unterminated inline table");
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        // Normalize the dotted-key forms `dep.workspace = true` and
        // `dep.path = "..."` into their inline-table equivalents.
        if let Some(stem) = name.strip_suffix(".workspace") {
            name = stem.to_string();
            value = format!("workspace = {value}");
        } else if let Some(stem) = name.strip_suffix(".path") {
            name = stem.to_string();
            value = format!("path = {value}");
        }
        deps.push(DepEntry {
            section: section.clone(),
            name,
            value,
        });
    }
    deps
}

fn strip_comment(line: &str) -> &str {
    // Good enough here: no manifest in this workspace puts '#' in a string.
    line.split('#').next().unwrap_or("")
}

/// Is this dependency entry hermetic on its own (path-based)?
fn is_path_entry(value: &str) -> bool {
    value.contains("path") && value.contains('=') && !value.contains("git")
}

/// Is it a `workspace = true` forward to `[workspace.dependencies]`?
fn is_workspace_forward(value: &str) -> bool {
    value.replace(' ', "").contains("workspace=true")
}

#[test]
fn every_dependency_is_a_path_dependency() {
    let root = repo_root();
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir).expect("crates/ exists") {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(
        manifests.len() >= 12,
        "expected the workspace manifest + 11 crates"
    );

    // Pass 1: the workspace table itself must be all-path.
    let ws_text = fs::read_to_string(&manifests[0]).expect("workspace manifest");
    let mut workspace_deps: BTreeMap<String, String> = BTreeMap::new();
    let mut violations = Vec::new();
    for dep in scan_dependencies(&ws_text) {
        if dep.section == "workspace.dependencies" {
            if !is_path_entry(&dep.value) {
                violations.push(format!(
                    "Cargo.toml [workspace.dependencies] {} = {} (not a path dependency)",
                    dep.name, dep.value
                ));
            }
            workspace_deps.insert(dep.name, dep.value);
        }
    }

    // Pass 2: every member entry is either path-based or forwards to a
    // (verified-path) workspace entry.
    for manifest in &manifests[1..] {
        let text = fs::read_to_string(manifest).expect("member manifest");
        let rel = manifest.strip_prefix(&root).unwrap_or(manifest).display();
        for dep in scan_dependencies(&text) {
            let ok = if is_workspace_forward(&dep.value) {
                workspace_deps.contains_key(&dep.name)
            } else {
                is_path_entry(&dep.value)
            };
            if !ok {
                violations.push(format!(
                    "{rel} [{}] {} = {} (registry/git dependencies are banned; \
                     vendor it as a workspace crate instead)",
                    dep.section, dep.name, dep.value
                ));
            }
        }
    }

    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found:\n  {}",
        violations.join("\n  ")
    );

    // The scanner must actually have seen the known alias entries — guard
    // against a refactor that silently empties the scan.
    for expected in ["proptest", "criterion", "hear-testkit"] {
        assert!(
            workspace_deps.contains_key(expected),
            "scanner failed to see workspace dependency `{expected}`"
        );
    }
}

#[test]
fn scanner_rejects_registry_and_git_entries() {
    let toml = r#"
[package]
name = "demo"

[dependencies]
good = { path = "../good" }
fwd = { workspace = true }
fwd2.workspace = true
bad = "1.0"
worse = { git = "https://example.com/x.git" }
multi = { version = "2",
          features = ["std"] }
"#;
    let deps = scan_dependencies(toml);
    assert_eq!(deps.len(), 6);
    let verdicts: Vec<bool> = deps
        .iter()
        .map(|d| is_path_entry(&d.value) || is_workspace_forward(&d.value))
        .collect();
    assert_eq!(verdicts, [true, true, true, false, false, false]);
}
