//! Failure injection: what happens when the untrusted side misbehaves or
//! the trusted side is misused. Wrong results must never decrypt silently
//! when verification is on; API misuse must fail loudly, not corrupt data.

use hear::core::{Backend, CommKeys, HfpError, HfpFormat, Homac, IntSum, Scratch};
use hear::layer::SecureComm;
use hear::mpi::Simulator;

fn keys(world: usize, seed: u64) -> Vec<CommKeys> {
    CommKeys::generate(world, seed, Backend::best_available())
}

#[test]
fn malicious_reducer_detected_by_homac() {
    // The reduction op itself is adversarial (a compromised switch adding
    // a bias). Without HoMAC the corruption decrypts silently; with HoMAC
    // it is rejected.
    let results = Simulator::new(3).run(|comm| {
        let mut keys = keys(3, 1).into_iter().nth(comm.rank()).unwrap();
        let homac = Homac::generate(2, Backend::best_available());
        let mut scratch = Scratch::default();

        keys.advance();
        let mut ct = vec![100u32, 200];
        IntSum::encrypt_in_place(&keys, 0, &mut ct, &mut scratch);
        let tags = homac.tag(&keys, 0, &ct);

        // Evil reduction: adds 1 to every folded element.
        let agg = comm.allreduce(&ct, |a, b| a.wrapping_add(*b).wrapping_add(1));
        let sigma = comm.allreduce(&tags, |a, b| Homac::combine(*a, *b));
        let accepted = homac.verify(&keys, 0, &agg, &sigma);

        // Honest control with the same inputs.
        let agg2 = comm.allreduce(&ct, |a, b| a.wrapping_add(*b));
        let sigma2 = comm.allreduce(&tags, |a, b| Homac::combine(*a, *b));
        let control = homac.verify(&keys, 0, &agg2, &sigma2);
        (accepted, control)
    });
    for (accepted, control) in &results {
        assert!(!accepted, "tampered reduction must be rejected");
        assert!(*control, "honest reduction must verify");
    }
}

#[test]
fn desynchronized_epochs_produce_garbage_not_panics() {
    // A rank that forgets to advance its collective key decrypts noise —
    // loud wrongness (detectable by the application), not UB or a hang.
    let k = keys(2, 3);
    let mut scratch = Scratch::default();
    let (mut k0, mut k1) = {
        let mut it = k.into_iter();
        (it.next().unwrap(), it.next().unwrap())
    };
    k0.advance();
    k0.advance(); // rank 0 advanced twice...
    k1.advance(); // ...rank 1 once: epochs diverge.
    assert_ne!(k0.epoch(), k1.epoch());
    let mut c0 = vec![5u32];
    let mut c1 = vec![5u32];
    IntSum::encrypt_in_place(&k0, 0, &mut c0, &mut scratch);
    IntSum::encrypt_in_place(&k1, 0, &mut c1, &mut scratch);
    let mut agg = vec![c0[0].wrapping_add(c1[0])];
    IntSum::decrypt_in_place(&k0, 0, &mut agg, &mut scratch);
    assert_ne!(
        agg[0], 10,
        "desync must not silently yield the right answer"
    );
}

#[test]
fn float_encrypt_rejects_non_finite_and_overflow() {
    let k = keys(1, 4);
    let fs = hear::core::FloatSum::new(HfpFormat::fp32(2, 2));
    let mut out = Vec::new();
    assert_eq!(
        fs.encrypt_f64(&k[0], 0, &[f64::NAN], &mut out),
        Err(HfpError::NonFinite)
    );
    assert_eq!(
        fs.encrypt_f64(&k[0], 0, &[f64::INFINITY], &mut out),
        Err(HfpError::NonFinite)
    );
    assert!(matches!(
        fs.encrypt_f64(&k[0], 0, &[1e300], &mut out),
        Err(HfpError::ExponentOverflow(_))
    ));
    // A failing element anywhere in the vector aborts the whole call.
    assert!(fs
        .encrypt_f64(&k[0], 0, &[1.0, 2.0, f64::NAN], &mut out)
        .is_err());
}

#[test]
fn verified_layer_call_errors_cleanly_under_tampering() {
    // Through the full SecureComm API with an evil switch is hard to
    // arrange (the layer owns the op), so emulate the closest failure a
    // user can cause: verification enabled but the aggregate corrupted in
    // transit is covered above; here check the misuse path — verification
    // without HoMAC state panics with a clear message.
    let caught = std::panic::catch_unwind(|| {
        Simulator::new(1).run(|comm| {
            let keys = keys(1, 5).into_iter().next().unwrap();
            let mut sc = SecureComm::new(comm.clone(), keys);
            let _ = sc.allreduce_sum_u32_verified(&[1]);
        });
    });
    assert!(
        caught.is_err(),
        "verified call without with_homac must panic"
    );
}

#[test]
fn wrong_world_keys_rejected_up_front() {
    let caught = std::panic::catch_unwind(|| {
        Simulator::new(2).run(|comm| {
            // Keys generated for a 3-rank communicator used on a 2-rank one.
            let keys = keys(3, 6).into_iter().nth(comm.rank()).unwrap();
            let _ = SecureComm::new(comm.clone(), keys);
        });
    });
    assert!(caught.is_err());
}

#[test]
fn switch_allreduce_without_switch_infrastructure_panics() {
    let caught = std::panic::catch_unwind(|| {
        Simulator::new(2).run(|comm| {
            use hear::layer::ReduceAlgo;
            let keys = keys(2, 7).into_iter().nth(comm.rank()).unwrap();
            let mut sc = SecureComm::new(comm.clone(), keys).with_algo(ReduceAlgo::Switch);
            let _ = sc.allreduce_sum_u32(&[1]);
        });
    });
    assert!(caught.is_err());
}

#[test]
fn replayed_tags_fail_after_epoch_advance() {
    let k = keys(2, 8);
    let homac = Homac::generate(9, Backend::best_available());
    let mut scratch = Scratch::default();
    let mut k0 = k.into_iter().next().unwrap();
    k0.advance();
    let mut ct = vec![1u32, 2, 3];
    IntSum::encrypt_in_place(&k0, 0, &mut ct, &mut scratch);
    let tags = homac.tag(&k0, 0, &ct);
    // World=2 but we fold only rank 0's contribution; use the plain
    // single-rank identity: verify against rank 0's own epoch works only
    // for the complete reduction, so craft the 1-rank case instead.
    let k1 = keys(1, 10);
    let mut k1 = k1.into_iter().next().unwrap();
    k1.advance();
    let mut ct1 = vec![9u32];
    IntSum::encrypt_in_place(&k1, 0, &mut ct1, &mut scratch);
    let tags1 = homac.tag(&k1, 0, &ct1);
    assert!(homac.verify(&k1, 0, &ct1, &tags1), "fresh pair verifies");
    k1.advance();
    assert!(
        !homac.verify(&k1, 0, &ct1, &tags1),
        "stale pair must fail after advance"
    );
    let _ = (ct, tags);
}
