//! The threat-model safety notions of paper §4, as executable properties:
//! temporal safety (same plaintext encrypts differently across calls),
//! local safety (across vector slots), global safety (across ranks), and
//! the documented exception — float SUM v1 trades global safety away.
//! Plus basic ciphertext-distribution sanity (keystream uniformity).

use hear::core::{
    noise_at, Backend, CommKeys, FloatProd, FloatSum, Hfp, HfpFormat, IntProd, IntSum, IntXor,
    Scratch,
};
use hear::prf::{Prf, PrfCipher};

fn keys(world: usize, seed: u64) -> Vec<CommKeys> {
    CommKeys::generate(world, seed, Backend::best_available())
}

/// Encrypt the same plaintext with every integer scheme; return ciphers.
fn encrypt_all_int(keys: &CommKeys, plain: &[u32]) -> [Vec<u32>; 3] {
    let mut scratch = Scratch::default();
    let mut sum = plain.to_vec();
    IntSum::encrypt_in_place(keys, 0, &mut sum, &mut scratch);
    let mut prod = plain.to_vec();
    IntProd::encrypt_in_place(keys, 0, &mut prod, &mut scratch);
    let mut xor = plain.to_vec();
    IntXor::encrypt_in_place(keys, 0, &mut xor, &mut scratch);
    [sum, prod, xor]
}

#[test]
fn temporal_safety_all_schemes() {
    let mut ks = keys(3, 0xA);
    let plain = vec![0xDEAD_BEEFu32; 8];
    let first = encrypt_all_int(&ks[0], &plain);
    for k in &mut ks {
        k.advance();
    }
    let second = encrypt_all_int(&ks[0], &plain);
    for (a, b) in first.iter().zip(&second) {
        assert_ne!(a, b, "temporal safety violated");
    }
    // Floats, both schemes.
    let fs = FloatSum::new(HfpFormat::fp32(2, 2));
    let fp = FloatProd::new(HfpFormat::fp32(0, 0));
    let (mut c1, mut c2) = (Vec::new(), Vec::new());
    fs.encrypt_f64(&ks[0], 0, &[1.0], &mut c1).unwrap();
    fp.encrypt_f64(&ks[0], 0, &[1.0], &mut c2).unwrap();
    for k in &mut ks {
        k.advance();
    }
    let (mut d1, mut d2) = (Vec::new(), Vec::new());
    fs.encrypt_f64(&ks[0], 0, &[1.0], &mut d1).unwrap();
    fp.encrypt_f64(&ks[0], 0, &[1.0], &mut d2).unwrap();
    assert_ne!(c1, d1);
    assert_ne!(c2, d2);
}

#[test]
fn local_safety_within_vector() {
    let ks = keys(2, 0xB);
    let plain = vec![42u32; 256];
    for cipher in encrypt_all_int(&ks[0], &plain) {
        let distinct: std::collections::HashSet<u32> = cipher.iter().copied().collect();
        assert!(
            distinct.len() >= 250,
            "local safety: only {} distinct ciphertexts from 256 equal plaintexts",
            distinct.len()
        );
    }
    // Float SUM: equal values in different slots use different noise.
    let fs = FloatSum::new(HfpFormat::fp32(2, 2));
    let mut ct = Vec::new();
    fs.encrypt_f64(&ks[0], 0, &vec![3.25f64; 64], &mut ct)
        .unwrap();
    let distinct: std::collections::HashSet<u128> = ct.iter().map(Hfp::to_bits).collect();
    assert!(distinct.len() >= 60);
}

#[test]
fn global_safety_across_ranks_except_float_sum_v1() {
    let ks = keys(4, 0xC);
    let plain = vec![7u32; 16];
    // Integer schemes: per-rank keys → distinct wires.
    for pair in [(0usize, 1usize), (1, 2), (0, 3)] {
        let a = encrypt_all_int(&ks[pair.0], &plain);
        let b = encrypt_all_int(&ks[pair.1], &plain);
        for (x, y) in a.iter().zip(&b) {
            assert_ne!(x, y, "global safety violated between ranks {pair:?}");
        }
    }
    // Float PROD: per-rank noise → distinct.
    let fp = FloatProd::new(HfpFormat::fp32(0, 0));
    let (mut c0, mut c1) = (Vec::new(), Vec::new());
    fp.encrypt_f64(&ks[0], 0, &[2.5], &mut c0).unwrap();
    fp.encrypt_f64(&ks[1], 0, &[2.5], &mut c1).unwrap();
    assert_ne!(c0, c1);
    // Float SUM v1: the documented exception — all ranks share the noise
    // stream (Eq. 7), so identical plaintexts produce identical wires.
    let fs = FloatSum::new(HfpFormat::fp32(2, 2));
    fs.encrypt_f64(&ks[0], 0, &[2.5], &mut c0).unwrap();
    fs.encrypt_f64(&ks[1], 0, &[2.5], &mut c1).unwrap();
    assert_eq!(c0, c1, "Eq. 7 intentionally lacks global safety");
}

#[test]
fn keystream_looks_uniform() {
    // Bit-balance and byte-coverage smoke test over 64 KiB of AES-CTR
    // keystream — the noise that makes ciphertexts IND-CPA.
    let prf = PrfCipher::best(0x1CE);
    let mut ones = 0u64;
    let mut byte_seen = [false; 256];
    let n_blocks = 4096;
    for i in 0..n_blocks {
        let b = prf.eval_block(i);
        ones += b.count_ones() as u64;
        for k in 0..16 {
            byte_seen[((b >> (8 * k)) & 0xff) as usize] = true;
        }
    }
    let total_bits = n_blocks as f64 * 128.0;
    let balance = ones as f64 / total_bits;
    assert!((0.495..0.505).contains(&balance), "bit balance {balance}");
    assert!(byte_seen.iter().all(|&s| s), "all byte values must appear");
}

#[test]
fn ciphertext_sum_differs_from_plaintext_sum_on_the_wire() {
    // What the switch aggregates is NOT the plaintext aggregate: even the
    // network's intermediate results stay masked (rank-0 noise remains).
    let ks = keys(3, 0xD);
    let mut scratch = Scratch::default();
    let data = vec![5u32, 10, 15];
    let mut wire_agg = vec![0u32; 3];
    for k in &ks {
        let mut ct = data.clone();
        IntSum::encrypt_in_place(k, 0, &mut ct, &mut scratch);
        for (a, c) in wire_agg.iter_mut().zip(&ct) {
            *a = a.wrapping_add(*c);
        }
    }
    let plain_agg: Vec<u32> = data.iter().map(|v| v * 3).collect();
    assert_ne!(wire_agg, plain_agg, "the aggregate itself must stay masked");
    IntSum::decrypt_in_place(&ks[0], 0, &mut wire_agg, &mut scratch);
    assert_eq!(wire_agg, plain_agg);
}

#[test]
fn float_noise_exponents_cover_the_ring() {
    // §5.3.5: encrypted exponents must be spread over the whole ring, not
    // clustered — otherwise ring wraparound would be rare and the cap
    // argument moot.
    let ks = keys(2, 0xE);
    let (ew, mw) = HfpFormat::fp32(2, 2).cipher_widths();
    let mut quadrant = [0usize; 4];
    for j in 0..4096 {
        let n = noise_at(ks[0].prf(), ks[0].base_collective(), j, ew, mw);
        quadrant[(n.exp >> (ew - 2)) as usize] += 1;
    }
    for (q, count) in quadrant.iter().enumerate() {
        assert!(
            (824..=1224).contains(count),
            "exponent quadrant {q} has {count}/4096 (expected ≈1024)"
        );
    }
}
