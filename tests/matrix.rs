//! The composition matrix test: every cipher scheme × transport algorithm
//! × chunking mode × HoMAC verification, one generic engine call each,
//! checked against the plaintext reference with the per-scheme tolerance
//! implied by Table 2's lossiness column. Before the engine refactor most
//! of these cells were unwritable (e.g. a verified pipelined float sum on
//! the switch tree); now every one is
//! `SecureComm::allreduce_with(scheme, data, cfg)`.

use hear::core::properties::{composition_matrix_markdown, table2_markdown, Lossiness, TABLE2};
use hear::core::{
    Backend, CommKeys, FixedCodec, FixedSumScheme, FloatProdScheme, FloatSumExpScheme,
    FloatSumScheme, HfpFormat, Homac, IntProdScheme, IntSumScheme, IntXorScheme, Scheme,
};
use hear::layer::{EngineCfg, ReduceAlgo, SecureComm};
use hear::mpi::{SimConfig, Simulator};

const WORLD: usize = 4;
const SEED: u64 = 0xA117;

/// Every (algorithm, pipelined?, verified?) cell the engine must serve.
fn cells() -> Vec<(ReduceAlgo, bool, bool)> {
    let mut v = Vec::new();
    for algo in [
        ReduceAlgo::RecursiveDoubling,
        ReduceAlgo::Ring,
        ReduceAlgo::Switch,
        // Group size 2 at world 4: two leaders, so every stage (intra
        // reduce, inter-leader ring, broadcast) actually runs.
        ReduceAlgo::Hierarchical { group: 2 },
    ] {
        for pipelined in [false, true] {
            for verified in [false, true] {
                v.push((algo, pipelined, verified));
            }
        }
    }
    v
}

fn cfg_for(algo: ReduceAlgo, pipelined: bool, verified: bool) -> EngineCfg {
    let base = if pipelined {
        // A block size that does not divide the test length, so chunk
        // boundaries and the tail block are both exercised.
        EngineCfg::pipelined(5)
    } else {
        EngineCfg::sync()
    };
    let base = base.with_algo(algo);
    if verified {
        base.verified()
    } else {
        base
    }
}

/// Run one scheme through all 16 cells at world = 4 on a switch-enabled
/// simulator and compare every rank's every cell against `expected`.
///
/// `hier_bitwise` pins Hierarchical against the flat ring **bit for bit**;
/// set it for every scheme whose wire op is an exact ring operation
/// (wrapping add/mul, xor — reassociation is invisible). The HFP float
/// schemes round during exponent alignment, so their combine is only
/// approximately associative: for those the pin is the scheme's `close`
/// tolerance instead.
fn sweep<S, MS, CL>(
    mk_scheme: MS,
    inputs: Vec<Vec<S::Input>>,
    expected: Vec<S::Input>,
    close: CL,
    hier_bitwise: bool,
) where
    S: Scheme + 'static,
    S::Input: PartialEq + std::fmt::Debug + Sync,
    MS: Fn() -> S + Send + Sync,
    CL: Fn(&S::Input, &S::Input) -> bool,
{
    let inputs = &inputs;
    let mk_scheme = &mk_scheme;
    let results = Simulator::with_config(WORLD, SimConfig::default().with_switch(4)).run(|comm| {
        let keys = CommKeys::generate(WORLD, SEED, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(SEED ^ 0x5a5a, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let data = inputs[comm.rank()].clone();
        let mut out = Vec::new();
        for (algo, pipelined, verified) in cells() {
            let mut s = mk_scheme();
            let got = sc
                .allreduce_with(&mut s, &data, cfg_for(algo, pipelined, verified))
                .unwrap_or_else(|e| {
                    panic!(
                        "{} failed on ({algo:?}, pipelined={pipelined}, verified={verified}): {e}",
                        S::NAME
                    )
                });
            out.push((algo, pipelined, verified, got));
        }
        out
    });
    for (rank, cells) in results.iter().enumerate() {
        for (algo, pipelined, verified, got) in cells {
            assert_eq!(
                got.len(),
                expected.len(),
                "{} rank={rank} ({algo:?}, pipelined={pipelined}, verified={verified})",
                S::NAME
            );
            for (j, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert!(
                    close(g, e),
                    "{} rank={rank} ({algo:?}, pipelined={pipelined}, verified={verified}) \
                     elem {j}: got {g:?}, expected {e:?}",
                    S::NAME
                );
            }
        }
        // The hierarchical pin: regrouping the reduction (intra-group →
        // inter-leader ring → broadcast) must match the flat Ring cell of
        // the same (chunking, verification) — bit for bit when the wire op
        // is an exact ring operation, within the scheme tolerance when the
        // HFP combine rounds (see `sweep` docs).
        for pipelined in [false, true] {
            for verified in [false, true] {
                let pick = |want_hier: bool| {
                    cells
                        .iter()
                        .find(|(a, p, v, _)| {
                            *p == pipelined
                                && *v == verified
                                && matches!(a, ReduceAlgo::Hierarchical { .. }) == want_hier
                                && (want_hier || *a == ReduceAlgo::Ring)
                        })
                        .map(|(_, _, _, got)| got)
                        .unwrap()
                };
                let (hier, ring) = (pick(true), pick(false));
                if hier_bitwise {
                    assert_eq!(
                        hier,
                        ring,
                        "{} rank={rank} (pipelined={pipelined}, verified={verified}): \
                         Hierarchical diverged bitwise from the flat ring",
                        S::NAME
                    );
                } else {
                    for (j, (h, r)) in hier.iter().zip(ring).enumerate() {
                        assert!(
                            close(h, r),
                            "{} rank={rank} (pipelined={pipelined}, verified={verified}) \
                             elem {j}: Hierarchical {h:?} vs ring {r:?} outside tolerance",
                            S::NAME
                        );
                    }
                }
            }
        }
    }
}

fn rel_close(tol: f64) -> impl Fn(&f64, &f64) -> bool {
    move |g, e| {
        let scale = e.abs().max(1.0);
        (g - e).abs() / scale < tol
    }
}

/// Table-2-derived tolerance for a scheme's lossiness class.
fn tol_for(row: usize) -> f64 {
    match TABLE2[row].lossiness {
        Lossiness::Lossless => 0.0,
        Lossiness::Minor => 1e-4,
        Lossiness::Medium => 1e-3,
    }
}

#[test]
fn int_sum_full_matrix() {
    let inputs: Vec<Vec<u32>> = (0..WORLD)
        .map(|r| {
            (0..23)
                .map(|j| (j as u32).wrapping_mul(0x9E37_79B9).wrapping_add(r as u32))
                .collect()
        })
        .collect();
    let expected: Vec<u32> = (0..23)
        .map(|j| {
            inputs
                .iter()
                .fold(0u32, |acc, rank| acc.wrapping_add(rank[j]))
        })
        .collect();
    assert_eq!(tol_for(IntSumScheme::<u32>::TABLE2_ROW), 0.0);
    sweep(
        IntSumScheme::<u32>::default,
        inputs,
        expected,
        |g: &u32, e: &u32| g == e,
        true,
    );
}

#[test]
fn int_prod_full_matrix() {
    let inputs: Vec<Vec<u64>> = (0..WORLD)
        .map(|r| (0..17).map(|j| 1 + ((j + r as u64) % 9)).collect())
        .collect();
    let expected: Vec<u64> = (0..17)
        .map(|j| {
            inputs
                .iter()
                .fold(1u64, |acc, rank| acc.wrapping_mul(rank[j as usize]))
        })
        .collect();
    assert_eq!(tol_for(IntProdScheme::<u64>::TABLE2_ROW), 0.0);
    sweep(
        IntProdScheme::<u64>::default,
        inputs,
        expected,
        |g: &u64, e: &u64| g == e,
        true,
    );
}

#[test]
fn int_xor_full_matrix() {
    // XOR digests are sound only up to 15 ranks; world = 4 is inside.
    let inputs: Vec<Vec<u32>> = (0..WORLD)
        .map(|r| {
            (0..19)
                .map(|j| (j as u32).wrapping_mul(0xDEAD_BEEF) ^ (r as u32) << 13)
                .collect()
        })
        .collect();
    let expected: Vec<u32> = (0..19)
        .map(|j| inputs.iter().fold(0u32, |acc, rank| acc ^ rank[j]))
        .collect();
    sweep(
        IntXorScheme::<u32>::default,
        inputs,
        expected,
        |g: &u32, e: &u32| g == e,
        true,
    );
}

#[test]
fn fixed_sum_full_matrix() {
    let inputs: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..13)
                .map(|j| ((r * 13 + j) as f64 * 0.37).sin() * 4.0)
                .collect()
        })
        .collect();
    let expected: Vec<f64> = (0..13)
        .map(|j| inputs.iter().map(|rank| rank[j]).sum())
        .collect();
    // Fixed point with 16 fractional bits: quantisation, not HFP loss.
    sweep(
        || FixedSumScheme::new(FixedCodec::new(16)),
        inputs,
        expected,
        rel_close(1e-3),
        // Fixed-point wires reduce with exact wrapping u64 addition.
        true,
    );
}

#[test]
fn float_sum_v1_full_matrix() {
    let inputs: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..21)
                .map(|j| ((r * 21 + j) as f64 * 0.17).cos() * 3.0 + 4.0)
                .collect()
        })
        .collect();
    let expected: Vec<f64> = (0..21)
        .map(|j| inputs.iter().map(|rank| rank[j]).sum())
        .collect();
    let tol = tol_for(FloatSumScheme::TABLE2_ROW);
    assert!(tol > 0.0);
    sweep(
        // γ=2 is required for the cancelling noise layout (Eq. 7).
        || FloatSumScheme::new(HfpFormat::fp32(2, 2)),
        inputs,
        expected,
        rel_close(tol),
        false,
    );
}

#[test]
fn float_sum_v2_full_matrix() {
    // v2 trades range for global safety: keep inputs small so the shared
    // exponent never overflows (δ must be 0 for the v2 layout).
    let inputs: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..11)
                .map(|j| ((r * 11 + j) as f64 * 0.29).sin() * 0.4)
                .collect()
        })
        .collect();
    let expected: Vec<f64> = (0..11)
        .map(|j| inputs.iter().map(|rank| rank[j]).sum())
        .collect();
    let tol = tol_for(FloatSumExpScheme::TABLE2_ROW);
    sweep(
        || FloatSumExpScheme::new(HfpFormat::fp64(0, 0)),
        inputs,
        expected,
        rel_close(tol),
        false,
    );
}

#[test]
fn float_prod_full_matrix() {
    // Nonzero inputs clustered around 1 so products of 4 ranks stay in
    // range and the multiplicative digest stays well-conditioned.
    let inputs: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..9)
                .map(|j| 0.6 + ((r * 9 + j) as f64 * 0.41).cos().abs())
                .collect()
        })
        .collect();
    let expected: Vec<f64> = (0..9)
        .map(|j| inputs.iter().map(|rank| rank[j]).product())
        .collect();
    let tol = tol_for(FloatProdScheme::TABLE2_ROW);
    sweep(
        // δ must be 0 for the multiplicative layout (Eq. 6).
        || FloatProdScheme::new(HfpFormat::fp64(0, 0)),
        inputs,
        expected,
        rel_close(tol),
        false,
    );
}

// ---- uniform edge cases (satellite #1) ---------------------------------

#[test]
fn empty_input_is_empty_everywhere() {
    // Zero-length reductions short-circuit inside the engine for every
    // cell — including verified + pipelined, which used to hang or panic
    // depending on the legacy path.
    let results = Simulator::with_config(WORLD, SimConfig::default().with_switch(4)).run(|comm| {
        let keys = CommKeys::generate(WORLD, 77, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(78, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let mut lens = Vec::new();
        for (algo, pipelined, verified) in cells() {
            let mut s = IntSumScheme::<u32>::default();
            let got = sc
                .allreduce_with(&mut s, &[], cfg_for(algo, pipelined, verified))
                .unwrap();
            lens.push(got.len());
        }
        let mut f = FloatSumScheme::new(HfpFormat::fp32(2, 2));
        lens.push(
            sc.allreduce_with(&mut f, &[], EngineCfg::pipelined(4).verified())
                .unwrap()
                .len(),
        );
        lens
    });
    for lens in &results {
        assert!(lens.iter().all(|l| *l == 0));
    }
}

#[test]
fn world_of_one_runs_every_cell_without_a_fabric() {
    // A single rank has nothing to reduce with: every cell — even Switch
    // (no switch fabric configured here!) and verified + pipelined — must
    // return the input unchanged instead of touching the transport.
    let results = Simulator::new(1).run(|comm| {
        let keys = CommKeys::generate(1, 5, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(6, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let data: Vec<u32> = (0..7).map(|j| j * 3 + 1).collect();
        let mut outs = Vec::new();
        for (algo, pipelined, verified) in cells() {
            let mut s = IntSumScheme::<u32>::default();
            outs.push(
                sc.allreduce_with(&mut s, &data, cfg_for(algo, pipelined, verified))
                    .unwrap(),
            );
        }
        let mut f = FloatSumScheme::new(HfpFormat::fp32(2, 2));
        let floats = sc
            .allreduce_with(
                &mut f,
                &[1.25, -2.5],
                EngineCfg::pipelined(1)
                    .verified()
                    .with_algo(ReduceAlgo::Switch),
            )
            .unwrap();
        (data, outs, floats)
    });
    let (data, outs, floats) = &results[0];
    for out in outs {
        assert_eq!(out, data);
    }
    assert!((floats[0] - 1.25).abs() < 1e-4);
    assert!((floats[1] + 2.5).abs() < 1e-4);
}

#[test]
fn fewer_elements_than_ranks_on_the_ring() {
    // count < world stresses the ring's empty-segment handling.
    let results = Simulator::new(4).run(|comm| {
        let keys = CommKeys::generate(4, 9, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let mut s = IntSumScheme::<u32>::default();
        sc.allreduce_with(
            &mut s,
            &[comm.rank() as u32 + 1, 10],
            EngineCfg::sync().with_algo(ReduceAlgo::Ring),
        )
        .unwrap()
    });
    for r in &results {
        assert_eq!(*r, vec![1 + 2 + 3 + 4, 40]);
    }
}

// ---- randomized cell picking (satellite #3) ----------------------------

mod random_cells {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// One random (world, length, block, cell) tuple per case: the
        /// engine must agree with the plaintext wrapping-sum reference in
        /// every corner the deterministic sweep's fixed shape misses.
        #[test]
        fn random_cell_matches_reference(
            world in 1usize..5,
            len in 0usize..60,
            block in 1usize..16,
            seed in any::<u64>(),
            algo_pick in 0u8..4,
            pipelined in any::<bool>(),
            verified in any::<bool>(),
        ) {
            let algo = match algo_pick {
                0 => ReduceAlgo::RecursiveDoubling,
                1 => ReduceAlgo::Ring,
                2 => ReduceAlgo::Switch,
                _ => ReduceAlgo::Hierarchical { group: 2 },
            };
            let results = Simulator::with_config(world, SimConfig::default().with_switch(2))
                .run(move |comm| {
                    let keys = CommKeys::generate(world, seed, Backend::best_available())
                        .into_iter()
                        .nth(comm.rank())
                        .unwrap();
                    let homac = Homac::generate(seed ^ 0x17, Backend::best_available());
                    let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
                    let data: Vec<u32> = (0..len as u32)
                        .map(|j| {
                            j.wrapping_mul(seed as u32 | 1)
                                .wrapping_add(comm.rank() as u32)
                        })
                        .collect();
                    let base = if pipelined {
                        EngineCfg::pipelined(block)
                    } else {
                        EngineCfg::sync()
                    };
                    let cfg = if verified {
                        base.with_algo(algo).verified()
                    } else {
                        base.with_algo(algo)
                    };
                    let mut s = IntSumScheme::<u32>::default();
                    let enc = sc.allreduce_with(&mut s, &data, cfg).unwrap();
                    let reference = comm.allreduce(&data, |a, b| a.wrapping_add(*b));
                    (enc, reference)
                });
            for (enc, reference) in &results {
                prop_assert_eq!(enc, reference);
            }
        }
    }
}

// ---- steady-state allocation accounting (satellite #2) ------------------
//
// The engine claims zero heap allocation after warmup: every staging
// vector is leased from the per-communicator arena, the transport's
// aggregate buffer is recycled as the next block's wire buffer, and
// `allreduce_with_into` reuses the caller's output capacity. A counting
// global allocator makes that claim falsifiable. The counter is
// thread-local so the prefetch worker's (intentional, off-thread)
// keystream allocations never pollute a rank's tally.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// `try_with`, not `with`: the allocator runs during TLS teardown too,
// where touching a destroyed thread-local would abort the process.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn steady_state_allreduce_is_allocation_free_at_world_one() {
    // World of one skips the transport entirely, so the mask → unmask
    // round trip through the arena must be *exactly* allocation-free once
    // the scratch buffers have been sized by a few warmup calls.
    let zero_after_warmup = Simulator::new(1).run(|comm| {
        let keys = CommKeys::generate(1, 0xA110C, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let mut s = IntSumScheme::<u32>::default();
        let data: Vec<u32> = (0..512u32).map(|j| j.wrapping_mul(0x9E37_79B9)).collect();
        let mut out = Vec::new();
        for _ in 0..3 {
            sc.allreduce_with_into(&mut s, &data, &mut out, EngineCfg::sync())
                .unwrap();
        }
        let before = allocs_on_this_thread();
        for _ in 0..8 {
            sc.allreduce_with_into(&mut s, &data, &mut out, EngineCfg::sync())
                .unwrap();
        }
        (allocs_on_this_thread() - before, out)
    });
    let (allocs, out) = &zero_after_warmup[0];
    assert_eq!(out.len(), 512);
    assert_eq!(
        *allocs, 0,
        "steady-state allreduce_with_into allocated {allocs} times on the rank thread"
    );
}

#[test]
fn steady_state_factored_collectives_are_allocation_free_at_world_one() {
    // The factored collective set inherits the allreduce discipline:
    // reduce-scatter runs the same local mask → unmask path, allgather
    // and alltoall short-circuit into a plain copy. None of them may
    // allocate once warm.
    let per_rank = Simulator::new(1).run(|comm| {
        let keys = CommKeys::generate(1, 0xA110D, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let mut s = IntSumScheme::<u32>::default();
        let data: Vec<u32> = (0..384u32).map(|j| j.wrapping_mul(0x85EB_CA6B)).collect();
        let (mut rs, mut ag, mut a2a) = (Vec::new(), Vec::new(), Vec::new());
        let mut round = |sc: &mut SecureComm, s: &mut IntSumScheme<u32>| {
            sc.reduce_scatter_with_into(s, &data, &mut rs, EngineCfg::sync())
                .unwrap();
            sc.allgather_with_into(s, &data, &mut ag, EngineCfg::sync())
                .unwrap();
            sc.alltoall_with_into(s, &data, &mut a2a, EngineCfg::sync())
                .unwrap();
        };
        for _ in 0..3 {
            round(&mut sc, &mut s);
        }
        let before = allocs_on_this_thread();
        for _ in 0..8 {
            round(&mut sc, &mut s);
        }
        let allocs = allocs_on_this_thread() - before;
        (allocs, rs.len(), ag.len(), a2a.len())
    });
    let (allocs, rs_len, ag_len, a2a_len) = per_rank[0];
    assert_eq!((rs_len, ag_len, a2a_len), (384, 384, 384));
    assert_eq!(
        allocs, 0,
        "steady-state factored collectives allocated {allocs} times on the rank thread"
    );
}

#[test]
fn steady_state_allreduce_allocations_stay_flat_across_ranks() {
    // At world > 1 the simulated fabric allocates per message (one boxed
    // envelope per send, one queue buffer per fresh collective tag), so
    // "zero" is not achievable — but the engine's own staging must not
    // add to it. Per-iteration counts therefore have to be *flat* in
    // steady state: a leak of even one staging vector per block would
    // raise every subsequent iteration. A tiny slack absorbs the
    // occasional mailbox HashMap rehash (one table allocation).
    const ITERS: usize = 10;
    const SLACK: u64 = 8;
    let per_rank = Simulator::new(2).run(|comm| {
        let keys = CommKeys::generate(2, 0xF1A7, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let mut s = IntSumScheme::<u32>::default();
        let data: Vec<u32> = (0..1024u32)
            .map(|j| j.wrapping_mul(0xDEAD_BEEF).wrapping_add(comm.rank() as u32))
            .collect();
        let cfg = EngineCfg::pipelined(64).with_algo(ReduceAlgo::Ring);
        let mut out = Vec::new();
        for _ in 0..4 {
            sc.allreduce_with_into(&mut s, &data, &mut out, cfg)
                .unwrap();
        }
        let mut counts = Vec::with_capacity(ITERS);
        for _ in 0..ITERS {
            let before = allocs_on_this_thread();
            sc.allreduce_with_into(&mut s, &data, &mut out, cfg)
                .unwrap();
            counts.push(allocs_on_this_thread() - before);
        }
        counts
    });
    for (rank, counts) in per_rank.iter().enumerate() {
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= min + SLACK,
            "rank {rank}: per-iteration allocation counts drift in steady state: {counts:?}"
        );
    }
}

#[test]
fn steady_state_parallel_masking_is_allocation_free_at_world_one() {
    // A buffer past PAR_MIN_BYTES routes the mask → unmask round trip
    // through the worker pool. The submitter's side of the fork-join —
    // publish the job, work shards alongside the pool, join — must stay
    // allocation-free after the lazy worker spawn, or the "no allocation
    // on the submitter path" claim in hear_prf::par is false.
    use hear::prf::{with_pool, WorkerPool, PAR_MIN_BYTES};
    let len = PAR_MIN_BYTES / 4 + 13; // odd u32 count, > 1 MiB
    let zero_after_warmup = Simulator::new(1).run(move |comm| {
        let pool = WorkerPool::new(4);
        with_pool(&pool, || {
            let keys = CommKeys::generate(1, 0xA110E, Backend::best_available())
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let mut sc = SecureComm::new(comm.clone(), keys);
            let mut s = IntSumScheme::<u32>::default();
            let data: Vec<u32> = (0..len as u32)
                .map(|j| j.wrapping_mul(0x9E37_79B9))
                .collect();
            let mut out = Vec::new();
            for _ in 0..3 {
                sc.allreduce_with_into(&mut s, &data, &mut out, EngineCfg::sync())
                    .unwrap();
            }
            let before = allocs_on_this_thread();
            for _ in 0..4 {
                sc.allreduce_with_into(&mut s, &data, &mut out, EngineCfg::sync())
                    .unwrap();
            }
            (allocs_on_this_thread() - before, out.len())
        })
    });
    let (allocs, out_len) = zero_after_warmup[0];
    assert_eq!(out_len, len);
    assert_eq!(
        allocs, 0,
        "steady-state parallel-masked allreduce allocated {allocs} times on the rank thread"
    );
}

#[test]
fn steady_state_hierarchical_allocations_stay_flat_at_world_four() {
    // Same flatness discipline as the ring test, but at world 4 over the
    // hierarchical cell: the intra-group reduce, inter-leader ring, and
    // broadcast all recycle their staging (`seg`) buffers, so per-iteration
    // allocation counts must not drift even though the simulated fabric
    // allocates per message.
    const ITERS: usize = 10;
    const SLACK: u64 = 8;
    let per_rank = Simulator::new(4).run(|comm| {
        let keys = CommKeys::generate(4, 0xF1A8, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let mut s = IntSumScheme::<u32>::default();
        let data: Vec<u32> = (0..1024u32)
            .map(|j| j.wrapping_mul(0xC2B2_AE35).wrapping_add(comm.rank() as u32))
            .collect();
        let cfg = EngineCfg::pipelined(64).with_algo(ReduceAlgo::Hierarchical { group: 2 });
        let mut out = Vec::new();
        for _ in 0..4 {
            sc.allreduce_with_into(&mut s, &data, &mut out, cfg)
                .unwrap();
        }
        let mut counts = Vec::with_capacity(ITERS);
        for _ in 0..ITERS {
            let before = allocs_on_this_thread();
            sc.allreduce_with_into(&mut s, &data, &mut out, cfg)
                .unwrap();
            counts.push(allocs_on_this_thread() - before);
        }
        counts
    });
    for (rank, counts) in per_rank.iter().enumerate() {
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(
            max <= min + SLACK,
            "rank {rank}: hierarchical per-iteration allocation counts drift: {counts:?}"
        );
    }
}

// ---- docs stay in sync with the generators (satellite #4) ---------------

#[test]
fn readme_and_design_embed_the_generated_matrices() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let readme = std::fs::read_to_string(format!("{root}/README.md")).unwrap();
    let design = std::fs::read_to_string(format!("{root}/DESIGN.md")).unwrap();
    for line in composition_matrix_markdown().lines() {
        assert!(
            design.contains(line),
            "DESIGN.md is missing a composition-matrix line:\n{line}\n\
             (regenerate with hear::core::properties::composition_matrix_markdown)"
        );
    }
    for line in table2_markdown().lines() {
        assert!(
            readme.contains(line),
            "README.md is missing a Table 2 line:\n{line}\n\
             (regenerate with hear::core::properties::table2_markdown)"
        );
    }
}
