//! Runtime stress tests: the thread-backed MPI under adversarial
//! schedules — delayed fabric + switch tree + nonblocking overlap +
//! many concurrent collectives, with encrypted payloads throughout.

// Expected values are written as explicit per-rank sums (0 + 2 + 4).
#![allow(clippy::identity_op)]

use hear::core::{Backend, CommKeys};
use hear::layer::{ReduceAlgo, SecureComm};
use hear::mpi::{Communicator, NetConfig, SimConfig, Simulator};
use std::time::Duration;

fn secure(comm: &Communicator, seed: u64) -> SecureComm {
    let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
        .into_iter()
        .nth(comm.rank())
        .unwrap();
    SecureComm::new(comm.clone(), keys)
}

#[test]
fn hundred_collectives_with_transit_delay() {
    // A small α keeps messages in flight while later collectives post.
    let cfg = SimConfig::default().with_net(NetConfig {
        alpha: Duration::from_micros(50),
        beta_ns_per_byte: 0.1,
    });
    let results = Simulator::with_config(3, cfg).run(|comm| {
        let mut sc = secure(comm, 1);
        let mut acc = 0u64;
        for i in 0..100u32 {
            acc = acc.wrapping_add(sc.allreduce_sum_u32(&[i])[0] as u64);
        }
        acc
    });
    let expect: u64 = (0..100u64).map(|i| i * 3).sum();
    assert!(results.iter().all(|r| *r == expect));
}

#[test]
fn switch_tree_with_delay_model() {
    let cfg = SimConfig::default()
        .with_net(NetConfig {
            alpha: Duration::from_micros(80),
            beta_ns_per_byte: 0.2,
        })
        .with_switch(2);
    let results = Simulator::with_config(6, cfg).run(|comm| {
        let mut sc = secure(comm, 2).with_algo(ReduceAlgo::Switch);
        let data: Vec<u32> = (0..257).map(|j| j + comm.rank() as u32).collect();
        sc.allreduce_sum_u32(&data)
    });
    for got in &results {
        for (j, v) in got.iter().enumerate() {
            let expect: u32 = (0..6).map(|r| j as u32 + r).sum();
            assert_eq!(*v, expect, "j={j}");
        }
    }
}

#[test]
fn deep_nonblocking_pipeline_under_delay() {
    // 16 requests in flight at once, out-of-order waits.
    let cfg = SimConfig::default().with_net(NetConfig {
        alpha: Duration::from_micros(100),
        beta_ns_per_byte: 0.0,
    });
    let results = Simulator::with_config(2, cfg).run(|comm| {
        let reqs: Vec<_> = (0..16u64)
            .map(|i| comm.iallreduce(vec![i, i * i], |a, b| a + b))
            .collect();
        // Wait in reverse order.
        let mut out = Vec::new();
        for r in reqs.into_iter().rev() {
            out.push(r.wait());
        }
        out.reverse();
        out
    });
    for r in &results {
        for (i, v) in r.iter().enumerate() {
            let i = i as u64;
            assert_eq!(*v, vec![2 * i, 2 * i * i]);
        }
    }
}

#[test]
fn mixed_schemes_interleaved_heavily() {
    // Int, float, fixed, logical, verified — shuffled per iteration to
    // stress the epoch discipline.
    let results = Simulator::new(4).run(|comm| {
        let homac = hear::core::Homac::generate(3, Backend::best_available());
        let mut sc = secure(comm, 3).with_homac(homac);
        let mut sink: f64 = 0.0;
        for i in 0..25u32 {
            match i % 5 {
                0 => sink += sc.allreduce_sum_u32(&[i])[0] as f64,
                1 => {
                    sink += sc
                        .allreduce_float_sum(hear::core::HfpFormat::fp32(2, 2), &[i as f64 + 0.5])
                        .unwrap()[0]
                }
                2 => sink += sc.allreduce_fixed_sum(hear::core::FixedCodec::new(16), &[0.25])[0],
                3 => sink += sc.allreduce_logical(&[i % 2 == 0])[0].0 as u8 as f64,
                _ => sink += sc.allreduce_sum_u32_verified(&[i]).unwrap()[0] as f64,
            }
        }
        sink
    });
    for r in &results[1..] {
        assert!(
            (r - results[0]).abs() < 1e-9,
            "all ranks agree: {r} vs {}",
            results[0]
        );
    }
    assert!(results[0] > 0.0);
}

#[test]
fn single_rank_world_supports_everything() {
    // Degenerate communicator: every path must still work.
    let results = Simulator::new(1).run(|comm| {
        let mut sc = secure(comm, 4);
        let a = sc.allreduce_sum_i64(&[-5])[0];
        let b = sc.allreduce_prod_u32(&[7])[0];
        let c = sc
            .allreduce_float_prod(hear::core::HfpFormat::fp32(0, 0), &[2.5])
            .unwrap()[0];
        let d = sc.allreduce_logical(&[true])[0];
        let e = sc.reduce_sum_u32(0, &[9]).unwrap()[0];
        (a, b, c, d, e)
    });
    let (a, b, c, d, e) = results[0];
    assert_eq!(a, -5);
    assert_eq!(b, 7);
    assert!((c - 2.5).abs() < 1e-5);
    assert_eq!(d, (true, true));
    assert_eq!(e, 9);
}

#[test]
fn large_vector_through_every_algorithm() {
    let cfg = SimConfig::default().with_switch(4);
    let n = 50_000usize;
    let results = Simulator::with_config(4, cfg).run(move |comm| {
        let data: Vec<u32> = (0..n as u32)
            .map(|j| j.wrapping_mul(2_654_435_761))
            .collect();
        let rd = secure(comm, 5).allreduce_sum_u32(&data);
        let ring = secure(comm, 5)
            .with_algo(ReduceAlgo::Ring)
            .allreduce_sum_u32(&data);
        let inc = secure(comm, 5)
            .with_algo(ReduceAlgo::Switch)
            .allreduce_sum_u32(&data);
        let piped = secure(comm, 5).allreduce_sum_u32_pipelined(&data, 4096);
        (rd, ring, inc, piped)
    });
    for (rd, ring, inc, piped) in &results {
        assert_eq!(rd, ring);
        assert_eq!(rd, inc);
        assert_eq!(rd, piped);
    }
}

#[test]
fn per_communicator_keys_over_split() {
    // Paper §5 "Key Generation": initialization is per communicator, even
    // if some processes are already initialized in another one. Two
    // disjoint sub-communicators run encrypted reductions concurrently
    // with independent keys, interleaved with the parent's.
    let results = Simulator::new(6).run(|comm| {
        let mut parent_sc = secure(comm, 10);
        let sub = comm.split(comm.rank() as u64 % 2, 0);
        // Per-communicator key generation: seed differs per color.
        let sub_keys = CommKeys::generate(
            sub.world(),
            100 + comm.rank() as u64 % 2,
            Backend::best_available(),
        )
        .into_iter()
        .nth(sub.rank())
        .unwrap();
        let mut sub_sc = SecureComm::new(sub.clone(), sub_keys);

        let a = sub_sc.allreduce_sum_u32(&[comm.rank() as u32]);
        let b = parent_sc.allreduce_sum_u32(&[1u32]);
        let c = sub_sc.allreduce_sum_u32(&[10u32]);
        (a[0], b[0], c[0])
    });
    for (r, (a, b, c)) in results.iter().enumerate() {
        let expect_a = if r % 2 == 0 { 0 + 2 + 4 } else { 1 + 3 + 5 };
        assert_eq!(*a, expect_a);
        assert_eq!(*b, 6);
        assert_eq!(*c, 30);
    }
}
