//! The factored collective set, end to end: reduce-scatter ∘ allgather
//! *is* the ring allreduce (bit for bit), and the three engine-routed
//! collectives — reduce-scatter, allgather, alltoall — run verified and
//! unverified over both the in-memory fabric and real TCP sockets.

use hear::core::{
    Backend, CommKeys, FloatProdScheme, FloatSumScheme, HfpFormat, Homac, IntSumScheme,
    IntXorScheme, Scheme,
};
use hear::layer::{EngineCfg, ReduceAlgo, SecureComm};
use hear::mpi::{Communicator, SimConfig, Simulator, TransportKind};

fn secure(comm: &Communicator, seed: u64) -> SecureComm {
    let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
        .into_iter()
        .nth(comm.rank())
        .unwrap();
    let homac = Homac::generate(seed ^ 0x5a5a, Backend::best_available());
    SecureComm::new(comm.clone(), keys).with_homac(homac)
}

// ---- the composition law (satellite: RS ∘ AG ≡ fused ring) --------------

/// Run the fused ring allreduce on one communicator and the explicit
/// reduce-scatter → allgather composition on a second communicator with
/// *identical* keys, and require the two outputs to be bit-identical.
/// `bits` canonicalizes an element for exact comparison (`to_bits` for
/// floats, identity widening for integers).
fn assert_composition_law<S, MS, B>(
    world: usize,
    seed: u64,
    mk_scheme: MS,
    inputs: Vec<Vec<S::Input>>,
    verified: bool,
    bits: B,
) where
    S: Scheme + 'static,
    S::Input: std::fmt::Debug + Sync,
    MS: Fn() -> S + Send + Sync,
    B: Fn(&S::Input) -> u64,
{
    let inputs = &inputs;
    let mk_scheme = &mk_scheme;
    let results = Simulator::new(world).run(move |comm| {
        // Same seed ⇒ same key schedule on both communicators: the fused
        // call advances to epoch 1; the composition spends epoch 1 on the
        // reduce-scatter (identical ciphertexts to the fused reduce
        // phase) and epoch 2 on the lossless allgather.
        let mut fused_comm = secure(comm, seed);
        let mut phased_comm = secure(comm, seed);
        let data = inputs[comm.rank()].clone();
        let cfg = if verified {
            EngineCfg::sync().verified().with_algo(ReduceAlgo::Ring)
        } else {
            EngineCfg::sync().with_algo(ReduceAlgo::Ring)
        };
        let fused = fused_comm
            .allreduce_with(&mut mk_scheme(), &data, cfg)
            .expect("fused ring allreduce");
        let shard = phased_comm
            .reduce_scatter_with(&mut mk_scheme(), &data, cfg)
            .expect("reduce-scatter phase");
        let full = phased_comm
            .allgather_with(&mut mk_scheme(), &shard, cfg)
            .expect("allgather phase");
        (fused, shard, full)
    });
    for (rank, (fused, shard, full)) in results.iter().enumerate() {
        assert_eq!(
            fused.len(),
            full.len(),
            "rank {rank}: composition changed the length"
        );
        for (j, (f, c)) in fused.iter().zip(full).enumerate() {
            assert_eq!(
                bits(f),
                bits(c),
                "rank {rank} elem {j}: fused {f:?} != composed {c:?} (world={world}, \
                 verified={verified})"
            );
        }
        // The shard itself must be the rank's exact slice of the fused
        // result — offset composability, not just end-to-end agreement.
        let lo: usize = (0..rank).map(|r| results[r].1.len()).sum();
        for (j, (s, f)) in shard.iter().zip(&fused[lo..lo + shard.len()]).enumerate() {
            assert_eq!(
                bits(s),
                bits(f),
                "rank {rank} shard elem {j} disagrees with fused slice"
            );
        }
    }
}

#[test]
fn ring_allreduce_is_reduce_scatter_then_allgather_int() {
    for (world, len) in [(4, 23), (4, 3), (3, 10), (2, 1), (1, 7)] {
        let inputs: Vec<Vec<u32>> = (0..world)
            .map(|r| {
                (0..len)
                    .map(|j| (j as u32).wrapping_mul(0x9E37_79B9).wrapping_add(r as u32))
                    .collect()
            })
            .collect();
        for verified in [false, true] {
            assert_composition_law(
                world,
                0xC0DE + len as u64,
                IntSumScheme::<u32>::default,
                inputs.clone(),
                verified,
                |x: &u32| u64::from(*x),
            );
        }
    }
}

#[test]
fn ring_allreduce_is_reduce_scatter_then_allgather_xor() {
    let world = 4;
    let inputs: Vec<Vec<u64>> = (0..world)
        .map(|r| {
            (0..29)
                .map(|j| (j as u64).wrapping_mul(0xDEAD_BEEF_1234_5677) ^ (r as u64) << 47)
                .collect()
        })
        .collect();
    assert_composition_law(
        world,
        0xB17,
        IntXorScheme::<u64>::default,
        inputs,
        true,
        |x: &u64| *x,
    );
}

#[test]
fn ring_allreduce_is_reduce_scatter_then_allgather_floats() {
    // Bit-for-bit even for the lossy float schemes: the composition's
    // reduce phase produces the same bits as the fused reduce phase at
    // the same epoch, and the allgather transports exact bit patterns.
    let world = 4;
    let sums: Vec<Vec<f64>> = (0..world)
        .map(|r| {
            (0..21)
                .map(|j| ((r * 21 + j) as f64 * 0.17).cos() * 3.0 + 4.0)
                .collect()
        })
        .collect();
    for verified in [false, true] {
        assert_composition_law(
            world,
            0xF10,
            || FloatSumScheme::new(HfpFormat::fp32(2, 2)),
            sums.clone(),
            verified,
            |x: &f64| x.to_bits(),
        );
    }
    let prods: Vec<Vec<f64>> = (0..world)
        .map(|r| {
            (0..9)
                .map(|j| 0.6 + ((r * 9 + j) as f64 * 0.41).cos().abs())
                .collect()
        })
        .collect();
    assert_composition_law(
        world,
        0xF11,
        || FloatProdScheme::new(HfpFormat::fp64(0, 0)),
        prods,
        false,
        |x: &f64| x.to_bits(),
    );
}

mod random_compositions {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Random (world, length, seed, verified): the composition law
        /// must hold at every shape, including len < world, len = 0, and
        /// every non-divisible remainder.
        #[test]
        fn composition_law_holds_for_random_shapes(
            world in 1usize..5,
            len in 0usize..40,
            seed in any::<u64>(),
            verified in any::<bool>(),
        ) {
            let inputs: Vec<Vec<u32>> = (0..world)
                .map(|r| {
                    (0..len)
                        .map(|j| (j as u32).wrapping_mul(seed as u32 | 1).wrapping_add(r as u32))
                        .collect()
                })
                .collect();
            assert_composition_law(
                world,
                seed,
                IntSumScheme::<u32>::default,
                inputs,
                verified,
                |x: &u32| u64::from(*x),
            );
        }
    }
}

// ---- chunked phases still agree with the plaintext reference -------------

#[test]
fn chunked_phases_match_references() {
    const WORLD: usize = 4;
    const LEN: usize = 37; // not divisible by world or by the block sizes
    let results = Simulator::new(WORLD).run(|comm| {
        let mut sc = secure(comm, 0xCAFE);
        let r = comm.rank();
        let data: Vec<u32> = (0..LEN as u32).map(|j| j * 100 + r as u32).collect();
        let mut out = Vec::new();
        for cfg in [
            EngineCfg::blocked(5),
            EngineCfg::pipelined(5),
            EngineCfg::blocked(5).verified(),
            EngineCfg::pipelined(5).verified(),
        ] {
            let mut s = IntSumScheme::<u32>::default();
            // Blocked/pipelined reduce-scatter appends one share per
            // block; re-derive the expected layout from the block split.
            let shares = sc.reduce_scatter_with(&mut s, &data, cfg).unwrap();
            let mut expect = Vec::new();
            let mut offset = 0;
            while offset < LEN {
                let end = (offset + 5).min(LEN);
                let bounds = hear::mpi::ring_chunk_bounds(end - offset, WORLD);
                let (lo, hi) = bounds[r];
                for j in offset + lo..offset + hi {
                    expect.push((0..WORLD as u32).map(|rr| j as u32 * 100 + rr).sum::<u32>());
                }
                offset = end;
            }
            assert_eq!(shares, expect, "reduce-scatter {cfg:?}");

            // Allgather layout is rank-contiguous in every chunk mode.
            let mine: Vec<u32> = (0..(r as u32 + 3)).map(|j| r as u32 * 1000 + j).collect();
            let gathered = sc.allgather_with(&mut s, &mine, cfg).unwrap();
            let expect: Vec<u32> = (0..WORLD as u32)
                .flat_map(|rr| (0..(rr + 3)).map(move |j| rr * 1000 + j))
                .collect();
            assert_eq!(gathered, expect, "allgather {cfg:?}");

            // Alltoall transposes chunk (me→dst) into slot src on dst.
            let chunks: Vec<u32> = (0..WORLD as u32)
                .flat_map(|dst| (0..7).map(move |j| r as u32 * 10_000 + dst * 100 + j))
                .collect();
            let transposed = sc.alltoall_with(&mut s, &chunks, cfg).unwrap();
            let expect: Vec<u32> = (0..WORLD as u32)
                .flat_map(|src| (0..7).map(move |j| src * 10_000 + r as u32 * 100 + j))
                .collect();
            assert_eq!(transposed, expect, "alltoall {cfg:?}");
            out.push(transposed.len());
        }
        out
    });
    assert!(results.iter().all(|lens| lens.iter().all(|l| *l == 28)));
}

// ---- the same stack over real sockets ------------------------------------

fn tcp_sim(world: usize) -> Simulator {
    Simulator::with_config(
        world,
        SimConfig::default().with_transport(TransportKind::Tcp),
    )
}

/// All three engine collectives, verified and unverified, over TCP: pins
/// that the `Vec<u64>` cell payloads, the `Vec<Tagged<u64>>` verified
/// cells, and the reduce-scatter packet payloads all have registered
/// socket codecs.
#[test]
fn tcp_mesh_runs_the_factored_collective_set() {
    const WORLD: usize = 3;
    let results = tcp_sim(WORLD).run(|comm| {
        assert_eq!(comm.transport_name(), "tcp");
        let mut sc = secure(comm, 0x7C9);
        let r = comm.rank();
        let mut s = IntSumScheme::<u32>::default();
        let mut out = Vec::new();
        for (cfg, block) in [
            (EngineCfg::sync(), 10),
            (EngineCfg::sync().verified(), 10),
            (EngineCfg::blocked(4).verified(), 4),
        ] {
            let data: Vec<u32> = (0..10u32).map(|j| j + r as u32).collect();
            let shard = sc.reduce_scatter_with(&mut s, &data, cfg).unwrap();
            let gathered = sc.allgather_with(&mut s, &shard, cfg).unwrap();
            // Blocked reduce-scatter appends one share per block, so the
            // gathered (rank-contiguous) layout walks ranks then blocks.
            let sum_at = |j: u32| (0..WORLD as u32).map(|rr| j + rr).sum::<u32>();
            let mut expect = Vec::new();
            for rr in 0..WORLD {
                let mut offset = 0usize;
                while offset < 10 {
                    let end = (offset + block).min(10);
                    let (lo, hi) = hear::mpi::ring_chunk_bounds(end - offset, WORLD)[rr];
                    expect.extend((offset + lo..offset + hi).map(|j| sum_at(j as u32)));
                    offset = end;
                }
            }
            assert_eq!(gathered, expect, "RS∘AG over tcp {cfg:?}");

            let chunks: Vec<u32> = (0..WORLD as u32)
                .flat_map(|dst| (0..2).map(move |j| r as u32 * 100 + dst * 10 + j))
                .collect();
            let transposed = sc.alltoall_with(&mut s, &chunks, cfg).unwrap();
            let expect: Vec<u32> = (0..WORLD as u32)
                .flat_map(|src| (0..2).map(move |j| src * 100 + r as u32 * 10 + j))
                .collect();
            assert_eq!(transposed, expect, "alltoall over tcp {cfg:?}");
            out.push(gathered.len());
        }
        out
    });
    assert!(results.iter().all(|lens| lens.iter().all(|l| *l == 10)));
}

/// Float cells over TCP are bit-exact: `f64::to_bits` in, the same bits
/// out, NaN payloads and negative zero included.
#[test]
fn tcp_allgather_float_cells_are_bit_exact() {
    const WORLD: usize = 2;
    let results = tcp_sim(WORLD).run(|comm| {
        let mut sc = secure(comm, 0x7CA);
        let specials = [
            -0.0f64,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::from_bits(0x7FF8_0000_0000_1234), // NaN with payload
            1.5e-300,
            comm.rank() as f64,
        ];
        let mut s = FloatSumScheme::new(HfpFormat::fp64(2, 2));
        sc.allgather_with(&mut s, &specials, EngineCfg::sync().verified())
            .unwrap()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<u64>>()
    });
    for got in &results {
        let expect: Vec<u64> = (0..WORLD)
            .flat_map(|r| {
                [
                    (-0.0f64).to_bits(),
                    f64::INFINITY.to_bits(),
                    f64::NEG_INFINITY.to_bits(),
                    0x7FF8_0000_0000_1234,
                    1.5e-300f64.to_bits(),
                    (r as f64).to_bits(),
                ]
            })
            .collect();
        assert_eq!(*got, expect);
    }
}
