//! The socket transport, end to end: the same engine stack that runs on
//! the in-memory fabric, pushed over real TCP connections.
//!
//! Three layers of coverage:
//!
//! 1. **Loopback mesh** (one process, one socket pair per endpoint pair):
//!    verified allreduce for an integer and a float scheme, selected with
//!    a single `SimConfig::with_transport` call — the one-constructor
//!    switch the transport abstraction promises.
//! 2. **Typed failure over sockets**: a type-confused receive must come
//!    back as [`CommError::TypeMismatch`], never a panic, even though the
//!    payload crossed a codec boundary on the way.
//! 3. **Real multi-process world**: the test binary re-spawns itself
//!    through [`hear::mpi::Launcher`] (rank-per-process, ephemeral-port
//!    rendezvous) and runs a verified allreduce across OS processes.

use hear::core::{Backend, CommKeys, FloatSumExpScheme, HfpFormat, Homac, IntSumScheme};
use hear::layer::{EngineCfg, ReduceAlgo, SecureComm};
use hear::mpi::{launch, CommError, Launcher, SimConfig, Simulator, TransportKind};
use std::time::Duration;

const WORLD: usize = 4;
const LEN: usize = 48;

fn tcp_sim(world: usize) -> Simulator {
    Simulator::with_config(
        world,
        SimConfig::default().with_transport(TransportKind::Tcp),
    )
}

/// Verified integer + float allreduce over the loopback socket mesh:
/// the full matrix-suite stack, with only the transport constructor
/// changed.
#[test]
fn tcp_mesh_runs_verified_allreduce() {
    let inputs: Vec<Vec<u32>> = (0..WORLD)
        .map(|r| (0..LEN).map(|j| (r * LEN + j) as u32).collect())
        .collect();
    let expected: Vec<u32> = (0..LEN)
        .map(|j| inputs.iter().map(|row| row[j]).sum())
        .collect();
    let inputs = &inputs;
    let results = tcp_sim(WORLD).run(|comm| {
        assert_eq!(comm.transport_name(), "tcp");
        let keys = CommKeys::generate(WORLD, 0x50C7, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(0x50C7 ^ 0x5a5a, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let mut s = IntSumScheme::<u32>::default();
        let ecfg = EngineCfg::blocked(16)
            .verified()
            .with_algo(ReduceAlgo::Ring);
        sc.allreduce_with(&mut s, &inputs[comm.rank()], ecfg)
            .expect("verified ring allreduce over TCP")
    });
    for (rank, got) in results.iter().enumerate() {
        assert_eq!(got, &expected, "rank {rank} aggregate over sockets");
    }
}

/// The float scheme's `Hfp` ciphertexts (and their verified packets) are
/// codec-registered by `SecureComm::new`; this pins that a pipelined
/// verified float epoch survives the encode→socket→decode round trip.
#[test]
fn tcp_mesh_runs_pipelined_float_allreduce() {
    let inputs: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..LEN)
                .map(|j| ((r * LEN + j) as f64 * 0.37).cos() * 0.3)
                .collect()
        })
        .collect();
    let expected: Vec<f64> = (0..LEN)
        .map(|j| inputs.iter().map(|row| row[j]).sum())
        .collect();
    let inputs = &inputs;
    let results = tcp_sim(WORLD).run(|comm| {
        let keys = CommKeys::generate(WORLD, 0xF10A, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(0xF10A ^ 0x5a5a, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let mut s = FloatSumExpScheme::new(HfpFormat::fp64(0, 0));
        let ecfg = EngineCfg::pipelined(16)
            .verified()
            .with_algo(ReduceAlgo::RecursiveDoubling);
        sc.allreduce_with(&mut s, &inputs[comm.rank()], ecfg)
            .expect("verified pipelined float allreduce over TCP")
    });
    for (rank, got) in results.iter().enumerate() {
        for (j, (g, e)) in got.iter().zip(&expected).enumerate() {
            assert!(
                (g - e).abs() / e.abs().max(1.0) < 1e-3,
                "rank {rank} elem {j}: {g} vs {e}"
            );
        }
    }
}

/// A receive with the wrong element type across the socket boundary is a
/// typed `TypeMismatch`, not a panic: the codec decodes the sender's real
/// type and the downcast rejects it, exactly as on the in-memory fabric.
#[test]
fn tcp_type_confusion_is_a_typed_error() {
    let results = tcp_sim(2).run(|comm| {
        if comm.rank() == 0 {
            comm.send(1, 7, vec![1u32, 2, 3]);
            comm.barrier();
            Ok(vec![])
        } else {
            let r = comm.recv_timeout::<u64>(0, 7, Duration::from_secs(10));
            comm.barrier();
            r
        }
    });
    match &results[1] {
        Err(CommError::TypeMismatch {
            source,
            tag,
            expected,
        }) => {
            assert_eq!(*source, 0);
            assert_eq!(*tag, 7);
            assert!(
                expected.contains("u64"),
                "expected type name, got {expected}"
            );
        }
        other => panic!("wanted TypeMismatch, got {other:?}"),
    }
}

/// Rank body for the multi-process test below: joins the world through
/// the environment the launcher set, then runs one verified allreduce
/// across OS process boundaries.
fn multi_process_child(rank: usize) {
    let world = launch::child_world().expect("HEAR_WORLD set by launcher");
    let comm = launch::child_comm()
        .expect("launcher env present")
        .expect("rendezvous and mesh establishment");
    assert_eq!(comm.rank(), rank);
    assert_eq!(comm.world(), world);
    assert_eq!(comm.transport_name(), "tcp");

    // Every process derives the same seeded key set and takes its row.
    let keys = CommKeys::generate(world, 0xBEEF, Backend::best_available())
        .into_iter()
        .nth(rank)
        .unwrap();
    let homac = Homac::generate(0xBEEF ^ 0x5a5a, Backend::best_available());
    let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
    let mut s = IntSumScheme::<u32>::default();
    let input: Vec<u32> = (0..LEN).map(|j| (rank * LEN + j) as u32).collect();
    let expected: Vec<u32> = (0..LEN)
        .map(|j| (0..world).map(|r| (r * LEN + j) as u32).sum())
        .collect();
    let got = sc
        .allreduce_with(
            &mut s,
            &input,
            EngineCfg::blocked(16)
                .verified()
                .with_algo(ReduceAlgo::Ring),
        )
        .expect("verified allreduce across processes");
    assert_eq!(got, expected, "rank {rank} cross-process aggregate");
    // Synchronize before teardown so no rank drops its sockets while a
    // peer still needs them.
    comm.barrier();
}

/// Spawn a 3-process world from this very test binary (each child re-runs
/// exactly this test, detects `HEAR_RANK`, and takes the rank body). The
/// launcher's watchdog bounds the whole thing, so a hung rendezvous fails
/// the test instead of wedging CI.
#[test]
fn tcp_multi_process_verified_allreduce() {
    if let Some(rank) = launch::child_rank() {
        return multi_process_child(rank);
    }
    let exe = std::env::current_exe().expect("test binary path");
    let outcome = Launcher::new(3)
        .watchdog(Duration::from_secs(120))
        .program(exe)
        .args([
            "tcp_multi_process_verified_allreduce",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .spawn()
        .expect("spawn rank processes")
        .wait();
    assert!(
        !outcome.watchdog_fired,
        "multi-process world hung past the watchdog"
    );
    assert!(outcome.success(), "rank exit codes: {:?}", outcome.codes);
}

/// The extension collectives (broadcast, gather, scatter, rooted reduce,
/// alltoall) over real sockets: pins that every payload shape they put on
/// the wire — `Vec<u32>` ciphertexts, `u64` length headers, and the
/// engine-routed alltoall's `Vec<u64>` cells — has a registered socket
/// codec, so `HEAR_TRANSPORT=tcp` covers the whole collective surface,
/// not just allreduce.
#[test]
fn tcp_mesh_runs_extension_collectives() {
    const W: usize = 3;
    let results = tcp_sim(W).run(|comm| {
        assert_eq!(comm.transport_name(), "tcp");
        let keys = CommKeys::generate(W, 0xE27, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let r = comm.rank() as u32;

        let config = sc.bcast_encrypted(0, if r == 0 { vec![7, 13] } else { vec![] });
        let partial = sc.reduce_sum_u32(2, &[config[0] * (r + 1), r]);
        let diag = sc.gather_encrypted(0, vec![r, r * 10]);
        let shard = sc.scatter_encrypted(
            1,
            if r == 1 {
                (0..W as u32)
                    .map(|dst| vec![dst * 100, dst * 100 + 1])
                    .collect()
            } else {
                Vec::new()
            },
        );
        let transposed =
            sc.alltoall_encrypted((0..W as u32).map(|dst| vec![r * 10 + dst]).collect());
        (config, partial, diag, shard, transposed)
    });
    for (rank, (config, partial, diag, shard, transposed)) in results.iter().enumerate() {
        assert_eq!(*config, vec![7, 13], "bcast over tcp, rank {rank}");
        if rank == 2 {
            assert_eq!(
                partial.as_ref().unwrap(),
                &vec![7 * (1 + 2 + 3), 3],
                "rooted reduce over tcp"
            );
        } else {
            assert!(partial.is_none(), "non-root rank {rank} got a reduction");
        }
        if rank == 0 {
            assert_eq!(
                *diag,
                vec![vec![0, 0], vec![1, 10], vec![2, 20]],
                "gather over tcp"
            );
        }
        let r = rank as u32;
        assert_eq!(
            *shard,
            vec![r * 100, r * 100 + 1],
            "scatter over tcp, rank {rank}"
        );
        let expect: Vec<Vec<u32>> = (0..W as u32).map(|src| vec![src * 10 + r]).collect();
        assert_eq!(*transposed, expect, "alltoall over tcp, rank {rank}");
    }
}
