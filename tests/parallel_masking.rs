//! Satellite pin for the multi-threaded mask kernels: for every one of the
//! seven Table 2 schemes, `mask_slice`/`unmask_slice` under an explicit
//! 2- or 4-thread [`WorkerPool`] must be **bit-for-bit identical** to the
//! 1-thread (serial-degenerate) pool — wires, aggregate, and decoded
//! outputs alike. HEAR pads are pure in `(epoch, offset)`, so cutting a
//! buffer at PRF-block boundaries and masking shards on different cores
//! must not be observable in the ciphertext at all.
//!
//! The pools are pinned with [`hear::prf::with_pool`] rather than
//! `HEAR_THREADS` (the global pool reads the env only once per process);
//! the 1-thread pool *is* the `HEAR_THREADS=1` degeneracy — `WorkerPool`
//! sizes are indistinguishable from the env knob past construction, which
//! `hear_prf`'s own env test pins separately.

use hear::core::{
    Backend, CommKeys, FixedCodec, FixedSumScheme, FloatProdScheme, FloatSumExpScheme,
    FloatSumScheme, HfpFormat, Homac, IntProdScheme, IntSumScheme, IntXorScheme, Scheme,
};
use hear::prf::{with_pool, WorkerPool, PAR_MIN_BYTES};

const SEED: u64 = 0x009A_5CED;
/// Odd element count whose smallest wire encoding (u32) still clears
/// [`PAR_MIN_BYTES`], so the fused schemes really take the sharded path
/// on the multi-thread pools; the odd tail exercises partial blocks.
const LEN: usize = PAR_MIN_BYTES / 4 + 3;
/// Odd stream offset so the leading partial block is non-empty too.
const FIRST: u64 = 3;

/// Both ranks' wires plus the unmasked aggregate from one pool size.
type PinOutcome<S> = (
    Vec<<S as Scheme>::Wire>,
    Vec<<S as Scheme>::Wire>,
    Vec<<S as Scheme>::Input>,
);

/// Mask both ranks' inputs, combine the wires with the scheme's network
/// op, unmask the aggregate with rank 0's keys — once per pool size — and
/// demand every intermediate is identical across pool sizes.
fn pin_scheme<S, MS>(mk: MS, inputs: [Vec<S::Input>; 2])
where
    S: Scheme,
    S::Input: PartialEq + std::fmt::Debug,
    MS: Fn() -> S,
{
    let keys = CommKeys::generate(2, SEED, Backend::best_available());
    let mut reference: Option<PinOutcome<S>> = None;
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::new(threads);
        let (w0, w1, out) = with_pool(&pool, || {
            let mut w0 = Vec::new();
            mk().mask_slice(&keys[0], FIRST, &inputs[0], &mut w0)
                .unwrap_or_else(|e| panic!("{} mask rank 0: {e:?}", S::NAME));
            let mut w1 = Vec::new();
            mk().mask_slice(&keys[1], FIRST, &inputs[1], &mut w1)
                .unwrap_or_else(|e| panic!("{} mask rank 1: {e:?}", S::NAME));
            let agg: Vec<S::Wire> = w0.iter().zip(&w1).map(|(a, b)| S::op(a, b)).collect();
            let mut out = Vec::new();
            mk().unmask_slice(&keys[0], FIRST, &agg, &mut out);
            (w0, w1, out)
        });
        assert_eq!(out.len(), inputs[0].len(), "{} threads={threads}", S::NAME);
        match &reference {
            None => reference = Some((w0, w1, out)),
            Some((rw0, rw1, rout)) => {
                assert!(
                    &w0 == rw0,
                    "{}: rank-0 wires diverge from serial at {threads} threads",
                    S::NAME
                );
                assert!(
                    &w1 == rw1,
                    "{}: rank-1 wires diverge from serial at {threads} threads",
                    S::NAME
                );
                assert!(
                    &out == rout,
                    "{}: unmasked output diverges from serial at {threads} threads",
                    S::NAME
                );
            }
        }
    }
}

#[test]
fn int_sum_parallel_masking_is_bit_identical() {
    let inputs: [Vec<u32>; 2] = std::array::from_fn(|r| {
        (0..LEN as u32)
            .map(|j| j.wrapping_mul(0x9E37_79B9).wrapping_add(r as u32))
            .collect()
    });
    pin_scheme(IntSumScheme::<u32>::default, inputs);
}

#[test]
fn int_prod_parallel_masking_is_bit_identical() {
    let inputs: [Vec<u64>; 2] =
        std::array::from_fn(|r| (0..LEN as u64).map(|j| 1 + (j + r as u64) % 9).collect());
    pin_scheme(IntProdScheme::<u64>::default, inputs);
}

#[test]
fn int_xor_parallel_masking_is_bit_identical() {
    let inputs: [Vec<u32>; 2] = std::array::from_fn(|r| {
        (0..LEN as u32)
            .map(|j| j.wrapping_mul(0xDEAD_BEEF) ^ ((r as u32) << 13))
            .collect()
    });
    pin_scheme(IntXorScheme::<u32>::default, inputs);
}

#[test]
fn fixed_sum_parallel_masking_is_bit_identical() {
    let inputs: [Vec<f64>; 2] = std::array::from_fn(|r| {
        (0..LEN)
            .map(|j| (((r * LEN + j) % 8191) as f64 * 0.37).sin() * 4.0)
            .collect()
    });
    pin_scheme(|| FixedSumScheme::new(FixedCodec::new(16)), inputs);
}

#[test]
fn float_sum_v1_parallel_masking_is_bit_identical() {
    let inputs: [Vec<f64>; 2] = std::array::from_fn(|r| {
        (0..LEN)
            .map(|j| (((r * LEN + j) % 8191) as f64 * 0.17).cos() * 3.0 + 4.0)
            .collect()
    });
    pin_scheme(|| FloatSumScheme::new(HfpFormat::fp32(2, 2)), inputs);
}

#[test]
fn float_sum_v2_parallel_masking_is_bit_identical() {
    let inputs: [Vec<f64>; 2] = std::array::from_fn(|r| {
        (0..LEN)
            .map(|j| (((r * LEN + j) % 8191) as f64 * 0.29).sin() * 0.4)
            .collect()
    });
    pin_scheme(|| FloatSumExpScheme::new(HfpFormat::fp64(0, 0)), inputs);
}

#[test]
fn float_prod_parallel_masking_is_bit_identical() {
    let inputs: [Vec<f64>; 2] = std::array::from_fn(|r| {
        (0..LEN)
            .map(|j| 0.6 + (((r * LEN + j) % 8191) as f64 * 0.41).cos().abs())
            .collect()
    });
    pin_scheme(|| FloatProdScheme::new(HfpFormat::fp64(0, 0)), inputs);
}

/// The HoMAC digest fan-out has its own parallel threshold
/// (`PAR_MIN_ELEMS` elements, not bytes): tags and the verify verdict at
/// a length past it must be identical across 1/2/4-thread pools, and a
/// single-rank tag must verify against its own cipher on every pool.
#[test]
fn homac_tags_parallel_match_serial() {
    let keys = CommKeys::generate(1, SEED ^ 0x7A65, Backend::best_available());
    let homac = Homac::generate(SEED ^ 0x1234, Backend::best_available());
    let cipher: Vec<u32> = (0..70_001u32)
        .map(|j| j.wrapping_mul(0x85EB_CA6B))
        .collect();
    let mut reference: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 4] {
        let pool = WorkerPool::new(threads);
        let (tags, ok) = with_pool(&pool, || {
            let mut tags = Vec::new();
            homac.tag_into(&keys[0], FIRST, &cipher, &mut tags);
            let ok = homac.verify(&keys[0], FIRST, &cipher, &tags);
            (tags, ok)
        });
        assert!(ok, "single-rank HoMAC verify failed at {threads} threads");
        match &reference {
            None => reference = Some(tags),
            Some(r) => assert!(
                &tags == r,
                "HoMAC tags diverge from serial at {threads} threads"
            ),
        }
    }
}
