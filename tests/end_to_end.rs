//! End-to-end integration: every scheme, through the full stack
//! (keys → encrypt → simulated network/INC switch → decrypt), checked
//! against plaintext reference reductions.

use hear::core::{Backend, CommKeys, FixedCodec, HfpFormat};
use hear::layer::{ReduceAlgo, SecureComm};
use hear::mpi::{Communicator, SimConfig, Simulator};

fn secure_for(comm: &Communicator, seed: u64) -> SecureComm {
    let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
        .into_iter()
        .nth(comm.rank())
        .unwrap();
    SecureComm::new(comm.clone(), keys)
}

#[test]
fn int_sum_matches_plaintext_across_world_sizes_and_algorithms() {
    for world in [1usize, 2, 3, 4, 7, 8] {
        let cfg = SimConfig::default().with_switch(4);
        let results = Simulator::with_config(world, cfg).run(move |comm| {
            let data: Vec<i32> = (0..23)
                .map(|j| (comm.rank() as i32 + 1) * 1_000_003 % 71 - 35 + j)
                .collect();
            let reference = comm.allreduce(&data, |a, b| a.wrapping_add(*b));
            let rd = secure_for(comm, 1).allreduce_sum_i32(&data);
            let ring = secure_for(comm, 1)
                .with_algo(ReduceAlgo::Ring)
                .allreduce_sum_i32(&data);
            let inc = secure_for(comm, 1)
                .with_algo(ReduceAlgo::Switch)
                .allreduce_sum_i32(&data);
            (reference, rd, ring, inc)
        });
        for (reference, rd, ring, inc) in &results {
            assert_eq!(rd, reference, "world={world} (recursive doubling)");
            assert_eq!(ring, reference, "world={world} (ring)");
            assert_eq!(inc, reference, "world={world} (switch)");
        }
    }
}

#[test]
fn prod_and_xor_bit_exact() {
    let results = Simulator::new(5).run(|comm| {
        let mut sc = secure_for(comm, 2);
        let p_in: Vec<u64> = vec![comm.rank() as u64 + 2, 3];
        let x_in: Vec<u32> = vec![0xA5A5_0000 | comm.rank() as u32];
        let prod = sc.allreduce_prod_u64(&p_in);
        let xor = sc.allreduce_xor_u32(&x_in);
        let ref_prod = comm.allreduce(&p_in, |a, b| a.wrapping_mul(*b));
        let ref_xor = comm.allreduce(&x_in, |a, b| a ^ b);
        (prod, xor, ref_prod, ref_xor)
    });
    for (prod, xor, ref_prod, ref_xor) in &results {
        assert_eq!(prod, ref_prod);
        assert_eq!(xor, ref_xor);
    }
}

#[test]
fn float_schemes_track_f64_reference() {
    let results = Simulator::new(4).run(|comm| {
        let mut sc = secure_for(comm, 3);
        let data: Vec<f64> = (0..32)
            .map(|j| ((comm.rank() * 32 + j) as f64 * 0.7).cos() * 5.0 + 6.0)
            .collect();
        let sum = sc
            .allreduce_float_sum(HfpFormat::fp32(2, 2), &data)
            .unwrap();
        let prod_in: Vec<f64> = data.iter().map(|v| v / 8.0 + 0.5).collect();
        let prod = sc
            .allreduce_float_prod(HfpFormat::fp32(0, 0), &prod_in)
            .unwrap();
        let ref_sum = comm.allreduce(&data, |a, b| a + b);
        let ref_prod = comm.allreduce(&prod_in, |a, b| a * b);
        (sum, prod, ref_sum, ref_prod)
    });
    for (sum, prod, ref_sum, ref_prod) in &results {
        for j in 0..32 {
            let rel = (sum[j] - ref_sum[j]).abs() / ref_sum[j].abs();
            assert!(rel < 1e-5, "sum j={j} rel={rel}");
            let rel = (prod[j] - ref_prod[j]).abs() / ref_prod[j].abs();
            assert!(rel < 1e-4, "prod j={j} rel={rel}");
        }
    }
}

#[test]
fn fixed_point_through_the_switch() {
    let cfg = SimConfig::default().with_switch(2);
    let results = Simulator::with_config(6, cfg).run(|comm| {
        let mut sc = secure_for(comm, 4).with_algo(ReduceAlgo::Switch);
        let codec = FixedCodec::new(24);
        let data = vec![comm.rank() as f64 * 0.125 - 0.25, 1.0 / 3.0];
        sc.allreduce_fixed_sum(codec, &data)
    });
    let expect0: f64 = (0..6).map(|r| r as f64 * 0.125 - 0.25).sum();
    for got in &results {
        assert!((got[0] - expect0).abs() < 1e-5);
        assert!((got[1] - 2.0).abs() < 1e-5);
    }
}

#[test]
fn pipelined_large_message_equals_reference() {
    let results = Simulator::new(3).run(|comm| {
        let data: Vec<u32> = (0..10_000).map(|j| j * 7 + comm.rank() as u32).collect();
        let mut sc = secure_for(comm, 5);
        let piped = sc.allreduce_sum_u32_pipelined(&data, 1024);
        let reference = comm.allreduce(&data, |a, b| a.wrapping_add(*b));
        (piped, reference)
    });
    for (piped, reference) in &results {
        assert_eq!(piped, reference);
    }
}

#[test]
fn repeated_calls_on_one_communicator_stay_consistent() {
    // 20 consecutive encrypted collectives — key progression must stay in
    // lockstep across ranks and across schemes.
    let results = Simulator::new(4).run(|comm| {
        let mut sc = secure_for(comm, 6);
        let mut acc = Vec::new();
        for i in 0..20u32 {
            match i % 3 {
                0 => acc.push(sc.allreduce_sum_u32(&[i])[0] as u64),
                1 => acc.push(sc.allreduce_prod_u64(&[(i % 5 + 1) as u64])[0]),
                _ => acc.push(sc.allreduce_xor_u32(&[i * 3])[0] as u64),
            }
        }
        acc
    });
    for r in &results[1..] {
        assert_eq!(r, &results[0], "all ranks must agree");
    }
    // Spot-check a few values.
    assert_eq!(results[0][0], 0); // 0 summed 4×
    assert_eq!(results[0][1], 2u64.pow(4)); // (1 % 5 + 1)^4
    assert_eq!(results[0][2], 0); // 6 XORed an even number of times
}
