//! Paper Table 3, executed: the worked 4-bit-integer and half-precision
//! examples, step by step, asserting the exact values the paper prints.
//!
//! Table 3 lists, per scheme: the per-rank values, the expected reduction,
//! the per-rank noise streams, the per-rank *encrypted* wire values (which
//! include the cancelling neighbour noise for all but the last rank), the
//! network-reduced ciphertext, the de-noise value, and the decryption.

// The walkthrough spells out identity factors (×1, −0) on purpose: the
// asserted expressions mirror the table rows digit for digit.
#![allow(clippy::identity_op)]

use hear::hfp::format::Hfp;
use hear::hfp::ops;
use hear::hfp::ringexp::ring_from_i64;

/// 4-bit ring helper ("Int, 4 bits, modulo 2^4 = 16").
fn m16(v: u64) -> u64 {
    v & 0xf
}

#[test]
fn table3_int_sum_column() {
    // Values [1, 5] (rank 1) and [3, 8] (rank 2); noise streams [2, 1] and
    // [1, 7]. Rank 1 cancels rank 2's noise: it adds n₁ − n₂.
    let (x1, x2) = ([1u64, 5], [3u64, 8]);
    let (n1, n2) = ([2u64, 1], [1u64, 7]);
    let enc1: Vec<u64> = (0..2)
        .map(|j| m16(x1[j] + n1[j] + 16 - n2[j])) // x + n_own − n_next
        .collect();
    assert_eq!(enc1, vec![2, 15], "rank 1 Encrypted row");
    // Rank 2 is the last rank: plain own noise.
    let enc2: Vec<u64> = (0..2).map(|j| m16(x2[j] + n2[j])).collect();
    assert_eq!(enc2, vec![4, 15], "rank 2 Encrypted row");
    // The network adds ciphertexts on the ring.
    let reduced: Vec<u64> = (0..2).map(|j| m16(enc1[j] + enc2[j])).collect();
    assert_eq!(reduced, vec![6, 14], "Reduced row");
    // De-noise: rank 1's stream [2, 1] (the telescoped residual).
    let decrypted: Vec<u64> = (0..2).map(|j| m16(reduced[j] + 16 - n1[j])).collect();
    assert_eq!(decrypted, vec![4, 13], "Decrypted = Expected row");
    assert_eq!(decrypted, vec![m16(1 + 3), m16(5 + 8)]);
}

#[test]
fn table3_int_prod_column() {
    // Values [2, 4] and [7, 2]; noise powers of the subgroup generator 3:
    // rank 1 exponents [1, 2] → [3, 9], rank 2 exponents [1, 0] → [3, 1].
    let (x1, x2) = ([2u64, 4], [7u64, 2]);
    // Rank 1 cancels: multiplies by 3^{e_own − e_next} = [3^0, 3^2] = [1, 9].
    let enc1 = [m16(x1[0] * 1), m16(x1[1] * 9)];
    assert_eq!(enc1, [2, 4], "rank 1 Encrypted row (4·9 = 36 ≡ 4 mod 16)");
    // Rank 2 (last): multiplies by its own noise [3, 1].
    let enc2 = [m16(x2[0] * 3), m16(x2[1] * 1)];
    assert_eq!(enc2, [5, 2], "rank 2 Encrypted row (21 ≡ 5 mod 16)");
    // Network multiplies ciphertexts.
    let reduced = [m16(enc1[0] * enc2[0]), m16(enc1[1] * enc2[1])];
    assert_eq!(reduced, [10, 8], "Reduced row");
    // De-noise row: the residual noise telescopes to rank 1's stream
    // [3, 9]; the table prints the inverses [3⁻¹ = 11, 9⁻¹ = 9] mod 16.
    assert_eq!(m16(3 * 11), 1);
    assert_eq!(m16(9 * 9), 1);
    let decrypted = [m16(reduced[0] * 11), m16(reduced[1] * 9)];
    assert_eq!(decrypted, [14, 8], "Decrypted = Expected row");
    assert_eq!(decrypted, [m16(2 * 7), m16(4 * 2)]);
}

#[test]
fn table3_bxor_column() {
    // Values 0011 and 0010; noises 0101 and 1001.
    let (x1, x2) = (0b0011u64, 0b0010u64);
    let (n1, n2) = (0b0101u64, 0b1001u64);
    let enc1 = x1 ^ n1 ^ n2; // rank 1 cancels rank 2's noise
    assert_eq!(enc1, 0b1111, "rank 1 Encrypted row");
    let enc2 = x2 ^ n2;
    assert_eq!(enc2, 0b1011, "rank 2 Encrypted row");
    let reduced = enc1 ^ enc2;
    assert_eq!(reduced, 0b0100, "Reduced row");
    let decrypted = reduced ^ n1;
    assert_eq!(decrypted, 0b0001, "Decrypted = Expected row");
    assert_eq!(decrypted, x1 ^ x2);
}

#[test]
fn table3_float_sum_column_half_precision() {
    // MPI_SUM (§5.3.3), half precision (l_e = 5, l_m = 10), δ = 2:
    // values 1.75×2^7 and 1.25×2^9; shared noise 1.5×2^13;
    // encrypted 1.3125×2^21 and 1.875×2^22; reduced 1.266×2^23;
    // de-noise 1.5×2^13 → decrypted 1.6875×2^9.
    let (ew, mw) = (7u32, 10u32); // ciphertext ring: l_e + δ = 7 bits
    let x1 = Hfp::from_f64(1.75 * 128.0, 5, 10).unwrap();
    let x2 = Hfp::from_f64(1.25 * 512.0, 5, 10).unwrap();
    let noise = Hfp {
        sign: false,
        exp: ring_from_i64(13, ew),
        sig: (1 << mw) | (1 << (mw - 1)), // 1.5
        ew,
        mw,
    };
    let c1 = ops::mul(&x1, &noise, ew, mw);
    let c2 = ops::mul(&x2, &noise, ew, mw);
    assert_eq!(
        c1.to_f64(),
        1.3125 * f64::powi(2.0, 21),
        "rank 1 Encrypted row"
    );
    assert_eq!(
        c2.to_f64(),
        1.875 * f64::powi(2.0, 22),
        "rank 2 Encrypted row"
    );
    let reduced = ops::add(&c1, &c2);
    // 1.3125×2^21 + 1.875×2^22 = 1.265625×2^23 (printed as 1.266×2^23).
    assert_eq!(
        reduced.to_f64(),
        1.265625 * f64::powi(2.0, 23),
        "Reduced row"
    );
    let decrypted = ops::div(&reduced, &noise, ew, mw);
    assert_eq!(
        decrypted.to_f64(),
        1.6875 * f64::powi(2.0, 9),
        "Decrypted row"
    );
}

#[test]
fn table3_float_prod_column_half_precision() {
    // MPI_PROD (§5.3.2), δ = 0 (5-bit exponent ring): values 1.125×2^9 and
    // 1.375×2^1; noise streams 1.75×2^22 (rank 1) and 1.25×2^-13 (rank 2).
    // Rank 1 cancels: (1.75×2^22)/(1.25×2^-13) → encrypted 1.575×2^44;
    // rank 2 applies its own noise → 1.719×2^-12; reduced 1.354×2^33;
    // de-noise 1.75×2^22 → decrypted 1.547×2^10. All exponents live on the
    // 5-bit ring (44 ≡ 12, 33 ≡ 1 mod 32) — the unwrapped values are how
    // the paper prints them.
    let (ew, mw) = (5u32, 10u32);
    let x1 = Hfp::from_f64(1.125 * 512.0, ew, mw).unwrap();
    let x2 = Hfp::from_f64(1.375 * 2.0, ew, mw).unwrap();
    let n1 = Hfp {
        sign: false,
        exp: ring_from_i64(22, ew),
        sig: (1 << mw) | (0b11 << (mw - 2)), // 1.75
        ew,
        mw,
    };
    let n2 = Hfp {
        sign: false,
        exp: ring_from_i64(-13, ew),
        sig: (1 << mw) | (1 << (mw - 2)), // 1.25
        ew,
        mw,
    };
    // Rank 1 (cancelling): x ⊗ n₁ ⊘ n₂.
    let c1 = ops::div(&ops::mul(&x1, &n1, ew, mw), &n2, ew, mw);
    // Mantissa: 1.125·1.75/1.25 = 1.575; exponent: 9+22+13 = 44 ≡ 12.
    let sig_val = c1.sig as f64 / f64::powi(2.0, mw as i32);
    assert!((sig_val - 1.575).abs() < 2e-3, "rank 1 mantissa {sig_val}");
    assert_eq!(
        c1.exponent(),
        (44i64 % 32) - 0,
        "exponent 44 on the 5-bit ring"
    );
    // Rank 2 (last): x ⊗ n₂ → 1.375·1.25 = 1.71875, exponent 1−13 = −12.
    let c2 = ops::mul(&x2, &n2, ew, mw);
    let sig_val = c2.sig as f64 / f64::powi(2.0, mw as i32);
    assert!(
        (sig_val - 1.71875).abs() < 1e-3,
        "rank 2 mantissa {sig_val}"
    );
    assert_eq!(c2.exponent(), -12);
    // Network multiplies: mantissa 1.575·1.71875/2 ≈ 1.354, exponent 33 ≡ 1.
    let reduced = ops::mul(&c1, &c2, ew, mw);
    let sig_val = reduced.sig as f64 / f64::powi(2.0, mw as i32);
    assert!((sig_val - 1.354).abs() < 2e-3, "Reduced mantissa {sig_val}");
    assert_eq!(reduced.exponent(), 1, "exponent 33 wraps to 1 on the ring");
    // De-noise: the residual telescopes to rank 1's stream n₁.
    let decrypted = ops::div(&reduced, &n1, ew, mw);
    let sig_val = decrypted.sig as f64 / f64::powi(2.0, mw as i32);
    assert!(
        (sig_val - 1.546875).abs() < 2e-3,
        "Decrypted mantissa {sig_val}"
    );
    assert_eq!(decrypted.exponent(), 10, "Decrypted = 1.547×2^10");
    // Cross-check against the plaintext product.
    let expect = (1.125 * 512.0) * (1.375 * 2.0);
    let rel = (decrypted.to_f64() - expect).abs() / expect;
    assert!(rel < 1e-2, "matches 1584 within HFP rounding, rel={rel}");
}
