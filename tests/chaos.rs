//! The chaos matrix: every fault type × transport algorithm × cipher
//! scheme, with HoMAC verification on, under the deterministic
//! fault-injection fabric. The invariant is the robustness contract from
//! the fault model (DESIGN.md §7): every rank either returns the
//! plaintext-reference aggregate (within the scheme's Table 2 tolerance)
//! or a *typed* `CommError`/`EngineError` before its deadline budget runs
//! out — never a hang, never a panic, never a silently wrong result.
//!
//! Kill scenarios additionally pin the recovery semantics: a dead switch
//! tree degrades to the host ring mid-epoch and still produces the right
//! answer on every rank.

use hear::core::{Backend, CommKeys, FloatSumExpScheme, HfpFormat, Homac, IntSumScheme, Scheme};
use hear::layer::chaos::with_packet_hooks;
use hear::layer::{
    EngineCfg, EngineError, MembershipChange, PeerDeadPolicy, ReduceAlgo, RetryPolicy, SecureComm,
};
use hear::mpi::{FaultPlan, SimConfig, Simulator};
use std::time::Duration;

const WORLD: usize = 4;
/// Single switch node at radix 4: endpoint = WORLD + node 0.
const SWITCH_ENDPOINT: usize = WORLD;
const LEN: usize = 32;
const BLOCK: usize = 16;

#[derive(Clone, Copy, Debug)]
enum FaultKind {
    Drop,
    Delay,
    Duplicate,
    Corrupt,
    RankKill,
    SwitchKill,
}

/// The policy every chaos cell runs under: two attempts per block, short
/// backoff, and a per-attempt deadline so nothing can block forever.
///
/// The deadline budget is derived from the *transport's* measured round
/// trip rather than hardcoded for in-process latency, so the same suite
/// passes unchanged over the in-memory fabric and TCP loopback
/// (`HEAR_TRANSPORT=tcp`): 1000 round trips comfortably covers a chaos
/// cell's worst schedule, floored at the historical 200 ms so the
/// in-memory runs keep their exact pre-transport-abstraction budget.
fn chaos_policy(comm: &hear_mpi::Communicator) -> RetryPolicy {
    let attempt = (comm.transport_rtt() * 1000).max(Duration::from_millis(200));
    RetryPolicy::retries(1)
        .with_backoff(Duration::from_millis(2))
        .with_attempt_timeout(attempt)
}

fn plan_for(kind: FaultKind, seed: u64) -> FaultPlan {
    let plan = FaultPlan::seeded(seed);
    let plan = match kind {
        FaultKind::Drop => plan.drop_one_in(6),
        // Shorter than the attempt timeout: delayed traffic arrives.
        FaultKind::Delay => plan.delay_one_in(3, Duration::from_millis(5)),
        FaultKind::Duplicate => plan.duplicate_one_in(4),
        FaultKind::Corrupt => plan.corrupt_one_in(5),
        // The last rank dies mid-protocol, after its third send.
        FaultKind::RankKill => plan.kill_endpoint_after(WORLD - 1, 3),
        // The switch tree is gone before the first packet.
        FaultKind::SwitchKill => plan.kill_endpoint_after(SWITCH_ENDPOINT, 0),
    };
    // Teach the injector the verified transport's packet payloads.
    with_packet_hooks(plan)
}

/// Run one (fault, algo, scheme) cell at world 4 on a switch-enabled
/// fabric and check the robustness contract on every rank.
fn run_cell<S, MS, CL>(
    mk_scheme: MS,
    inputs: &[Vec<S::Input>],
    expected: &[S::Input],
    close: CL,
    algo: ReduceAlgo,
    kind: FaultKind,
    seed: u64,
) where
    S: Scheme + 'static,
    S::Input: std::fmt::Debug + Send + Sync,
    MS: Fn() -> S + Send + Sync,
    CL: Fn(&S::Input, &S::Input) -> bool,
{
    let cfg = SimConfig::default()
        .with_switch(WORLD)
        .with_faults(plan_for(kind, seed));
    let mk_scheme = &mk_scheme;
    let results = Simulator::with_config(WORLD, cfg).run(|comm| {
        let keys = CommKeys::generate(WORLD, seed, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(seed ^ 0x5a5a, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let mut s = mk_scheme();
        let ecfg = EngineCfg::blocked(BLOCK)
            .verified()
            .with_algo(algo)
            .with_retry(chaos_policy(comm));
        sc.allreduce_with(&mut s, &inputs[comm.rank()], ecfg)
    });
    for (rank, res) in results.iter().enumerate() {
        match res {
            Ok(got) => {
                assert_eq!(
                    got.len(),
                    expected.len(),
                    "{} {kind:?}/{algo:?} rank {rank}: truncated result",
                    S::NAME
                );
                for (j, (g, e)) in got.iter().zip(expected).enumerate() {
                    assert!(
                        close(g, e),
                        "{} {kind:?}/{algo:?} rank {rank} elem {j}: got {g:?}, expected {e:?} \
                         — a fault leaked a wrong aggregate past verification",
                        S::NAME
                    );
                }
            }
            // Typed failure is an accepted outcome — but it must be a
            // transport or verification error, never a float-encode one
            // (the inputs are all encodable).
            Err(e) => assert!(
                !matches!(e, EngineError::Hfp(_)),
                "{} {kind:?}/{algo:?} rank {rank}: wrong error class: {e}",
                S::NAME
            ),
        }
    }
}

/// The robustness contract, applied to the factored reduce-scatter: under
/// injected faults every rank either gets its exact per-block share of the
/// reference aggregate or a typed error — the same correct-or-typed-error
/// invariant the fused allreduce sweep pins, with the same RTT-derived
/// deadline budget.
fn run_rs_cell<S, MS, CL>(
    mk_scheme: MS,
    inputs: &[Vec<S::Input>],
    expected: &[S::Input],
    close: CL,
    kind: FaultKind,
    seed: u64,
) where
    S: Scheme + 'static,
    S::Input: std::fmt::Debug + Clone + Send + Sync,
    MS: Fn() -> S + Send + Sync,
    CL: Fn(&S::Input, &S::Input) -> bool,
{
    let cfg = SimConfig::default()
        .with_switch(WORLD)
        .with_faults(plan_for(kind, seed));
    let mk_scheme = &mk_scheme;
    let results = Simulator::with_config(WORLD, cfg).run(|comm| {
        let keys = CommKeys::generate(WORLD, seed, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(seed ^ 0x5a5a, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let mut s = mk_scheme();
        let ecfg = EngineCfg::blocked(BLOCK)
            .verified()
            .with_retry(chaos_policy(comm));
        sc.reduce_scatter_with(&mut s, &inputs[comm.rank()], ecfg)
    });
    for (rank, res) in results.iter().enumerate() {
        // Blocked reduce-scatter appends this rank's chunk of each block.
        let mut want: Vec<S::Input> = Vec::new();
        let mut offset = 0;
        while offset < LEN {
            let end = (offset + BLOCK).min(LEN);
            let (lo, hi) = hear::mpi::ring_chunk_bounds(end - offset, WORLD)[rank];
            want.extend_from_slice(&expected[offset + lo..offset + hi]);
            offset = end;
        }
        match res {
            Ok(got) => {
                assert_eq!(
                    got.len(),
                    want.len(),
                    "{} {kind:?} rank {rank}: truncated share",
                    S::NAME
                );
                for (j, (g, e)) in got.iter().zip(&want).enumerate() {
                    assert!(
                        close(g, e),
                        "{} {kind:?} rank {rank} share elem {j}: got {g:?}, expected {e:?} \
                         — a fault leaked a wrong share past verification",
                        S::NAME
                    );
                }
            }
            Err(e) => assert!(
                !matches!(e, EngineError::Hfp(_)),
                "{} {kind:?} rank {rank}: wrong error class: {e}",
                S::NAME
            ),
        }
    }
}

#[test]
fn chaos_reduce_scatter_drop_and_kill() {
    let (int_in, int_exp) = int_inputs();
    let (flt_in, flt_exp) = float_inputs();
    for (k, kind) in [FaultKind::Drop, FaultKind::RankKill]
        .into_iter()
        .enumerate()
    {
        let seed = 0x25C0 + k as u64 * 100;
        run_rs_cell(
            IntSumScheme::<u32>::default,
            &int_in,
            &int_exp,
            |g: &u32, e: &u32| g == e,
            kind,
            seed,
        );
        run_rs_cell(
            || FloatSumExpScheme::new(HfpFormat::fp64(0, 0)),
            &flt_in,
            &flt_exp,
            float_close,
            kind,
            seed + 1,
        );
    }
}

fn int_inputs() -> (Vec<Vec<u32>>, Vec<u32>) {
    let inputs: Vec<Vec<u32>> = (0..WORLD)
        .map(|r| {
            (0..LEN)
                .map(|j| (j as u32).wrapping_mul(0x9E37_79B9).wrapping_add(r as u32))
                .collect()
        })
        .collect();
    let expected = (0..LEN)
        .map(|j| {
            inputs
                .iter()
                .fold(0u32, |acc, row| acc.wrapping_add(row[j]))
        })
        .collect();
    (inputs, expected)
}

fn float_inputs() -> (Vec<Vec<f64>>, Vec<f64>) {
    // Small magnitudes: the v2 shared-exponent layout needs δ = 0.
    let inputs: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..LEN)
                .map(|j| ((r * LEN + j) as f64 * 0.29).sin() * 0.4)
                .collect()
        })
        .collect();
    let expected = (0..LEN)
        .map(|j| inputs.iter().map(|row| row[j]).sum())
        .collect();
    (inputs, expected)
}

/// Medium lossiness (Table 2 row of float sum v2), as in the matrix suite.
fn float_close(g: &f64, e: &f64) -> bool {
    (g - e).abs() / e.abs().max(1.0) < 1e-3
}

const ALGOS: [ReduceAlgo; 4] = [
    ReduceAlgo::RecursiveDoubling,
    ReduceAlgo::Ring,
    ReduceAlgo::Switch,
    // Two leaders at world 4: faults land in every hierarchical stage —
    // including the RankKill row, where the dying rank 3 takes out a
    // group member *and* the inter-leader ring's traffic sources, so the
    // cell must degrade to a correct result or fail typed, never hang.
    ReduceAlgo::Hierarchical { group: 2 },
];

fn sweep_kind(kind: FaultKind, kind_idx: u64) {
    let (int_in, int_exp) = int_inputs();
    let (flt_in, flt_exp) = float_inputs();
    for (a, algo) in ALGOS.into_iter().enumerate() {
        let seed = 0xC0A5 + kind_idx * 100 + a as u64 * 10;
        run_cell(
            IntSumScheme::<u32>::default,
            &int_in,
            &int_exp,
            |g: &u32, e: &u32| g == e,
            algo,
            kind,
            seed,
        );
        run_cell(
            || FloatSumExpScheme::new(HfpFormat::fp64(0, 0)),
            &flt_in,
            &flt_exp,
            float_close,
            algo,
            kind,
            seed + 1,
        );
    }
}

#[test]
fn chaos_drop() {
    sweep_kind(FaultKind::Drop, 0);
}

#[test]
fn chaos_delay() {
    sweep_kind(FaultKind::Delay, 1);
}

#[test]
fn chaos_duplicate() {
    sweep_kind(FaultKind::Duplicate, 2);
}

#[test]
fn chaos_corrupt() {
    sweep_kind(FaultKind::Corrupt, 3);
}

#[test]
fn chaos_rank_kill() {
    sweep_kind(FaultKind::RankKill, 4);
}

#[test]
fn chaos_switch_kill() {
    sweep_kind(FaultKind::SwitchKill, 5);
}

// ---- shrink-and-continue: rank death becomes membership shrink --------

/// [`chaos_policy`] with the shrink-and-continue reaction enabled and a
/// roomier deadline floor: unlike the sweep cells (which accept a typed
/// error as a valid outcome), these tests assert a specific Ok result on
/// every survivor, so an attempt timeout caused by scheduler pressure —
/// several multi-threaded simulators run concurrently under `cargo
/// test` — must not masquerade as a membership event.
fn shrink_policy(comm: &hear_mpi::Communicator) -> RetryPolicy {
    let attempt = (comm.transport_rtt() * 1000).max(Duration::from_millis(1000));
    RetryPolicy::retries(1)
        .with_backoff(Duration::from_millis(2))
        .with_attempt_timeout(attempt)
        .on_peer_dead(PeerDeadPolicy::ShrinkAndContinue)
}

/// Reference aggregate over a subset of the ranks' contributions.
fn survivor_sum(inputs: &[Vec<u32>], survivors: &[usize]) -> Vec<u32> {
    (0..LEN)
        .map(|j| {
            survivors
                .iter()
                .fold(0u32, |a, &r| a.wrapping_add(inputs[r][j]))
        })
        .collect()
}

/// Per-rank SecureComm for the shrink scenarios.
fn shrink_sc(comm: &hear_mpi::Communicator, seed: u64) -> SecureComm {
    let keys = CommKeys::generate(WORLD, seed, Backend::best_available())
        .into_iter()
        .nth(comm.rank())
        .unwrap();
    let homac = Homac::generate(seed ^ 0x5a5a, Backend::best_available());
    SecureComm::new(comm.clone(), keys).with_homac(homac)
}

/// Assertions shared by every shrink scenario: the victim's own call
/// fails typed without shrinking, and every survivor reports exactly one
/// membership change to the expected shrunk world.
#[allow(clippy::type_complexity)]
fn check_shrink_reports<T>(
    results: &[(Result<Vec<T>, EngineError>, usize, Vec<MembershipChange>)],
    victim: usize,
) {
    let (res, _, changes) = &results[victim];
    assert!(
        matches!(res, Err(EngineError::Comm(_))),
        "the dead rank's own call must fail typed, got {:?}",
        res.as_ref().map(|v| v.len())
    );
    assert!(changes.is_empty(), "the corpse must not reconfigure");
    for (rank, (res, world, changes)) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        assert!(res.is_ok(), "survivor {rank}: {:?}", res.as_ref().err());
        assert_eq!(*world, WORLD - 1, "survivor {rank} world");
        assert_eq!(
            changes,
            &vec![MembershipChange {
                epoch: 1,
                evicted: vec![victim],
                old_world: WORLD,
                new_world: WORLD - 1,
            }],
            "survivor {rank} membership report"
        );
    }
}

/// A rank SIGKILL-equivalent mid-reduce-scatter (its second ring hop is
/// dropped and the endpoint dies): under `ShrinkAndContinue` the three
/// survivors agree on the shrunk world, rebase keys, and re-run — each
/// ends with its share of the *survivor-set* reference aggregate plus a
/// `MembershipChange` report, and the eviction telemetry is non-zero.
/// This is the deterministic in-memory replay of the socket_smoke drill.
#[test]
fn shrink_and_continue_mid_reduce_scatter() {
    use hear::telemetry::{Metric, Registry};
    let victim = WORLD - 1;
    let (int_in, _) = int_inputs();
    let expected = survivor_sum(&int_in, &[0, 1, 2]);
    let reg = Registry::new_enabled();
    let _g = reg.install(None);
    let cfg = SimConfig::default().with_faults(with_packet_hooks(
        FaultPlan::seeded(0x51C1).kill_endpoint_after(victim, 1),
    ));
    let int_in = &int_in;
    let results = Simulator::with_config(WORLD, cfg).run(|comm| {
        let mut sc = shrink_sc(comm, 0x51C1);
        let mut s = IntSumScheme::<u32>::default();
        let ecfg = EngineCfg::sync().verified().with_retry(shrink_policy(comm));
        let res = sc.reduce_scatter_with(&mut s, &int_in[comm.rank()], ecfg);
        (res, sc.world(), sc.rank(), sc.take_membership_changes())
    });
    let flat: Vec<_> = results
        .iter()
        .map(|(res, w, _, ch)| (res.clone(), *w, ch.clone()))
        .collect();
    check_shrink_reports(&flat, victim);
    for (rank, (res, _, new_rank, _)) in results.iter().enumerate() {
        if rank == victim {
            continue;
        }
        // The share layout follows the *shrunk* world.
        let (lo, hi) = hear::mpi::ring_chunk_bounds(LEN, WORLD - 1)[*new_rank];
        assert_eq!(
            res.as_ref().unwrap(),
            &expected[lo..hi],
            "survivor {rank} share"
        );
    }
    assert!(reg.counter(Metric::RanksEvicted) >= 1, "eviction uncounted");
    assert!(
        reg.counter(Metric::MembershipEpochs) >= 1,
        "membership epoch uncounted"
    );
}

/// A rank killed mid-allgather (counts exchanged, first payload hop out,
/// then dead): survivors re-run and get the rank-ordered concatenation
/// of the *survivors'* contributions.
#[test]
fn shrink_and_continue_mid_allgather() {
    let victim = WORLD - 1;
    let (int_in, _) = int_inputs();
    let expected: Vec<u32> = int_in[..WORLD - 1].concat();
    let cfg = SimConfig::default().with_faults(with_packet_hooks(
        FaultPlan::seeded(0xA64A).kill_endpoint_after(victim, 4),
    ));
    let int_in = &int_in;
    let results = Simulator::with_config(WORLD, cfg).run(|comm| {
        let mut sc = shrink_sc(comm, 0xA64A);
        let mut s = IntSumScheme::<u32>::default();
        let ecfg = EngineCfg::sync().verified().with_retry(shrink_policy(comm));
        let res = sc.allgather_with(&mut s, &int_in[comm.rank()], ecfg);
        (res, sc.world(), sc.take_membership_changes())
    });
    check_shrink_reports(&results, victim);
    for (rank, (res, ..)) in results.iter().enumerate() {
        if rank != victim {
            assert_eq!(res.as_ref().unwrap(), &expected, "survivor {rank} gather");
        }
    }
}

/// A *leader* killed mid-hierarchical allreduce (group contribution
/// collected, then dead during the inter-leader ring, before its group
/// broadcast): survivors — including the dead leader's orphaned group
/// member — shrink around it and converge on the survivor-set sum. Also
/// exercises a non-suffix eviction (rank 2 of 4), so the lineage remap
/// is pinned too.
#[test]
fn shrink_and_continue_mid_hierarchical_broadcast() {
    let victim = 2;
    let (int_in, _) = int_inputs();
    let expected = survivor_sum(&int_in, &[0, 1, 3]);
    let cfg = SimConfig::default().with_faults(with_packet_hooks(
        FaultPlan::seeded(0x41E2).kill_endpoint_after(victim, 1),
    ));
    let int_in = &int_in;
    let results = Simulator::with_config(WORLD, cfg).run(|comm| {
        let mut sc = shrink_sc(comm, 0x41E2);
        let mut s = IntSumScheme::<u32>::default();
        let ecfg = EngineCfg::sync()
            .verified()
            .with_algo(ReduceAlgo::Hierarchical { group: 2 })
            .with_retry(shrink_policy(comm));
        let res = sc.allreduce_with(&mut s, &int_in[comm.rank()], ecfg);
        (res, sc.world(), sc.take_membership_changes())
    });
    check_shrink_reports(&results, victim);
    for (rank, (res, ..)) in results.iter().enumerate() {
        if rank != victim {
            assert_eq!(res.as_ref().unwrap(), &expected, "survivor {rank} sum");
        }
    }
}

/// The same kill under the default [`PeerDeadPolicy::Fail`]: every rank
/// surfaces a typed transport error within its deadline budget — no
/// shrink, no hang, no wrong result.
#[test]
fn fail_mode_surfaces_typed_error_on_rank_death() {
    let victim = WORLD - 1;
    let (int_in, _) = int_inputs();
    let cfg = SimConfig::default().with_faults(with_packet_hooks(
        FaultPlan::seeded(0xFA11).kill_endpoint_after(victim, 1),
    ));
    let int_in = &int_in;
    let results = Simulator::with_config(WORLD, cfg).run(|comm| {
        let mut sc = shrink_sc(comm, 0xFA11);
        let mut s = IntSumScheme::<u32>::default();
        let ecfg = EngineCfg::sync().verified().with_retry(chaos_policy(comm));
        let res = sc.reduce_scatter_with(&mut s, &int_in[comm.rank()], ecfg);
        (res, sc.is_shrunk())
    });
    for (rank, (res, shrunk)) in results.iter().enumerate() {
        assert!(
            matches!(res, Err(EngineError::Comm(_))),
            "rank {rank}: fail-fast mode must surface a typed Comm error"
        );
        assert!(!shrunk, "rank {rank}: Fail mode must never reconfigure");
    }
}

/// A transient-disconnect window (rank 0's first two ring hops dropped,
/// link heals on its next send): the typed `Disconnected` fault stays
/// inside the retry budget — every rank converges on the full-world
/// result, nobody shrinks, and the reconnect is counted.
#[test]
fn transient_disconnect_heals_within_retry_budget() {
    use hear::telemetry::{Metric, Registry};
    let (int_in, int_exp) = int_inputs();
    let reg = Registry::new_enabled();
    let _g = reg.install(None);
    let cfg = SimConfig::default().with_faults(with_packet_hooks(
        FaultPlan::seeded(0xD15C).disconnect_endpoint_after(0, 0, 2),
    ));
    let int_in = &int_in;
    let results = Simulator::with_config(WORLD, cfg).run(|comm| {
        let mut sc = shrink_sc(comm, 0xD15C);
        let mut s = IntSumScheme::<u32>::default();
        // A dropped ring hop heals only once every rank has cycled onto
        // the same retry attempt (the re-drive is a whole-block replay);
        // under scheduler pressure the ranks' deadline windows can
        // stagger for a couple of rounds, so give the cascade room.
        let mut policy = shrink_policy(comm);
        policy.max_attempts = 8;
        let ecfg = EngineCfg::sync()
            .verified()
            .with_algo(ReduceAlgo::Ring)
            .with_retry(policy);
        let res = sc.allreduce_with(&mut s, &int_in[comm.rank()], ecfg);
        (res, sc.is_shrunk())
    });
    for (rank, (res, shrunk)) in results.iter().enumerate() {
        assert_eq!(
            res.as_ref().unwrap(),
            &int_exp,
            "rank {rank}: a healed link must still produce the full result"
        );
        assert!(!shrunk, "rank {rank}: a transient fault must not evict");
    }
    assert!(
        reg.counter(Metric::FaultDisconnect) >= 1,
        "disconnect fault uncounted"
    );
    assert!(
        reg.counter(Metric::ReconnectsTotal) >= 1,
        "reconnect uncounted"
    );
}

/// The graceful-degradation pin: with the switch tree dead on arrival,
/// an INC epoch must complete *correctly* on every rank via the host-ring
/// fallback (not merely error out), the degradation must be counted, and
/// the communicator must stay sticky-degraded for later epochs.
#[test]
fn switch_kill_degrades_to_host_ring_and_completes() {
    use hear::telemetry::{Metric, Registry};
    let (int_in, int_exp) = int_inputs();
    let int_in = &int_in;
    for chunk in [EngineCfg::blocked(BLOCK), EngineCfg::pipelined(BLOCK)] {
        // Private registry so concurrent tests can't pollute the counts.
        let reg = Registry::new_enabled();
        let _g = reg.install(None);
        let cfg = SimConfig::default()
            .with_switch(WORLD)
            .with_faults(plan_for(FaultKind::SwitchKill, 0xDEAD));
        let results = Simulator::with_config(WORLD, cfg).run(|comm| {
            let keys = CommKeys::generate(WORLD, 0xDEAD, Backend::best_available())
                .into_iter()
                .nth(comm.rank())
                .unwrap();
            let homac = Homac::generate(0xDEAD ^ 0x5a5a, Backend::best_available());
            let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
            let mut s = IntSumScheme::<u32>::default();
            let ecfg = chunk
                .verified()
                .with_algo(ReduceAlgo::Switch)
                .with_retry(chaos_policy(comm));
            let first = sc.allreduce_with(&mut s, &int_in[comm.rank()], ecfg);
            // The fallback is sticky: the next epoch must not re-probe the
            // dead switch (it routes to the ring at entry).
            let second = sc.allreduce_with(&mut s, &int_in[comm.rank()], ecfg);
            (first, second, sc.is_degraded())
        });
        for (rank, (first, second, degraded)) in results.iter().enumerate() {
            let first = first.as_ref().unwrap_or_else(|e| {
                panic!("rank {rank} failed instead of degrading ({chunk:?}): {e}")
            });
            let second = second.as_ref().unwrap();
            assert_eq!(first, &int_exp, "rank {rank} fallback result ({chunk:?})");
            assert_eq!(second, &int_exp, "rank {rank} sticky epoch ({chunk:?})");
            assert!(degraded, "rank {rank} did not record the fallback");
        }
        // Each rank degrades once mid-epoch and once more at sticky entry.
        let degraded_epochs = reg.counter(Metric::DegradedEpochs);
        assert!(
            degraded_epochs >= WORLD as u64,
            "degraded epochs counted {degraded_epochs}, expected at least {WORLD}"
        );
    }
}
