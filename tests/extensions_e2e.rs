//! Integration tests for the §8 / §5.4 extensions: derived operations,
//! non-Allreduce collectives, pairwise-key one-to-one messaging, and the
//! on-wire bit packing — all through the full stack.

use hear::core::{derived, Backend, CommKeys, FloatSum, HfpFormat, MpiOp, UnsupportedOp};
use hear::hfp::PackedHfp;
use hear::layer::{SecureComm, SecureP2p};
use hear::mpi::{Communicator, SimConfig, Simulator};

fn secure(comm: &Communicator, seed: u64) -> SecureComm {
    let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
        .into_iter()
        .nth(comm.rank())
        .unwrap();
    SecureComm::new(comm.clone(), keys)
}

#[test]
fn min_max_rejected_with_rationale() {
    assert!(matches!(
        SecureComm::check_op(MpiOp::Min),
        Err(UnsupportedOp::MinMax)
    ));
    assert!(SecureComm::check_op(MpiOp::Sum).is_ok());
    assert!(SecureComm::check_op(MpiOp::Lor).is_ok());
}

#[test]
fn logical_reduction_over_switch_tree() {
    let cfg = SimConfig::default().with_switch(4);
    let results = Simulator::with_config(8, cfg).run(|comm| {
        let mut sc = secure(comm, 1).with_algo(hear::layer::ReduceAlgo::Switch);
        // Element k true on ranks < k (so AND false for k < 8, OR true for k > 0).
        let bits: Vec<bool> = (0..10).map(|k| comm.rank() < k).collect();
        sc.allreduce_logical(&bits)
    });
    for r in &results {
        assert_eq!(r[0], (false, false), "k=0: nobody true");
        for (k, v) in r.iter().enumerate().take(8).skip(1) {
            assert_eq!(*v, (true, false), "k={k}: some true");
        }
        assert_eq!(r[8], (true, true), "k=8: everyone true");
        assert_eq!(r[9], (true, true));
    }
}

#[test]
fn logical_growth_matches_formula() {
    // 8 ranks need 4 bits of indicator headroom.
    assert_eq!(derived::logical_growth_bits(8), 4);
}

#[test]
fn distributed_variance_matches_sequential() {
    let results = Simulator::new(4).run(|comm| {
        let mut sc = secure(comm, 2);
        let samples: Vec<f64> = (0..50)
            .map(|i| ((comm.rank() * 50 + i) as f64 * 0.11).sin())
            .collect();
        sc.allreduce_variance(&samples)
    });
    // Sequential reference.
    let all: Vec<f64> = (0..200).map(|i| (i as f64 * 0.11).sin()).collect();
    let mean: f64 = all.iter().sum::<f64>() / 200.0;
    let var: f64 = all.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 200.0;
    for (m, v, n) in &results {
        assert_eq!(*n, 200);
        assert!((m - mean).abs() < 1e-4, "mean {m} vs {mean}");
        assert!((v - var).abs() < 1e-3, "var {v} vs {var}");
    }
}

#[test]
fn complex_sum_accumulates_rotations() {
    // Sum of unit vectors at angles 2πr/P — the classic phase-accumulation
    // kernel; total should be ~0 for a full circle.
    let world = 8;
    let results = Simulator::new(world).run(move |comm| {
        let mut sc = secure(comm, 3);
        let theta = comm.rank() as f64 * std::f64::consts::TAU / world as f64;
        sc.allreduce_complex_sum(HfpFormat::fp32(2, 2), &[(theta.cos(), theta.sin())])
            .unwrap()
    });
    for r in &results {
        assert!(r[0].0.abs() < 1e-3 && r[0].1.abs() < 1e-3, "{:?}", r[0]);
    }
}

#[test]
fn secure_collectives_compose_in_one_program() {
    // A realistic control-flow mix: broadcast config, reduce partials to a
    // coordinator, gather diagnostics — all encrypted, interleaved with
    // allreduce, on one communicator.
    let results = Simulator::new(3).run(|comm| {
        let mut sc = secure(comm, 4);
        let config = sc.bcast_encrypted(
            0,
            if comm.rank() == 0 {
                vec![7, 13]
            } else {
                vec![]
            },
        );
        let partial = sc.reduce_sum_u32(2, &[config[0] * (comm.rank() as u32 + 1)]);
        let all = sc.allreduce_sum_u32(&[config[1]]);
        let diag = sc.gather_encrypted(0, vec![comm.rank() as u32]);
        (config, partial, all, diag)
    });
    for (rank, (config, partial, all, diag)) in results.iter().enumerate() {
        assert_eq!(*config, vec![7, 13]);
        if rank == 2 {
            assert_eq!(partial.as_ref().unwrap(), &vec![7 * (1 + 2 + 3)]);
        } else {
            assert!(partial.is_none());
        }
        assert_eq!(*all, vec![39]);
        if rank == 0 {
            assert_eq!(*diag, vec![vec![0], vec![1], vec![2]]);
        }
    }
}

#[test]
fn p2p_matrix_full_mesh() {
    // Every pair exchanges encrypted messages; all arrive intact and no
    // wire carries plaintext.
    let world = 4;
    let results = Simulator::new(world).run(move |comm| {
        let mut p2p = SecureP2p::new(comm.clone(), 0x4D45_5348, Backend::best_available());
        let me = comm.rank();
        for dst in 0..world {
            if dst != me {
                p2p.send(dst, 9, &[(me * 100 + dst) as u32]);
            }
        }
        let mut got = Vec::new();
        for src in 0..world {
            if src != me {
                got.push(p2p.recv(src, 9)[0]);
            }
        }
        got
    });
    for (me, got) in results.iter().enumerate() {
        let expect: Vec<u32> = (0..world)
            .filter(|s| *s != me)
            .map(|s| (s * 100 + me) as u32)
            .collect();
        assert_eq!(*got, expect);
    }
}

#[test]
fn packed_wire_roundtrip_through_network() {
    // Encrypt, bit-pack, ship the packed words through the runtime,
    // unpack, reduce, decrypt — the full hardware-path simulation.
    let results = Simulator::new(2).run(|comm| {
        let keys = CommKeys::generate(2, 5, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let fmt = HfpFormat::fp32(2, 2);
        let scheme = FloatSum::new(fmt);
        let mut ct = Vec::new();
        let vals = vec![1.5 + comm.rank() as f64, -2.25];
        scheme.encrypt_f64(&keys, 0, &vals, &mut ct).unwrap();
        let packed = PackedHfp::pack(&ct);
        // Ship raw words to the peer; rebuild the peer's pack on arrival.
        let peer = 1 - comm.rank();
        comm.send(peer, 1, packed.words().to_vec());
        let incoming = comm.recv::<u64>(peer, 1);
        let their_ct = PackedHfp::from_words(10, 23, 2, incoming).unpack();
        // Network op: add ciphertexts element-wise.
        let agg: Vec<_> = ct
            .iter()
            .zip(&their_ct)
            .map(|(a, b)| FloatSum::combine(a, b))
            .collect();
        let mut out = Vec::new();
        scheme.decrypt_f64(&keys, 0, &agg, &mut out);
        out
    });
    for r in &results {
        assert!((r[0] - 4.0).abs() < 1e-4, "1.5 + 2.5 = {r:?}");
        assert!((r[1] + 4.5).abs() < 1e-4);
    }
}
