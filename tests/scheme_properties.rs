//! Randomized end-to-end properties of the full stack: proptest drives
//! world sizes, vector lengths, datatypes and transport algorithms through
//! the simulator, checking the one invariant that matters — the encrypted
//! reduction equals the plaintext reduction (exactly for integers, within
//! HFP rounding for floats) — plus scheme-composition laws.

use hear::core::{Backend, CommKeys, HfpFormat};
use hear::layer::{ReduceAlgo, SecureComm};
use hear::mpi::{Communicator, SimConfig, Simulator};
use proptest::prelude::*;

fn secure(comm: &Communicator, seed: u64) -> SecureComm {
    let keys = CommKeys::generate(comm.world(), seed, Backend::best_available())
        .into_iter()
        .nth(comm.rank())
        .unwrap();
    SecureComm::new(comm.clone(), keys)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn encrypted_sum_equals_plaintext_sum(
        world in 1usize..5,
        len in 1usize..40,
        seed in any::<u64>(),
        algo_pick in 0u8..3,
    ) {
        let results = Simulator::with_config(world, SimConfig::default().with_switch(2))
            .run(move |comm| {
                let algo = match algo_pick {
                    0 => ReduceAlgo::RecursiveDoubling,
                    1 => ReduceAlgo::Ring,
                    _ => ReduceAlgo::Switch,
                };
                let mut sc = secure(comm, seed).with_algo(algo);
                let data: Vec<u32> = (0..len as u32)
                    .map(|j| j.wrapping_mul(seed as u32 | 1).wrapping_add(comm.rank() as u32))
                    .collect();
                let enc = sc.allreduce_sum_u32(&data);
                let reference = comm.allreduce(&data, |a, b| a.wrapping_add(*b));
                (enc, reference)
            });
        for (enc, reference) in &results {
            prop_assert_eq!(enc, reference);
        }
    }

    #[test]
    fn encrypted_prod_and_xor_equal_plaintext(
        world in 1usize..5,
        len in 1usize..20,
        seed in any::<u64>(),
    ) {
        let results = Simulator::new(world).run(move |comm| {
            let mut sc = secure(comm, seed);
            let data: Vec<u64> = (0..len as u64)
                .map(|j| j.wrapping_mul(seed | 1) ^ comm.rank() as u64)
                .collect();
            let p = sc.allreduce_prod_u64(&data);
            let x = sc.allreduce_xor_u64(&data);
            let rp = comm.allreduce(&data, |a, b| a.wrapping_mul(*b));
            let rx = comm.allreduce(&data, |a, b| a ^ b);
            (p, x, rp, rx)
        });
        for (p, x, rp, rx) in &results {
            prop_assert_eq!(p, rp);
            prop_assert_eq!(x, rx);
        }
    }

    #[test]
    fn float_sum_tracks_plaintext_within_tolerance(
        world in 1usize..4,
        len in 1usize..16,
        seed in any::<u64>(),
        gamma in 0u32..3,
    ) {
        let results = Simulator::new(world).run(move |comm| {
            let mut sc = secure(comm, seed);
            let data: Vec<f64> = (0..len)
                .map(|j| ((seed as f64 * 1e-12 + j as f64) * 0.37).sin() * 4.0 + 5.0)
                .collect();
            let enc = sc
                .allreduce_float_sum(HfpFormat::fp32(2, gamma), &data)
                .unwrap();
            let reference = comm.allreduce(&data, |a, b| a + b);
            (enc, reference)
        });
        // γ=0 drops two mantissa bits → looser budget.
        let tol = if gamma == 0 { 2e-4 } else { 2e-5 };
        for (enc, reference) in &results {
            for (e, r) in enc.iter().zip(reference) {
                let rel = ((e - r) / r).abs();
                prop_assert!(rel < tol, "gamma={} rel={}", gamma, rel);
            }
        }
    }

    #[test]
    fn sum_then_negated_sum_cancels(
        world in 2usize..5,
        v in any::<i32>(),
        seed in any::<u64>(),
    ) {
        // E2E linearity: allreduce(x) + allreduce(-x) == 0 element-wise,
        // across two separate encrypted calls (two epochs).
        let results = Simulator::new(world).run(move |comm| {
            let mut sc = secure(comm, seed);
            let a = sc.allreduce_sum_i32(&[v])[0];
            let b = sc.allreduce_sum_i32(&[v.wrapping_neg()])[0];
            a.wrapping_add(b)
        });
        for r in &results {
            prop_assert_eq!(*r, 0);
        }
    }

    #[test]
    fn verified_path_agrees_with_unverified(
        world in 1usize..4,
        len in 1usize..12,
        seed in any::<u64>(),
    ) {
        let results = Simulator::new(world).run(move |comm| {
            let homac = hear::core::Homac::generate(seed ^ 1, Backend::best_available());
            let mut sc = secure(comm, seed).with_homac(homac);
            let data: Vec<u32> = (0..len as u32).map(|j| j + comm.rank() as u32 * 7).collect();
            let verified = sc.allreduce_sum_u32_verified(&data).expect("honest network");
            let plain = sc.allreduce_sum_u32(&data);
            (verified, plain)
        });
        for (verified, plain) in &results {
            prop_assert_eq!(verified, plain);
        }
    }

    #[test]
    fn narrow_and_wide_lanes_agree(
        world in 1usize..4,
        vals in proptest::collection::vec(0u16..=u16::MAX, 1..12),
        seed in any::<u64>(),
    ) {
        // Summing u16 data on u16 lanes must equal summing it on u32 lanes
        // reduced mod 2^16.
        let vals2 = vals.clone();
        let results = Simulator::new(world).run(move |comm| {
            let mut sc = secure(comm, seed);
            let narrow = sc.allreduce_sum_u16(&vals2);
            let wide_in: Vec<u32> = vals2.iter().map(|v| *v as u32).collect();
            let wide = sc.allreduce_sum_u32(&wide_in);
            (narrow, wide)
        });
        for (narrow, wide) in &results {
            for (n, w) in narrow.iter().zip(wide) {
                prop_assert_eq!(*n, *w as u16);
            }
        }
    }
}
