//! End-to-end telemetry validation (the PR's acceptance scenario).
//!
//! A 4-rank *pipelined* encrypted allreduce runs under an installed
//! private registry; the resulting chrome-trace must cover encrypt,
//! per-block send/recv, reduce and decrypt on **every** rank, and the
//! fabric byte counters must equal the ring collective's message schedule
//! exactly. All emitted formats are re-parsed with the in-repo parsers.

use hear::core::{Backend, CommKeys};
use hear::layer::SecureComm;
use hear::mpi::Simulator;
use hear::telemetry::{export, parse, Gauge, Metric, Registry};

const WORLD: usize = 4;
const ELEMS: usize = 64; // u32 elements per rank
const BLOCK: usize = 16; // pipeline block size -> 4 blocks
const BLOCKS: u64 = (ELEMS / BLOCK) as u64;

/// Ring allreduce schedule for one block of `len` elements on `p` ranks:
/// 2(p-1) steps, each step sends one chunk per rank and the per-step
/// chunks partition the block — so bytes per block = 2(p-1)·len·4,
/// independent of the chunking, and messages per block = 2(p-1)·p.
const fn ring_bytes(p: u64, total_elems: u64) -> u64 {
    2 * (p - 1) * total_elems * 4
}

const fn ring_msgs(p: u64, blocks: u64) -> u64 {
    blocks * 2 * (p - 1) * p
}

fn run_traced_pipeline() -> Registry {
    let reg = Registry::new_enabled();
    let _ctx = reg.install(None);
    let results = Simulator::new(WORLD).run(|comm| {
        let keys = CommKeys::generate(WORLD, 0xe2e, Backend::AesSoft)
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let data: Vec<u32> = (0..ELEMS as u32)
            .map(|j| comm.rank() as u32 * 100 + j)
            .collect();
        sc.allreduce_sum_u32_pipelined(&data, BLOCK)
    });
    // Correctness first: telemetry must never perturb results.
    for v in &results {
        for (j, x) in v.iter().enumerate() {
            let expect: u32 = (0..WORLD as u32).map(|r| r * 100 + j as u32).sum();
            assert_eq!(*x, expect);
        }
    }
    reg
}

#[test]
fn traced_pipelined_allreduce_covers_every_phase_on_every_rank() {
    let reg = run_traced_pipeline();

    // --- exact fabric schedule ------------------------------------------
    let p = WORLD as u64;
    assert_eq!(
        reg.counter(Metric::FabricBytes),
        ring_bytes(p, ELEMS as u64),
        "fabric bytes must equal the ring schedule"
    );
    assert_eq!(reg.counter(Metric::FabricMsgs), ring_msgs(p, BLOCKS));
    // Every message was received exactly once, by spin or by park.
    assert_eq!(
        reg.counter(Metric::MailboxSpinHits) + reg.counter(Metric::MailboxParks),
        ring_msgs(p, BLOCKS)
    );
    // One pipelined call per rank: one key advance and BLOCKS blocks each.
    assert_eq!(reg.counter(Metric::KeyAdvances), p);
    assert_eq!(reg.counter(Metric::PipelineBlocks), p * BLOCKS);
    // Each rank posted one ring collective per block.
    assert_eq!(reg.counter(Metric::Collectives), p * BLOCKS);
    // The pipeline fully drained.
    assert_eq!(reg.gauge(Gauge::PipelineInFlight), 0);
    // Histogram totals agree with the byte counter.
    let (count, sum) = reg.hist_totals(hear::telemetry::Hist::FabricMsgBytes);
    assert_eq!(count, ring_msgs(p, BLOCKS));
    assert_eq!(sum, ring_bytes(p, ELEMS as u64));

    // --- chrome trace: every phase on every rank's lane -----------------
    let trace = export::chrome_trace(&reg);
    let events = parse::parse_chrome_trace(&trace).expect("trace must self-parse");
    for rank in 0..WORLD as u64 {
        for phase in ["encrypt", "send", "recv", "reduce", "decrypt", "pipeline"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.ph == "X" && e.name == phase && e.tid == rank),
                "missing span `{phase}` on rank {rank}'s lane"
            );
        }
        // Per-block sends: the ring schedule has 2(P-1) sends per rank per
        // block; every one must appear as its own span.
        let sends = events
            .iter()
            .filter(|e| e.ph == "X" && e.name == "send" && e.tid == rank)
            .count() as u64;
        assert_eq!(sends, BLOCKS * 2 * (WORLD as u64 - 1), "rank {rank}");
    }
    // Lane metadata present for Perfetto row naming.
    assert!(events
        .iter()
        .any(|e| e.ph == "M" && e.name == "thread_name"));
    assert_eq!(
        reg.dropped_events(),
        0,
        "ring buffers must not have evicted"
    );

    // --- Prometheus + snapshot round-trip -------------------------------
    let prom = export::prometheus(&reg);
    let samples = parse::parse_prometheus(&prom).expect("prom must self-parse");
    let find = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing prom sample {name}"))
            .value
    };
    assert_eq!(
        find("hear_fabric_bytes_total"),
        ring_bytes(p, ELEMS as u64) as f64
    );
    assert_eq!(
        find("hear_fabric_messages_total"),
        ring_msgs(p, BLOCKS) as f64
    );
    assert_eq!(find("hear_pipeline_blocks_total"), (p * BLOCKS) as f64);

    let snap = export::json_snapshot(&reg);
    let v = parse::parse_json(&snap).expect("snapshot must self-parse");
    assert_eq!(
        v.get("counters")
            .and_then(|c| c.get("hear_fabric_bytes_total"))
            .and_then(|n| n.as_f64()),
        Some(ring_bytes(p, ELEMS as u64) as f64)
    );
}

#[test]
fn concurrent_ranks_keep_lanes_rank_correct() {
    // All four ranks record concurrently into one registry; spans must not
    // interleave across lanes and counters must be attributed somewhere
    // exactly once (totals already checked above — here: attribution).
    let reg = run_traced_pipeline();
    let evs = reg.span_events();
    // The rank threads and their collective progress threads carry rank
    // lanes; only the installing main thread may be rankless, and it
    // records no spans in this scenario.
    assert!(
        evs.iter().all(|e| e.rank.is_some()),
        "span leaked to a rankless lane"
    );
    for rank in 0..WORLD {
        // Every rank ran the same program: same number of sends on each
        // lane (the schedule is symmetric).
        let sends = evs
            .iter()
            .filter(|e| e.name == "send" && e.rank == Some(rank))
            .count();
        assert_eq!(sends as u64, BLOCKS * 2 * (WORLD as u64 - 1));
        // Depth sanity: "send" always nests under a collective span.
        assert!(evs
            .iter()
            .filter(|e| e.name == "send" && e.rank == Some(rank))
            .all(|e| e.depth > 0));
    }
}

#[test]
fn disabled_tracing_is_inert_end_to_end() {
    // With HEAR_TRACE unset and no private registry installed, an
    // encrypted allreduce must record nothing and spans must be inert.
    if hear::telemetry::env_enabled() {
        return; // environment exported HEAR_TRACE; skip
    }
    let results = Simulator::new(2).run(|comm| {
        let keys = CommKeys::generate(2, 7, Backend::AesSoft)
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let s = hear::telemetry::span!("probe");
        assert!(!s.is_recording() || hear::telemetry::active());
        SecureComm::new(comm.clone(), keys).allreduce_sum_u32(&[1, 2, 3, 4])
    });
    for v in &results {
        assert_eq!(*v, vec![2, 4, 6, 8]);
    }
    assert_eq!(Registry::global().counter(Metric::FabricMsgs), 0);
}
