//! Cross-crate integration: the precision pipeline (hfp + core + num),
//! the HoMAC pipeline over the runtime, the MAP estimator, and the
//! baselines-vs-HEAR inflation comparison — the glue the experiment
//! harnesses rely on.

use hear::core::{map_adversary, Backend, CommKeys, FloatSum, Hfp, HfpFormat};
use hear::num::{BigFloat, BigUint, SplitMix64, REFERENCE_PREC};

/// Reference-grade sum via BigFloat, as the Fig. 3 harness computes it.
fn reference_sum(vals: &[f64]) -> BigFloat {
    let mut acc = BigFloat::zero(REFERENCE_PREC);
    for v in vals {
        acc = acc.add(&BigFloat::from_f64(*v, REFERENCE_PREC));
    }
    acc
}

#[test]
fn hfp_sum_error_vs_bigfloat_reference_is_small_and_gamma_ordered() {
    // One simulated rank-pair summation chain per γ, measured exactly like
    // Fig. 3: relative error against the 1024-bit reference.
    let vals: Vec<f64> = (0..2000)
        .map(|i| ((i as f64 * 0.61803) % 1.0) * 10.0 + 0.1)
        .collect();
    let reference = reference_sum(&vals).to_f64();

    let run = |gamma: u32| -> f64 {
        let fmt = HfpFormat::fp32(2, gamma);
        let keys = CommKeys::generate(1, 9, Backend::best_available());
        let scheme = FloatSum::new(fmt);
        let (cew, cmw) = fmt.cipher_widths();
        // Encrypt each value as slot 0 of its own "vector" and fold the
        // ciphertexts like the network would.
        let mut agg = Hfp::zero(cew, cmw);
        let mut ct = Vec::new();
        for v in &vals {
            scheme.encrypt_f64(&keys[0], 0, &[*v], &mut ct).unwrap();
            agg = FloatSum::combine(&agg, &ct[0]);
        }
        let mut out = Vec::new();
        scheme.decrypt_f64(&keys[0], 0, &[agg], &mut out);
        ((out[0] - reference) / reference).abs()
    };

    let (e0, e1, e2) = (run(0), run(1), run(2));
    // γ=2 keeps the full mantissa; γ=0 drops two bits — the Fig. 3 trend.
    assert!(
        e2 <= e1 * 4.0 + 1e-12,
        "γ=2 ({e2}) should not be much worse than γ=1 ({e1})"
    );
    assert!(
        e0 > e2,
        "γ=0 ({e0}) must lose more precision than γ=2 ({e2})"
    );
    assert!(e2 < 1e-4, "γ=2 relative error {e2} too large");
    assert!(
        e0 < 1e-2,
        "γ=0 relative error {e0} out of the paper's ballpark"
    );
}

#[test]
fn native_f32_error_brackets_hear_error() {
    // The paper's claim: HEAR's precision sits within about an order of
    // magnitude of native. Compare f32-native summation error with HEAR
    // FP32 γ=2 against the BigFloat reference.
    let vals: Vec<f64> = (0..3000)
        .map(|i| (i as f64 * 0.7).sin() * 3.0 + 3.5 + (i as f64 * 0.013).cos())
        .collect();
    let reference = reference_sum(&vals).to_f64();
    // Native f32 accumulation.
    let native: f32 = vals.iter().fold(0.0f32, |acc, v| acc + *v as f32);
    let native_err = ((native as f64 - reference) / reference).abs();

    let fmt = HfpFormat::fp32(2, 2);
    let keys = CommKeys::generate(1, 10, Backend::best_available());
    let scheme = FloatSum::new(fmt);
    let (cew, cmw) = fmt.cipher_widths();
    let mut agg = Hfp::zero(cew, cmw);
    let mut ct = Vec::new();
    for v in &vals {
        scheme.encrypt_f64(&keys[0], 0, &[*v], &mut ct).unwrap();
        agg = FloatSum::combine(&agg, &ct[0]);
    }
    let mut out = Vec::new();
    scheme.decrypt_f64(&keys[0], 0, &[agg], &mut out);
    let hear_err = ((out[0] - reference) / reference).abs();

    assert!(
        hear_err < native_err * 30.0 + 1e-9,
        "HEAR error {hear_err} should be within ~an order of magnitude of native {native_err}"
    );
}

#[test]
fn map_estimator_edge_consistent_with_paper_ratio() {
    // Paper: FP32 average guess 3.57e-7 ≈ 3.0× the uniform 1.19e-7.
    let stats = map_adversary(10, 10, 10);
    let ratio = stats.edge_ratio();
    // Exact enumeration with RTNE rounding lands at ≈1.9×; the paper's
    // FP32 measurement reports ≈3×. Both say the same thing: the edge is
    // a small constant factor over blind guessing, i.e. negligible.
    assert!(
        (1.5..4.0).contains(&ratio),
        "MAP edge ratio {ratio} should be a small constant like the paper's ≈3×"
    );
    // Boundary mantissas (x ≈ 1.0) are the most identifiable plaintexts;
    // their guess probability halves with every added mantissa bit, so at
    // FP32 widths it is ~2^-13 of the value measured here — negligible,
    // matching the paper's conclusion.
    let wider = map_adversary(12, 12, 12);
    assert!(wider.max < stats.max, "max guess must shrink with width");
    assert!(stats.max < 0.2 && wider.max < 0.1);
}

#[test]
fn hear_inflation_zero_baselines_fail_r1() {
    use hear::baselines::{ElGamal, Paillier, Rsa};
    // HEAR integers: ciphertext word = plaintext word.
    assert_eq!(std::mem::size_of::<u32>(), 4); // the wire carries u32s as-is
    let fmt_int_inflation = 1.0;
    // HEAR floats: γ bits only.
    let f = HfpFormat::fp32(2, 2);
    assert_eq!(f.cipher_bits() - f.plain_bits(), 2);
    // Baselines.
    let mut rng = SplitMix64::new(5);
    let p = Paillier::generate(128, &mut rng);
    let r = Rsa::generate(128, &mut rng);
    let e = ElGamal::generate(96, &mut rng);
    for (name, infl) in [
        ("paillier", p.inflation(32)),
        ("rsa", r.inflation(32)),
        ("elgamal", e.inflation(32)),
    ] {
        assert!(infl > 2.0, "{name} must violate R1 (≤2×), got {infl}");
    }
    assert!(fmt_int_inflation <= 2.0);
}

#[test]
fn paillier_sums_match_hear_sums() {
    // Same additive reduction through both systems: the baseline agrees
    // with HEAR on the arithmetic, it just pays ~16× the bandwidth.
    use hear::baselines::Paillier;
    let mut rng = SplitMix64::new(6);
    let p = Paillier::generate(192, &mut rng);
    let inputs = [123u64, 456, 789];

    let mut pail_acc = p.encrypt(&BigUint::zero(), &mut rng);
    for v in inputs {
        let c = p.encrypt(&BigUint::from_u64(v), &mut rng);
        pail_acc = p.add_ciphertexts(&pail_acc, &c);
    }
    let pail_sum = p.decrypt(&pail_acc).to_u64().unwrap();

    let keys = CommKeys::generate(3, 11, Backend::best_available());
    let mut scratch = hear::core::Scratch::default();
    let mut agg = vec![0u64];
    for (rank, v) in inputs.iter().enumerate() {
        let mut ct = vec![*v];
        hear::core::IntSum::encrypt_in_place(&keys[rank], 0, &mut ct, &mut scratch);
        agg[0] = agg[0].wrapping_add(ct[0]);
    }
    hear::core::IntSum::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);

    assert_eq!(pail_sum, 123 + 456 + 789);
    assert_eq!(agg[0], pail_sum);
}
