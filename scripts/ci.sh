#!/usr/bin/env bash
# Tier-1 verify, exactly as ROADMAP.md states it:
#
#     cargo build --release && cargo test -q
#
# The workspace is hermetic (path dependencies only — see the workspace
# Cargo.toml and tests/hermetic.rs), so this must pass offline with an
# empty cargo cache. CARGO_NET_OFFLINE defaults to on to prove it; export
# CARGO_NET_OFFLINE=false to override. Extra arguments are passed through
# to both cargo invocations (e.g. `scripts/ci.sh --workspace`).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE="${CARGO_NET_OFFLINE:-true}"

cargo build --release "$@"
cargo test -q "$@"

# The same matrix, chaos, and collective-composition suites again, with
# the transport swapped for the loopback TCP socket mesh by the one
# environment switch — the suites themselves are unchanged.
HEAR_TRANSPORT=tcp cargo test -q -p hear --test matrix --test chaos --test collectives

# Traced smoke run: quickstart under HEAR_TRACE=1 must emit all three
# telemetry formats, and they must pass the in-repo schema validator.
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
HEAR_TRACE=1 HEAR_TRACE_OUT="$smoke_dir/smoke" \
    cargo run --release -q -p hear --example quickstart >/dev/null
cargo run --release -q -p hear-bench --bin trace_validate -- \
    "$smoke_dir/smoke.trace.json" "$smoke_dir/smoke.prom" "$smoke_dir/smoke.snapshot.json"

# Composition-matrix smoke: every scheme × algorithm × chunking × HoMAC
# cell through the one generic engine, checked against the plaintext
# reference, plus the factored reduce-scatter/allgather/alltoall sweep.
# Exits nonzero on any mismatch.
cargo run --release -q -p hear-bench --bin matrix_smoke

# Factored-collective trajectory: reduce-scatter / allgather / alltoall /
# fused allreduce / sharded-SGD step, measured over the in-memory world —
# must emit a parseable BENCH_collectives.json per commit.
HEAR_BENCH_FAST=1 HEAR_BENCH_DIR="$smoke_dir" \
    cargo run --release -q -p hear-bench --bin collectives
test -s "$smoke_dir/BENCH_collectives.json"

# Chaos smoke: seeded, offline, deterministic fault-injection scenarios
# (drop / corrupt / switch-kill) asserting the self-healing contract —
# correct result or typed error, never a hang (the bin's own watchdog
# exits 3 on a hung scenario, and `timeout` backstops the watchdog).
timeout 300 cargo run --release -q -p hear-bench --bin chaos_smoke

# Socket smoke: a real multi-process TCP world (rank-per-process,
# ephemeral-port rendezvous) running pipelined verified epochs, then a
# SIGKILL of one rank mid-epoch — survivors must fail *typed*, never
# hang. Distinct exit codes per failure class (1 infra / 2 wrong answer /
# 3 hang / 4 fault silently absorbed); `timeout` backstops the watchdog.
timeout 300 cargo run --release -q -p hear-bench --bin socket_smoke

# Crypto-throughput smoke + perf_gate: a fast-budget sweep must emit a
# parseable BENCH_crypto.json (the per-commit trajectory artifact), and
# the fused one-pass mask kernels must not be slower than the split
# fill-then-combine path (generous 1.25x tolerance — CI shares a core).
HEAR_BENCH_FAST=1 HEAR_BENCH_DIR="$smoke_dir" \
    cargo run --release -q -p hear-bench --bin crypto_throughput
test -s "$smoke_dir/BENCH_crypto.json"
HEAR_BENCH_FAST=1 \
    cargo run --release -q -p hear-bench --bin crypto_throughput -- --gate

# Roofline sweep + scaling gate: STREAM triad and masked-bytes throughput
# at 1..N threads must land in BENCH_roofline.json, and on a >=4-core
# host 4 threads must beat 1 thread by >=3x at 64 MiB (the gate prints
# SKIP and exits 0 on smaller runners, so shared-core CI stays green).
HEAR_BENCH_DIR="$smoke_dir" \
    cargo run --release -q -p hear-bench --bin roofline
test -s "$smoke_dir/BENCH_roofline.json"
cargo run --release -q -p hear-bench --bin roofline -- --gate
