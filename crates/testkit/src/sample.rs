//! Value-selection strategies (`proptest::sample` layout).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::fmt::Debug;

/// Strategy choosing uniformly from a fixed list of options.
pub struct Select<T> {
    options: Vec<T>,
}

/// `proptest::sample::select(vec![...])` — draw one of the given values.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_only_yields_listed_values() {
        let mut rng = TestRng::new(1);
        let s = select(vec![101u64, 65_537, 1_000_000_007]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match s.sample(&mut rng) {
                101 => seen[0] = true,
                65_537 => seen[1] = true,
                1_000_000_007 => seen[2] = true,
                other => panic!("unexpected sample {other}"),
            }
        }
        assert!(
            seen.iter().all(|&b| b),
            "all options should appear in 200 draws"
        );
    }
}
