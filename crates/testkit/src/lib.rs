//! # hear-testkit — the hermetic test & bench toolkit
//!
//! Everything test-shaped this workspace needs, with **zero external
//! dependencies**: the tier-1 verify (`cargo build --release && cargo test
//! -q`) must succeed on a machine with no registry access and an empty
//! cargo cache (`tests/hermetic.rs` at the workspace root enforces this).
//!
//! Three subsystems:
//!
//! * **PRNG** ([`rng`]): a seedable xoshiro256++ [`TestRng`] with a
//!   `rand`-compatible surface (`gen::<u64>()`, `gen_range(0..n)`,
//!   `fill`, `shuffle`) plus the canonical [`SplitMix64`] seed stretcher.
//! * **Property tests** ([`proptest!`], [`strategy`], [`collection`],
//!   [`sample`], [`test_runner`], [`prelude`]): a shrinking-free
//!   `proptest`-compatible macro and strategy layer. Consumer crates alias
//!   this crate as `proptest` in their `[dev-dependencies]`
//!   (`proptest = { path = "../testkit", package = "hear-testkit" }`), so
//!   pre-existing `use proptest::prelude::*;` property tests compile
//!   unchanged.
//! * **Benchmarks** ([`bench`], [`criterion_group!`], [`criterion_main!`]):
//!   a criterion-shaped harness (warmup, calibrated iteration counts,
//!   median/p10/p90 ns) that writes `BENCH_<target>.json` so the perf
//!   trajectory is recorded per run. `crates/bench` aliases this crate as
//!   `criterion` the same way.
//!
//! Reproducibility knobs (environment variables):
//!
//! | Variable              | Effect                                        |
//! |-----------------------|-----------------------------------------------|
//! | `HEAR_PROPTEST_SEED`  | XORed into every property test's RNG seed     |
//! | `HEAR_PROPTEST_CASES` | Overrides the per-property case count         |
//! | `HEAR_BENCH_FAST`     | Clamps benches to a smoke-run time budget     |
//! | `HEAR_BENCH_DIR`      | Directory receiving `BENCH_*.json`            |

pub mod bench;
pub mod collection;
mod macros;
pub mod prelude;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use bench::{black_box, Bencher, BenchmarkGroup, BenchmarkId, Criterion, Throughput};
pub use rng::{SplitMix64, TestRng};

// Self-test: the proptest-compatible surface, exercised exactly the way
// consumer crates use it (via the macro + prelude).
#[cfg(test)]
mod shim_selftest {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
        }

        #[test]
        fn ranges_and_vecs(
            n in 1usize..5,
            v in crate::collection::vec(0u16..=u16::MAX, 1..12),
            flag in any::<bool>(),
        ) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 12, "len={}", v.len());
            let _ = flag;
        }

        #[test]
        fn assume_redraws_instead_of_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn select_and_filter(
            p in crate::sample::select(vec![101u64, 65_537]),
            f in any::<f64>().prop_filter("finite", |v| v.is_finite()),
        ) {
            prop_assert!(p == 101 || p == 65_537);
            prop_assert!(f.is_finite());
            prop_assert_ne!(p, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        #[test]
        fn config_header_form_compiles(w in 1usize..4) {
            prop_assert!(w < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn with_cases_form_compiles(s in any::<u64>()) {
            let _ = s;
            prop_assert!(true);
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        // Reach the runner through a hand-expanded case to check the
        // failure path without aborting the test process.
        let result: TestCaseResult = (|| {
            let always_wrong = 2u32;
            prop_assert_eq!(always_wrong, 3u32, "ctx {}", 7);
            Ok(())
        })();
        match result {
            Err(TestCaseError::Fail(msg)) => {
                assert!(msg.contains("always_wrong"));
                assert!(msg.contains("ctx 7"));
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }
}
