//! The `proptest!`-compatible macro family and the criterion-shaped
//! `criterion_group!` / `criterion_main!` entry points.
//!
//! `#[macro_export]` places every macro at the crate root, so consumers
//! that alias this crate as `proptest` (or `criterion`) in their
//! `Cargo.toml` get the familiar `use proptest::prelude::*;` /
//! `use criterion::{criterion_group, criterion_main};` imports for free.

/// Property-test block: a drop-in for `proptest::proptest!` covering the
/// forms used in this workspace — an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
///
/// Differences from real proptest, by design (see `crates/testkit/README.md`):
/// no shrinking (failures print all inputs plus replay instructions), and
/// case counts are floored to
/// [`MIN_CASES`](crate::test_runner::MIN_CASES).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            #![allow(clippy::redundant_closure_call)]
            let __config = $config;
            let __cases = $crate::test_runner::effective_cases(&__config);
            let __max_rejects = $crate::test_runner::max_rejects(&__config, __cases);
            let mut __rng =
                $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __done: u32 = 0;
            let mut __rejects: u32 = 0;
            while __done < __cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&::std::format!("{:?}; ", $arg));
                    )+
                    __s
                };
                let __outcome: $crate::test_runner::TestCaseResult =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {
                        __done += 1;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(__r)) => {
                        __rejects += 1;
                        if __rejects > __max_rejects {
                            $crate::test_runner::too_many_rejects(
                                stringify!($name), __rejects, &__r,
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        $crate::test_runner::fail_case(
                            stringify!($name), __done + 1, __cases, &__inputs, &__msg,
                        );
                    }
                }
            }
        }
    )*};
}

/// `proptest`-style assertion: reports the failing inputs instead of
/// unwinding with a bare `assert!` message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// `prop_assert_eq!(a, b)` with optional trailing format arguments.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}` ({})\n    left: {:?}\n   right: {:?}",
                    stringify!($left), stringify!($right), ::std::format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)` with optional trailing format arguments.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n    both: {:?}",
                    stringify!($left), stringify!($right), __l,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}` ({})\n    both: {:?}",
                    stringify!($left), stringify!($right), ::std::format!($($fmt)+), __l,
                ),
            ));
        }
    }};
}

/// Discard the current case (redrawn, not failed) when its inputs fall
/// outside the property's precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption not met: ", stringify!($cond)),
            ));
        }
    };
}

/// Criterion-compatible group declaration. Both forms are supported:
/// `criterion_group!(benches, f1, f2)` and the keyed form with a custom
/// `config = Criterion::default()...` expression. The generated function
/// runs every target and then writes `BENCH_<target-name>.json` via
/// [`Criterion::emit`](crate::bench::Criterion::emit).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut __c = $config;
            $($target(&mut __c);)+
            __c.emit(env!("CARGO_CRATE_NAME"));
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Criterion-compatible `main` for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
