//! Collection strategies (`proptest::collection` layout).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`]: an exact `usize`, `lo..hi`, or
/// `lo..=hi` (mirrors `proptest::collection::SizeRange`).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `proptest::collection::vec(element, 1..8)` — a vector whose length is
/// sampled from `size` and whose elements are sampled from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_forms() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let v = vec(any::<u64>(), 1..8).sample(&mut rng);
            assert!((1..8).contains(&v.len()));
            let w = vec(0u8..10, 5usize).sample(&mut rng);
            assert_eq!(w.len(), 5);
            let x = vec(any::<bool>(), 0..=3).sample(&mut rng);
            assert!(x.len() <= 3);
        }
    }

    #[test]
    fn vec_of_tuples() {
        let mut rng = TestRng::new(2);
        let v = vec((1.0f64..2.0, -60i32..60, any::<bool>()), 64usize).sample(&mut rng);
        assert_eq!(v.len(), 64);
        assert!(v
            .iter()
            .all(|(m, e, _)| (1.0..2.0).contains(m) && (-60..60).contains(e)));
    }
}
