//! Seedable, dependency-free pseudorandom generators for tests and
//! benchmarks.
//!
//! Two generators live here:
//!
//! * [`SplitMix64`] — the canonical 64-bit seed stretcher. This is the
//!   *same* algorithm (same constants) as `hear_num::SplitMix64` and the
//!   production `hear_core::rng::KeyRng`; those crates keep their own
//!   ten-line copies so the production key path never depends on test
//!   code, and cross-check tests pin all three to identical output.
//! * [`TestRng`] — xoshiro256++, seeded through SplitMix64. This is the
//!   workhorse for randomized tests and bench input generation, with a
//!   `rand`-compatible surface: [`TestRng::gen`], [`TestRng::gen_range`],
//!   [`TestRng::fill`], [`TestRng::shuffle`].
//!
//! Neither generator is cryptographic; production key material comes from
//! `hear_core::rng::KeyRng` with a caller-supplied seed.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// SplitMix64: stateless-feeling 64-bit generator used to stretch a single
/// `u64` seed into arbitrarily much seed material.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }
}

/// The SplitMix64 output function on its own: a high-quality 64→64 bit
/// mixer, handy for hashing test names into seeds.
#[inline]
pub fn mix(v: u64) -> u64 {
    let mut z = v;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ — fast, 256-bit state, passes BigCrush; the default
/// generator for everything test-shaped in this workspace.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed via SplitMix64 stretching, exactly as the xoshiro authors
    /// recommend (never produces the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        TestRng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Alias for [`TestRng::seed_from_u64`].
    pub fn new(seed: u64) -> Self {
        Self::seed_from_u64(seed)
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `rand`-style typed draw: `rng.gen::<u64>()`, `rng.gen::<bool>()`, …
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `rand`-style range draw: accepts `a..b` and `a..=b` for every
    /// primitive integer type plus `f32`/`f64`.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fill a slice with uniform values (integers of any width).
    pub fn fill<T: Standard>(&mut self, slice: &mut [T]) {
        for v in slice {
            *v = T::sample(self);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

/// Types that can be drawn uniformly from their whole domain
/// (the shim's analogue of `rand::distributions::Standard`).
pub trait Standard {
    fn sample(rng: &mut TestRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),+) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        }
    )+};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Standard for bool {
    fn sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample(rng: &mut TestRng) -> f32 {
        rng.next_f64() as f32
    }
}

/// Ranges a uniform value can be drawn from (the shim's analogue of
/// `rand::distributions::uniform::SampleRange`).
///
/// Integer sampling is modulo-reduced: the bias is at most 2⁻⁶⁴ for spans
/// below 2⁶⁴ — irrelevant for property testing, and it keeps the draw
/// branch-free and allocation-free.
pub trait SampleRange<T> {
    fn sample_one(self, rng: &mut TestRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128)
                    & (u128::MAX >> (128 - <$t>::BITS)).max(1);
                // span == number of admissible values (end exclusive, so
                // it never wraps to zero for a non-empty range).
                let off = rng.next_u128() % span;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128)
                    & (u128::MAX >> (128 - <$t>::BITS)).max(1);
                if span == u128::MAX {
                    return rng.next_u128() as $t; // full u128 domain
                }
                let off = rng.next_u128() % (span + 1);
                lo.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeFrom<$t> {
            fn sample_one(self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).sample_one(rng)
            }
        }
    )+};
}
impl_sample_range_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let v = self.start + rng.next_f64() as $t * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one(self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + rng.next_f64() as $t * (hi - lo)
            }
        }
    )+};
}
impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First three outputs for seed 1234567, from the reference C code.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism across instances.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        let mut c = TestRng::seed_from_u64(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..2000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&f));
            let u = rng.gen_range(3usize..4);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = TestRng::new(9);
        let mut saw_min = false;
        let mut saw_max = false;
        for _ in 0..500 {
            match rng.gen_range(0u8..=1) {
                0 => saw_min = true,
                1 => saw_max = true,
                _ => unreachable!(),
            }
        }
        assert!(saw_min && saw_max);
        // Full-domain inclusive range must not panic or bias-crash.
        let _: u128 = rng.gen_range(0u128..=u128::MAX);
        let _: i8 = rng.gen_range(i8::MIN..=i8::MAX);
    }

    #[test]
    fn typed_gen_and_fill() {
        let mut rng = TestRng::new(3);
        let _: u128 = rng.gen();
        let _: bool = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
        let mut buf = [0u64; 64];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&v| v != 0));
        let mut order: Vec<u32> = (0..32).collect();
        let orig = order.clone();
        rng.shuffle(&mut order);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn f64_draws_land_in_unit_interval() {
        let mut rng = TestRng::new(11);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
