//! Property-test runner: configuration, case outcomes, and the helpers the
//! [`crate::proptest!`] macro expands calls into.
//!
//! Mirrors the `proptest::test_runner` names this workspace touches
//! (`ProptestConfig`, `TestCaseError`, `TestCaseResult`) so existing test
//! code compiles against the shim unchanged.

use crate::rng::{mix, TestRng};

/// Case-count floor. Configs asking for fewer cases (tuned for real
/// proptest's slower shrinking machinery) are raised to this, so every
/// property still sees a meaningful sample of its input space.
pub const MIN_CASES: u32 = 64;

/// Runner configuration. Field names match `proptest::test_runner::
/// ProptestConfig` so `ProptestConfig { cases: 24, ..Default::default() }`
/// and `ProptestConfig::with_cases(48)` work verbatim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Requested number of successful cases (floored to [`MIN_CASES`] at
    /// run time; override globally with `HEAR_PROPTEST_CASES`).
    pub cases: u32,
    /// Maximum `prop_assume!` rejections across a whole run before the
    /// test errors out as vacuous.
    pub max_global_rejects: u32,
    /// Accepted for source compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; unused.
    pub verbose: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
            max_shrink_iters: 0,
            verbose: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is false for these inputs (`prop_assert!` family).
    Fail(String),
    /// The inputs fell outside the property's precondition
    /// (`prop_assume!`); the case is redrawn, not failed.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Successful-case target for one run: the configured count floored to
/// [`MIN_CASES`], or the `HEAR_PROPTEST_CASES` env override verbatim.
pub fn effective_cases(config: &ProptestConfig) -> u32 {
    if let Ok(v) = std::env::var("HEAR_PROPTEST_CASES") {
        if let Ok(n) = v.trim().parse::<u32>() {
            return n.max(1);
        }
    }
    config.cases.max(MIN_CASES)
}

/// Global `prop_assume!` rejection budget for one run.
pub fn max_rejects(config: &ProptestConfig, cases: u32) -> u32 {
    config.max_global_rejects.max(cases.saturating_mul(100))
}

/// Deterministic per-test RNG: the FNV-1a hash of the test's module path
/// and name, mixed with `HEAR_PROPTEST_SEED` when set. Reruns of the same
/// binary replay identical inputs; distinct tests draw distinct streams.
pub fn rng_for(test_path: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let user_seed = std::env::var("HEAR_PROPTEST_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    TestRng::seed_from_u64(mix(h) ^ user_seed)
}

/// Panic with a reproduction-ready report for a failed case.
pub fn fail_case(test_name: &str, case: u32, cases: u32, inputs: &str, msg: &str) -> ! {
    panic!(
        "property `{test_name}` failed at case {case} of {cases}\n  \
         {msg}\n  \
         inputs: {inputs}\n  \
         note: the run is deterministic; rerun this test binary (or set \
         HEAR_PROPTEST_SEED to vary inputs, HEAR_PROPTEST_CASES to change depth)"
    );
}

/// Panic when `prop_assume!` rejected so often the property is vacuous.
pub fn too_many_rejects(test_name: &str, rejects: u32, last_reason: &str) -> ! {
    panic!(
        "property `{test_name}` rejected {rejects} candidate inputs via prop_assume! \
         (last: {last_reason}); the strategy and precondition are incompatible"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_compat_surface() {
        let c = ProptestConfig {
            cases: 24,
            ..ProptestConfig::default()
        };
        assert_eq!(c.cases, 24);
        assert_eq!(effective_cases(&c), MIN_CASES, "small configs are floored");
        let c = ProptestConfig::with_cases(500);
        assert_eq!(effective_cases(&c), 500);
    }

    #[test]
    fn rng_streams_differ_per_test() {
        let mut a = rng_for("crate::mod::test_a");
        let mut b = rng_for("crate::mod::test_b");
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = rng_for("crate::mod::test_a");
        assert_eq!(a.next_u64(), {
            a2.next_u64();
            a2.next_u64()
        });
    }

    #[test]
    fn error_constructors() {
        assert!(matches!(TestCaseError::fail("x"), TestCaseError::Fail(_)));
        assert!(matches!(
            TestCaseError::reject("y"),
            TestCaseError::Reject(_)
        ));
    }
}
