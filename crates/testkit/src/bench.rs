//! Criterion-shaped benchmark harness.
//!
//! Implements the subset of the `criterion` API the workspace's
//! `crates/bench/benches/*.rs` use — `Criterion::default()` with the
//! `sample_size` / `measurement_time` / `warm_up_time` builders,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter` / `iter_custom`, `BenchmarkId`, `Throughput` — and on
//! top of it records per-benchmark statistics (median / p10 / p90 / mean /
//! min ns per iteration) that [`Criterion::emit`] writes to
//! `BENCH_<target>.json`, so perf trajectories can be tracked per commit
//! without any external dependency.
//!
//! Set `HEAR_BENCH_FAST=1` to clamp warmup/measurement down to a smoke-run
//! budget (CI), and `HEAR_BENCH_DIR` to redirect the JSON output.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work declaration, criterion-style.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark: a function name plus an optional
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

/// Timing state handed to the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the harness-chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Run a routine that does its own timing for `iters` iterations and
    /// returns the elapsed wall time (criterion's `iter_custom`).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchStats {
    pub median_ns: f64,
    pub p10_ns: f64,
    pub p90_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

#[derive(Clone, Debug)]
struct BenchRecord {
    id: String,
    throughput: Option<Throughput>,
    stats: BenchStats,
}

/// The harness entry point; collects results from every group/function
/// registered on it, for [`Criterion::emit`] to serialize.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    results: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().render();
        self.run_one(id, None, f);
        self
    }

    fn budget(&self) -> (usize, Duration, Duration) {
        if std::env::var("HEAR_BENCH_FAST").is_ok_and(|v| v != "0") {
            (
                self.sample_size.min(5),
                self.measurement_time.min(Duration::from_millis(150)),
                self.warm_up_time.min(Duration::from_millis(30)),
            )
        } else {
            (self.sample_size, self.measurement_time, self.warm_up_time)
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        let (sample_size, measurement_time, warm_up_time) = self.budget();
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibrate: one iteration to get a first per-iter estimate.
        f(&mut b);
        let mut per_iter_ns = (b.elapsed.as_nanos().max(1)) as f64;

        // Warm up, re-estimating as we go.
        let warm_start = Instant::now();
        while warm_start.elapsed() < warm_up_time {
            b.iters = iters_for(per_iter_ns, warm_up_time / 4);
            f(&mut b);
            per_iter_ns = (b.elapsed.as_nanos() as f64 / b.iters as f64).max(0.1);
        }

        // Measure.
        let per_sample = measurement_time / sample_size as u32;
        let mut samples = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            b.iters = iters_for(per_iter_ns, per_sample);
            f(&mut b);
            let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
            per_iter_ns = ns.max(0.1);
            samples.push(ns);
        }
        let stats = BenchStats::from_samples(samples, b.iters);

        let mut line = format!(
            "{:<44} median {:>12.1} ns/iter  (p10 {:.1}, p90 {:.1}, n={})",
            id, stats.median_ns, stats.p10_ns, stats.p90_ns, stats.samples
        );
        if let Some(Throughput::Bytes(bytes)) = throughput {
            line.push_str(&format!(
                "  {:.3} GiB/s",
                bytes as f64 / stats.median_ns / 1.073_741_824
            ));
        }
        println!("{line}");

        self.results.push(BenchRecord {
            id,
            throughput,
            stats,
        });
    }

    /// Recorded stats for a benchmark id (the full rendered id, e.g.
    /// `group/function`). For driver binaries that gate on *relative*
    /// results instead of serializing them — e.g. the fused-vs-split
    /// `perf_gate` in `scripts/ci.sh`.
    pub fn stats(&self, id: &str) -> Option<&BenchStats> {
        self.results.iter().find(|r| r.id == id).map(|r| &r.stats)
    }

    /// Write every recorded result to `BENCH_<bench_name>.json` in
    /// `HEAR_BENCH_DIR` (default: the current directory). Called by the
    /// function `criterion_group!` generates.
    pub fn emit(&self, bench_name: &str) {
        let dir = std::env::var("HEAR_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
        self.emit_to(bench_name, std::path::Path::new(&dir));
    }

    /// [`Criterion::emit`] with an explicit output directory.
    pub fn emit_to(&self, bench_name: &str, dir: &std::path::Path) {
        if self.results.is_empty() {
            return;
        }
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("could not create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("BENCH_{bench_name}.json"));
        match std::fs::write(&path, self.to_json(bench_name)) {
            Ok(()) => eprintln!("bench results written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    fn to_json(&self, bench_name: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(bench_name)));
        out.push_str("  \"harness\": \"hear-testkit\",\n");
        out.push_str("  \"unit\": \"ns_per_iter\",\n");
        // With tracing live (HEAR_TRACE=1, or a test flipping the global
        // registry on), embed the metric snapshot so a bench artifact
        // carries the PRF/fabric/pipeline counters behind its numbers.
        {
            let reg = hear_telemetry::Registry::global();
            if reg.is_enabled() {
                out.push_str(&format!(
                    "  \"telemetry\": {},\n",
                    hear_telemetry::export::json_snapshot(reg)
                ));
            }
        }
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let s = &r.stats;
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.3}, \"p10_ns\": {:.3}, \
                 \"p90_ns\": {:.3}, \"mean_ns\": {:.3}, \"min_ns\": {:.3}, \
                 \"samples\": {}, \"iters_per_sample\": {}{}}}{}\n",
                json_escape(&r.id),
                s.median_ns,
                s.p10_ns,
                s.p90_ns,
                s.mean_ns,
                s.min_ns,
                s.samples,
                s.iters_per_sample,
                match r.throughput {
                    Some(Throughput::Bytes(b)) => format!(", \"bytes_per_iter\": {b}"),
                    Some(Throughput::Elements(e)) => format!(", \"elements_per_iter\": {e}"),
                    None => String::new(),
                },
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A named set of related benchmarks sharing a throughput declaration;
/// results land on the parent [`Criterion`] under `group/benchmark` ids.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().render());
        let throughput = self.throughput;
        self.c.run_one(id, throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

impl BenchStats {
    fn from_samples(mut samples: Vec<f64>, iters_per_sample: u64) -> Self {
        assert!(!samples.is_empty());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = samples.len();
        let pct = |q: f64| samples[(((n - 1) as f64) * q).round() as usize];
        BenchStats {
            median_ns: pct(0.5),
            p10_ns: pct(0.1),
            p90_ns: pct(0.9),
            mean_ns: samples.iter().sum::<f64>() / n as f64,
            min_ns: samples[0],
            samples: n,
            iters_per_sample,
        }
    }
}

fn iters_for(per_iter_ns: f64, budget: Duration) -> u64 {
    ((budget.as_nanos() as f64 / per_iter_ns.max(0.1)).round() as u64).clamp(1, 1_000_000_000)
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(6))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_records_stats() {
        let mut c = tiny();
        c.bench_function("accumulate", |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                acc
            })
        });
        assert_eq!(c.results.len(), 1);
        let s = &c.results[0].stats;
        assert_eq!(s.samples, 3);
        assert!(s.median_ns > 0.0);
        assert!(s.p10_ns <= s.median_ns && s.median_ns <= s.p90_ns);
    }

    #[test]
    fn groups_prefix_ids_and_carry_throughput() {
        let mut c = tiny();
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(4096));
        g.bench_with_input(BenchmarkId::new("sum", 16), &16u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter("param-only"), |b| {
            b.iter(|| 1u32 + 1)
        });
        g.finish();
        assert_eq!(c.results[0].id, "grp/sum/16");
        assert_eq!(c.results[1].id, "grp/param-only");
        assert!(matches!(
            c.results[0].throughput,
            Some(Throughput::Bytes(4096))
        ));
    }

    #[test]
    fn iter_custom_uses_reported_duration() {
        let mut c = tiny();
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(1000) * iters as u32)
        });
        let s = &c.results[0].stats;
        assert!((s.median_ns - 1000.0).abs() < 1.0, "median {}", s.median_ns);
    }

    #[test]
    fn emit_writes_parseable_json() {
        let mut c = tiny();
        c.bench_function("emit_probe", |b| b.iter(|| 2u32 * 2));
        let dir = std::env::temp_dir();
        c.emit_to("testkit_selftest", &dir);
        let path = dir.join("BENCH_testkit_selftest.json");
        let body = std::fs::read_to_string(&path).expect("emitted file exists");
        assert!(body.contains("\"bench\": \"testkit_selftest\""));
        assert!(body.contains("\"id\": \"emit_probe\""));
        assert!(body.contains("median_ns"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn emit_embeds_telemetry_snapshot_when_enabled() {
        let reg = hear_telemetry::Registry::global();
        let was = reg.is_enabled();
        reg.set_enabled(true);
        let mut c = tiny();
        c.bench_function("telemetry_probe", |b| b.iter(|| 3u32 * 3));
        let body = c.to_json("with_telemetry");
        reg.set_enabled(was);
        assert!(
            body.contains("\"telemetry\": {\"counters\":{"),
            "snapshot missing from: {body}"
        );
        assert!(body.contains("hear_fabric_messages_total"));
    }

    #[test]
    fn benchmark_id_renderings() {
        assert_eq!(BenchmarkId::new("f", 8).render(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("AesNi").render(), "AesNi");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
