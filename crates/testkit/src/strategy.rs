//! A shrinking-free, allocation-light strategy layer compatible with the
//! subset of `proptest` this workspace uses.
//!
//! A [`Strategy`] is just "something a value can be sampled from": ranges
//! (`0u64..64`, `1u32..=64`, `1u128..`), [`any`] for every primitive,
//! tuples of strategies, [`crate::collection::vec`],
//! [`crate::sample::select`], and the [`Strategy::prop_filter`] /
//! [`Strategy::prop_map`] combinators. There is deliberately no shrinking:
//! failures print the full input set and the reproduction seed instead.

use crate::rng::{SampleRange, TestRng};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Something test inputs can be drawn from. The associated `Value` must be
/// `Debug` so failing cases can print their inputs.
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Keep only samples satisfying `pred`; re-draws on rejection.
    /// Panics if 1000 consecutive draws are rejected (a degenerate filter).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Transform samples with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Blanket strategy impls for the std range types, for every primitive the
/// RNG can sample (integers and floats).
impl<T: Debug + Copy> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_one(rng)
    }
}

impl<T: Debug + Copy> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_one(rng)
    }
}

impl<T: Debug + Copy> Strategy for RangeFrom<T>
where
    RangeFrom<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.clone().sample_one(rng)
    }
}

/// Types with a whole-domain default strategy (`any::<T>()`).
///
/// Integer draws are edge-biased: 1 in 16 samples comes from
/// `{MIN, MAX, 0, 1}` so boundary bugs surface without shrinking.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.next_u64() & 0xF == 0 {
                    match rng.next_u64() & 3 {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        _ => 1 as $t,
                    }
                } else {
                    rng.next_u128() as $t
                }
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform over bit patterns: wild magnitudes, subnormals, ±∞ and NaN
    /// all occur (≈1 in 2000 draws is non-finite) — pair with
    /// `prop_filter("finite", |v| v.is_finite())` when the property needs
    /// finite inputs, exactly as with real proptest.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u32())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Whole-domain strategy for a primitive: `any::<u64>()`, `any::<bool>()`…
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected 1000 consecutive samples — strategy and filter are incompatible", self.reason);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_strategies() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u64..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-7i64..=7).sample(&mut rng);
            assert!((-7..=7).contains(&w));
            let x = (1u128..).sample(&mut rng);
            assert!(x >= 1);
            let f = (1.0f64..2.0).sample(&mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn any_hits_edges() {
        let mut rng = TestRng::new(2);
        let mut saw_extreme = false;
        for _ in 0..400 {
            let v = any::<u64>().sample(&mut rng);
            if v == u64::MAX || v == 0 {
                saw_extreme = true;
            }
        }
        assert!(saw_extreme, "edge bias should surface MIN/MAX/0/1 quickly");
    }

    #[test]
    fn filter_and_map_compose() {
        let mut rng = TestRng::new(3);
        let even = (0u32..1000).prop_filter("even", |v| v % 2 == 0);
        let doubled = (0u32..100).prop_map(|v| v * 2);
        for _ in 0..200 {
            assert_eq!(even.sample(&mut rng) % 2, 0);
            assert_eq!(doubled.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn finite_filter_on_bit_pattern_floats() {
        let mut rng = TestRng::new(4);
        let finite = any::<f64>().prop_filter("finite", |v| v.is_finite());
        for _ in 0..2000 {
            assert!(finite.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn tuples_and_just() {
        let mut rng = TestRng::new(5);
        let (a, b, c) = (1.0f64..2.0, -60i32..60, any::<bool>()).sample(&mut rng);
        assert!((1.0..2.0).contains(&a));
        assert!((-60..60).contains(&b));
        let _ = c;
        assert_eq!(Just(41u8).sample(&mut rng), 41);
    }
}
