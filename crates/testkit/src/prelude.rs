//! The import surface mirroring `proptest::prelude`: bring the macro
//! family, [`Strategy`], [`any`], and [`ProptestConfig`] into scope with
//! one glob.

pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
