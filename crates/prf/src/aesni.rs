//! Hardware-accelerated AES-128 using the x86 AES-NI instruction set.
//!
//! This mirrors the `AES-NI + SSE2` backend of libhear (paper §6): key
//! expansion with `AESKEYGENASSIST` and encryption with ten `AESENC` /
//! `AESENCLAST` rounds. A four-block parallel path keeps the AES pipeline
//! full for bulk keystream generation, which is what gives the backend its
//! large throughput advantage over SHA-1 in Figures 4 and 5.
//!
//! All functions are gated behind a runtime `is_x86_feature_detected!("aes")`
//! check performed once in [`AesNi128::new`]; constructing the type is proof
//! that the feature is present, so the `unsafe` intrinsic calls are sound.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

/// Expanded AES-128 key schedule held in SSE registers' memory form.
#[derive(Clone)]
pub struct AesNi128 {
    round_keys: [__m128i; 11],
}

// __m128i is plain old data; sharing the expanded schedule across rank
// threads is safe.
unsafe impl Send for AesNi128 {}
unsafe impl Sync for AesNi128 {}

/// Returns true when the CPU supports the AES-NI instructions.
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("aes") && std::arch::is_x86_feature_detected!("sse2")
}

macro_rules! expand_round {
    ($rks:expr, $i:expr, $rcon:expr) => {{
        let prev = $rks[$i - 1];
        let mut tmp = _mm_aeskeygenassist_si128(prev, $rcon);
        tmp = _mm_shuffle_epi32(tmp, 0xff);
        let mut key = prev;
        key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
        key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
        key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
        $rks[$i] = _mm_xor_si128(key, tmp);
    }};
}

impl AesNi128 {
    /// Expand the key schedule. Returns `None` when AES-NI is unavailable so
    /// callers can fall back to the portable implementation.
    pub fn new(key: u128) -> Option<Self> {
        if !available() {
            return None;
        }
        // SAFETY: feature presence checked above.
        Some(unsafe { Self::new_unchecked(key) })
    }

    #[target_feature(enable = "aes,sse2")]
    unsafe fn new_unchecked(key: u128) -> Self {
        let kb = key.to_be_bytes();
        let mut rks = [_mm_setzero_si128(); 11];
        rks[0] = _mm_loadu_si128(kb.as_ptr() as *const __m128i);
        expand_round!(rks, 1, 0x01);
        expand_round!(rks, 2, 0x02);
        expand_round!(rks, 3, 0x04);
        expand_round!(rks, 4, 0x08);
        expand_round!(rks, 5, 0x10);
        expand_round!(rks, 6, 0x20);
        expand_round!(rks, 7, 0x40);
        expand_round!(rks, 8, 0x80);
        expand_round!(rks, 9, 0x1b);
        expand_round!(rks, 10, 0x36);
        AesNi128 { round_keys: rks }
    }

    /// Encrypt a single block (big-endian interpretation, matching
    /// [`crate::aes::Aes128::encrypt_block`]).
    #[inline]
    pub fn encrypt_block(&self, block: u128) -> u128 {
        // SAFETY: the type can only be constructed when AES-NI is present.
        unsafe { self.encrypt_block_inner(block) }
    }

    #[target_feature(enable = "aes,sse2")]
    unsafe fn encrypt_block_inner(&self, block: u128) -> u128 {
        let bb = block.to_be_bytes();
        let mut b = _mm_loadu_si128(bb.as_ptr() as *const __m128i);
        b = _mm_xor_si128(b, self.round_keys[0]);
        for rk in &self.round_keys[1..10] {
            b = _mm_aesenc_si128(b, *rk);
        }
        b = _mm_aesenclast_si128(b, self.round_keys[10]);
        let mut out = [0u8; 16];
        _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, b);
        u128::from_be_bytes(out)
    }

    /// Encrypt four independent blocks, interleaving the rounds so the AES
    /// unit pipeline stays full. `blocks` are big-endian u128s as elsewhere.
    #[inline]
    pub fn encrypt4(&self, blocks: [u128; 4]) -> [u128; 4] {
        // SAFETY: see `encrypt_block`.
        unsafe { self.encrypt4_inner(blocks) }
    }

    #[target_feature(enable = "aes,sse2")]
    unsafe fn encrypt4_inner(&self, blocks: [u128; 4]) -> [u128; 4] {
        let load = |x: u128| {
            let b = x.to_be_bytes();
            _mm_loadu_si128(b.as_ptr() as *const __m128i)
        };
        let mut b0 = load(blocks[0]);
        let mut b1 = load(blocks[1]);
        let mut b2 = load(blocks[2]);
        let mut b3 = load(blocks[3]);
        let rk0 = self.round_keys[0];
        b0 = _mm_xor_si128(b0, rk0);
        b1 = _mm_xor_si128(b1, rk0);
        b2 = _mm_xor_si128(b2, rk0);
        b3 = _mm_xor_si128(b3, rk0);
        for rk in &self.round_keys[1..10] {
            b0 = _mm_aesenc_si128(b0, *rk);
            b1 = _mm_aesenc_si128(b1, *rk);
            b2 = _mm_aesenc_si128(b2, *rk);
            b3 = _mm_aesenc_si128(b3, *rk);
        }
        let rkl = self.round_keys[10];
        b0 = _mm_aesenclast_si128(b0, rkl);
        b1 = _mm_aesenclast_si128(b1, rkl);
        b2 = _mm_aesenclast_si128(b2, rkl);
        b3 = _mm_aesenclast_si128(b3, rkl);
        let store = |v: __m128i| {
            let mut out = [0u8; 16];
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, v);
            u128::from_be_bytes(out)
        };
        [store(b0), store(b1), store(b2), store(b3)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    #[test]
    fn matches_fips_vector_when_available() {
        let Some(aes) = AesNi128::new(0x0001_0203_0405_0607_0809_0a0b_0c0d_0e0f) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        let ct = aes.encrypt_block(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff);
        assert_eq!(ct, 0x69c4_e0d8_6a7b_0430_d8cd_b780_70b4_c55a);
    }

    #[test]
    fn agrees_with_software_aes() {
        let key = 0x1357_9bdf_0246_8ace_fdb9_7531_eca8_6420_u128;
        let Some(hw) = AesNi128::new(key) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        let sw = Aes128::new(key);
        for i in 0..2048u128 {
            let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
            assert_eq!(hw.encrypt_block(x), sw.encrypt_block(x), "block {i}");
        }
    }

    #[test]
    fn encrypt4_matches_scalar() {
        let Some(hw) = AesNi128::new(42) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        let blocks = [1u128, u128::MAX, 0xdeadbeef, 1 << 100];
        let out = hw.encrypt4(blocks);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(out[i], hw.encrypt_block(*b));
        }
    }
}
