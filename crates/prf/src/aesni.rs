//! Hardware-accelerated AES-128 using the x86 AES-NI instruction set.
//!
//! This mirrors the `AES-NI + SSE2` backend of libhear (paper §6): key
//! expansion with `AESKEYGENASSIST` and encryption with ten `AESENC` /
//! `AESENCLAST` rounds. An eight-block parallel path keeps the AES unit's
//! pipeline full for bulk keystream generation, which is what gives the
//! backend its large throughput advantage over SHA-1 in Figures 4 and 5.
//!
//! Blocks stay in SSE registers end to end: `u128` values are moved into
//! the big-endian register form AES operates on with one `PSHUFB`
//! (`load_be`/`store_be`) instead of a `to_be_bytes` memory round trip,
//! and the CTR counter blocks for the bulk paths are generated with SIMD
//! adds on the in-register counter ([`AesNi128::encrypt_ctr8`],
//! [`AesNi128::keystream_tile8`]).
//!
//! All functions are gated behind a runtime `is_x86_feature_detected!`
//! check performed once in [`AesNi128::new`]; constructing the type is proof
//! that the features are present, so the `unsafe` intrinsic calls are sound.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

/// Expanded AES-128 key schedule held in SSE registers' memory form.
#[derive(Clone)]
pub struct AesNi128 {
    round_keys: [__m128i; 11],
}

// __m128i is plain old data; sharing the expanded schedule across rank
// threads is safe.
unsafe impl Send for AesNi128 {}
unsafe impl Sync for AesNi128 {}

/// Returns true when the CPU supports the AES-NI instructions (plus the
/// SSSE3 `PSHUFB` the register-form load/store relies on; every AES-NI
/// CPU has it).
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("aes")
        && std::arch::is_x86_feature_detected!("sse2")
        && std::arch::is_x86_feature_detected!("ssse3")
}

/// Shuffle mask reversing all 16 bytes: converts between the native
/// (little-endian) register image of a `u128` and the big-endian byte
/// order the AES state uses.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn bswap_mask() -> __m128i {
    _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
}

/// Load a `u128` into big-endian register form with one shuffle (no
/// `to_be_bytes` memory round trip).
#[inline]
#[target_feature(enable = "sse2,ssse3")]
unsafe fn load_be(x: u128) -> __m128i {
    let v = _mm_set_epi64x((x >> 64) as i64, x as i64);
    _mm_shuffle_epi8(v, bswap_mask())
}

/// Store a big-endian-form register back into a native `u128` (SSE2-only
/// qword extraction, avoiding SSE4.1).
#[inline]
#[target_feature(enable = "sse2,ssse3")]
unsafe fn store_be(v: __m128i) -> u128 {
    let le = _mm_shuffle_epi8(v, bswap_mask());
    let lo = _mm_cvtsi128_si64(le) as u64;
    let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(le, le)) as u64;
    ((hi as u128) << 64) | lo as u128
}

/// Eight consecutive counter blocks `base..base+8` in big-endian register
/// form, generated with SIMD adds on the low qword. Caller must ensure the
/// additions cannot carry out of the low 64 bits (`base as u64 <=
/// u64::MAX - 7`); the carry/wrap boundary takes the scalar fallback.
#[inline]
#[target_feature(enable = "sse2,ssse3")]
unsafe fn ctr8_be(base: u128) -> [__m128i; 8] {
    let m = bswap_mask();
    let b = _mm_set_epi64x((base >> 64) as i64, base as i64);
    let mut out = [_mm_setzero_si128(); 8];
    for (i, o) in out.iter_mut().enumerate() {
        let inc = _mm_set_epi64x(0, i as i64);
        *o = _mm_shuffle_epi8(_mm_add_epi64(b, inc), m);
    }
    out
}

/// Counter blocks near the 64-bit (or 128-bit) carry boundary: plain
/// wrapping adds, loaded one by one. Rare; correctness only.
#[inline]
#[target_feature(enable = "sse2,ssse3")]
unsafe fn ctr8_be_wrapping(base: u128) -> [__m128i; 8] {
    let mut out = [_mm_setzero_si128(); 8];
    for (i, o) in out.iter_mut().enumerate() {
        *o = load_be(base.wrapping_add(i as u128));
    }
    out
}

/// Per-width word swizzle: reverses the bytes within each `width`-byte
/// group, so big-endian keystream words become native-endian words at
/// the same offsets. `width` ∈ {2, 4, 8}; width 1 needs no shuffle.
#[inline]
#[target_feature(enable = "sse2")]
unsafe fn word_swizzle(width: usize) -> __m128i {
    match width {
        2 => _mm_set_epi8(14, 15, 12, 13, 10, 11, 8, 9, 6, 7, 4, 5, 2, 3, 0, 1),
        4 => _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3),
        8 => _mm_set_epi8(8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7),
        _ => unreachable!("word widths are 2, 4 or 8 bytes"),
    }
}

macro_rules! expand_round {
    ($rks:expr, $i:expr, $rcon:expr) => {{
        let prev = $rks[$i - 1];
        let mut tmp = _mm_aeskeygenassist_si128(prev, $rcon);
        tmp = _mm_shuffle_epi32(tmp, 0xff);
        let mut key = prev;
        key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
        key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
        key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
        $rks[$i] = _mm_xor_si128(key, tmp);
    }};
}

/// Run the ten AES-128 rounds over `$n` independent state registers,
/// interleaved so the AES unit's pipeline stays full.
macro_rules! aes_rounds {
    ($self:expr, $s:expr) => {{
        let rk0 = $self.round_keys[0];
        for x in $s.iter_mut() {
            *x = _mm_xor_si128(*x, rk0);
        }
        for rk in &$self.round_keys[1..10] {
            for x in $s.iter_mut() {
                *x = _mm_aesenc_si128(*x, *rk);
            }
        }
        let rkl = $self.round_keys[10];
        for x in $s.iter_mut() {
            *x = _mm_aesenclast_si128(*x, rkl);
        }
    }};
}

impl AesNi128 {
    /// Expand the key schedule. Returns `None` when AES-NI is unavailable so
    /// callers can fall back to the portable implementation.
    pub fn new(key: u128) -> Option<Self> {
        if !available() {
            return None;
        }
        // SAFETY: feature presence checked above.
        Some(unsafe { Self::new_unchecked(key) })
    }

    #[target_feature(enable = "aes,sse2,ssse3")]
    unsafe fn new_unchecked(key: u128) -> Self {
        let mut rks = [_mm_setzero_si128(); 11];
        rks[0] = load_be(key);
        expand_round!(rks, 1, 0x01);
        expand_round!(rks, 2, 0x02);
        expand_round!(rks, 3, 0x04);
        expand_round!(rks, 4, 0x08);
        expand_round!(rks, 5, 0x10);
        expand_round!(rks, 6, 0x20);
        expand_round!(rks, 7, 0x40);
        expand_round!(rks, 8, 0x80);
        expand_round!(rks, 9, 0x1b);
        expand_round!(rks, 10, 0x36);
        AesNi128 { round_keys: rks }
    }

    /// Encrypt a single block (big-endian interpretation, matching
    /// [`crate::aes::Aes128::encrypt_block`]).
    #[inline]
    pub fn encrypt_block(&self, block: u128) -> u128 {
        // SAFETY: the type can only be constructed when AES-NI is present.
        unsafe { self.encrypt_block_inner(block) }
    }

    #[target_feature(enable = "aes,sse2,ssse3")]
    unsafe fn encrypt_block_inner(&self, block: u128) -> u128 {
        let mut s = [load_be(block)];
        aes_rounds!(self, s);
        store_be(s[0])
    }

    /// Encrypt four independent blocks, interleaving the rounds so the AES
    /// unit pipeline stays full. `blocks` are big-endian u128s as elsewhere.
    #[inline]
    pub fn encrypt4(&self, blocks: [u128; 4]) -> [u128; 4] {
        // SAFETY: see `encrypt_block`.
        unsafe { self.encrypt4_inner(blocks) }
    }

    #[target_feature(enable = "aes,sse2,ssse3")]
    unsafe fn encrypt4_inner(&self, blocks: [u128; 4]) -> [u128; 4] {
        let mut s = [
            load_be(blocks[0]),
            load_be(blocks[1]),
            load_be(blocks[2]),
            load_be(blocks[3]),
        ];
        aes_rounds!(self, s);
        [
            store_be(s[0]),
            store_be(s[1]),
            store_be(s[2]),
            store_be(s[3]),
        ]
    }

    /// Encrypt eight independent blocks with the rounds interleaved
    /// eight wide — enough in-flight blocks to saturate the AES unit's
    /// latency×throughput product on every core since Haswell.
    #[inline]
    pub fn encrypt8(&self, blocks: [u128; 8]) -> [u128; 8] {
        // SAFETY: see `encrypt_block`.
        unsafe { self.encrypt8_inner(blocks) }
    }

    #[target_feature(enable = "aes,sse2,ssse3")]
    unsafe fn encrypt8_inner(&self, blocks: [u128; 8]) -> [u128; 8] {
        let mut s = [_mm_setzero_si128(); 8];
        for (x, b) in s.iter_mut().zip(blocks.iter()) {
            *x = load_be(*b);
        }
        aes_rounds!(self, s);
        let mut out = [0u128; 8];
        for (o, x) in out.iter_mut().zip(s.iter()) {
            *o = store_be(*x);
        }
        out
    }

    /// CTR batch: encrypt the eight counter blocks `base..base+8`
    /// (wrapping), generating the counters with SIMD adds instead of
    /// per-block `u128` arithmetic + byte-swap round trips.
    #[inline]
    pub fn encrypt_ctr8(&self, base: u128) -> [u128; 8] {
        // SAFETY: see `encrypt_block`.
        unsafe { self.encrypt_ctr8_inner(base) }
    }

    #[target_feature(enable = "aes,sse2,ssse3")]
    unsafe fn encrypt_ctr8_inner(&self, base: u128) -> [u128; 8] {
        let mut s = if base as u64 <= u64::MAX - 7 {
            ctr8_be(base)
        } else {
            ctr8_be_wrapping(base)
        };
        aes_rounds!(self, s);
        let mut out = [0u128; 8];
        for (o, x) in out.iter_mut().zip(s.iter()) {
            *o = store_be(*x);
        }
        out
    }

    /// One fused-kernel keystream tile: the CTR keystream of blocks
    /// `base..base+8`, written as 128 bytes whose native-endian words of
    /// `width` bytes are exactly keystream words `0..128/width` of the
    /// 8-block group (word 0 of a block is its most significant — the
    /// crate-wide convention). The whole tile is produced in registers:
    /// SIMD counter adds, eight-wide AES rounds, then one `PSHUFB` per
    /// block to land the words in native byte order.
    #[inline]
    pub fn keystream_tile8(&self, base: u128, width: usize, out: &mut [u8; 128]) {
        // SAFETY: see `encrypt_block`.
        unsafe { self.keystream_tile8_inner(base, width, out) }
    }

    #[target_feature(enable = "aes,sse2,ssse3")]
    unsafe fn keystream_tile8_inner(&self, base: u128, width: usize, out: &mut [u8; 128]) {
        let mut s = if base as u64 <= u64::MAX - 7 {
            ctr8_be(base)
        } else {
            ctr8_be_wrapping(base)
        };
        aes_rounds!(self, s);
        // Width-1 words are already in order (big-endian bytes == the
        // byte stream); wider words need the in-group byte reversal.
        if width > 1 {
            let swz = word_swizzle(width);
            for x in s.iter_mut() {
                *x = _mm_shuffle_epi8(*x, swz);
            }
        }
        for (i, x) in s.iter().enumerate() {
            _mm_storeu_si128(out.as_mut_ptr().add(16 * i) as *mut __m128i, *x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes128;

    #[test]
    fn matches_fips_vector_when_available() {
        let Some(aes) = AesNi128::new(0x0001_0203_0405_0607_0809_0a0b_0c0d_0e0f) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        let ct = aes.encrypt_block(0x0011_2233_4455_6677_8899_aabb_ccdd_eeff);
        assert_eq!(ct, 0x69c4_e0d8_6a7b_0430_d8cd_b780_70b4_c55a);
    }

    #[test]
    fn agrees_with_software_aes() {
        let key = 0x1357_9bdf_0246_8ace_fdb9_7531_eca8_6420_u128;
        let Some(hw) = AesNi128::new(key) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        let sw = Aes128::new(key);
        for i in 0..2048u128 {
            let x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
            assert_eq!(hw.encrypt_block(x), sw.encrypt_block(x), "block {i}");
        }
    }

    #[test]
    fn encrypt4_matches_scalar() {
        let Some(hw) = AesNi128::new(42) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        let blocks = [1u128, u128::MAX, 0xdeadbeef, 1 << 100];
        let out = hw.encrypt4(blocks);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(out[i], hw.encrypt_block(*b));
        }
    }

    #[test]
    fn encrypt8_matches_scalar_and_software() {
        let key = 0xfeed_c0de_0000_0000_0123_4567_89ab_cdefu128;
        let Some(hw) = AesNi128::new(key) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        let sw = Aes128::new(key);
        let blocks: [u128; 8] = core::array::from_fn(|i| {
            (i as u128 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835)
        });
        let out = hw.encrypt8(blocks);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(out[i], hw.encrypt_block(*b), "vs scalar, block {i}");
            assert_eq!(out[i], sw.encrypt_block(*b), "vs software, block {i}");
        }
    }

    #[test]
    fn ctr8_matches_per_block_including_boundaries() {
        let Some(hw) = AesNi128::new(0xabcdef) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        // Plain, low-qword carry, and full 128-bit wrap bases.
        let bases = [
            0u128,
            12345,
            (u64::MAX - 3) as u128, // carries out of the low qword
            ((7u128) << 64) | (u64::MAX - 5) as u128,
            u128::MAX - 2, // wraps past 2^128
        ];
        for base in bases {
            let out = hw.encrypt_ctr8(base);
            for (i, o) in out.iter().enumerate() {
                assert_eq!(
                    *o,
                    hw.encrypt_block(base.wrapping_add(i as u128)),
                    "base={base:#x} i={i}"
                );
            }
        }
    }

    #[test]
    fn keystream_tile8_words_match_block_splitters() {
        let Some(hw) = AesNi128::new(77) else {
            eprintln!("AES-NI not available; skipping");
            return;
        };
        for base in [0u128, 999, (u64::MAX - 2) as u128] {
            let blocks: Vec<u128> = (0..8)
                .map(|i| hw.encrypt_block(base.wrapping_add(i)))
                .collect();
            let mut tile = [0u8; 128];
            // u8: the tile is the big-endian byte stream itself.
            hw.keystream_tile8(base, 1, &mut tile);
            for (b, blk) in blocks.iter().enumerate() {
                assert_eq!(&tile[16 * b..16 * b + 16], &crate::block_words_u8(*blk));
            }
            // u16/u32/u64: native-endian words at their stream offsets.
            hw.keystream_tile8(base, 2, &mut tile);
            for (b, blk) in blocks.iter().enumerate() {
                for (k, w) in crate::block_words_u16(*blk).iter().enumerate() {
                    let off = 16 * b + 2 * k;
                    let got = u16::from_ne_bytes(tile[off..off + 2].try_into().unwrap());
                    assert_eq!(got, *w, "u16 base={base} block={b} word={k}");
                }
            }
            hw.keystream_tile8(base, 4, &mut tile);
            for (b, blk) in blocks.iter().enumerate() {
                for (k, w) in crate::block_words_u32(*blk).iter().enumerate() {
                    let off = 16 * b + 4 * k;
                    let got = u32::from_ne_bytes(tile[off..off + 4].try_into().unwrap());
                    assert_eq!(got, *w, "u32 base={base} block={b} word={k}");
                }
            }
            hw.keystream_tile8(base, 8, &mut tile);
            for (b, blk) in blocks.iter().enumerate() {
                for (k, w) in crate::block_words_u64(*blk).iter().enumerate() {
                    let off = 16 * b + 8 * k;
                    let got = u64::from_ne_bytes(tile[off..off + 8].try_into().unwrap());
                    assert_eq!(got, *w, "u64 base={base} block={b} word={k}");
                }
            }
        }
    }
}
