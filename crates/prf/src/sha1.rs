//! Portable SHA-1 (RFC 3174) and a keyed PRF construction on top of it.
//!
//! The paper's first libhear backend used OpenSSL SHA-1 and found it an
//! order of magnitude too slow for modern line rates (Fig. 5); we reproduce
//! that backend with a from-scratch compression function. The PRF maps a
//! 128-bit input to a 128-bit output by hashing `key || input` — both fit a
//! single 64-byte compression block, so each PRF call costs exactly one
//! compression, which is the same cost structure as the OpenSSL path.

/// SHA-1 initial state (RFC 3174 §6.1).
const H0: [u32; 5] = [
    0x6745_2301,
    0xefcd_ab89,
    0x98ba_dcfe,
    0x1032_5476,
    0xc3d2_e1f0,
];

/// One SHA-1 compression over a 64-byte block.
#[inline]
pub fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }

    let [mut a, mut b, mut c, mut d, mut e] = *state;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
            20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
            _ => (b ^ c ^ d, 0xca62_c1d6),
        };
        let tmp = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = tmp;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

/// Hash an arbitrary message (multi-block, with RFC 3174 padding). Used by
/// the test vectors; the hot PRF path below avoids this general machinery.
pub fn sha1(msg: &[u8]) -> [u8; 20] {
    let mut state = H0;
    let mut block = [0u8; 64];
    let mut chunks = msg.chunks_exact(64);
    for c in &mut chunks {
        block.copy_from_slice(c);
        compress(&mut state, &block);
    }
    let rem = chunks.remainder();
    let bitlen = (msg.len() as u64) * 8;
    block[..rem.len()].copy_from_slice(rem);
    block[rem.len()] = 0x80;
    for b in &mut block[rem.len() + 1..] {
        *b = 0;
    }
    if rem.len() + 1 + 8 > 64 {
        compress(&mut state, &block);
        block = [0u8; 64];
    }
    block[56..64].copy_from_slice(&bitlen.to_be_bytes());
    compress(&mut state, &block);

    let mut out = [0u8; 20];
    for (i, s) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&s.to_be_bytes());
    }
    out
}

/// SHA-1-based keyed PRF: `F_k(x) = SHA1(k || x)` truncated to 128 bits.
///
/// The padded single block (`16 B key || 16 B input || 0x80 || zeros ||
/// length`) is precomputed except for the input bytes, so each evaluation is
/// one compression plus a 16-byte copy.
#[derive(Clone)]
pub struct Sha1Prf {
    template: [u8; 64],
}

impl Sha1Prf {
    pub fn new(key: u128) -> Self {
        let mut template = [0u8; 64];
        template[..16].copy_from_slice(&key.to_be_bytes());
        template[32] = 0x80;
        // Message length is fixed: 32 bytes = 256 bits.
        template[56..64].copy_from_slice(&256u64.to_be_bytes());
        Sha1Prf { template }
    }

    /// Evaluate the PRF, returning the first 128 bits of the digest.
    #[inline]
    pub fn eval_block(&self, x: u128) -> u128 {
        let mut block = self.template;
        block[16..32].copy_from_slice(&x.to_be_bytes());
        let mut state = H0;
        compress(&mut state, &block);
        ((state[0] as u128) << 96)
            | ((state[1] as u128) << 64)
            | ((state[2] as u128) << 32)
            | (state[3] as u128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc3174_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn rfc3174_longer() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_message() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&msg)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn boundary_padding_lengths() {
        // Lengths 55, 56, 63, 64, 65 exercise both padding branches.
        for len in [55usize, 56, 63, 64, 65, 119, 120] {
            let msg = vec![0xabu8; len];
            // Compare against a naive two-pass reference: hashing must not
            // panic and must be length-sensitive.
            let d1 = sha1(&msg);
            let mut msg2 = msg.clone();
            msg2.push(0);
            assert_ne!(d1, sha1(&msg2), "len {len}");
        }
    }

    #[test]
    fn prf_matches_direct_hash() {
        let key = 0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978_u128;
        let prf = Sha1Prf::new(key);
        for x in [0u128, 1, 42, u128::MAX, 1 << 77] {
            let mut msg = Vec::new();
            msg.extend_from_slice(&key.to_be_bytes());
            msg.extend_from_slice(&x.to_be_bytes());
            let d = sha1(&msg);
            let expect = u128::from_be_bytes(d[..16].try_into().unwrap());
            assert_eq!(prf.eval_block(x), expect);
        }
    }

    #[test]
    fn prf_key_and_input_sensitivity() {
        let p1 = Sha1Prf::new(1);
        let p2 = Sha1Prf::new(2);
        assert_ne!(p1.eval_block(7), p2.eval_block(7));
        assert_ne!(p1.eval_block(7), p1.eval_block(8));
    }
}
