//! Fused mask/unmask kernels: keystream generation and word-wise combine
//! in one pass over memory.
//!
//! The split path the schemes used before this module — `keystream_*` into a
//! scratch vector, then a second loop combining scratch with the payload —
//! touches every payload byte twice and every keystream byte three times
//! (write, read, discard). The fused kernels here generate each 128-bit PRF
//! block, split it into words, and immediately fold the words into the
//! payload buffer, so the keystream never exists in memory. On AES-NI the
//! blocks additionally stay in SSE registers through an 8-wide pipeline
//! ([`crate::aesni::AesNi128::keystream_tile8`]) and only the swizzled
//! native-endian words are stored, once, to a stack tile.
//!
//! Three combine flavours cover every scheme in `hear-core`:
//! [`add_keystream_into`] (encrypt for additive schemes, §5.1.1),
//! [`sub_keystream_into`] (decrypt, and the cancelling `-F_{k_{i+1}}` term of
//! §5.1.4), and [`xor_keystream_into`] (the Z_2 schemes, §5.2.3).
//!
//! The `*_blocks_into` variants combine from **pregenerated** PRF blocks
//! instead of a cipher — the consumption side of the keystream prefetcher in
//! `hear-layer`, where iteration *i+1*'s blocks were produced by a worker
//! thread during iteration *i*'s communication phase.
//!
//! ## Keystream convention
//!
//! Identical to [`crate::keystream_u32`] and friends: element `j` of a
//! width-`w` stream is word `j mod per` of block `F(base + j/per)` with
//! `per = 16/w`, words split big-endian (word 0 most significant). The
//! property tests at the bottom pin every fused kernel to the split
//! reference bit-for-bit.

#[cfg(test)]
use crate::Prf;
use crate::{block_words_u16, block_words_u32, block_words_u64, block_words_u8};
use crate::{blocks_metric, Backend, PrfCipher};
use hear_telemetry::Metric;

/// Words the fused kernels can mask: the unsigned machine integers whose
/// width divides the 128-bit PRF block.
///
/// The trait captures exactly what [`fused_into`] needs — block splitting,
/// wrapping ring arithmetic and XOR — so `hear-core`'s `RingWord` can bound
/// on it without this crate knowing about schemes.
///
/// # Safety
///
/// Implementors guarantee `Self` is a plain machine integer: no padding,
/// every bit pattern valid, and `size_of::<Self>()` divides 16. The fused
/// kernels rely on this to reinterpret an aligned keystream tile as a
/// `&[Self]` without copying word by word.
pub unsafe trait KernelWord: Copy + Eq + std::fmt::Debug + Send + Sync + 'static {
    /// Words per 128-bit PRF block (`16 / size_of::<Self>()`).
    const PER_BLOCK: usize;
    /// Word `k` of a PRF block under the big-endian splitting convention.
    fn extract(block: u128, k: usize) -> Self;
    /// Wrapping addition in `Z_{2^w}`.
    fn wrapping_add(self, rhs: Self) -> Self;
    /// Wrapping subtraction in `Z_{2^w}`.
    fn wrapping_sub(self, rhs: Self) -> Self;
    /// Bitwise XOR (the `Z_2^w` group operation).
    fn bxor(self, rhs: Self) -> Self;
    /// Reassemble a word from native-endian bytes (the layout
    /// [`crate::aesni::AesNi128::keystream_tile8`] stores).
    fn from_ne(bytes: &[u8]) -> Self;
}

macro_rules! kernel_word {
    ($t:ty, $splitter:ident) => {
        // SAFETY: unsigned machine integers — no padding, all bit
        // patterns valid, widths 1/2/4/8 divide 16.
        unsafe impl KernelWord for $t {
            const PER_BLOCK: usize = 16 / std::mem::size_of::<$t>();
            #[inline(always)]
            fn extract(block: u128, k: usize) -> $t {
                $splitter(block)[k]
            }
            #[inline(always)]
            fn wrapping_add(self, rhs: $t) -> $t {
                <$t>::wrapping_add(self, rhs)
            }
            #[inline(always)]
            fn wrapping_sub(self, rhs: $t) -> $t {
                <$t>::wrapping_sub(self, rhs)
            }
            #[inline(always)]
            fn bxor(self, rhs: $t) -> $t {
                self ^ rhs
            }
            #[inline(always)]
            fn from_ne(bytes: &[u8]) -> $t {
                <$t>::from_ne_bytes(bytes.try_into().expect("width-sized chunk"))
            }
        }
    };
}

kernel_word!(u8, block_words_u8);
kernel_word!(u16, block_words_u16);
kernel_word!(u32, block_words_u32);
kernel_word!(u64, block_words_u64);

/// Bytes-masked counter for a backend (family `hear_masked_bytes_total`).
/// Public (but hidden) for the same reason as [`crate::blocks_metric`].
#[doc(hidden)]
pub fn masked_metric(backend: Backend) -> Metric {
    match backend {
        Backend::AesSoft => Metric::MaskedBytesAesSoft,
        Backend::AesNi => Metric::MaskedBytesAesNi,
        Backend::Sha1 => Metric::MaskedBytesSha1,
        Backend::Sha1Ni => Metric::MaskedBytesSha1Ni,
    }
}

/// Stack tile for one 8-block keystream group. 16-byte aligned so the
/// SSE stores in [`crate::aesni::AesNi128::keystream_tile8`] and the wide
/// reloads in the combine loop never straddle cache lines.
#[repr(align(16))]
struct Tile([u8; 128]);

impl Tile {
    /// The tile reinterpreted as keystream words. One wide load per word
    /// instead of a byte-array round trip per word — this is what the
    /// `unsafe trait` contract on [`KernelWord`] buys.
    #[inline(always)]
    fn words<W: KernelWord>(&self) -> &[W] {
        // SAFETY: `Tile` is 16-byte aligned and 128 bytes long; by the
        // `KernelWord` contract `W` is a padding-free integer whose size
        // divides 16, so every bit pattern in the tile is a valid `W`.
        unsafe {
            std::slice::from_raw_parts(self.0.as_ptr().cast(), 128 / std::mem::size_of::<W>())
        }
    }
}

/// PRF blocks a fused pass over `len` words starting at stream index
/// `first` touches: the block span `⌊last/per⌋ − ⌊first/per⌋ + 1`. This is
/// exactly what the serial pass evaluates (leading partial + whole +
/// trailing partial), so counting it up front lets the parallel path in
/// [`crate::par`] attribute identical telemetry from the submitting thread
/// while the workers run uncounted.
#[inline]
pub(crate) fn fused_blocks<W: KernelWord>(first: u64, len: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let per = W::PER_BLOCK as u64;
    let last = first + len as u64 - 1;
    last / per - first / per + 1
}

/// `buf[i] <- f(buf[i], stream[first + i])` in one pass, where `stream` is
/// the width-`W` keystream of `prf` at `base`.
///
/// Telemetry matches the split path exactly: `KeystreamBytes` counts the
/// expanded bytes, the per-backend block counter counts each PRF block
/// once, and additionally `hear_masked_bytes_total` records that the bytes
/// went through a fused kernel.
#[inline]
fn fused_into<W, F>(prf: &PrfCipher, base: u128, first: u64, buf: &mut [W], f: F)
where
    W: KernelWord,
    F: Fn(W, W) -> W + Copy,
{
    if buf.is_empty() {
        return;
    }
    hear_telemetry::add(Metric::KeystreamBytes, std::mem::size_of_val(buf) as u64);
    hear_telemetry::add(
        masked_metric(prf.backend()),
        std::mem::size_of_val(buf) as u64,
    );
    hear_telemetry::add(
        blocks_metric(prf.backend()),
        fused_blocks::<W>(first, buf.len()),
    );
    fused_into_uncounted(prf, base, first, buf, f);
}

/// The fused combine pass with **no telemetry attribution** — the worker
/// half of the parallel kernels. Counting lives with the submitter (see
/// [`fused_blocks`]); worker threads have no registry context and must
/// record nothing lest the counts land in the global registry.
#[inline]
pub(crate) fn fused_into_uncounted<W, F>(
    prf: &PrfCipher,
    base: u128,
    first: u64,
    buf: &mut [W],
    f: F,
) where
    W: KernelWord,
    F: Fn(W, W) -> W + Copy,
{
    if buf.is_empty() {
        return;
    }
    let per = W::PER_BLOCK as u64;
    let mut j = first;
    let mut idx = 0usize;

    // Leading partial block: first may land mid-block.
    if !j.is_multiple_of(per) {
        let block = prf.eval_block_uncounted(base.wrapping_add((j / per) as u128));
        while !j.is_multiple_of(per) && idx < buf.len() {
            let w = W::extract(block, (j % per) as usize);
            buf[idx] = f(buf[idx], w);
            idx += 1;
            j += 1;
        }
    }

    // Bulk: whole blocks.
    let whole = (buf.len() - idx) / W::PER_BLOCK;
    if whole > 0 {
        let first_block = j / per;
        #[cfg(target_arch = "x86_64")]
        if let Some(ni) = prf.aesni() {
            let mut b = 0usize;
            let mut tile = Tile([0u8; 128]);
            let wsize = std::mem::size_of::<W>();
            let lanes = 128 / wsize;
            while b + 8 <= whole {
                ni.keystream_tile8(
                    base.wrapping_add((first_block + b as u64) as u128),
                    wsize,
                    &mut tile.0,
                );
                // Fixed-length slice + zip: the trip count is a
                // monomorphization-time constant and there are no bounds
                // checks left, so the combine vectorizes.
                for (d, &w) in buf[idx..idx + lanes].iter_mut().zip(tile.words::<W>()) {
                    *d = f(*d, w);
                }
                idx += lanes;
                b += 8;
            }
            // Remainder blocks one at a time (register-form single blocks).
            while b < whole {
                let block = ni.encrypt_block(base.wrapping_add((first_block + b as u64) as u128));
                for k in 0..W::PER_BLOCK {
                    let w = W::extract(block, k);
                    buf[idx] = f(buf[idx], w);
                    idx += 1;
                }
                b += 1;
            }
            j += whole as u64 * per;
            finish_trailing(prf, base, &mut j, per, &mut idx, buf, f);
            return;
        }
        // Generic backends: batched fill, then combine per block.
        const BATCH: usize = 256;
        let mut blocks = [0u128; BATCH];
        let mut b = 0u64;
        while (b as usize) < whole {
            let n = BATCH.min(whole - b as usize);
            prf.fill_blocks_uncounted(
                base.wrapping_add((first_block + b) as u128),
                &mut blocks[..n],
            );
            for block in &blocks[..n] {
                for k in 0..W::PER_BLOCK {
                    buf[idx] = f(buf[idx], W::extract(*block, k));
                    idx += 1;
                }
            }
            b += n as u64;
        }
        j += whole as u64 * per;
    }

    finish_trailing(prf, base, &mut j, per, &mut idx, buf, f);
}

/// Trailing partial block shared by the AES-NI and generic bulk paths.
#[inline]
fn finish_trailing<W, F>(
    prf: &PrfCipher,
    base: u128,
    j: &mut u64,
    per: u64,
    idx: &mut usize,
    buf: &mut [W],
    f: F,
) where
    W: KernelWord,
    F: Fn(W, W) -> W + Copy,
{
    if *idx < buf.len() {
        let block = prf.eval_block_uncounted(base.wrapping_add((*j / per) as u128));
        while *idx < buf.len() {
            let w = W::extract(block, (*j % per) as usize);
            buf[*idx] = f(buf[*idx], w);
            *idx += 1;
            *j += 1;
        }
    }
}

/// `buf[i] ^= stream[first + i]` — fused XOR mask/unmask (Z_2 schemes).
pub fn xor_keystream_into<W: KernelWord>(prf: &PrfCipher, base: u128, first: u64, buf: &mut [W]) {
    fused_into(prf, base, first, buf, |a, b| a.bxor(b));
}

/// `buf[i] += stream[first + i]` (wrapping) — fused additive mask.
pub fn add_keystream_into<W: KernelWord>(prf: &PrfCipher, base: u128, first: u64, buf: &mut [W]) {
    fused_into(prf, base, first, buf, |a, b| a.wrapping_add(b));
}

/// `buf[i] -= stream[first + i]` (wrapping) — fused additive unmask and the
/// cancelling term of the §5.1.4 construction.
pub fn sub_keystream_into<W: KernelWord>(prf: &PrfCipher, base: u128, first: u64, buf: &mut [W]) {
    fused_into(prf, base, first, buf, |a, b| a.wrapping_sub(b));
}

/// Combine from pregenerated PRF blocks: `buf[i] <- f(buf[i],
/// words(blocks)[skip + i])`, where `words(blocks)` is the width-`W` word
/// stream of `blocks` and `skip` is the offset of `buf[0]` in that stream.
///
/// This is the prefetch cache-hit path: the caller proved `blocks` covers
/// `skip .. skip + buf.len()` and accounts the telemetry itself (the blocks
/// were generated uncounted on a worker thread).
#[inline]
pub(crate) fn blocks_combine<W, F>(blocks: &[u128], skip: u64, buf: &mut [W], f: F)
where
    W: KernelWord,
    F: Fn(W, W) -> W + Copy,
{
    let per = W::PER_BLOCK as u64;
    debug_assert!(
        skip + buf.len() as u64 <= blocks.len() as u64 * per,
        "blocks do not cover the requested word range"
    );
    for (j, x) in (skip..).zip(buf.iter_mut()) {
        let w = W::extract(blocks[(j / per) as usize], (j % per) as usize);
        *x = f(*x, w);
    }
}

/// XOR-combine from pregenerated blocks (see [`blocks_combine`]).
pub fn xor_blocks_into<W: KernelWord>(blocks: &[u128], skip: u64, buf: &mut [W]) {
    blocks_combine(blocks, skip, buf, |a, b| a.bxor(b));
}

/// Wrapping-add-combine from pregenerated blocks (see [`blocks_combine`]).
pub fn add_blocks_into<W: KernelWord>(blocks: &[u128], skip: u64, buf: &mut [W]) {
    blocks_combine(blocks, skip, buf, |a, b| a.wrapping_add(b));
}

/// Wrapping-sub-combine from pregenerated blocks (see [`blocks_combine`]).
pub fn sub_blocks_into<W: KernelWord>(blocks: &[u128], skip: u64, buf: &mut [W]) {
    blocks_combine(blocks, skip, buf, |a, b| a.wrapping_sub(b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use proptest::TestRng;

    const KEY: u128 = 0x0011_2233_4455_6677_8899_aabb_ccdd_eeff;

    fn backends() -> Vec<PrfCipher> {
        let mut v = vec![PrfCipher::new(Backend::AesSoft, KEY).unwrap()];
        if Backend::AesNi.is_available() {
            v.push(PrfCipher::new(Backend::AesNi, KEY).unwrap());
        }
        if Backend::Sha1Ni.is_available() {
            v.push(PrfCipher::new(Backend::Sha1Ni, KEY).unwrap());
        }
        v.push(PrfCipher::new(Backend::Sha1, KEY).unwrap());
        v
    }

    /// Split reference: fill a keystream with the documented convention,
    /// then combine — what the fused kernels must equal bit-for-bit.
    fn reference<W: KernelWord>(
        prf: &PrfCipher,
        base: u128,
        first: u64,
        buf: &mut [W],
        f: impl Fn(W, W) -> W,
    ) {
        let per = W::PER_BLOCK as u64;
        for (i, x) in buf.iter_mut().enumerate() {
            let j = first + i as u64;
            let block = prf.eval_block(base.wrapping_add((j / per) as u128));
            *x = f(*x, W::extract(block, (j % per) as usize));
        }
    }

    fn check_all_ops<W: KernelWord>(prf: &PrfCipher, base: u128, first: u64, data: &[W]) {
        let mut want = data.to_vec();
        let mut got = data.to_vec();
        reference(prf, base, first, &mut want, |a, b| a.wrapping_add(b));
        add_keystream_into(prf, base, first, &mut got);
        assert_eq!(want, got, "add backend={:?}", prf.backend());

        let mut want = data.to_vec();
        let mut got = data.to_vec();
        reference(prf, base, first, &mut want, |a, b| a.wrapping_sub(b));
        sub_keystream_into(prf, base, first, &mut got);
        assert_eq!(want, got, "sub backend={:?}", prf.backend());

        let mut want = data.to_vec();
        let mut got = data.to_vec();
        reference(prf, base, first, &mut want, |a, b| a.bxor(b));
        xor_keystream_into(prf, base, first, &mut got);
        assert_eq!(want, got, "xor backend={:?}", prf.backend());
    }

    #[test]
    fn add_then_sub_roundtrips() {
        for prf in backends() {
            let data: Vec<u32> = (0..300u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
            let mut buf = data.clone();
            add_keystream_into(&prf, 42, 7, &mut buf);
            assert_ne!(buf, data);
            sub_keystream_into(&prf, 42, 7, &mut buf);
            assert_eq!(buf, data);
        }
    }

    #[test]
    fn xor_is_an_involution() {
        for prf in backends() {
            let data: Vec<u16> = (0..777u32).map(|i| (i * 31) as u16).collect();
            let mut buf = data.clone();
            xor_keystream_into(&prf, 9, 3, &mut buf);
            assert_ne!(buf, data);
            xor_keystream_into(&prf, 9, 3, &mut buf);
            assert_eq!(buf, data);
        }
    }

    #[test]
    fn empty_buffers_are_untouched_and_uncounted() {
        let reg = hear_telemetry::Registry::new_enabled();
        let prf = PrfCipher::new(Backend::AesSoft, KEY).unwrap();
        {
            let _ctx = reg.install(None);
            let mut buf: [u64; 0] = [];
            add_keystream_into(&prf, 1, 1, &mut buf);
        }
        assert_eq!(reg.counter(Metric::KeystreamBytes), 0);
        assert_eq!(reg.counter(Metric::MaskedBytesAesSoft), 0);
    }

    #[test]
    fn counts_bytes_and_blocks_like_split_path() {
        let reg = hear_telemetry::Registry::new_enabled();
        let prf = PrfCipher::new(Backend::AesSoft, KEY).unwrap();
        {
            let _ctx = reg.install(None);
            // 100 u32 words starting at word 2: 1 leading partial block,
            // 24 whole blocks, 1 trailing partial block = 26 PRF blocks.
            let mut buf = vec![0u32; 100];
            add_keystream_into(&prf, 5, 2, &mut buf);
        }
        assert_eq!(reg.counter(Metric::KeystreamBytes), 400);
        assert_eq!(reg.counter(Metric::MaskedBytesAesSoft), 400);
        assert_eq!(reg.counter(Metric::PrfBlocksAesSoft), 26);
    }

    #[test]
    fn blocks_into_matches_keystream_into() {
        let prf = PrfCipher::new(Backend::AesSoft, KEY).unwrap();
        let base = 1_000_000u128;
        let first = 5u64;
        let data: Vec<u32> = (0..97u32).map(|i| i ^ 0xdead_beef).collect();

        let mut want = data.clone();
        add_keystream_into(&prf, base, first, &mut want);

        // Pregenerate the covering block range, as the prefetcher would.
        let per = <u32 as KernelWord>::PER_BLOCK as u64;
        let first_block = first / per;
        let last_word = first + data.len() as u64 - 1;
        let nblocks = (last_word / per - first_block + 1) as usize;
        let mut blocks = vec![0u128; nblocks];
        prf.fill_blocks(base.wrapping_add(first_block as u128), &mut blocks);

        let mut got = data.clone();
        add_blocks_into(&blocks, first - first_block * per, &mut got);
        assert_eq!(want, got);
    }

    proptest! {
        /// Every fused kernel equals the split reference for random widths,
        /// offsets and lengths, on every available backend.
        #[test]
        fn fused_equals_reference(
            base in any::<u128>(),
            first in 0u64..10_000,
            len in 0usize..1000,
            seed in any::<u64>(),
        ) {
            let mut rng = TestRng::new(seed);
            for prf in backends() {
                let d8: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                check_all_ops(&prf, base, first, &d8);
                let d16: Vec<u16> = (0..len).map(|_| rng.next_u64() as u16).collect();
                check_all_ops(&prf, base, first, &d16);
                let d32: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32).collect();
                check_all_ops(&prf, base, first, &d32);
                let d64: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
                check_all_ops(&prf, base, first, &d64);
            }
        }

        /// The pregenerated-blocks combine equals the cipher-driven combine
        /// for random coverage windows.
        #[test]
        fn blocks_combine_equals_cipher_combine(
            base in any::<u128>(),
            first in 0u64..5_000,
            len in 1usize..500,
        ) {
            let prf = PrfCipher::new(Backend::AesSoft, KEY).unwrap();
            let per = <u16 as KernelWord>::PER_BLOCK as u64;
            let data: Vec<u16> = (0..len as u32).map(|i| (i * 7) as u16).collect();

            let mut want = data.clone();
            xor_keystream_into(&prf, base, first, &mut want);

            let first_block = first / per;
            let last_word = first + len as u64 - 1;
            let nblocks = (last_word / per - first_block + 1) as usize;
            let mut blocks = vec![0u128; nblocks];
            prf.fill_blocks(base.wrapping_add(first_block as u128), &mut blocks);
            let mut got = data.clone();
            xor_blocks_into(&blocks, first - first_block * per, &mut got);
            prop_assert_eq!(want, got);
        }
    }
}
