//! Hardware-accelerated SHA-1 using the x86 SHA-NI instruction set.
//!
//! The paper's SHA-1 measurements used OpenSSL on Broadwell Xeons, which
//! predate SHA-NI — software SHA-1 was the backend that lost to AES-NI by
//! an order of magnitude. This module adds the counterfactual the paper
//! could not measure: SHA-1 *with* hardware rounds. The `ablation` and
//! `fig5` harnesses show it narrows but does not close the gap (one
//! serial compression per 128-bit PRF output versus ten pipelineable AES
//! rounds), reinforcing the paper's backend choice.
//!
//! Single-block-message compression only (all the PRF needs): the padded
//! `key ‖ input` block is fixed at 64 bytes, as in [`crate::sha1`].
//! Correctness is pinned to the verified software implementation by test.
//!
//! Unlike [`crate::aesni`], there is no byte-swap round trip to remove
//! here: SHA-1's message schedule is defined over big-endian words, so
//! the `to_be_bytes` into the template *is* the message encoding, and
//! `compress_ni` performs exactly one unavoidable `PSHUFB` per 16 message
//! bytes when loading the schedule registers.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

/// Returns true when the CPU supports the SHA new instructions.
pub fn available() -> bool {
    std::arch::is_x86_feature_detected!("sha")
        && std::arch::is_x86_feature_detected!("sse4.1")
        && std::arch::is_x86_feature_detected!("ssse3")
}

/// SHA-1 PRF with hardware compression; computes the same function as
/// [`crate::sha1::Sha1Prf`] with a different engine.
#[derive(Clone)]
pub struct Sha1NiPrf {
    template: [u8; 64],
}

impl Sha1NiPrf {
    /// Construct when SHA-NI is available.
    pub fn new(key: u128) -> Option<Self> {
        if !available() {
            return None;
        }
        let mut template = [0u8; 64];
        template[..16].copy_from_slice(&key.to_be_bytes());
        template[32] = 0x80;
        template[56..64].copy_from_slice(&256u64.to_be_bytes());
        Some(Sha1NiPrf { template })
    }

    /// Evaluate the PRF, returning the first 128 bits of the digest.
    #[inline]
    pub fn eval_block(&self, x: u128) -> u128 {
        let mut block = self.template;
        block[16..32].copy_from_slice(&x.to_be_bytes());
        // SAFETY: constructor verified the required CPU features.
        let state = unsafe { compress_ni(&block) };
        ((state[0] as u128) << 96)
            | ((state[1] as u128) << 64)
            | ((state[2] as u128) << 32)
            | (state[3] as u128)
    }
}

/// `_mm_sha1rnds4_epu32` needs a const immediate; dispatch the round
/// function index (group/5) through literal arms.
macro_rules! rnds4 {
    ($abcd:expr, $e:expr, $f:expr) => {
        match $f {
            0 => _mm_sha1rnds4_epu32($abcd, $e, 0),
            1 => _mm_sha1rnds4_epu32($abcd, $e, 1),
            2 => _mm_sha1rnds4_epu32($abcd, $e, 2),
            _ => _mm_sha1rnds4_epu32($abcd, $e, 3),
        }
    };
}

/// One SHA-1 compression over a 64-byte block from the fixed initial
/// state, returning the five state words.
#[target_feature(enable = "sha,sse4.1,ssse3")]
unsafe fn compress_ni(block: &[u8; 64]) -> [u32; 5] {
    // Lane layout: A in lane 3 (the Intel flow's convention).
    let abcd_save = _mm_set_epi32(
        0x6745_2301u32 as i32,
        0xefcd_ab89u32 as i32,
        0x98ba_dcfeu32 as i32,
        0x1032_5476u32 as i32,
    );
    let e_save = _mm_set_epi32(0xc3d2_e1f0u32 as i32, 0, 0, 0);
    let mut abcd = abcd_save;

    // Load the four 16-byte message words, byte-swapped to big-endian.
    let mask = _mm_set_epi64x(0x0001_0203_0405_0607, 0x0809_0a0b_0c0d_0e0f);
    let mut m = [
        _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr() as *const __m128i), mask),
        _mm_shuffle_epi8(
            _mm_loadu_si128(block.as_ptr().add(16) as *const __m128i),
            mask,
        ),
        _mm_shuffle_epi8(
            _mm_loadu_si128(block.as_ptr().add(32) as *const __m128i),
            mask,
        ),
        _mm_shuffle_epi8(
            _mm_loadu_si128(block.as_ptr().add(48) as *const __m128i),
            mask,
        ),
    ];

    // 20 groups of four rounds. Group k consumes m[k % 4]; the message
    // schedule regenerates future words with the canonical cadence:
    //   k ∈ [1, 16]:  m[(k+3)%4] = sha1msg1(m[(k+3)%4], mk)
    //   k ∈ [2, 17]:  m[(k+2)%4] ^= mk
    //   k ∈ [3, 18]:  m[(k+1)%4] = sha1msg2(m[(k+1)%4], mk)
    // The E input of group k+1 is sha1nexte(pre-round ABCD of group k, …).
    let mut e_src = abcd; // pre-round ABCD feeding the next group's E
    let mut e = _mm_add_epi32(e_save, m[0]);
    abcd = rnds4!(abcd, e, 0);
    for k in 1..20usize {
        let mk = m[k % 4];
        e = _mm_sha1nexte_epu32(e_src, mk);
        e_src = abcd;
        abcd = rnds4!(abcd, e, k / 5);
        if (1..=16).contains(&k) {
            m[(k + 3) % 4] = _mm_sha1msg1_epu32(m[(k + 3) % 4], mk);
        }
        if (2..=17).contains(&k) {
            m[(k + 2) % 4] = _mm_xor_si128(m[(k + 2) % 4], mk);
        }
        if (3..=18).contains(&k) {
            m[(k + 1) % 4] = _mm_sha1msg2_epu32(m[(k + 1) % 4], mk);
        }
    }
    // Combine with the initial state.
    let e_final = _mm_sha1nexte_epu32(e_src, e_save);
    abcd = _mm_add_epi32(abcd, abcd_save);

    let mut tmp = [0u32; 4];
    _mm_storeu_si128(tmp.as_mut_ptr() as *mut __m128i, abcd);
    [
        tmp[3],
        tmp[2],
        tmp[1],
        tmp[0],
        _mm_extract_epi32(e_final, 3) as u32,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1::{sha1, Sha1Prf};

    #[test]
    fn digest_matches_reference_vector() {
        if !available() {
            eprintln!("SHA-NI not available; skipping");
            return;
        }
        // Single-block "abc" digest through compress_ni must equal the
        // RFC 3174 vector (both implementations share the padding logic,
        // so check the raw compression through the PRF path instead):
        // build the exact padded block for "abc".
        let mut block = [0u8; 64];
        block[..3].copy_from_slice(b"abc");
        block[3] = 0x80;
        block[56..64].copy_from_slice(&24u64.to_be_bytes());
        let state = unsafe { compress_ni(&block) };
        let expect = sha1(b"abc");
        let mut got = [0u8; 20];
        for (i, w) in state.iter().enumerate() {
            got[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn matches_software_sha1_prf() {
        let Some(hw) = Sha1NiPrf::new(0x0123_4567_89ab_cdef) else {
            eprintln!("SHA-NI not available; skipping");
            return;
        };
        let sw = Sha1Prf::new(0x0123_4567_89ab_cdef);
        for x in 0..512u128 {
            let x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            assert_eq!(hw.eval_block(x), sw.eval_block(x), "x={x}");
        }
    }

    #[test]
    fn key_sensitivity() {
        let (Some(a), Some(b)) = (Sha1NiPrf::new(1), Sha1NiPrf::new(2)) else {
            eprintln!("SHA-NI not available; skipping");
            return;
        };
        assert_ne!(a.eval_block(0), b.eval_block(0));
    }
}
