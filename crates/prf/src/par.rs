//! Zero-dependency worker pool and parallel mask kernels.
//!
//! The fused kernels in [`crate::kernels`] are memory-bandwidth-bound: one
//! AES-NI core sustains a few GB/s of keystream-combine, well below the
//! DRAM bandwidth of any multi-core node. Because HEAR pads are pure in
//! `(epoch, offset)` — element `j` is always masked with word `j mod per`
//! of block `F(base + j/per)`, independent of who computes it — a large
//! buffer can be cut at PRF-block boundaries and each contiguous range
//! masked on a different core, bit-identically to the serial pass.
//!
//! The pool here is deliberately minimal:
//!
//! * persistent parked threads, sized by
//!   [`std::thread::available_parallelism`] and overridable with the
//!   `HEAR_THREADS` environment variable (read once, at first use);
//! * fork-join [`WorkerPool::run`] with the *submitting* thread working as
//!   shard zero's peer — `threads == 1` degenerates to an inline serial
//!   loop with no synchronization at all;
//! * a single-slot background lane ([`WorkerPool::submit_bg`], newest job
//!   wins) that the keystream [`Prefetcher`](../../hear_layer) rides
//!   instead of owning a bespoke thread;
//! * **no allocation on the submitter path** after the lazy one-time worker
//!   spawn, so the engine's steady state stays allocation-free.
//!
//! Telemetry discipline: worker threads have no installed registry context
//! and must record nothing (recording would land in the *global* registry
//! and diverge from per-rank counts). All parallel entry points therefore
//! run *uncounted* kernels on the workers and attribute the exact serial
//! totals — bytes and the block-span count `last/per − first/per + 1` —
//! from the submitting thread, keeping every counter identical to the
//! serial path.

use crate::kernels::{fused_blocks, fused_into_uncounted, masked_metric};
use crate::{blocks_metric, KernelWord, PrfCipher};
use hear_telemetry::Metric;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

/// Smallest buffer (bytes) worth parallelizing at all. Below this the §4
/// small-message regime applies and synchronization would cost more than
/// the memory pass saves.
pub const PAR_MIN_BYTES: usize = 1 << 20;

/// Target bytes per shard: coarse enough that the per-shard mutex claim is
/// noise, fine enough that 4 shards exist at [`PAR_MIN_BYTES`].
pub const SHARD_BYTES: usize = 1 << 18;

/// Thread budget for this process: `HEAR_THREADS` when set (clamped to at
/// least 1), else [`std::thread::available_parallelism`].
pub fn configured_threads() -> usize {
    match std::env::var("HEAR_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(1),
            Err(_) => fallback_threads(),
        },
        Err(_) => fallback_threads(),
    }
}

fn fallback_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Scoped pool override for this thread; null means "use the global".
    static POOL_OVERRIDE: Cell<*const WorkerPool> = const { Cell::new(std::ptr::null()) };
}

/// Run `f` with `pool` installed as this thread's masking pool: every
/// [`WorkerPool::with_current`] resolution on this thread uses `pool`
/// instead of the process-wide global for the duration of `f` (restored
/// on unwind). Overrides nest; spawned threads are unaffected.
pub fn with_pool<R>(pool: &WorkerPool, f: impl FnOnce() -> R) -> R {
    struct Reset(*const WorkerPool);
    impl Drop for Reset {
        fn drop(&mut self) {
            POOL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = POOL_OVERRIDE.with(|c| c.replace(pool));
    let _reset = Reset(prev);
    f()
}

/// A job the background lane can run: the prefetcher's "generate the next
/// epoch's keystream" work. Implementors keep their own state behind a
/// mutex; [`run`](BgTask::run) is re-invoked every time the task is
/// (re)submitted and must return promptly once its work cell is empty.
pub trait BgTask: Send + Sync {
    fn run(&self);
}

/// One claimable fork-join job. The function pointer is lifetime-erased;
/// soundness argument at [`WorkerPool::run`].
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    nshards: usize,
    /// Next unclaimed shard index.
    next: usize,
    /// Shards currently executing on some thread.
    active: usize,
    /// A shard panicked; the submitter re-raises after the join.
    panicked: bool,
}

struct State {
    job: Option<Job>,
    bg: Option<Arc<dyn BgTask>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    /// Workers park here waiting for shards or background jobs.
    work_cv: Condvar,
    /// The submitter parks here waiting for the last shard to retire.
    done_cv: Condvar,
}

/// Persistent fork-join pool with a background lane. See the module docs.
pub struct WorkerPool {
    threads: usize,
    inner: Arc<Inner>,
    /// Serializes fork-join jobs from concurrent in-process ranks.
    submit: Mutex<()>,
    /// Lazily spawned worker handles (at most `threads − 1`, but at least
    /// one so the background lane works even on a single-core budget).
    workers: Mutex<Vec<JoinHandle<()>>>,
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl WorkerPool {
    /// A pool with an explicit thread budget (`threads` counts the
    /// submitter; `threads == 1` means fully serial fork-join).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    job: None,
                    bg: None,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
            }),
            submit: Mutex::new(()),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool, sized by [`configured_threads`] on first use.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::new(configured_threads()))
    }

    /// Resolve the pool masking on this thread should use — the scoped
    /// [`with_pool`] override when inside one, [`WorkerPool::global`]
    /// otherwise — and run `f` on it. The consumers that auto-parallelize
    /// (the integer schemes' stream application, the HoMAC digest
    /// fan-out) route through this so bit-identity suites can pin
    /// explicit 1/2/4-thread pools without touching `HEAR_THREADS`
    /// (which the global pool reads only once per process).
    pub fn with_current<R>(f: impl FnOnce(&WorkerPool) -> R) -> R {
        let p = POOL_OVERRIDE.with(Cell::get);
        if p.is_null() {
            f(WorkerPool::global())
        } else {
            // SAFETY: the pointer was installed by `with_pool`, whose
            // borrow of the pool is held for the whole override scope and
            // restored (via the drop guard) before the borrow ends.
            f(unsafe { &*p })
        }
    }

    /// The configured thread budget (including the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Shard count for a buffer of `bytes`: one shard per [`SHARD_BYTES`],
    /// capped by the thread budget.
    pub fn shards_for(&self, bytes: usize) -> usize {
        (bytes / SHARD_BYTES).clamp(1, self.threads)
    }

    /// Spawn workers up to `want` total. One-time cost; steady state takes
    /// the length check and returns without allocating.
    fn ensure_workers(&self, want: usize) {
        let mut workers = lock_unpoisoned(&self.workers);
        while workers.len() < want {
            let idx = workers.len();
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::Builder::new()
                .name(format!("hear-worker-{idx}"))
                .spawn(move || worker_loop(&inner))
                .expect("spawn hear worker");
            workers.push(handle);
        }
    }

    /// Run `f(0), f(1), …, f(nshards − 1)` across the pool, returning when
    /// all shards have retired. Shards must touch disjoint data; the
    /// submitter executes shards alongside the workers.
    ///
    /// Serial degeneracies — `threads == 1`, a single shard — run inline
    /// with no locking. Panics in any shard are re-raised here after every
    /// other shard has finished.
    ///
    /// Do not call from a pool worker (the submit lock is not reentrant).
    pub fn run(&self, nshards: usize, f: &(dyn Fn(usize) + Sync)) {
        if nshards == 0 {
            return;
        }
        if self.threads == 1 || nshards == 1 {
            for i in 0..nshards {
                f(i);
            }
            return;
        }
        let _job_turn = lock_unpoisoned(&self.submit);
        self.ensure_workers((self.threads - 1).min(nshards - 1));

        // SAFETY (lifetime erasure): the reference is published to worker
        // threads only through `State.job`, every executing shard is
        // tracked in `Job.active`, and this function does not return until
        // the job is unpublished with `next == nshards && active == 0`. No
        // worker can observe the reference after `run` returns, so the
        // erased lifetime never outlives the real one.
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        {
            let mut st = lock_unpoisoned(&self.inner.state);
            st.job = Some(Job {
                f: f_static,
                nshards,
                next: 0,
                active: 0,
                panicked: false,
            });
            self.inner.work_cv.notify_all();
        }

        // Work alongside the pool until no shard is claimable.
        loop {
            let shard = {
                let mut st = lock_unpoisoned(&self.inner.state);
                let job = st.job.as_mut().expect("job published by this thread");
                if job.next >= job.nshards {
                    break;
                }
                let s = job.next;
                job.next += 1;
                job.active += 1;
                s
            };
            let ok = catch_unwind(AssertUnwindSafe(|| f(shard))).is_ok();
            let mut st = lock_unpoisoned(&self.inner.state);
            let job = st.job.as_mut().expect("job published by this thread");
            job.active -= 1;
            if !ok {
                job.panicked = true;
            }
        }

        // Join: wait for worker-held shards, then unpublish.
        let panicked = {
            let mut st = lock_unpoisoned(&self.inner.state);
            while st
                .job
                .as_ref()
                .is_some_and(|j| j.next < j.nshards || j.active > 0)
            {
                st = self
                    .inner
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            st.job.take().expect("job unpublished only here").panicked
        };
        if panicked {
            panic!("a parallel mask shard panicked");
        }
    }

    /// Publish `task` on the single-slot background lane (newest submission
    /// wins) and wake a worker to run it. The task's `run` is responsible
    /// for draining its own work cell; resubmitting an already-running task
    /// is harmless.
    pub fn submit_bg(&self, task: Arc<dyn BgTask>) {
        self.ensure_workers(1);
        let mut st = lock_unpoisoned(&self.inner.state);
        st.bg = Some(task);
        self.inner.work_cv.notify_one();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_unpoisoned(&self.inner.state);
            st.shutdown = true;
            self.inner.work_cv.notify_all();
        }
        for h in lock_unpoisoned(&self.workers).drain(..) {
            let _ = h.join();
        }
    }
}

enum Claim {
    Shard(&'static (dyn Fn(usize) + Sync), usize),
    Bg(Arc<dyn BgTask>),
}

fn worker_loop(inner: &Inner) {
    loop {
        let claim = {
            let mut st = lock_unpoisoned(&inner.state);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(job) = st.job.as_mut() {
                    if job.next < job.nshards {
                        let s = job.next;
                        job.next += 1;
                        job.active += 1;
                        break Claim::Shard(job.f, s);
                    }
                }
                // Fork-join shards outrank the background lane: masking is
                // on the critical path, prefetch rides the slack.
                if let Some(task) = st.bg.take() {
                    break Claim::Bg(task);
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        match claim {
            Claim::Shard(f, s) => {
                let ok = catch_unwind(AssertUnwindSafe(|| f(s))).is_ok();
                let mut st = lock_unpoisoned(&inner.state);
                if let Some(job) = st.job.as_mut() {
                    job.active -= 1;
                    if !ok {
                        job.panicked = true;
                    }
                    if job.next >= job.nshards && job.active == 0 {
                        inner.done_cv.notify_all();
                    }
                }
            }
            // A panicking background task must not take the worker down
            // with it; the next submission simply reruns the task.
            Claim::Bg(task) => {
                let _ = catch_unwind(AssertUnwindSafe(|| task.run()));
            }
        }
    }
}

/// `*mut W` that may cross threads. Each shard reconstructs a slice over
/// its own disjoint index range, so no two threads alias.
struct SendPtr<W>(*mut W);
unsafe impl<W> Send for SendPtr<W> {}
unsafe impl<W> Sync for SendPtr<W> {}

impl<W> SendPtr<W> {
    /// Accessor (rather than field access) so closures capture the
    /// `Sync` wrapper, not the raw pointer field (2021 disjoint capture).
    fn get(&self) -> *mut W {
        self.0
    }
}

/// Word range `[start, end)` of `buf` covered by shard `k` when the block
/// span of `(first, len)` is cut into `nshards` contiguous block runs.
///
/// Cutting at *block* boundaries is what keeps the parallel pass
/// bit-identical: shard `k`'s first element `j` still uses word `j mod
/// per` of block `F(base + j/per)`, exactly as the serial pass would, and
/// no block straddles two shards (so no combine is split mid-block).
fn shard_word_range<W: KernelWord>(
    first: u64,
    len: usize,
    nshards: usize,
    k: usize,
) -> (usize, usize) {
    let per = W::PER_BLOCK as u64;
    let first_block = first / per;
    let nblocks = fused_blocks::<W>(first, len);
    let bps = nblocks.div_ceil(nshards as u64);
    let b0 = first_block + (k as u64 * bps).min(nblocks);
    let b1 = first_block + ((k as u64 + 1) * bps).min(nblocks);
    let start = (b0 * per).max(first) - first;
    let end = (b1 * per).max(first) - first;
    ((start as usize).min(len), (end as usize).min(len))
}

/// Cut `buf` into `nshards` contiguous chunks and run `f(start, chunk)`
/// across the pool, where `start` is the chunk's offset in `buf`. The
/// degenerate cases (one shard, empty buffer) run inline. Used by
/// consumers whose per-element work has no block-boundary constraint
/// (e.g. HoMAC tags, one PRF block per element).
pub fn for_each_shard<T, F>(pool: &WorkerPool, buf: &mut [T], nshards: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = buf.len();
    if nshards <= 1 || pool.threads() == 1 || len == 0 {
        f(0, buf);
        return;
    }
    let chunk = len.div_ceil(nshards);
    let ptr = SendPtr(buf.as_mut_ptr());
    pool.run(nshards, &|k| {
        let s = (k * chunk).min(len);
        let e = ((k + 1) * chunk).min(len);
        if s >= e {
            return;
        }
        // SAFETY: chunks are disjoint, in bounds, and `buf` outlives
        // `run` (which joins before returning).
        let shard = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        f(s, shard);
    });
}

/// Fused combine across the pool: count the exact serial telemetry totals
/// on the submitting thread, then run uncounted kernels over disjoint
/// block-aligned shards. Falls back to the serial counted kernel below
/// [`PAR_MIN_BYTES`] or on a single-thread budget.
fn par_fused<W, F>(
    pool: &WorkerPool,
    prf: &PrfCipher,
    base: u128,
    first: u64,
    buf: &mut [W],
    serial: impl Fn(&PrfCipher, u128, u64, &mut [W]),
    f: F,
) where
    W: KernelWord,
    F: Fn(W, W) -> W + Copy + Send + Sync,
{
    let bytes = std::mem::size_of_val(buf);
    let nshards = pool.shards_for(bytes);
    if bytes < PAR_MIN_BYTES || pool.threads() == 1 || nshards == 1 {
        serial(prf, base, first, buf);
        return;
    }
    hear_telemetry::add(Metric::KeystreamBytes, bytes as u64);
    hear_telemetry::add(masked_metric(prf.backend()), bytes as u64);
    hear_telemetry::add(
        blocks_metric(prf.backend()),
        fused_blocks::<W>(first, buf.len()),
    );

    let len = buf.len();
    let ptr = SendPtr(buf.as_mut_ptr());
    pool.run(nshards, &|k| {
        let (s, e) = shard_word_range::<W>(first, len, nshards, k);
        if s >= e {
            return;
        }
        // SAFETY: shard ranges are disjoint, within `len`, and `buf`
        // outlives `run` (which joins before returning).
        let shard = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        fused_into_uncounted(prf, base, first + s as u64, shard, f);
    });
}

/// Parallel [`crate::add_keystream_into`] (identical output and telemetry).
pub fn par_add_keystream_into<W: KernelWord>(
    pool: &WorkerPool,
    prf: &PrfCipher,
    base: u128,
    first: u64,
    buf: &mut [W],
) {
    par_fused(
        pool,
        prf,
        base,
        first,
        buf,
        crate::add_keystream_into,
        |a, b| a.wrapping_add(b),
    );
}

/// Parallel [`crate::sub_keystream_into`] (identical output and telemetry).
pub fn par_sub_keystream_into<W: KernelWord>(
    pool: &WorkerPool,
    prf: &PrfCipher,
    base: u128,
    first: u64,
    buf: &mut [W],
) {
    par_fused(
        pool,
        prf,
        base,
        first,
        buf,
        crate::sub_keystream_into,
        |a, b| a.wrapping_sub(b),
    );
}

/// Parallel [`crate::xor_keystream_into`] (identical output and telemetry).
pub fn par_xor_keystream_into<W: KernelWord>(
    pool: &WorkerPool,
    prf: &PrfCipher,
    base: u128,
    first: u64,
    buf: &mut [W],
) {
    par_fused(
        pool,
        prf,
        base,
        first,
        buf,
        crate::xor_keystream_into,
        |a, b| a.bxor(b),
    );
}

/// Parallel combine from pregenerated blocks (the prefetch cache-hit
/// path). Uncounted like the serial `*_blocks_into`: the consumer
/// attributes the totals. `skip` is the offset of `buf[0]` in the word
/// stream of `blocks`.
fn par_blocks<W, F>(pool: &WorkerPool, blocks: &[u128], skip: u64, buf: &mut [W], f: F)
where
    W: KernelWord,
    F: Fn(W, W) -> W + Copy + Send + Sync,
{
    let bytes = std::mem::size_of_val(buf);
    let nshards = pool.shards_for(bytes);
    if bytes < PAR_MIN_BYTES || pool.threads() == 1 || nshards == 1 {
        crate::kernels::blocks_combine(blocks, skip, buf, f);
        return;
    }
    let len = buf.len();
    let ptr = SendPtr(buf.as_mut_ptr());
    pool.run(nshards, &|k| {
        let (s, e) = shard_word_range::<W>(skip, len, nshards, k);
        if s >= e {
            return;
        }
        // SAFETY: disjoint in-bounds shard ranges; see `par_fused`.
        let shard = unsafe { std::slice::from_raw_parts_mut(ptr.get().add(s), e - s) };
        crate::kernels::blocks_combine(blocks, skip + s as u64, shard, f);
    });
}

/// Parallel [`crate::add_blocks_into`].
pub fn par_add_blocks_into<W: KernelWord>(
    pool: &WorkerPool,
    blocks: &[u128],
    skip: u64,
    buf: &mut [W],
) {
    par_blocks(pool, blocks, skip, buf, |a, b| a.wrapping_add(b));
}

/// Parallel [`crate::sub_blocks_into`].
pub fn par_sub_blocks_into<W: KernelWord>(
    pool: &WorkerPool,
    blocks: &[u128],
    skip: u64,
    buf: &mut [W],
) {
    par_blocks(pool, blocks, skip, buf, |a, b| a.wrapping_sub(b));
}

/// Parallel [`crate::xor_blocks_into`].
pub fn par_xor_blocks_into<W: KernelWord>(
    pool: &WorkerPool,
    blocks: &[u128],
    skip: u64,
    buf: &mut [W],
) {
    par_blocks(pool, blocks, skip, buf, |a, b| a.bxor(b));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{add_keystream_into, sub_keystream_into, xor_keystream_into, Backend};
    use std::sync::atomic::{AtomicUsize, Ordering};

    const KEY: u128 = 0x00aa_bb11_22cc_dd33_44ee_ff55_6677_8899;

    #[test]
    fn run_covers_every_shard_exactly_once() {
        for threads in [1usize, 2, 4] {
            let pool = WorkerPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
            pool.run(hits.len(), &|k| {
                hits[k].fetch_add(1, Ordering::Relaxed);
            });
            for (k, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "threads={threads} shard {k}");
            }
        }
    }

    #[test]
    fn run_is_reusable_and_serializes_jobs() {
        let pool = WorkerPool::new(3);
        for round in 0..16 {
            let total = AtomicUsize::new(0);
            pool.run(8, &|k| {
                total.fetch_add(k + 1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 36, "round {round}");
        }
    }

    #[test]
    fn shard_panic_propagates_to_the_submitter() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|k| {
                if k == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err());
        // The pool survives a panicked job.
        let n = AtomicUsize::new(0);
        pool.run(4, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn bg_task_runs_and_newest_submission_wins() {
        struct Counter(AtomicUsize);
        impl BgTask for Counter {
            fn run(&self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let pool = WorkerPool::new(1); // even a 1-thread budget serves bg jobs
        let task = Arc::new(Counter(AtomicUsize::new(0)));
        pool.submit_bg(task.clone());
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while task.0.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "bg task never ran");
            std::thread::yield_now();
        }
    }

    #[test]
    fn shard_ranges_partition_the_buffer() {
        for (first, len, nshards) in [
            (0u64, 1000usize, 4usize),
            (2, 999, 3),
            (7, 64, 16), // more shards than blocks
            (5, 3, 2),   // single-block buffer
            (0, 17, 1),
        ] {
            let mut cursor = 0usize;
            for k in 0..nshards {
                let (s, e) = shard_word_range::<u32>(first, len, nshards, k);
                assert!(s <= e, "inverted range");
                if s < e {
                    assert_eq!(s, cursor, "gap before shard {k}");
                    cursor = e;
                }
            }
            assert_eq!(cursor, len, "first={first} len={len} nshards={nshards}");
        }
    }

    fn check_par_equals_serial<W: KernelWord>(threads: usize, len: usize, first: u64, seed: u64) {
        let prf = PrfCipher::new(Backend::AesSoft, KEY).unwrap();
        let pool = WorkerPool::new(threads);
        let data: Vec<W> = {
            let mut acc = 0x9e37_79b9_7f4a_7c15u64 ^ seed;
            (0..len)
                .map(|_| {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                    W::from_ne(&acc.to_ne_bytes()[..std::mem::size_of::<W>()])
                })
                .collect()
        };
        let base = 77u128;

        let mut want = data.clone();
        add_keystream_into(&prf, base, first, &mut want);
        let mut got = data.clone();
        par_add_keystream_into(&pool, &prf, base, first, &mut got);
        assert_eq!(want, got, "add threads={threads} len={len} first={first}");

        let mut want = data.clone();
        sub_keystream_into(&prf, base, first, &mut want);
        let mut got = data.clone();
        par_sub_keystream_into(&pool, &prf, base, first, &mut got);
        assert_eq!(want, got, "sub threads={threads}");

        let mut want = data.clone();
        xor_keystream_into(&prf, base, first, &mut want);
        let mut got = data.clone();
        par_xor_keystream_into(&pool, &prf, base, first, &mut got);
        assert_eq!(want, got, "xor threads={threads}");
    }

    #[test]
    fn parallel_masks_match_serial_above_threshold() {
        // Big enough to clear PAR_MIN_BYTES for u32/u64; odd length and
        // offset so leading/trailing partial blocks land mid-shard-run.
        let len = PAR_MIN_BYTES / 4 + 13;
        for threads in [1usize, 2, 4] {
            check_par_equals_serial::<u32>(threads, len, 3, 1);
            check_par_equals_serial::<u64>(threads, len, 1, 2);
        }
    }

    #[test]
    fn small_buffers_take_the_serial_path_bit_identically() {
        for threads in [1usize, 2, 4] {
            check_par_equals_serial::<u16>(threads, 1021, 5, 3);
            check_par_equals_serial::<u8>(threads, 63, 9, 4);
        }
    }

    #[test]
    fn parallel_blocks_combine_matches_serial() {
        let prf = PrfCipher::new(Backend::AesSoft, KEY).unwrap();
        let pool = WorkerPool::new(4);
        let len = PAR_MIN_BYTES / 4 + 7;
        let first = 2u64;
        let per = <u32 as KernelWord>::PER_BLOCK as u64;
        let first_block = first / per;
        let nblocks = fused_blocks::<u32>(first, len) as usize;
        let mut blocks = vec![0u128; nblocks];
        prf.fill_blocks_uncounted(5u128.wrapping_add(first_block as u128), &mut blocks);
        let skip = first - first_block * per;

        let data: Vec<u32> = (0..len as u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let mut want = data.clone();
        crate::add_blocks_into(&blocks, skip, &mut want);
        let mut got = data.clone();
        par_add_blocks_into(&pool, &blocks, skip, &mut got);
        assert_eq!(want, got);
    }

    #[test]
    fn with_pool_override_scopes_and_restores() {
        let outer = WorkerPool::new(2);
        let inner = WorkerPool::new(4);
        let global_threads = WorkerPool::with_current(WorkerPool::threads);
        with_pool(&outer, || {
            assert_eq!(WorkerPool::with_current(WorkerPool::threads), 2);
            // Overrides nest; the inner scope restores the outer one.
            with_pool(&inner, || {
                assert_eq!(WorkerPool::with_current(WorkerPool::threads), 4);
            });
            assert_eq!(WorkerPool::with_current(WorkerPool::threads), 2);
            // Spawned threads see the global, not this thread's override.
            let seen = std::thread::spawn(|| WorkerPool::with_current(WorkerPool::threads))
                .join()
                .unwrap();
            assert_eq!(seen, global_threads);
        });
        assert_eq!(
            WorkerPool::with_current(WorkerPool::threads),
            global_threads
        );
    }

    #[test]
    fn hear_threads_env_is_parsed_and_clamped() {
        // Pin the global pool's size *before* mutating the env so a
        // concurrent first call to `global()` can't observe our values.
        let _ = WorkerPool::global();
        std::env::set_var("HEAR_THREADS", "3");
        assert_eq!(configured_threads(), 3);
        std::env::set_var("HEAR_THREADS", "0"); // clamped to at least 1
        assert_eq!(configured_threads(), 1);
        std::env::set_var("HEAR_THREADS", "nope"); // invalid → hardware fallback
        assert_eq!(configured_threads(), fallback_threads());
        std::env::remove_var("HEAR_THREADS");
        assert_eq!(configured_threads(), fallback_threads());
    }

    #[test]
    fn parallel_telemetry_totals_match_serial() {
        use hear_telemetry::Registry;
        let prf = PrfCipher::new(Backend::AesSoft, KEY).unwrap();
        let pool = WorkerPool::new(4);
        let len = PAR_MIN_BYTES / 4 + 5;

        let serial = Registry::new_enabled();
        {
            let _ctx = serial.install(None);
            let mut buf = vec![0u32; len];
            add_keystream_into(&prf, 9, 2, &mut buf);
        }
        let par = Registry::new_enabled();
        {
            let _ctx = par.install(None);
            let mut buf = vec![0u32; len];
            par_add_keystream_into(&pool, &prf, 9, 2, &mut buf);
        }
        for m in [
            Metric::KeystreamBytes,
            Metric::MaskedBytesAesSoft,
            Metric::PrfBlocksAesSoft,
        ] {
            assert_eq!(serial.counter(m), par.counter(m), "{m:?}");
        }
    }
}
