//! Portable software AES-128 (FIPS-197).
//!
//! This is the fallback backend used when the host CPU does not expose
//! AES-NI. It is a straightforward table-driven implementation: the four
//! T-tables are derived from the S-box at compile time, so the crate carries
//! no opaque binary blobs. The implementation encrypts single 128-bit blocks;
//! bulk keystream generation is layered on top in [`crate::ctr`].

/// The AES S-box (FIPS-197 §5.1.1).
pub const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the AES-128 key schedule.
const RCON: [u32; 10] = [
    0x0100_0000,
    0x0200_0000,
    0x0400_0000,
    0x0800_0000,
    0x1000_0000,
    0x2000_0000,
    0x4000_0000,
    0x8000_0000,
    0x1b00_0000,
    0x3600_0000,
];

/// Multiply a byte by `x` (i.e. 2) in GF(2^8) with the AES polynomial.
const fn xtime(b: u8) -> u8 {
    let hi = b >> 7;
    (b << 1) ^ (hi.wrapping_mul(0x1b))
}

/// Build the main encryption T-table `T0`; the other three tables are byte
/// rotations of this one.
const fn build_t0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        let s2 = xtime(s);
        let s3 = s2 ^ s;
        // Column layout matches the big-endian word convention used below:
        // T0[x] = (2·S[x], S[x], S[x], 3·S[x]).
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
}

static T0: [u32; 256] = build_t0();

#[inline(always)]
fn t0(x: u8) -> u32 {
    T0[x as usize]
}
#[inline(always)]
fn t1(x: u8) -> u32 {
    T0[x as usize].rotate_right(8)
}
#[inline(always)]
fn t2(x: u8) -> u32 {
    T0[x as usize].rotate_right(16)
}
#[inline(always)]
fn t3(x: u8) -> u32 {
    T0[x as usize].rotate_right(24)
}

#[inline(always)]
fn sub_word(w: u32) -> u32 {
    ((SBOX[(w >> 24) as usize] as u32) << 24)
        | ((SBOX[((w >> 16) & 0xff) as usize] as u32) << 16)
        | ((SBOX[((w >> 8) & 0xff) as usize] as u32) << 8)
        | (SBOX[(w & 0xff) as usize] as u32)
}

/// An expanded AES-128 key schedule: 11 round keys of four 32-bit words each,
/// stored big-endian word-wise as in FIPS-197.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [u32; 44],
}

impl Aes128 {
    /// Expand a 128-bit key (FIPS-197 §5.2).
    pub fn new(key: u128) -> Self {
        let kb = key.to_be_bytes();
        let mut w = [0u32; 44];
        for (i, chunk) in kb.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ RCON[i / 4 - 1];
            }
            w[i] = w[i - 4] ^ temp;
        }
        Aes128 { round_keys: w }
    }

    /// Encrypt one 128-bit block. The block is interpreted big-endian, so
    /// `encrypt_block(0x00112233…)` corresponds to the byte sequence
    /// `00 11 22 33 …` of the FIPS-197 test vectors.
    pub fn encrypt_block(&self, block: u128) -> u128 {
        let b = block.to_be_bytes();
        let rk = &self.round_keys;
        let mut s0 = u32::from_be_bytes([b[0], b[1], b[2], b[3]]) ^ rk[0];
        let mut s1 = u32::from_be_bytes([b[4], b[5], b[6], b[7]]) ^ rk[1];
        let mut s2 = u32::from_be_bytes([b[8], b[9], b[10], b[11]]) ^ rk[2];
        let mut s3 = u32::from_be_bytes([b[12], b[13], b[14], b[15]]) ^ rk[3];

        // Nine full rounds of SubBytes+ShiftRows+MixColumns folded into
        // T-table lookups.
        for round in 1..10 {
            let k = 4 * round;
            let t0v = t0((s0 >> 24) as u8)
                ^ t1(((s1 >> 16) & 0xff) as u8)
                ^ t2(((s2 >> 8) & 0xff) as u8)
                ^ t3((s3 & 0xff) as u8)
                ^ rk[k];
            let t1v = t0((s1 >> 24) as u8)
                ^ t1(((s2 >> 16) & 0xff) as u8)
                ^ t2(((s3 >> 8) & 0xff) as u8)
                ^ t3((s0 & 0xff) as u8)
                ^ rk[k + 1];
            let t2v = t0((s2 >> 24) as u8)
                ^ t1(((s3 >> 16) & 0xff) as u8)
                ^ t2(((s0 >> 8) & 0xff) as u8)
                ^ t3((s1 & 0xff) as u8)
                ^ rk[k + 2];
            let t3v = t0((s3 >> 24) as u8)
                ^ t1(((s0 >> 16) & 0xff) as u8)
                ^ t2(((s1 >> 8) & 0xff) as u8)
                ^ t3((s2 & 0xff) as u8)
                ^ rk[k + 3];
            s0 = t0v;
            s1 = t1v;
            s2 = t2v;
            s3 = t3v;
        }

        // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        let f = |a: u32, b: u32, c: u32, d: u32, k: u32| -> u32 {
            (((SBOX[(a >> 24) as usize] as u32) << 24)
                | ((SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
                | ((SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
                | (SBOX[(d & 0xff) as usize] as u32))
                ^ k
        };
        let o0 = f(s0, s1, s2, s3, rk[40]);
        let o1 = f(s1, s2, s3, s0, rk[41]);
        let o2 = f(s2, s3, s0, s1, rk[42]);
        let o3 = f(s3, s0, s1, s2, rk[43]);

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&o0.to_be_bytes());
        out[4..8].copy_from_slice(&o1.to_be_bytes());
        out[8..12].copy_from_slice(&o2.to_be_bytes());
        out[12..16].copy_from_slice(&o3.to_be_bytes());
        u128::from_be_bytes(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_appendix_c_vector() {
        // FIPS-197 Appendix C.1: AES-128.
        let key = 0x0001_0203_0405_0607_0809_0a0b_0c0d_0e0f_u128;
        let pt = 0x0011_2233_4455_6677_8899_aabb_ccdd_eeff_u128;
        let ct = Aes128::new(key).encrypt_block(pt);
        assert_eq!(ct, 0x69c4_e0d8_6a7b_0430_d8cd_b780_70b4_c55a_u128);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B example.
        let key = 0x2b7e_1516_28ae_d2a6_abf7_1588_09cf_4f3c_u128;
        let pt = 0x3243_f6a8_885a_308d_3131_98a2_e037_0734_u128;
        let ct = Aes128::new(key).encrypt_block(pt);
        assert_eq!(ct, 0x3925_841d_02dc_09fb_dc11_8597_196a_0b32_u128);
    }

    #[test]
    fn distinct_inputs_distinct_outputs() {
        // AES is a permutation: a small injectivity smoke test.
        let aes = Aes128::new(0xdead_beef_cafe_f00d_0123_4567_89ab_cdef);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u128 {
            assert!(seen.insert(aes.encrypt_block(i)));
        }
    }

    #[test]
    fn key_sensitivity() {
        let a = Aes128::new(1).encrypt_block(42);
        let b = Aes128::new(2).encrypt_block(42);
        assert_ne!(a, b);
    }

    #[test]
    fn xtime_matches_gf256() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x80), 0x1b);
    }
}
