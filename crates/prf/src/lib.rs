//! # hear-prf — pseudorandom functions for HEAR
//!
//! HEAR derives all encryption noise from a cryptographically secure PRF
//! `F : {0,1}^n × {0,1}^m → Z_d` (paper §5, "Key Generation"). This crate
//! provides that substrate:
//!
//! * [`aes::Aes128`] — portable software AES-128 (FIPS-197, T-tables),
//! * [`aesni::AesNi128`] — hardware AES-NI path with a 4-block pipeline
//!   (the `AES-NI + SSE2` backend of paper §6),
//! * [`sha1::Sha1Prf`] — the SHA-1 backend the paper measured and rejected,
//! * [`PrfCipher`] — a backend-erased PRF with runtime CPU detection,
//! * counter-mode keystream helpers ([`keystream_u32`], [`keystream_u64`],
//!   [`word_u32`], [`word_u64`]) used by every scheme's hot path.
//!
//! ## Keystream convention
//!
//! Element `j` of an Allreduce vector is masked with noise
//! `F_ke(ks + kc + j)`. The bulk helpers realise this as AES-CTR: for a
//! 32-bit datatype, block `⌊j/4⌋` of the stream `F_ke(base + ⌊j/4⌋)` is
//! split into four words and word `j mod 4` masks element `j`. Encryption,
//! aggregation-cancelling and decryption all use the same convention, so the
//! telescoping in Eq. (1)–(3) holds bit-exactly.

pub mod aes;
#[cfg(target_arch = "x86_64")]
pub mod aesni;
pub mod kernels;
pub mod par;
pub mod sha1;
#[cfg(target_arch = "x86_64")]
pub mod shani;

#[doc(hidden)]
pub use kernels::masked_metric;
pub use kernels::{
    add_blocks_into, add_keystream_into, sub_blocks_into, sub_keystream_into, xor_blocks_into,
    xor_keystream_into, KernelWord,
};
pub use par::{
    configured_threads, for_each_shard, par_add_blocks_into, par_add_keystream_into,
    par_sub_blocks_into, par_sub_keystream_into, par_xor_blocks_into, par_xor_keystream_into,
    with_pool, BgTask, WorkerPool, PAR_MIN_BYTES, SHARD_BYTES,
};

/// A keyed pseudorandom function producing 128-bit blocks.
///
/// All HEAR noise derivations go through this trait; the scheme code never
/// names a concrete cipher.
pub trait Prf: Send + Sync {
    /// Evaluate the PRF at input `x`.
    fn eval_block(&self, x: u128) -> u128;

    /// Fill `out[i] = eval_block(base + i)`. Backends may override this with
    /// a pipelined implementation.
    fn fill_blocks(&self, base: u128, out: &mut [u128]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.eval_block(base.wrapping_add(i as u128));
        }
    }
}

/// Which PRF implementation backs a [`PrfCipher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable table-driven AES-128.
    AesSoft,
    /// Hardware AES-NI (requires x86-64 with the `aes` feature).
    AesNi,
    /// SHA-1 compression-function PRF (the slow baseline of Fig. 4–5).
    Sha1,
    /// SHA-1 with hardware SHA-NI rounds (a counterfactual the paper's
    /// Broadwell testbed could not measure; still loses to AES-NI).
    Sha1Ni,
}

impl Backend {
    /// The fastest backend available on this machine: AES-NI when the CPU
    /// supports it, software AES otherwise.
    pub fn best_available() -> Backend {
        #[cfg(target_arch = "x86_64")]
        if aesni::available() {
            return Backend::AesNi;
        }
        Backend::AesSoft
    }

    /// True when this backend can be constructed on the current CPU.
    pub fn is_available(self) -> bool {
        match self {
            Backend::AesSoft | Backend::Sha1 => true,
            Backend::AesNi => {
                #[cfg(target_arch = "x86_64")]
                {
                    aesni::available()
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Backend::Sha1Ni => {
                #[cfg(target_arch = "x86_64")]
                {
                    shani::available()
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }
}

#[derive(Clone)]
enum PrfImpl {
    Soft(aes::Aes128),
    #[cfg(target_arch = "x86_64")]
    Ni(aesni::AesNi128),
    Sha1(sha1::Sha1Prf),
    #[cfg(target_arch = "x86_64")]
    Sha1Ni(shani::Sha1NiPrf),
}

/// A backend-erased keyed PRF.
///
/// ```
/// use hear_prf::{Backend, PrfCipher, Prf};
/// let prf = PrfCipher::best(0x0123_4567_89ab_cdef);
/// let a = prf.eval_block(1);
/// let b = PrfCipher::new(Backend::AesSoft, 0x0123_4567_89ab_cdef).unwrap().eval_block(1);
/// assert_eq!(a, b); // all AES backends compute the same function
/// ```
#[derive(Clone)]
pub struct PrfCipher {
    backend: Backend,
    inner: PrfImpl,
}

impl PrfCipher {
    /// Construct the requested backend, or `None` if the CPU lacks it.
    pub fn new(backend: Backend, key: u128) -> Option<Self> {
        let inner = match backend {
            Backend::AesSoft => PrfImpl::Soft(aes::Aes128::new(key)),
            Backend::Sha1 => PrfImpl::Sha1(sha1::Sha1Prf::new(key)),
            Backend::AesNi => {
                #[cfg(target_arch = "x86_64")]
                {
                    PrfImpl::Ni(aesni::AesNi128::new(key)?)
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    return None;
                }
            }
            Backend::Sha1Ni => {
                #[cfg(target_arch = "x86_64")]
                {
                    PrfImpl::Sha1Ni(shani::Sha1NiPrf::new(key)?)
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    return None;
                }
            }
        };
        Some(PrfCipher { backend, inner })
    }

    /// Construct the fastest available backend.
    pub fn best(key: u128) -> Self {
        Self::new(Backend::best_available(), key).expect("best_available is always constructible")
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Backend dispatch without the telemetry counter — the counted entry
    /// points below account for blocks exactly once, whether they come in
    /// one at a time or through the bulk fill.
    #[inline]
    fn eval_uncounted(&self, x: u128) -> u128 {
        match &self.inner {
            PrfImpl::Soft(a) => a.encrypt_block(x),
            #[cfg(target_arch = "x86_64")]
            PrfImpl::Ni(a) => a.encrypt_block(x),
            PrfImpl::Sha1(s) => s.eval_block(x),
            #[cfg(target_arch = "x86_64")]
            PrfImpl::Sha1Ni(s) => s.eval_block(x),
        }
    }

    /// Direct handle to the AES-NI engine when this cipher is backed by
    /// it — lets the fused kernels take the register-resident tile path.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub(crate) fn aesni(&self) -> Option<&aesni::AesNi128> {
        match &self.inner {
            PrfImpl::Ni(a) => Some(a),
            _ => None,
        }
    }

    /// Statically dispatched bulk fill shared by the counted [`Prf`]
    /// entry point and the uncounted prefetch-worker entry point.
    fn fill_blocks_impl(&self, base: u128, out: &mut [u128]) {
        match &self.inner {
            #[cfg(target_arch = "x86_64")]
            PrfImpl::Ni(a) => {
                let mut i = 0u128;
                let mut chunks = out.chunks_exact_mut(8);
                for c in &mut chunks {
                    c.copy_from_slice(&a.encrypt_ctr8(base.wrapping_add(i)));
                    i += 8;
                }
                let rem = chunks.into_remainder();
                if rem.len() >= 4 {
                    let (four, rest) = rem.split_at_mut(4);
                    four.copy_from_slice(&a.encrypt4([
                        base.wrapping_add(i),
                        base.wrapping_add(i + 1),
                        base.wrapping_add(i + 2),
                        base.wrapping_add(i + 3),
                    ]));
                    i += 4;
                    for o in rest {
                        *o = a.encrypt_block(base.wrapping_add(i));
                        i += 1;
                    }
                } else {
                    for o in rem {
                        *o = a.encrypt_block(base.wrapping_add(i));
                        i += 1;
                    }
                }
            }
            _ => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = self.eval_uncounted(base.wrapping_add(i as u128));
                }
            }
        }
    }

    /// PRF evaluation with no telemetry attribution. For the keystream
    /// prefetch worker only: the worker thread must record nothing (it
    /// has no rank lane), and the consuming rank accounts for the blocks
    /// when it takes the cache hit.
    #[doc(hidden)]
    #[inline]
    pub fn eval_block_uncounted(&self, x: u128) -> u128 {
        self.eval_uncounted(x)
    }

    /// Bulk fill with no telemetry attribution; see
    /// [`PrfCipher::eval_block_uncounted`].
    #[doc(hidden)]
    pub fn fill_blocks_uncounted(&self, base: u128, out: &mut [u128]) {
        self.fill_blocks_impl(base, out);
    }
}

/// Telemetry counter for blocks evaluated by `backend`.
/// Per-backend PRF block counter (family `hear_prf_blocks_total`). Public
/// (but hidden) so prefetch consumers can attribute cache-served blocks to
/// the backend that generated them, keeping counter totals identical to
/// the inline path.
#[doc(hidden)]
pub fn blocks_metric(backend: Backend) -> hear_telemetry::Metric {
    match backend {
        Backend::AesSoft => hear_telemetry::Metric::PrfBlocksAesSoft,
        Backend::AesNi => hear_telemetry::Metric::PrfBlocksAesNi,
        Backend::Sha1 => hear_telemetry::Metric::PrfBlocksSha1,
        Backend::Sha1Ni => hear_telemetry::Metric::PrfBlocksSha1Ni,
    }
}

impl Prf for PrfCipher {
    #[inline]
    fn eval_block(&self, x: u128) -> u128 {
        hear_telemetry::add(blocks_metric(self.backend), 1);
        self.eval_uncounted(x)
    }

    fn fill_blocks(&self, base: u128, out: &mut [u128]) {
        hear_telemetry::add(blocks_metric(self.backend), out.len() as u64);
        self.fill_blocks_impl(base, out);
    }
}

/// Split a 128-bit PRF block into four 32-bit noise words (big-endian order:
/// word 0 is the most significant).
#[inline]
pub fn block_words_u32(block: u128) -> [u32; 4] {
    [
        (block >> 96) as u32,
        (block >> 64) as u32,
        (block >> 32) as u32,
        block as u32,
    ]
}

/// Split a 128-bit PRF block into two 64-bit noise words.
#[inline]
pub fn block_words_u64(block: u128) -> [u64; 2] {
    [(block >> 64) as u64, block as u64]
}

/// Noise word for a single 32-bit element `j` of the stream rooted at `base`.
#[inline]
pub fn word_u32<P: Prf + ?Sized>(prf: &P, base: u128, j: u64) -> u32 {
    let block = prf.eval_block(base.wrapping_add((j / 4) as u128));
    block_words_u32(block)[(j % 4) as usize]
}

/// Noise word for a single 64-bit element `j` of the stream rooted at `base`.
#[inline]
pub fn word_u64<P: Prf + ?Sized>(prf: &P, base: u128, j: u64) -> u64 {
    let block = prf.eval_block(base.wrapping_add((j / 2) as u128));
    block_words_u64(block)[(j % 2) as usize]
}

/// Fill `out` with the 32-bit keystream rooted at `base`, starting at element
/// index `first`. `out[i]` equals `word_u32(prf, base, first + i)`.
pub fn keystream_u32<P: Prf + ?Sized>(prf: &P, base: u128, first: u64, out: &mut [u32]) {
    if out.is_empty() {
        return;
    }
    hear_telemetry::add(
        hear_telemetry::Metric::KeystreamBytes,
        std::mem::size_of_val(out) as u64,
    );
    let mut idx = 0usize;
    let mut j = first;
    // Leading partial block.
    while !j.is_multiple_of(4) && idx < out.len() {
        out[idx] = word_u32(prf, base, j);
        idx += 1;
        j += 1;
    }
    // Bulk: whole blocks via fill_blocks in bounded stack batches.
    const BATCH: usize = 256;
    let mut blocks = [0u128; BATCH];
    while out.len() - idx >= 4 {
        let remaining_blocks = (out.len() - idx) / 4;
        let n = remaining_blocks.min(BATCH);
        prf.fill_blocks(base.wrapping_add((j / 4) as u128), &mut blocks[..n]);
        for b in &blocks[..n] {
            let words = block_words_u32(*b);
            out[idx..idx + 4].copy_from_slice(&words);
            idx += 4;
            j += 4;
        }
    }
    // Trailing partial block.
    while idx < out.len() {
        out[idx] = word_u32(prf, base, j);
        idx += 1;
        j += 1;
    }
}

/// Fill `out` with the 64-bit keystream rooted at `base`, starting at element
/// index `first`. `out[i]` equals `word_u64(prf, base, first + i)`.
pub fn keystream_u64<P: Prf + ?Sized>(prf: &P, base: u128, first: u64, out: &mut [u64]) {
    if out.is_empty() {
        return;
    }
    hear_telemetry::add(
        hear_telemetry::Metric::KeystreamBytes,
        std::mem::size_of_val(out) as u64,
    );
    let mut idx = 0usize;
    let mut j = first;
    while !j.is_multiple_of(2) && idx < out.len() {
        out[idx] = word_u64(prf, base, j);
        idx += 1;
        j += 1;
    }
    const BATCH: usize = 256;
    let mut blocks = [0u128; BATCH];
    while out.len() - idx >= 2 {
        let remaining_blocks = (out.len() - idx) / 2;
        let n = remaining_blocks.min(BATCH);
        prf.fill_blocks(base.wrapping_add((j / 2) as u128), &mut blocks[..n]);
        for b in &blocks[..n] {
            let words = block_words_u64(*b);
            out[idx..idx + 2].copy_from_slice(&words);
            idx += 2;
            j += 2;
        }
    }
    while idx < out.len() {
        out[idx] = word_u64(prf, base, j);
        idx += 1;
        j += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<PrfCipher> {
        let key = 0xfeed_face_cafe_beef_0123_4567_89ab_cdef_u128;
        let mut v = vec![
            PrfCipher::new(Backend::AesSoft, key).unwrap(),
            PrfCipher::new(Backend::Sha1, key).unwrap(),
        ];
        if let Some(ni) = PrfCipher::new(Backend::AesNi, key) {
            v.push(ni);
        }
        v
    }

    #[test]
    fn aesni_and_soft_agree() {
        let key = 7u128;
        let soft = PrfCipher::new(Backend::AesSoft, key).unwrap();
        if let Some(ni) = PrfCipher::new(Backend::AesNi, key) {
            for x in 0..512u128 {
                assert_eq!(soft.eval_block(x), ni.eval_block(x));
            }
        }
    }

    #[test]
    fn fill_blocks_matches_eval() {
        for prf in backends() {
            let mut out = [0u128; 19];
            prf.fill_blocks(1000, &mut out);
            for (i, o) in out.iter().enumerate() {
                assert_eq!(*o, prf.eval_block(1000 + i as u128), "{:?}", prf.backend());
            }
        }
    }

    #[test]
    fn keystream_u32_matches_words_at_offsets() {
        for prf in backends() {
            for first in [0u64, 1, 2, 3, 4, 5, 7] {
                let mut out = vec![0u32; 41];
                keystream_u32(&prf, 99, first, &mut out);
                for (i, o) in out.iter().enumerate() {
                    assert_eq!(*o, word_u32(&prf, 99, first + i as u64));
                }
            }
        }
    }

    #[test]
    fn keystream_u64_matches_words_at_offsets() {
        for prf in backends() {
            for first in [0u64, 1, 2, 3] {
                let mut out = vec![0u64; 23];
                keystream_u64(&prf, 7, first, &mut out);
                for (i, o) in out.iter().enumerate() {
                    assert_eq!(*o, word_u64(&prf, 7, first + i as u64));
                }
            }
        }
    }

    #[test]
    fn keystream_empty_and_tiny() {
        let prf = PrfCipher::best(1);
        let mut empty: [u32; 0] = [];
        keystream_u32(&prf, 0, 0, &mut empty);
        let mut one = [0u32; 1];
        keystream_u32(&prf, 0, 3, &mut one);
        assert_eq!(one[0], word_u32(&prf, 0, 3));
    }

    #[test]
    fn counter_wraps_at_u128_max() {
        let prf = PrfCipher::best(1);
        let mut out = [0u128; 4];
        prf.fill_blocks(u128::MAX - 1, &mut out);
        assert_eq!(out[0], prf.eval_block(u128::MAX - 1));
        assert_eq!(out[2], prf.eval_block(0));
    }

    #[test]
    fn best_available_constructs() {
        assert!(Backend::best_available().is_available());
        let _ = PrfCipher::best(0);
    }

    #[test]
    fn telemetry_counts_blocks_and_bytes_exactly() {
        use hear_telemetry::{Metric, Registry};
        let reg = Registry::new_enabled();
        let prf = PrfCipher::new(Backend::AesSoft, 0xD1).unwrap();
        {
            let _ctx = reg.install(None);
            let _ = prf.eval_block(1);
            let mut blocks = [0u128; 7];
            prf.fill_blocks(0, &mut blocks); // 7 blocks, counted once (no double count)
            let mut ks = [0u32; 10];
            keystream_u32(&prf, 0, 0, &mut ks); // 40 bytes
        }
        assert_eq!(reg.counter(Metric::KeystreamBytes), 40);
        // 1 (eval) + 7 (fill) + blocks evaluated by the keystream: 2 via
        // the bulk fill_blocks plus one eval_block per trailing word (2).
        assert_eq!(reg.counter(Metric::PrfBlocksAesSoft), 1 + 7 + 2 + 2);
        assert_eq!(reg.counter(Metric::PrfBlocksSha1), 0);
    }

    #[test]
    fn backends_differ_from_each_other() {
        // SHA-1 PRF and AES PRF must not coincide (sanity that the enum
        // dispatch is wired correctly).
        let key = 5u128;
        let aes = PrfCipher::new(Backend::AesSoft, key).unwrap();
        let sha = PrfCipher::new(Backend::Sha1, key).unwrap();
        assert_ne!(aes.eval_block(1), sha.eval_block(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn keystream_u32_equals_per_word(base in any::<u64>(), first in 0u64..64, len in 0usize..200) {
            let prf = PrfCipher::new(Backend::AesSoft, 0xabcd).unwrap();
            let mut out = vec![0u32; len];
            keystream_u32(&prf, base as u128, first, &mut out);
            for (i, o) in out.iter().enumerate() {
                prop_assert_eq!(*o, word_u32(&prf, base as u128, first + i as u64));
            }
        }

        #[test]
        fn keystream_u64_equals_per_word(base in any::<u64>(), first in 0u64..64, len in 0usize..200) {
            let prf = PrfCipher::new(Backend::AesSoft, 0xabcd).unwrap();
            let mut out = vec![0u64; len];
            keystream_u64(&prf, base as u128, first, &mut out);
            for (i, o) in out.iter().enumerate() {
                prop_assert_eq!(*o, word_u64(&prf, base as u128, first + i as u64));
            }
        }

        #[test]
        fn prf_is_deterministic(key in any::<u128>(), x in any::<u128>()) {
            let p1 = PrfCipher::new(Backend::AesSoft, key).unwrap();
            let p2 = PrfCipher::new(Backend::AesSoft, key).unwrap();
            prop_assert_eq!(p1.eval_block(x), p2.eval_block(x));
        }
    }
}

/// Split a 128-bit PRF block into eight 16-bit noise words (big-endian
/// order, matching the u32/u64 splitters).
#[inline]
pub fn block_words_u16(block: u128) -> [u16; 8] {
    let mut out = [0u16; 8];
    for (i, o) in out.iter_mut().enumerate() {
        *o = (block >> (112 - 16 * i)) as u16;
    }
    out
}

/// Split a 128-bit PRF block into sixteen byte-sized noise words.
#[inline]
pub fn block_words_u8(block: u128) -> [u8; 16] {
    block.to_be_bytes()
}

/// Noise word for a single 16-bit element `j` of the stream rooted at `base`.
#[inline]
pub fn word_u16<P: Prf + ?Sized>(prf: &P, base: u128, j: u64) -> u16 {
    let block = prf.eval_block(base.wrapping_add((j / 8) as u128));
    block_words_u16(block)[(j % 8) as usize]
}

/// Noise word for a single byte element `j` of the stream rooted at `base`.
#[inline]
pub fn word_u8<P: Prf + ?Sized>(prf: &P, base: u128, j: u64) -> u8 {
    let block = prf.eval_block(base.wrapping_add((j / 16) as u128));
    block_words_u8(block)[(j % 16) as usize]
}

/// Fill `out` with the 16-bit keystream rooted at `base`, starting at
/// element index `first`.
pub fn keystream_u16<P: Prf + ?Sized>(prf: &P, base: u128, first: u64, out: &mut [u16]) {
    hear_telemetry::add(
        hear_telemetry::Metric::KeystreamBytes,
        std::mem::size_of_val(out) as u64,
    );
    fill_keystream(prf, base, first, out, 8, |block, k| {
        block_words_u16(block)[k]
    });
}

/// Fill `out` with the byte keystream rooted at `base`, starting at
/// element index `first`.
pub fn keystream_u8<P: Prf + ?Sized>(prf: &P, base: u128, first: u64, out: &mut [u8]) {
    hear_telemetry::add(hear_telemetry::Metric::KeystreamBytes, out.len() as u64);
    fill_keystream(prf, base, first, out, 16, |block, k| {
        block_words_u8(block)[k]
    });
}

/// Generic CTR fill: `out[i] = extract(eval_block(base + (first+i)/per), (first+i)%per)`.
fn fill_keystream<W: Copy + Default, P: Prf + ?Sized>(
    prf: &P,
    base: u128,
    first: u64,
    out: &mut [W],
    per: u64,
    extract: impl Fn(u128, usize) -> W,
) {
    if out.is_empty() {
        return;
    }
    let mut idx = 0usize;
    let mut j = first;
    // Leading partial block.
    while !j.is_multiple_of(per) && idx < out.len() {
        out[idx] = extract(
            prf.eval_block(base.wrapping_add((j / per) as u128)),
            (j % per) as usize,
        );
        idx += 1;
        j += 1;
    }
    const BATCH: usize = 256;
    let mut blocks = [0u128; BATCH];
    while (out.len() - idx) as u64 >= per {
        let remaining_blocks = ((out.len() - idx) as u64 / per) as usize;
        let n = remaining_blocks.min(BATCH);
        prf.fill_blocks(base.wrapping_add((j / per) as u128), &mut blocks[..n]);
        for b in &blocks[..n] {
            for k in 0..per as usize {
                out[idx] = extract(*b, k);
                idx += 1;
            }
            j += per;
        }
    }
    while idx < out.len() {
        out[idx] = extract(
            prf.eval_block(base.wrapping_add((j / per) as u128)),
            (j % per) as usize,
        );
        idx += 1;
        j += 1;
    }
}

#[cfg(test)]
mod narrow_lane_tests {
    use super::*;

    #[test]
    fn keystream_u16_matches_words() {
        let prf = PrfCipher::new(Backend::AesSoft, 0xAA).unwrap();
        for first in [0u64, 1, 5, 7, 8, 13] {
            let mut out = vec![0u16; 37];
            keystream_u16(&prf, 3, first, &mut out);
            for (i, o) in out.iter().enumerate() {
                assert_eq!(
                    *o,
                    word_u16(&prf, 3, first + i as u64),
                    "first={first} i={i}"
                );
            }
        }
    }

    #[test]
    fn keystream_u8_matches_words() {
        let prf = PrfCipher::new(Backend::AesSoft, 0xBB).unwrap();
        for first in [0u64, 1, 15, 16, 17] {
            let mut out = vec![0u8; 53];
            keystream_u8(&prf, 9, first, &mut out);
            for (i, o) in out.iter().enumerate() {
                assert_eq!(*o, word_u8(&prf, 9, first + i as u64));
            }
        }
    }

    #[test]
    fn narrow_words_are_consistent_slices_of_the_block() {
        let prf = PrfCipher::new(Backend::AesSoft, 0xCC).unwrap();
        let block = prf.eval_block(0);
        assert_eq!(word_u8(&prf, 0, 0), (block >> 120) as u8);
        assert_eq!(word_u16(&prf, 0, 7), block as u16);
        assert_eq!(block_words_u16(block)[0], (block >> 112) as u16);
    }
}
