//! Textbook (unpadded) RSA — the multiplicatively homomorphic PHE
//! baseline of Table 1.
//!
//! `c = m^e mod n`, `m = c^d mod n`; ciphertext products decrypt to
//! plaintext products. Deterministic textbook RSA is *not* IND-CPA — it is
//! here purely to measure the cost structure (≥2× inflation for machine
//! words, big-modulus exponentiation per operation) that rules the family
//! out for in-network compute.

use hear_num::{gen_prime, modinv, BigUint, SplitMix64};

pub struct Rsa {
    pub n: BigUint,
    pub e: BigUint,
    d: BigUint,
    pub key_bits: u64,
}

impl Rsa {
    pub fn generate(key_bits: u64, rng: &mut SplitMix64) -> Rsa {
        assert!(key_bits >= 32);
        let e = BigUint::from_u64(65_537);
        loop {
            let half = key_bits / 2;
            let p = gen_prime(half, rng);
            let q = gen_prime(key_bits - half, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            if let Some(d) = modinv(&e, &phi) {
                return Rsa { n, e, d, key_bits };
            }
        }
    }

    pub fn encrypt(&self, m: &BigUint) -> BigUint {
        assert!(m < &self.n, "plaintext must be below the modulus");
        m.modpow(&self.e, &self.n)
    }

    pub fn decrypt(&self, c: &BigUint) -> BigUint {
        c.modpow(&self.d, &self.n)
    }

    /// Homomorphic multiply.
    pub fn mul_ciphertexts(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mul(b).rem(&self.n)
    }

    pub fn ciphertext_bits(&self) -> u64 {
        self.key_bits
    }

    pub fn inflation(&self, plain_bits: u64) -> f64 {
        self.ciphertext_bits() as f64 / plain_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> (Rsa, SplitMix64) {
        let mut rng = SplitMix64::new(7);
        (Rsa::generate(256, &mut rng), rng)
    }

    #[test]
    fn roundtrip() {
        let (r, _) = scheme();
        for m in [0u64, 1, 2, 99_999, u64::MAX] {
            let m = BigUint::from_u64(m);
            assert_eq!(r.decrypt(&r.encrypt(&m)), m);
        }
    }

    #[test]
    fn multiplicative_homomorphism() {
        let (r, _) = scheme();
        let a = BigUint::from_u64(1234);
        let b = BigUint::from_u64(5678);
        let prod = r.decrypt(&r.mul_ciphertexts(&r.encrypt(&a), &r.encrypt(&b)));
        assert_eq!(prod, BigUint::from_u64(1234 * 5678));
    }

    #[test]
    fn chained_products() {
        let (r, _) = scheme();
        let mut acc = r.encrypt(&BigUint::one());
        for m in [3u64, 5, 7, 11, 13] {
            acc = r.mul_ciphertexts(&acc, &r.encrypt(&BigUint::from_u64(m)));
        }
        assert_eq!(r.decrypt(&acc), BigUint::from_u64(3 * 5 * 7 * 11 * 13));
    }

    #[test]
    fn textbook_rsa_is_deterministic_hence_not_ind_cpa() {
        let (r, _) = scheme();
        let m = BigUint::from_u64(42);
        assert_eq!(r.encrypt(&m), r.encrypt(&m));
    }

    #[test]
    fn inflation_at_least_8x_for_u32() {
        let (r, _) = scheme();
        assert!(r.inflation(32) >= 8.0);
    }
}
