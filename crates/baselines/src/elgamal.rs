//! ElGamal over `Z_p*` — the second multiplicative PHE baseline of
//! Table 1, with the characteristic ≥2× structural inflation: a ciphertext
//! is a *pair* `(g^r, m·h^r)`, so even for full-width plaintexts the wire
//! size doubles.

use hear_num::{gen_prime, modinv, BigUint, SplitMix64};

pub struct ElGamal {
    pub p: BigUint,
    pub g: BigUint,
    pub h: BigUint, // g^x
    x: BigUint,
    pub key_bits: u64,
}

/// An ElGamal ciphertext pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ElGamalCt {
    pub c1: BigUint,
    pub c2: BigUint,
}

impl ElGamal {
    /// Generate over a safe prime `p = 2q + 1` so that `g = 4` generates
    /// the order-q quadratic-residue subgroup.
    pub fn generate(key_bits: u64, rng: &mut SplitMix64) -> ElGamal {
        assert!(key_bits >= 32);
        use hear_num::is_probable_prime;
        let p = loop {
            let q = gen_prime(key_bits - 1, rng);
            let p = q.mul_u64(2).add(&BigUint::one());
            if is_probable_prime(&p, 12, rng) {
                break p;
            }
        };
        let g = BigUint::from_u64(4); // a quadratic residue → generates QR_p
        let x = loop {
            let x = rng.below(&p);
            if !x.is_zero() {
                break x;
            }
        };
        let h = g.modpow(&x, &p);
        ElGamal {
            p,
            g,
            h,
            x,
            key_bits,
        }
    }

    pub fn encrypt(&self, m: &BigUint, rng: &mut SplitMix64) -> ElGamalCt {
        assert!(!m.is_zero() && m < &self.p, "plaintext must be in [1, p)");
        let r = loop {
            let r = rng.below(&self.p);
            if !r.is_zero() {
                break r;
            }
        };
        ElGamalCt {
            c1: self.g.modpow(&r, &self.p),
            c2: m.mul(&self.h.modpow(&r, &self.p)).rem(&self.p),
        }
    }

    pub fn decrypt(&self, ct: &ElGamalCt) -> BigUint {
        let s = ct.c1.modpow(&self.x, &self.p);
        let s_inv = modinv(&s, &self.p).expect("p prime, s nonzero");
        ct.c2.mul(&s_inv).rem(&self.p)
    }

    /// Homomorphic multiply: component-wise product.
    pub fn mul_ciphertexts(&self, a: &ElGamalCt, b: &ElGamalCt) -> ElGamalCt {
        ElGamalCt {
            c1: a.c1.mul(&b.c1).rem(&self.p),
            c2: a.c2.mul(&b.c2).rem(&self.p),
        }
    }

    /// Two group elements per ciphertext.
    pub fn ciphertext_bits(&self) -> u64 {
        2 * self.key_bits
    }

    pub fn inflation(&self, plain_bits: u64) -> f64 {
        self.ciphertext_bits() as f64 / plain_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> (ElGamal, SplitMix64) {
        let mut rng = SplitMix64::new(3);
        (ElGamal::generate(128, &mut rng), rng)
    }

    #[test]
    fn roundtrip() {
        let (e, mut rng) = scheme();
        for m in [1u64, 2, 42, 99_999_999] {
            let m = BigUint::from_u64(m);
            let ct = e.encrypt(&m, &mut rng);
            assert_eq!(e.decrypt(&ct), m);
        }
    }

    #[test]
    fn multiplicative_homomorphism() {
        let (e, mut rng) = scheme();
        let a = BigUint::from_u64(321);
        let b = BigUint::from_u64(1000);
        let ca = e.encrypt(&a, &mut rng);
        let cb = e.encrypt(&b, &mut rng);
        assert_eq!(
            e.decrypt(&e.mul_ciphertexts(&ca, &cb)),
            BigUint::from_u64(321_000)
        );
    }

    #[test]
    fn probabilistic_encryption() {
        let (e, mut rng) = scheme();
        let m = BigUint::from_u64(5);
        let c1 = e.encrypt(&m, &mut rng);
        let c2 = e.encrypt(&m, &mut rng);
        assert_ne!(c1, c2);
        assert_eq!(e.decrypt(&c1), e.decrypt(&c2));
    }

    #[test]
    fn structural_2x_inflation_minimum() {
        let (e, _) = scheme();
        // Even with plaintexts as wide as the modulus, the pair doubles it.
        assert!(e.inflation(e.key_bits) >= 2.0);
        assert!(e.inflation(32) >= 8.0);
    }

    #[test]
    #[should_panic(expected = "in [1, p)")]
    fn zero_rejected() {
        let (e, mut rng) = scheme();
        e.encrypt(&BigUint::zero(), &mut rng);
    }
}
