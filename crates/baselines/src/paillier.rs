//! Textbook Paillier (additively homomorphic PHE) — a Table 1 baseline.
//!
//! With `g = n + 1`, encryption is `c = (1 + m·n) · r^n mod n²` and
//! decryption `m = L(c^λ mod n²) · μ mod n` with `L(x) = (x−1)/n` and
//! `μ = λ^{-1} mod n`. Ciphertexts live in `Z_{n²}`, so the scheme's
//! inflation is ≥ 2× for full-width plaintexts and far worse for machine
//! words — exactly the R1 failure the paper's Table 1 records.

use hear_num::{gen_prime, modinv, BigUint, SplitMix64};

pub struct PaillierPublic {
    pub n: BigUint,
    pub n_sq: BigUint,
}

pub struct PaillierSecret {
    lambda: BigUint,
    mu: BigUint,
}

pub struct Paillier {
    pub public: PaillierPublic,
    secret: PaillierSecret,
    pub key_bits: u64,
}

impl Paillier {
    /// Generate a keypair with an `key_bits`-bit modulus.
    pub fn generate(key_bits: u64, rng: &mut SplitMix64) -> Paillier {
        assert!(key_bits >= 32, "modulus too small to be meaningful");
        let half = key_bits / 2;
        let (p, q) = loop {
            let p = gen_prime(half, rng);
            let q = gen_prime(key_bits - half, rng);
            if p != q {
                break (p, q);
            }
        };
        let n = p.mul(&q);
        let n_sq = n.mul(&n);
        let one = BigUint::one();
        let p1 = p.sub(&one);
        let q1 = q.sub(&one);
        // λ = lcm(p−1, q−1).
        let lambda = p1.mul(&q1).div_rem(&p1.gcd(&q1)).0;
        // μ = λ^{-1} mod n (valid for g = n+1).
        let mu = modinv(&lambda, &n).expect("λ invertible mod n");
        Paillier {
            public: PaillierPublic { n, n_sq },
            secret: PaillierSecret { lambda, mu },
            key_bits,
        }
    }

    /// Encrypt a plaintext `m < n`.
    pub fn encrypt(&self, m: &BigUint, rng: &mut SplitMix64) -> BigUint {
        let n = &self.public.n;
        let n_sq = &self.public.n_sq;
        assert!(m < n, "plaintext must be below the modulus");
        // r uniform in [1, n), coprime to n with overwhelming probability.
        let r = loop {
            let r = rng.below(n);
            if !r.is_zero() && r.gcd(n).is_one() {
                break r;
            }
        };
        // (1 + m·n) · r^n mod n².
        let gm = BigUint::one().add(&m.mul(n)).rem(n_sq);
        gm.mul(&r.modpow(n, n_sq)).rem(n_sq)
    }

    pub fn decrypt(&self, c: &BigUint) -> BigUint {
        let n = &self.public.n;
        let n_sq = &self.public.n_sq;
        let x = c.modpow(&self.secret.lambda, n_sq);
        let l = x.sub(&BigUint::one()).div_rem(n).0;
        l.mul(&self.secret.mu).rem(n)
    }

    /// The homomorphic operation: ciphertext multiplication = plaintext
    /// addition.
    pub fn add_ciphertexts(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mul(b).rem(&self.public.n_sq)
    }

    /// Ciphertext size in bits (elements of Z_{n²}).
    pub fn ciphertext_bits(&self) -> u64 {
        2 * self.key_bits
    }

    /// Inflation factor over a `plain_bits` machine word.
    pub fn inflation(&self, plain_bits: u64) -> f64 {
        self.ciphertext_bits() as f64 / plain_bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scheme() -> (Paillier, SplitMix64) {
        let mut rng = SplitMix64::new(42);
        (Paillier::generate(256, &mut rng), rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (p, mut rng) = scheme();
        for m in [0u64, 1, 42, u32::MAX as u64, u64::MAX] {
            let m = BigUint::from_u64(m);
            let c = p.encrypt(&m, &mut rng);
            assert_eq!(p.decrypt(&c), m);
        }
    }

    #[test]
    fn additive_homomorphism() {
        let (p, mut rng) = scheme();
        let a = BigUint::from_u64(123_456);
        let b = BigUint::from_u64(654_321);
        let ca = p.encrypt(&a, &mut rng);
        let cb = p.encrypt(&b, &mut rng);
        let sum = p.decrypt(&p.add_ciphertexts(&ca, &cb));
        assert_eq!(sum, BigUint::from_u64(777_777));
    }

    #[test]
    fn many_additions_stay_correct() {
        // Paillier has no operation-count limit (R2 holds); fold 50 values.
        let (p, mut rng) = scheme();
        let mut acc = p.encrypt(&BigUint::zero(), &mut rng);
        for i in 1..=50u64 {
            let c = p.encrypt(&BigUint::from_u64(i), &mut rng);
            acc = p.add_ciphertexts(&acc, &c);
        }
        assert_eq!(p.decrypt(&acc), BigUint::from_u64(1275));
    }

    #[test]
    fn randomized_encryption() {
        let (p, mut rng) = scheme();
        let m = BigUint::from_u64(7);
        let c1 = p.encrypt(&m, &mut rng);
        let c2 = p.encrypt(&m, &mut rng);
        assert_ne!(c1, c2, "Paillier is probabilistic");
        assert_eq!(p.decrypt(&c1), p.decrypt(&c2));
    }

    #[test]
    fn random_sums_roundtrip() {
        // Randomized homomorphic sums, drawn from the testkit PRNG (the
        // in-repo `rand` replacement) so failures replay from the seed.
        let (p, mut enc_rng) = scheme();
        let mut rng = hear_testkit::TestRng::seed_from_u64(0xba5e_11e5);
        for round in 0..16 {
            let a = rng.gen_range(0u64..=u32::MAX as u64);
            let b = rng.gen_range(0u64..=u32::MAX as u64);
            let ca = p.encrypt(&BigUint::from_u64(a), &mut enc_rng);
            let cb = p.encrypt(&BigUint::from_u64(b), &mut enc_rng);
            let sum = p.decrypt(&p.add_ciphertexts(&ca, &cb));
            assert_eq!(sum, BigUint::from_u64(a + b), "round={round} a={a} b={b}");
        }
    }

    #[test]
    fn inflation_violates_r1_for_machine_words() {
        let (p, _) = scheme();
        // A 32-bit plaintext becomes a 512-bit ciphertext: 16×, far beyond
        // the ≤2× budget of requirement R1.
        assert!(p.inflation(32) >= 16.0);
        assert_eq!(p.ciphertext_bits(), 512);
    }
}
