//! # hear-baselines — classical homomorphic-encryption baselines
//!
//! Paper Table 1 compares HEAR against the established HE families on the
//! four design requirements (R1 ≤2× inflation, R2 unlimited operations,
//! R3 low operation complexity, R4 many operation types). This crate
//! implements the representative PHE schemes from scratch over `hear-num`
//! so the `table1` harness can *measure* — not just quote — their
//! ciphertext inflation and per-operation cost:
//!
//! * [`paillier::Paillier`] — additive PHE (Paillier '99),
//! * [`rsa::Rsa`] — multiplicative PHE (unpadded RSA '78),
//! * [`elgamal::ElGamal`] — multiplicative PHE with pair ciphertexts.
//!
//! The SWHE/FHE columns of Table 1 (BGV, CKKS, TFHE…) are reported from
//! the literature in the harness; implementing lattice FHE from scratch is
//! out of scope and unnecessary for the table's conclusion, since the PHE
//! row already shows the *best* case for classical HE failing R1/R3.

pub mod elgamal;
pub mod paillier;
pub mod rsa;

pub use elgamal::{ElGamal, ElGamalCt};
pub use paillier::Paillier;
pub use rsa::Rsa;

/// Requirement verdicts used by the Table 1 regenerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Fails,
    Partial,
    Meets,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Fails => write!(f, "✗"),
            Verdict::Partial => write!(f, "◐"),
            Verdict::Meets => write!(f, "●"),
        }
    }
}

/// One Table 1 column: a scheme's verdicts on R1–R4.
#[derive(Debug, Clone, Copy)]
pub struct Table1Row {
    pub family: &'static str,
    pub scheme: &'static str,
    pub r1_inflation: Verdict,
    pub r2_operations: Verdict,
    pub r3_complexity: Verdict,
    pub r4_op_types: Verdict,
    /// True when the verdicts are backed by measurements from this crate
    /// rather than the literature.
    pub measured_here: bool,
}

/// The Table 1 verdict matrix (paper §3).
pub const TABLE1: [Table1Row; 8] = [
    Table1Row {
        family: "PHE",
        scheme: "RSA [78]",
        r1_inflation: Verdict::Fails,
        r2_operations: Verdict::Meets,
        r3_complexity: Verdict::Partial,
        r4_op_types: Verdict::Fails,
        measured_here: true,
    },
    Table1Row {
        family: "PHE",
        scheme: "ElGamal [33]",
        r1_inflation: Verdict::Fails,
        r2_operations: Verdict::Meets,
        r3_complexity: Verdict::Partial,
        r4_op_types: Verdict::Fails,
        measured_here: true,
    },
    Table1Row {
        family: "PHE",
        scheme: "Paillier [72]",
        r1_inflation: Verdict::Fails,
        r2_operations: Verdict::Meets,
        r3_complexity: Verdict::Fails,
        r4_op_types: Verdict::Fails,
        measured_here: true,
    },
    Table1Row {
        family: "PHE",
        scheme: "Symmetria-style rings [85]",
        r1_inflation: Verdict::Partial,
        r2_operations: Verdict::Meets,
        r3_complexity: Verdict::Meets,
        r4_op_types: Verdict::Partial,
        measured_here: false,
    },
    Table1Row {
        family: "SWHE",
        scheme: "BGN [12]",
        r1_inflation: Verdict::Fails,
        r2_operations: Verdict::Fails,
        r3_complexity: Verdict::Fails,
        r4_op_types: Verdict::Partial,
        measured_here: false,
    },
    Table1Row {
        family: "FHE",
        scheme: "TFHE [19]",
        r1_inflation: Verdict::Partial,
        r2_operations: Verdict::Meets,
        r3_complexity: Verdict::Fails,
        r4_op_types: Verdict::Meets,
        measured_here: false,
    },
    Table1Row {
        family: "FHE",
        scheme: "CKKS [17]",
        r1_inflation: Verdict::Fails,
        r2_operations: Verdict::Partial,
        r3_complexity: Verdict::Fails,
        r4_op_types: Verdict::Meets,
        measured_here: false,
    },
    Table1Row {
        family: "—",
        scheme: "HEAR (this work)",
        r1_inflation: Verdict::Meets,
        r2_operations: Verdict::Meets,
        r3_complexity: Verdict::Meets,
        r4_op_types: Verdict::Partial,
        measured_here: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hear_is_the_only_scheme_meeting_r1_r2_r3() {
        let full = TABLE1
            .iter()
            .filter(|r| {
                r.r1_inflation == Verdict::Meets
                    && r.r2_operations == Verdict::Meets
                    && r.r3_complexity == Verdict::Meets
            })
            .count();
        assert_eq!(full, 1);
        assert_eq!(TABLE1.last().unwrap().scheme, "HEAR (this work)");
    }

    #[test]
    fn measured_schemes_have_implementations() {
        // Every row claiming "measured_here" (other than HEAR itself) has a
        // working implementation in this crate.
        use hear_num::{BigUint, SplitMix64};
        let mut rng = SplitMix64::new(1);
        let p = Paillier::generate(128, &mut rng);
        let r = Rsa::generate(128, &mut rng);
        let e = ElGamal::generate(96, &mut rng);
        assert!(p.inflation(32) > 2.0);
        assert!(r.inflation(32) > 2.0);
        assert!(e.inflation(32) > 2.0);
        let m = BigUint::from_u64(9);
        assert_eq!(p.decrypt(&p.encrypt(&m, &mut rng)), m);
        assert_eq!(r.decrypt(&r.encrypt(&m)), m);
        assert_eq!(e.decrypt(&e.encrypt(&m, &mut rng)), m);
    }
}
