//! The transport abstraction: one trait, many fabrics.
//!
//! Everything above the point-to-point layer — the collectives, the INC
//! switch service, the nonblocking progress threads, the HEAR engine's
//! retry machinery — talks to the network through [`Transport`]. Two
//! implementations exist:
//!
//! * the in-memory [`Fabric`](crate::fabric::Fabric): one mailbox per
//!   endpoint inside a single process, with the α–β delay model and
//!   deterministic fault injection (the original simulator);
//! * the [`tcp`](crate::tcp) backend: the same mailbox matching, but every
//!   message is framed onto a real kernel socket (`std::net`, zero
//!   dependencies), either as an in-process loopback mesh or as one
//!   process per rank joined through a rendezvous rank.
//!
//! The contract is deliberately small and endpoint-addressed (ranks first,
//! then switch nodes), so a backend never needs to know about
//! communicators, contexts, or collectives:
//!
//! * `send_boxed` is fire-and-forget and must never block indefinitely;
//! * `recv_on` matches `(source, tag)` with MPI's non-overtaking rule per
//!   pair, honours an optional deadline, and resolves waits on dead
//!   endpoints to [`CommError::PeerDead`] instead of hanging;
//! * `kill` marks an endpoint dead and wakes every waiter — fault plans,
//!   panicking ranks, and real connection loss all funnel through it;
//! * `rtt_estimate` reports the backend's measured (or modeled) round
//!   trip so deadline budgets can be derived portably.

use crate::error::CommError;
use std::any::Any;
use std::time::{Duration, Instant};

/// One in-flight message: the boxed typed payload plus the instant the
/// modeled (or injected) delay allows it to be consumed.
pub struct Envelope {
    pub payload: Box<dyn Any + Send>,
    pub available_at: Instant,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("available_at", &self.available_at)
            .finish_non_exhaustive()
    }
}

/// A message-passing backend serving a fixed set of endpoints.
///
/// Implementations must be fully thread-safe: every rank thread, progress
/// thread, and switch-service thread holds the same `Arc<dyn Transport>`.
pub trait Transport: Send + Sync {
    /// Number of endpoints this transport serves (ranks, then switches).
    fn endpoints(&self) -> usize;

    /// Deposit `payload` for endpoint `to`, tagged `(from, tag)`. Sends
    /// from dead endpoints are silently discarded; sends to remote or
    /// dead endpoints must not block the caller beyond flow control.
    fn send_boxed(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: usize,
    );

    /// Receive on endpoint `me` the next message matching `(source, tag)`,
    /// optionally bounded by `deadline`. Must return a typed error — never
    /// hang — when the source (or `me`) dies or the deadline expires.
    fn recv_on(
        &self,
        me: usize,
        source: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Envelope, CommError>;

    /// Whether `endpoint` has been marked dead.
    fn is_dead(&self, endpoint: usize) -> bool;

    /// Mark `endpoint` dead and wake every parked receiver so waits on it
    /// resolve to [`CommError::PeerDead`]. Idempotent.
    fn kill(&self, endpoint: usize);

    /// The backend's estimate of one small-message round trip: modeled
    /// (2α floored at a scheduler-wake constant) for the in-memory fabric,
    /// measured during connection establishment for TCP. Deadline budgets
    /// (chaos suite, engine retries) scale from this instead of assuming
    /// in-process latency.
    fn rtt_estimate(&self) -> Duration;

    /// Short backend name for diagnostics ("mem", "tcp").
    fn name(&self) -> &'static str;
}
