//! Blocking collectives over the simulated fabric.
//!
//! Algorithms follow the classical MPICH implementations: binomial trees
//! for broadcast/reduce, recursive doubling for latency-bound allreduce
//! (with the even/odd fold for non-power-of-two communicators), and a
//! reduce-scatter + allgather ring for bandwidth-bound allreduce. HEAR's
//! reduction operators are commutative, which these algorithms require.

use crate::comm::Communicator;

/// Ring chunk boundaries for `n` elements over `world` ranks: the first
/// `n % world` chunks take one extra element. `bounds[c]` is chunk `c`'s
/// half-open `[start, end)` range. Every ring collective — the fused
/// allreduce, reduce-scatter, allgather — partitions with this layout,
/// and the HEAR engine relies on it to place each rank's share at its
/// global offset.
pub fn ring_chunk_bounds(n: usize, world: usize) -> Vec<(usize, usize)> {
    (0..world)
        .map(|c| {
            let base = n / world;
            let extra = n % world;
            let start = c * base + c.min(extra);
            let len = base + usize::from(c < extra);
            (start, start + len)
        })
        .collect()
}

/// Element-wise fold of `src` into `dst`.
fn fold_into<T, F: Fn(&T, &T) -> T>(dst: &mut [T], src: &[T], op: &F) {
    assert_eq!(
        dst.len(),
        src.len(),
        "reduction buffers must match in length"
    );
    let _s = hear_telemetry::span!("reduce", elems = dst.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = op(d, s);
    }
}

impl Communicator {
    /// Dissemination barrier: ⌈log₂ P⌉ rounds.
    pub fn barrier(&self) {
        let tag = self.next_coll_tag();
        let _s = hear_telemetry::span!("barrier", tag = tag);
        let (rank, world) = (self.rank(), self.world());
        let mut dist = 1;
        while dist < world {
            let to = (rank + dist) % world;
            let from = (rank + world - dist) % world;
            self.send_internal(to, tag, vec![0u8]);
            let _ = self.recv_internal::<u8>(from, tag);
            dist *= 2;
        }
    }

    /// Binomial-tree broadcast from `root`. Every rank returns the data.
    pub fn bcast<T: Clone + Send + 'static>(&self, root: usize, data: Vec<T>) -> Vec<T> {
        let tag = self.next_coll_tag();
        let _s = hear_telemetry::span!("bcast", root = root, tag = tag);
        let (world, rank) = (self.world(), self.rank());
        if world == 1 {
            return data;
        }
        // Work in a rotated space where the root is rank 0 (canonical
        // MPICH binomial tree).
        let vrank = (rank + world - root) % world;
        let mut buf = data;
        let mut mask = 1usize;
        while mask < world {
            if vrank & mask != 0 {
                let parent = ((vrank - mask) + root) % world;
                buf = self.recv_internal::<T>(parent, tag);
                break;
            }
            mask <<= 1;
        }
        // `mask` is now the lowest set bit of vrank (or ≥ world for the
        // root); children sit below it.
        mask >>= 1;
        while mask > 0 {
            let child_v = vrank + mask;
            if child_v < world {
                let child = (child_v + root) % world;
                self.send_internal(child, tag, buf.clone());
            }
            mask >>= 1;
        }
        buf
    }

    /// Binomial-tree reduction to `root`; only the root's return value is
    /// the reduced vector, other ranks get their (consumed) input back.
    pub fn reduce<T, F>(&self, root: usize, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        let (world, rank) = (self.world(), self.rank());
        if world == 1 {
            return data;
        }
        let vrank = (rank + world - root) % world;
        let mut acc = data;
        let mut mask = 1;
        while mask < world {
            if vrank & mask != 0 {
                let parent = ((vrank & !mask) + root) % world;
                self.send_internal(parent, tag, acc.clone());
                break;
            }
            let child_v = vrank | mask;
            if child_v < world {
                let child = (child_v + root) % world;
                let other = self.recv_internal::<T>(child, tag);
                fold_into(&mut acc, &other, &op);
            }
            mask <<= 1;
        }
        acc
    }

    /// Recursive-doubling allreduce (MPICH's latency-optimal algorithm),
    /// with the even/odd fold handling non-power-of-two worlds.
    pub fn allreduce<T, F>(&self, data: &[T], op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        self.allreduce_owned_tagged(tag, data.to_vec(), op)
    }

    /// Recursive-doubling allreduce consuming the input buffer — the
    /// copy-free entry the HEAR engine chunks over.
    pub fn allreduce_owned<T, F>(&self, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        self.allreduce_owned_tagged(tag, data, op)
    }

    pub(crate) fn allreduce_owned_tagged<T, F>(&self, tag: u64, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.try_allreduce_owned_tagged(tag, data, op, None)
            .unwrap_or_else(|e| panic!("recursive-doubling allreduce (tag {tag:#x}) failed: {e}"))
    }

    /// Fallible recursive-doubling allreduce: every exchange is bounded by
    /// `deadline` and a dead partner surfaces as a typed error instead of
    /// a hang. The error leaves `acc` in an unspecified intermediate
    /// state; retries must restart from the caller's own input.
    pub fn try_allreduce_owned_tagged<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        deadline: Option<std::time::Instant>,
    ) -> Result<Vec<T>, crate::CommError>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let (world, rank) = (self.world(), self.rank());
        let _s = hear_telemetry::span!("allreduce", elems = data.len(), tag = tag);
        let mut acc: Vec<T> = data;
        if world == 1 || acc.is_empty() {
            return Ok(acc);
        }
        let pof2 = world.next_power_of_two() / if world.is_power_of_two() { 1 } else { 2 };
        let rem = world - pof2;
        // Fold the excess ranks into their even neighbours.
        let newrank: isize = if rank < 2 * rem {
            if rank % 2 == 1 {
                self.try_send_internal(rank - 1, tag, acc.clone())?;
                -1
            } else {
                let other = self.try_recv_internal::<T>(rank + 1, tag, deadline)?;
                fold_into(&mut acc, &other, &op);
                (rank / 2) as isize
            }
        } else {
            (rank - rem) as isize
        };
        // Recursive doubling among the power-of-two subset.
        if newrank >= 0 {
            let to_real = |nr: usize| if nr < rem { nr * 2 } else { nr + rem };
            let nr = newrank as usize;
            let mut mask = 1;
            while mask < pof2 {
                let partner = to_real(nr ^ mask);
                let other =
                    self.try_sendrecv_internal(partner, tag, acc.clone(), partner, tag, deadline)?;
                fold_into(&mut acc, &other, &op);
                mask <<= 1;
            }
        }
        // Unfold: even ranks hand the result back to their odd neighbours.
        if rank < 2 * rem {
            if rank % 2 == 0 {
                self.try_send_internal(rank + 1, tag, acc.clone())?;
            } else {
                acc = self.try_recv_internal::<T>(rank - 1, tag, deadline)?;
            }
        }
        Ok(acc)
    }

    /// Ring allreduce: reduce-scatter followed by allgather — the
    /// bandwidth-optimal algorithm used for large messages.
    pub fn allreduce_ring<T, F>(&self, data: &[T], op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        self.allreduce_ring_owned_tagged(tag, data.to_vec(), op)
    }

    /// Ring allreduce consuming the input buffer — the copy-free entry the
    /// HEAR engine chunks over.
    pub fn allreduce_ring_owned<T, F>(&self, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        self.allreduce_ring_owned_tagged(tag, data, op)
    }

    pub(crate) fn allreduce_ring_owned_tagged<T, F>(&self, tag: u64, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let mut seg = Vec::new();
        self.allreduce_ring_owned_tagged_with_seg(tag, data, op, &mut seg)
    }

    /// Ring allreduce with a caller-provided segment staging buffer: the
    /// hop-to-hop send segments are staged in `seg`, whose capacity
    /// survives the call, so an upper layer's buffer arena can absorb the
    /// per-call scratch of the ring schedule.
    pub fn allreduce_ring_owned_with_seg<T, F>(
        &self,
        data: Vec<T>,
        op: F,
        seg: &mut Vec<T>,
    ) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        self.allreduce_ring_owned_tagged_with_seg(tag, data, op, seg)
    }

    pub(crate) fn allreduce_ring_owned_tagged_with_seg<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        seg: &mut Vec<T>,
    ) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        self.try_allreduce_ring_owned_tagged_with_seg(tag, data, op, seg, None)
            .unwrap_or_else(|e| panic!("ring allreduce (tag {tag:#x}) failed: {e}"))
    }

    /// Fallible ring allreduce: every hop is bounded by `deadline` and a
    /// dead neighbour surfaces as a typed error instead of a hang. On
    /// error `acc` is lost mid-schedule; retries restart from the
    /// caller's own input.
    pub fn try_allreduce_ring_owned_tagged_with_seg<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        seg: &mut Vec<T>,
        deadline: Option<std::time::Instant>,
    ) -> Result<Vec<T>, crate::CommError>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let (world, rank) = (self.world(), self.rank());
        let _s = hear_telemetry::span!("allreduce_ring", elems = data.len(), tag = tag);
        let mut acc: Vec<T> = data;
        if world == 1 || acc.is_empty() {
            return Ok(acc);
        }
        let bounds = ring_chunk_bounds(acc.len(), world);
        // Reduce-scatter phase: after world-1 steps, rank owns the fully
        // reduced chunk (rank+1) mod world.
        self.try_ring_circulate(
            tag,
            &mut acc,
            &bounds,
            rank,
            |dst, src| fold_into(dst, src, &op),
            seg,
            deadline,
        )?;
        // Allgather phase: circulate the reduced chunks.
        self.try_ring_circulate(
            tag,
            &mut acc,
            &bounds,
            (rank + 1) % world,
            |dst, src| dst.clone_from_slice(src),
            seg,
            deadline,
        )?;
        Ok(acc)
    }

    /// One ring circulation — THE ring hop loop, shared by both phases of
    /// the fused allreduce and by the standalone reduce-scatter and
    /// allgather collectives. `world − 1` neighbour hops in which every
    /// rank forwards the chunk it took in on the previous step: at step
    /// `s` the rank sends chunk `(start + world − s) % world` and
    /// receives chunk `(start + world − s − 1) % world`, where `start` is
    /// the chunk this rank holds on entry. `absorb` merges each received
    /// chunk into `acc` — a fold for the reduce-scatter phase, an
    /// overwrite for the allgather phase.
    ///
    /// `seg` is one reusable segment buffer per hop: each received
    /// segment's allocation becomes the next hop's send buffer, halving
    /// the per-step allocations without changing the message schedule.
    /// The buffer is the caller's, so its capacity outlives the call.
    #[allow(clippy::too_many_arguments)]
    fn try_ring_circulate<T, A>(
        &self,
        tag: u64,
        acc: &mut [T],
        bounds: &[(usize, usize)],
        start: usize,
        absorb: A,
        seg: &mut Vec<T>,
        deadline: Option<std::time::Instant>,
    ) -> Result<(), crate::CommError>
    where
        T: Clone + Send + 'static,
        A: FnMut(&mut [T], &[T]),
    {
        let (world, rank) = (self.world(), self.rank());
        let next = (rank + 1) % world;
        let prev = (rank + world - 1) % world;
        self.try_ring_circulate_among(
            tag, acc, bounds, world, next, prev, start, absorb, seg, deadline,
        )
    }

    /// [`Communicator::try_ring_circulate`] over an explicit sub-ring: the
    /// `npeers` participants are identified only by their `next`/`prev`
    /// global ranks and the chunk index `start` this participant holds on
    /// entry. The hierarchical allreduce runs its inter-leader phase on
    /// this — the leaders of a grouped communicator form a ring of
    /// `⌈world/group⌉` peers at stride `group` — while the flat ring is
    /// the degenerate sub-ring of all `world` ranks.
    #[allow(clippy::too_many_arguments)]
    fn try_ring_circulate_among<T, A>(
        &self,
        tag: u64,
        acc: &mut [T],
        bounds: &[(usize, usize)],
        npeers: usize,
        next: usize,
        prev: usize,
        start: usize,
        mut absorb: A,
        seg: &mut Vec<T>,
        deadline: Option<std::time::Instant>,
    ) -> Result<(), crate::CommError>
    where
        T: Clone + Send + 'static,
        A: FnMut(&mut [T], &[T]),
    {
        for step in 0..npeers - 1 {
            let send_chunk = (start + npeers - step) % npeers;
            let recv_chunk = (start + npeers - step - 1) % npeers;
            let (s, e) = bounds[send_chunk];
            seg.clear();
            seg.extend_from_slice(&acc[s..e]);
            let incoming =
                self.try_sendrecv_internal(next, tag, std::mem::take(seg), prev, tag, deadline)?;
            let (s, e) = bounds[recv_chunk];
            absorb(&mut acc[s..e], &incoming);
            *seg = incoming;
        }
        Ok(())
    }

    /// Hierarchical allreduce: ranks are partitioned into leader groups of
    /// `group` consecutive ranks ("nodes"); each group reduces to its
    /// leader, the leaders run a reduce-scatter + allgather ring among
    /// themselves, and each leader broadcasts the result back to its
    /// group. For exactly associative-commutative operators (every HEAR
    /// combine) the regrouped fold is bit-identical to the flat ring.
    ///
    /// The intra-group phases are plain send/recv, which the transport
    /// shapes: in-process channel hops under the `mem` transport (the
    /// shared-memory case), socket hops under `tcp`. Three sub-tags are
    /// used — `tag` (intra reduce), `tag+1` (inter-leader ring), `tag+2`
    /// (intra broadcast) — staying inside one attempt slot of the engine's
    /// retry ladder (attempt tags stride by 8).
    pub fn allreduce_hier<T, F>(&self, data: &[T], group: usize, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        let mut seg = Vec::new();
        self.try_allreduce_hier_owned_tagged_with_seg(tag, data.to_vec(), op, group, &mut seg, None)
            .unwrap_or_else(|e| panic!("hierarchical allreduce (tag {tag:#x}) failed: {e}"))
    }

    /// Fallible hierarchical allreduce on a caller-reserved tag and
    /// deadline — see [`Communicator::allreduce_hier`] for the topology.
    /// On error the accumulator is lost mid-schedule; retries restart
    /// from the caller's own input.
    pub fn try_allreduce_hier_owned_tagged_with_seg<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        group: usize,
        seg: &mut Vec<T>,
        deadline: Option<std::time::Instant>,
    ) -> Result<Vec<T>, crate::CommError>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let (world, rank) = (self.world(), self.rank());
        let _s = hear_telemetry::span!("allreduce_hier", elems = data.len(), tag = tag);
        let mut acc: Vec<T> = data;
        if world == 1 || acc.is_empty() {
            return Ok(acc);
        }
        let g = group.clamp(1, world);
        let leader = rank - rank % g;
        let members_end = (leader + g).min(world);

        if rank != leader {
            // Phase 1 (member): hand the contribution to the leader, then
            // wait for the reduced vector in phase 3.
            self.try_send_internal(leader, tag, std::mem::take(&mut acc))?;
            return self.try_recv_internal::<T>(leader, tag + 2, deadline);
        }

        // Phase 1 (leader): fold the group members' contributions.
        for r in leader + 1..members_end {
            let other = self.try_recv_internal::<T>(r, tag, deadline)?;
            fold_into(&mut acc, &other, &op);
            *seg = other; // recycle the allocation for the ring phase
        }

        // Phase 2: reduce-scatter + allgather ring among the leaders.
        let nleaders = world.div_ceil(g);
        if nleaders > 1 {
            let li = rank / g;
            let next = ((li + 1) % nleaders) * g;
            let prev = ((li + nleaders - 1) % nleaders) * g;
            let bounds = ring_chunk_bounds(acc.len(), nleaders);
            self.try_ring_circulate_among(
                tag + 1,
                &mut acc,
                &bounds,
                nleaders,
                next,
                prev,
                li,
                |dst, src| fold_into(dst, src, &op),
                seg,
                deadline,
            )?;
            self.try_ring_circulate_among(
                tag + 1,
                &mut acc,
                &bounds,
                nleaders,
                next,
                prev,
                (li + 1) % nleaders,
                |dst, src| dst.clone_from_slice(src),
                seg,
                deadline,
            )?;
        }

        // Phase 3: broadcast the result back into the group.
        for r in leader + 1..members_end {
            self.try_send_internal(r, tag + 2, acc.clone())?;
        }
        Ok(acc)
    }

    /// Fallible tagged ring reduce-scatter on a deadline: every rank
    /// passes the full vector; rank `r` returns the fully reduced
    /// elements of chunk `r` (the [`ring_chunk_bounds`] layout). This is
    /// the ring allreduce's first phase plus one rotation hop — after the
    /// circulation rank `r` holds chunk `(r+1) mod world`, which it
    /// forwards once so chunk index == owning rank (the MPI layout).
    pub fn try_reduce_scatter_tagged_with_seg<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        seg: &mut Vec<T>,
        deadline: Option<std::time::Instant>,
    ) -> Result<Vec<T>, crate::CommError>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let (world, rank) = (self.world(), self.rank());
        let _s = hear_telemetry::span!("reduce_scatter_ring", elems = data.len(), tag = tag);
        let mut acc: Vec<T> = data;
        if world == 1 || acc.is_empty() {
            return Ok(acc);
        }
        let bounds = ring_chunk_bounds(acc.len(), world);
        self.try_ring_circulate(
            tag,
            &mut acc,
            &bounds,
            rank,
            |dst, src| fold_into(dst, src, &op),
            seg,
            deadline,
        )?;
        let owned = (rank + 1) % world;
        let (s, e) = bounds[owned];
        seg.clear();
        seg.extend_from_slice(&acc[s..e]);
        // Chunk `rank` sits one hop behind (on rank−1); trade the owned
        // chunk forward for it. Tag +1 stays inside this collective's
        // attempt slot (attempt tags stride by 8).
        self.try_sendrecv_internal(
            owned,
            tag + 1,
            std::mem::take(seg),
            (rank + world - 1) % world,
            tag + 1,
            deadline,
        )
    }

    /// Fallible tagged ring allgather with per-rank counts: `mine` is
    /// this rank's `counts[rank]`-element contribution; every rank
    /// returns the rank-ordered concatenation. Runs the same circulate
    /// loop as the fused ring's second phase, over (possibly uneven)
    /// rank-sized chunks.
    pub fn try_allgather_tagged_with_seg<T>(
        &self,
        tag: u64,
        mine: Vec<T>,
        counts: &[usize],
        seg: &mut Vec<T>,
        deadline: Option<std::time::Instant>,
    ) -> Result<Vec<T>, crate::CommError>
    where
        T: Clone + Default + Send + 'static,
    {
        let (world, rank) = (self.world(), self.rank());
        assert_eq!(counts.len(), world, "need one count per rank");
        assert_eq!(
            mine.len(),
            counts[rank],
            "contribution must match counts[rank]"
        );
        let _s = hear_telemetry::span!("allgather_ring", elems = mine.len(), tag = tag);
        if world == 1 {
            return Ok(mine);
        }
        let mut bounds = Vec::with_capacity(world);
        let mut total = 0usize;
        for &c in counts {
            bounds.push((total, total + c));
            total += c;
        }
        let mut acc = vec![T::default(); total];
        let (s, e) = bounds[rank];
        acc[s..e].clone_from_slice(&mine);
        self.try_ring_circulate(
            tag,
            &mut acc,
            &bounds,
            rank,
            |dst, src| dst.clone_from_slice(src),
            seg,
            deadline,
        )?;
        Ok(acc)
    }

    /// Fallible tagged personalized all-to-all on a deadline:
    /// `chunks[r]` goes to rank `r`; slot `r` of the result is what rank
    /// `r` sent to us. Pairwise exchange — step `d` trades with the
    /// ranks at ring distance `±d`, so every hop is one bounded
    /// sendrecv and a dead peer surfaces as a typed error.
    pub fn try_alltoall_tagged<T>(
        &self,
        tag: u64,
        mut chunks: Vec<Vec<T>>,
        deadline: Option<std::time::Instant>,
    ) -> Result<Vec<Vec<T>>, crate::CommError>
    where
        T: Clone + Send + 'static,
    {
        let (world, rank) = (self.world(), self.rank());
        assert_eq!(chunks.len(), world, "need one chunk per rank");
        let _s = hear_telemetry::span!("alltoall", tag = tag);
        let mut out: Vec<Vec<T>> = vec![Vec::new(); world];
        out[rank] = std::mem::take(&mut chunks[rank]);
        for dist in 1..world {
            let to = (rank + dist) % world;
            let from = (rank + world - dist) % world;
            let payload = std::mem::take(&mut chunks[to]);
            out[from] = self.try_sendrecv_internal(to, tag, payload, from, tag, deadline)?;
        }
        Ok(out)
    }

    /// Ring allgather: every rank contributes `data`, everyone returns the
    /// concatenation ordered by rank.
    pub fn allgather<T: Clone + Send + 'static>(&self, data: Vec<T>) -> Vec<Vec<T>> {
        let tag = self.next_coll_tag();
        let (world, rank) = (self.world(), self.rank());
        let mut slots: Vec<Vec<T>> = vec![Vec::new(); world];
        slots[rank] = data;
        let next = (rank + 1) % world;
        let prev = (rank + world - 1) % world;
        for step in 0..world.saturating_sub(1) {
            let send_slot = (rank + world - step) % world;
            let recv_slot = (rank + world - step - 1) % world;
            let out = slots[send_slot].clone();
            let incoming = self.sendrecv_internal(next, tag, out, prev, tag);
            slots[recv_slot] = incoming;
        }
        slots
    }

    /// Gather to root: root returns all contributions ordered by rank,
    /// non-roots return an empty vec.
    pub fn gather<T: Clone + Send + 'static>(&self, root: usize, data: Vec<T>) -> Vec<Vec<T>> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut out = vec![Vec::new(); self.world()];
            out[root] = data;
            for (r, slot) in out.iter_mut().enumerate() {
                if r != root {
                    *slot = self.recv_internal::<T>(r, tag);
                }
            }
            out
        } else {
            self.send_internal(root, tag, data);
            Vec::new()
        }
    }

    /// Scatter from root: rank r receives `chunks[r]` (only root's `chunks`
    /// argument is used).
    pub fn scatter<T: Clone + Send + 'static>(&self, root: usize, chunks: Vec<Vec<T>>) -> Vec<T> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            assert_eq!(chunks.len(), self.world(), "need one chunk per rank");
            let mut own = Vec::new();
            for (r, chunk) in chunks.into_iter().enumerate() {
                if r == root {
                    own = chunk;
                } else {
                    self.send_internal(r, tag, chunk);
                }
            }
            own
        } else {
            self.recv_internal::<T>(root, tag)
        }
    }

    /// Personalized all-to-all: `chunks[r]` goes to rank `r`; the result's
    /// slot `r` is what rank `r` sent to us.
    pub fn alltoall<T: Clone + Send + 'static>(&self, chunks: Vec<Vec<T>>) -> Vec<Vec<T>> {
        let tag = self.next_coll_tag();
        let (world, rank) = (self.world(), self.rank());
        assert_eq!(chunks.len(), world, "need one chunk per rank");
        let mut out: Vec<Vec<T>> = vec![Vec::new(); world];
        // Pairwise exchange pattern: step s exchanges with rank ^ s where
        // possible; for generality use send-all then receive-all with
        // eager buffering (the fabric is unbounded).
        for (r, chunk) in chunks.into_iter().enumerate() {
            if r == rank {
                out[r] = chunk;
            } else {
                self.send_internal(r, tag, chunk);
            }
        }
        for (r, slot) in out.iter_mut().enumerate() {
            if r != rank {
                *slot = self.recv_internal::<T>(r, tag);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::simulator::Simulator;

    #[test]
    fn barrier_completes_for_various_sizes() {
        for world in [1, 2, 3, 5, 8] {
            Simulator::new(world).run(|comm| {
                for _ in 0..3 {
                    comm.barrier();
                }
            });
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for world in [1usize, 2, 3, 4, 7] {
            for root in 0..world {
                let results = Simulator::new(world).run(move |comm| {
                    let data = if comm.rank() == root {
                        vec![42u32, 7, root as u32]
                    } else {
                        Vec::new()
                    };
                    comm.bcast(root, data)
                });
                for (r, v) in results.iter().enumerate() {
                    assert_eq!(
                        *v,
                        vec![42, 7, root as u32],
                        "world={world} root={root} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for world in [1usize, 2, 5, 8] {
            for root in [0, world - 1] {
                let results = Simulator::new(world).run(move |comm| {
                    let data: Vec<u64> = vec![comm.rank() as u64 + 1, 10];
                    comm.reduce(root, data, |a, b| a + b)
                });
                let expect_sum: u64 = (1..=world as u64).sum();
                assert_eq!(results[root], vec![expect_sum, 10 * world as u64]);
            }
        }
    }

    #[test]
    fn allreduce_recursive_doubling_all_sizes() {
        for world in [1usize, 2, 3, 4, 5, 6, 7, 8, 9] {
            let results = Simulator::new(world).run(move |comm| {
                let data: Vec<u64> = (0..5).map(|j| (comm.rank() as u64 + 1) * 100 + j).collect();
                comm.allreduce(&data, |a, b| a.wrapping_add(*b))
            });
            for j in 0..5u64 {
                let expect: u64 = (1..=world as u64).map(|r| r * 100 + j).sum();
                for (r, v) in results.iter().enumerate() {
                    assert_eq!(v[j as usize], expect, "world={world} rank={r} j={j}");
                }
            }
        }
    }

    #[test]
    fn allreduce_ring_matches_recursive_doubling() {
        for world in [2usize, 3, 4, 7] {
            for len in [1usize, 3, 7, 16, 33] {
                let results = Simulator::new(world).run(move |comm| {
                    let data: Vec<u64> = (0..len as u64)
                        .map(|j| (comm.rank() as u64) * 1000 + j * j)
                        .collect();
                    let ring = comm.allreduce_ring(&data, |a, b| a + b);
                    let rd = comm.allreduce(&data, |a, b| a + b);
                    (ring, rd)
                });
                for (ring, rd) in &results {
                    assert_eq!(ring, rd, "world={world} len={len}");
                }
            }
        }
    }

    #[test]
    fn allreduce_hier_matches_ring_across_groupings() {
        // Every grouping — degenerate (g=1 and g>=world), even, uneven
        // (last group short) — must be bit-identical to the flat ring for
        // an exactly associative-commutative op.
        for world in [1usize, 2, 3, 4, 5, 6, 8] {
            for group in [1usize, 2, 3, 4, 8] {
                for len in [1usize, 3, 7, 33] {
                    let results = Simulator::new(world).run(move |comm| {
                        let data: Vec<u64> = (0..len as u64)
                            .map(|j| (comm.rank() as u64).wrapping_mul(0x9e37) ^ (j * j))
                            .collect();
                        let hier = comm.allreduce_hier(&data, group, |a, b| a.wrapping_add(*b));
                        let ring = comm.allreduce_ring(&data, |a, b| a.wrapping_add(*b));
                        (hier, ring)
                    });
                    for (r, (hier, ring)) in results.iter().enumerate() {
                        assert_eq!(hier, ring, "world={world} group={group} len={len} rank={r}");
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_hier_nonblocking_matches_blocking() {
        let results = Simulator::new(6).run(|comm| {
            let data: Vec<u32> = (0..17).map(|j| comm.rank() as u32 * 31 + j).collect();
            let tag = comm.next_coll_tag();
            let req = comm.try_iallreduce_hier_tagged(tag, data.clone(), |a, b| a ^ b, 2, None);
            let blocking = comm.allreduce_hier(&data, 2, |a, b| a ^ b);
            let nb = req.wait().expect("nonblocking hier allreduce failed");
            (nb, blocking)
        });
        for (nb, blocking) in &results {
            assert_eq!(nb, blocking);
        }
    }

    #[test]
    fn allreduce_ring_short_vectors() {
        // len < world: some ranks own empty chunks.
        let results = Simulator::new(5)
            .run(|comm| comm.allreduce_ring(&[comm.rank() as u32 + 1, 100], |a, b| a + b));
        for v in &results {
            assert_eq!(*v, vec![15, 500]);
        }
    }

    #[test]
    fn allreduce_min_max_ops() {
        // The runtime supports any associative-commutative op (the HEAR
        // layer restricts which ones are *secure*; the substrate doesn't).
        let results = Simulator::new(4).run(|comm| {
            let data = vec![comm.rank() as i64 * 7 % 5, -(comm.rank() as i64)];
            let mx = comm.allreduce(&data, |a, b| *a.max(b));
            let mn = comm.allreduce(&data, |a, b| *a.min(b));
            (mx, mn)
        });
        for (mx, mn) in &results {
            assert_eq!(*mx, vec![4, 0]);
            assert_eq!(*mn, vec![0, -3]);
        }
    }

    #[test]
    fn allgather_orders_by_rank() {
        let results = Simulator::new(4).run(|comm| comm.allgather(vec![comm.rank() as u8; 2]));
        for v in &results {
            assert_eq!(*v, vec![vec![0, 0], vec![1, 1], vec![2, 2], vec![3, 3]]);
        }
    }

    #[test]
    fn gather_and_scatter() {
        let results = Simulator::new(3).run(|comm| {
            let gathered = comm.gather(1, vec![comm.rank() as u32 * 2]);
            let scattered = comm.scatter(
                1,
                if comm.rank() == 1 {
                    vec![vec![10u32], vec![11], vec![12]]
                } else {
                    Vec::new()
                },
            );
            (gathered, scattered)
        });
        assert_eq!(results[1].0, vec![vec![0], vec![2], vec![4]]);
        assert!(results[0].0.is_empty());
        assert_eq!(results[0].1, vec![10]);
        assert_eq!(results[1].1, vec![11]);
        assert_eq!(results[2].1, vec![12]);
    }

    #[test]
    fn alltoall_transposes() {
        let results = Simulator::new(3).run(|comm| {
            let chunks: Vec<Vec<u32>> = (0..3)
                .map(|dst| vec![(comm.rank() * 10 + dst) as u32])
                .collect();
            comm.alltoall(chunks)
        });
        // Rank r's slot s must hold what rank s sent to r: s*10 + r.
        for (r, v) in results.iter().enumerate() {
            for (s, chunk) in v.iter().enumerate() {
                assert_eq!(*chunk, vec![(s * 10 + r) as u32]);
            }
        }
    }

    #[test]
    fn tagged_reduce_scatter_matches_blocking() {
        for world in [2usize, 3, 4] {
            for len in [5usize, 8, 11] {
                let results = Simulator::new(world).run(move |comm| {
                    let data: Vec<u64> = (0..len as u64)
                        .map(|j| comm.rank() as u64 * 100 + j)
                        .collect();
                    let blocking = comm.reduce_scatter(&data, |a, b| a + b);
                    let tag = comm.reserve_coll_tags(1);
                    let mut seg = Vec::new();
                    let tagged = comm
                        .try_reduce_scatter_tagged_with_seg(tag, data, |a, b| a + b, &mut seg, None)
                        .unwrap();
                    (blocking, tagged)
                });
                let mut covered = 0usize;
                for (r, (blocking, tagged)) in results.iter().enumerate() {
                    assert_eq!(blocking, tagged, "world={world} len={len} rank={r}");
                    for (i, v) in tagged.iter().enumerate() {
                        let j = (covered + i) as u64;
                        let expect: u64 = (0..world as u64).map(|rk| rk * 100 + j).sum();
                        assert_eq!(*v, expect, "world={world} len={len} rank={r} i={i}");
                    }
                    covered += tagged.len();
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn tagged_allgather_uneven_counts() {
        let results = Simulator::new(4).run(|comm| {
            let counts = [3usize, 0, 2, 1];
            let mine: Vec<u32> = (0..counts[comm.rank()] as u32)
                .map(|j| comm.rank() as u32 * 10 + j)
                .collect();
            let tag = comm.reserve_coll_tags(1);
            let mut seg = Vec::new();
            comm.try_allgather_tagged_with_seg(tag, mine, &counts, &mut seg, None)
                .unwrap()
        });
        for v in &results {
            assert_eq!(*v, vec![0, 1, 2, 20, 21, 30]);
        }
    }

    #[test]
    fn tagged_alltoall_matches_blocking() {
        let results = Simulator::new(3).run(|comm| {
            let chunks: Vec<Vec<u32>> = (0..3)
                .map(|dst| vec![(comm.rank() * 10 + dst) as u32, 7])
                .collect();
            let blocking = comm.alltoall(chunks.clone());
            let tag = comm.reserve_coll_tags(1);
            let tagged = comm.try_alltoall_tagged(tag, chunks, None).unwrap();
            (blocking, tagged)
        });
        for (blocking, tagged) in &results {
            assert_eq!(blocking, tagged);
        }
    }

    #[test]
    fn consecutive_collectives_do_not_cross_talk() {
        let results = Simulator::new(3).run(|comm| {
            let a = comm.allreduce(&[1u32], |a, b| a + b);
            let b = comm.allreduce(&[10u32], |a, b| a + b);
            let c = comm.bcast(0, if comm.rank() == 0 { vec![7u32] } else { vec![] });
            (a[0], b[0], c[0])
        });
        for r in &results {
            assert_eq!(*r, (3, 30, 7));
        }
    }
}

// ---- additional collectives -------------------------------------------

impl Communicator {
    /// Reduce-scatter with even block partitioning (the first `n % P`
    /// blocks take one extra element): rank `r` returns the fully reduced
    /// elements of block `r`. This is the first half of the ring allreduce,
    /// exposed on its own (MPI_Reduce_scatter_block generalized).
    pub fn reduce_scatter<T, F>(&self, data: &[T], op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        let mut seg = Vec::new();
        self.try_reduce_scatter_tagged_with_seg(tag, data.to_vec(), op, &mut seg, None)
            .unwrap_or_else(|e| panic!("reduce_scatter (tag {tag:#x}) failed: {e}"))
    }

    /// Inclusive prefix scan (MPI_Scan): rank `r` returns
    /// `op(data_0, …, data_r)` element-wise, via the classical
    /// Hillis–Steele doubling with partial-result separation.
    pub fn scan<T, F>(&self, data: &[T], op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        let (world, rank) = (self.world(), self.rank());
        assert!(
            world <= 128,
            "scan uses the 8-bit sub-tag space (dist <= 128)"
        );
        // `result` carries op over ranks 0..=rank; `partial` carries op
        // over the contiguous window ending at rank (what we forward).
        let mut result: Vec<T> = data.to_vec();
        let mut partial: Vec<T> = data.to_vec();
        let mut dist = 1usize;
        while dist < world {
            if rank + dist < world {
                self.send_internal(rank + dist, tag + dist as u64, partial.clone());
            }
            if rank >= dist {
                let incoming = self.recv_internal::<T>(rank - dist, tag + dist as u64);
                fold_into(&mut result, &incoming, &op);
                fold_into(&mut partial, &incoming, &op);
            }
            dist *= 2;
        }
        result
    }

    /// Exclusive prefix scan (MPI_Exscan): rank 0's result is undefined in
    /// MPI; here it returns `None`, other ranks get op over ranks 0..rank.
    pub fn exscan<T, F>(&self, data: &[T], op: F) -> Option<Vec<T>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let tag = self.next_coll_tag();
        let (world, rank) = (self.world(), self.rank());
        assert!(
            world <= 128,
            "exscan uses the 8-bit sub-tag space (dist <= 128)"
        );
        // Shift the inclusive scan down one rank over a ring of sends.
        let inclusive = {
            // Inline inclusive scan with its own tag block offset to avoid
            // re-entering next_coll_tag.
            let mut result: Vec<T> = data.to_vec();
            let mut partial: Vec<T> = data.to_vec();
            let mut dist = 1usize;
            while dist < world {
                if rank + dist < world {
                    self.send_internal(rank + dist, tag + dist as u64, partial.clone());
                }
                if rank >= dist {
                    let incoming = self.recv_internal::<T>(rank - dist, tag + dist as u64);
                    fold_into(&mut result, &incoming, &op);
                    fold_into(&mut partial, &incoming, &op);
                }
                dist *= 2;
            }
            result
        };
        if rank + 1 < world {
            self.send_internal(rank + 1, tag + 255, inclusive);
        }
        if rank == 0 {
            None
        } else {
            Some(self.recv_internal::<T>(rank - 1, tag + 255))
        }
    }
}

#[cfg(test)]
mod more_tests {
    use crate::simulator::Simulator;

    #[test]
    fn reduce_scatter_blocks() {
        for world in [1usize, 2, 3, 4, 5] {
            for len in [world, 2 * world + 1, 17] {
                let results = Simulator::new(world).run(move |comm| {
                    let data: Vec<u64> = (0..len as u64).map(|j| j + comm.rank() as u64).collect();
                    comm.reduce_scatter(&data, |a, b| a + b)
                });
                // Expected: block r of the element-wise total.
                let total: Vec<u64> = (0..len as u64)
                    .map(|j| (0..world as u64).map(|r| j + r).sum())
                    .collect();
                let base = len / world;
                let extra = len % world;
                for (r, got) in results.iter().enumerate() {
                    let start = r * base + r.min(extra);
                    let blen = base + usize::from(r < extra);
                    assert_eq!(
                        got,
                        &total[start..start + blen],
                        "world={world} len={len} rank={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn scan_inclusive_prefixes() {
        for world in [1usize, 2, 3, 5, 8] {
            let results = Simulator::new(world)
                .run(move |comm| comm.scan(&[comm.rank() as u64 + 1, 100], |a, b| a + b));
            for (r, got) in results.iter().enumerate() {
                let expect: u64 = (1..=r as u64 + 1).sum();
                assert_eq!(got[0], expect, "world={world} rank={r}");
                assert_eq!(got[1], 100 * (r as u64 + 1));
            }
        }
    }

    #[test]
    fn scan_with_non_commutative_order() {
        // Scan must respect rank order even for non-commutative ops:
        // string-like concatenation encoded as (first, last) digit pairs —
        // simpler: use subtraction-sensitive op f(a,b) = 2a + b which is
        // associative? It is not; use matrix-like op: f(a,b)=a*10+b won't
        // be associative either. Use min-prefix instead (commutative but
        // order-revealing via distinct values per rank).
        let results = Simulator::new(4)
            .run(|comm| comm.scan(&[10u64 - comm.rank() as u64], |a, b| *a.min(b)));
        for (r, got) in results.iter().enumerate() {
            assert_eq!(
                got[0],
                10 - r as u64,
                "prefix min is the latest rank's value"
            );
        }
    }

    #[test]
    fn exscan_shifts_by_one() {
        let results =
            Simulator::new(4).run(|comm| comm.exscan(&[comm.rank() as u64 + 1], |a, b| a + b));
        assert!(results[0].is_none());
        for (r, res) in results.iter().enumerate().skip(1) {
            let expect: u64 = (1..=r as u64).sum();
            assert_eq!(res.as_ref().unwrap()[0], expect);
        }
    }

    #[test]
    fn scan_interleaves_with_other_collectives() {
        let results = Simulator::new(3).run(|comm| {
            let s = comm.scan(&[1u32], |a, b| a + b);
            let a = comm.allreduce(&[1u32], |a, b| a + b);
            let e = comm.exscan(&[1u32], |a, b| a + b);
            (s[0], a[0], e.map(|v| v[0]))
        });
        assert_eq!(results[0], (1, 3, None));
        assert_eq!(results[1], (2, 3, Some(1)));
        assert_eq!(results[2], (3, 3, Some(2)));
    }

    #[test]
    fn allreduce_matches_reference_on_random_inputs() {
        // Randomized cross-check of both allreduce algorithms against a
        // locally computed reference. Input shapes and payloads come from
        // the testkit PRNG; each rank derives its slice deterministically
        // from (round, rank) so the reference can be rebuilt outside the
        // simulator.
        use hear_testkit::TestRng;
        let mut shape_rng = TestRng::seed_from_u64(0x0c01_1ec7);
        for round in 0..8u64 {
            let world = shape_rng.gen_range(1usize..=5);
            let len = shape_rng.gen_range(1usize..=64);
            let rank_data = |rank: usize| -> Vec<u64> {
                let mut r = TestRng::seed_from_u64((round << 8) | rank as u64);
                let mut v = vec![0u64; len];
                // Bounded so world·max never wraps.
                for x in &mut v {
                    *x = r.gen_range(0u64..1 << 40);
                }
                v
            };
            let expect: Vec<u64> = (0..len)
                .map(|i| (0..world).map(|rank| rank_data(rank)[i]).sum())
                .collect();
            let results = Simulator::new(world).run(move |comm| {
                let mine = rank_data(comm.rank());
                let tree = comm.allreduce(&mine, |a, b| a + b);
                let ring = comm.allreduce_ring(&mine, |a, b| a + b);
                (tree, ring)
            });
            for (rank, (tree, ring)) in results.iter().enumerate() {
                assert_eq!(
                    tree, &expect,
                    "round={round} world={world} rank={rank} (tree)"
                );
                assert_eq!(
                    ring, &expect,
                    "round={round} world={world} rank={rank} (ring)"
                );
            }
        }
    }
}
