//! The communication-failure taxonomy.
//!
//! Every fallible fabric operation returns a [`CommError`] instead of
//! blocking forever or panicking: deadline expiry, a peer that died
//! mid-collective, a tag collision delivering the wrong payload type, or
//! a switch node of the INC tree going dark. The variants are `Copy` and
//! carry enough identity (endpoint, tag, wait time) to diagnose a failed
//! schedule from the error alone.

use std::time::Duration;

/// Why a fabric operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived before the deadline. The only
    /// *retryable* failure: the peer may merely be slow.
    Timeout {
        /// Endpoint the receive was matching on.
        source: usize,
        /// Full wire tag the receive was matching on.
        tag: u64,
        /// How long the receiver actually waited.
        waited: Duration,
    },
    /// The peer endpoint is dead (killed by a fault plan, or its thread
    /// panicked). `peer` may be the caller's own endpoint when the caller
    /// itself was killed mid-operation.
    PeerDead { peer: usize },
    /// A message matched `(source, tag)` but carried a different payload
    /// type — a tag collision between two protocols.
    TypeMismatch {
        source: usize,
        tag: u64,
        /// `std::any::type_name` of what the receiver expected.
        expected: &'static str,
    },
    /// A switch node of the INC aggregation tree is unreachable; the
    /// engine can fall back to a host-based algorithm.
    SwitchDown {
        /// Switch node id within the topology (not the fabric endpoint).
        node: usize,
    },
}

impl CommError {
    /// True for failures worth retrying with the same transport
    /// (currently only [`CommError::Timeout`]): dead peers stay dead, a
    /// type mismatch is a protocol bug, and a downed switch needs a
    /// different transport, not a retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self, CommError::Timeout { .. })
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout {
                source,
                tag,
                waited,
            } => write!(
                f,
                "timed out after {waited:?} waiting for (source={source}, tag={tag:#x})"
            ),
            CommError::PeerDead { peer } => write!(f, "peer endpoint {peer} is dead"),
            CommError::TypeMismatch {
                source,
                tag,
                expected,
            } => write!(
                f,
                "payload from (source={source}, tag={tag:#x}) is not the expected {expected}"
            ),
            CommError::SwitchDown { node } => {
                write!(f, "INC switch node {node} is down")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_timeout_is_retryable() {
        assert!(CommError::Timeout {
            source: 0,
            tag: 1,
            waited: Duration::from_millis(5)
        }
        .is_retryable());
        assert!(!CommError::PeerDead { peer: 2 }.is_retryable());
        assert!(!CommError::TypeMismatch {
            source: 0,
            tag: 1,
            expected: "alloc::vec::Vec<u32>"
        }
        .is_retryable());
        assert!(!CommError::SwitchDown { node: 0 }.is_retryable());
    }

    #[test]
    fn display_carries_identity() {
        let e = CommError::Timeout {
            source: 3,
            tag: 0x100,
            waited: Duration::from_millis(7),
        };
        let s = e.to_string();
        assert!(s.contains("source=3") && s.contains("0x100"), "{s}");
        let s = CommError::TypeMismatch {
            source: 1,
            tag: 9,
            expected: "alloc::vec::Vec<u64>",
        }
        .to_string();
        assert!(s.contains("Vec<u64>"), "{s}");
    }
}
