//! The communication-failure taxonomy.
//!
//! Every fallible fabric operation returns a [`CommError`] instead of
//! blocking forever or panicking: deadline expiry, a peer that died
//! mid-collective, a tag collision delivering the wrong payload type, or
//! a switch node of the INC tree going dark. The variants are `Copy` and
//! carry enough identity (endpoint, tag, wait time) to diagnose a failed
//! schedule from the error alone.

use std::time::Duration;

/// Why a fabric operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived before the deadline. The only
    /// *retryable* failure: the peer may merely be slow.
    Timeout {
        /// Endpoint the receive was matching on.
        source: usize,
        /// Full wire tag the receive was matching on.
        tag: u64,
        /// How long the receiver actually waited.
        waited: Duration,
    },
    /// The peer endpoint is dead (killed by a fault plan, or its thread
    /// panicked). `peer` may be the caller's own endpoint when the caller
    /// itself was killed mid-operation.
    PeerDead { peer: usize },
    /// The connection to `peer` dropped messages but the transport is
    /// still trying to heal it (write-retry backoff, a fault plan's
    /// transient-disconnect window). Retryable: the resend lands once
    /// the link reconnects. Hardens into [`CommError::PeerDead`] if the
    /// supervision miss budget runs out instead.
    Disconnected { peer: usize },
    /// A message matched `(source, tag)` but carried a different payload
    /// type — a tag collision between two protocols.
    TypeMismatch {
        source: usize,
        tag: u64,
        /// `std::any::type_name` of what the receiver expected.
        expected: &'static str,
    },
    /// A switch node of the INC aggregation tree is unreachable; the
    /// engine can fall back to a host-based algorithm.
    SwitchDown {
        /// Switch node id within the topology (not the fabric endpoint).
        node: usize,
    },
}

impl CommError {
    /// True for failures worth retrying with the same transport:
    /// [`CommError::Timeout`] (the peer may merely be slow) and
    /// [`CommError::Disconnected`] (the link is healing and a resend can
    /// land). Dead peers stay dead — `PeerDead` is *reconfigurable* (the
    /// membership can shrink around the corpse) but never retryable — a
    /// type mismatch is a protocol bug, and a downed switch needs a
    /// different transport, not a retry.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            CommError::Timeout { .. } | CommError::Disconnected { .. }
        )
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout {
                source,
                tag,
                waited,
            } => write!(
                f,
                "timed out after {waited:?} waiting for (source={source}, tag={tag:#x})"
            ),
            CommError::PeerDead { peer } => write!(f, "peer endpoint {peer} is dead"),
            CommError::Disconnected { peer } => {
                write!(f, "connection to endpoint {peer} dropped (reconnecting)")
            }
            CommError::TypeMismatch {
                source,
                tag,
                expected,
            } => write!(
                f,
                "payload from (source={source}, tag={tag:#x}) is not the expected {expected}"
            ),
            CommError::SwitchDown { node } => {
                write!(f, "INC switch node {node} is down")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the classification of *every* variant. Adding a variant must
    /// consciously place it on one side: transient faults (slow peer,
    /// healing link) retry in place; `PeerDead` is reconfigurable via
    /// membership shrink but never retryable; protocol and topology
    /// faults need different handling entirely.
    #[test]
    fn every_variant_classification_is_pinned() {
        let variants = [
            (
                CommError::Timeout {
                    source: 0,
                    tag: 1,
                    waited: Duration::from_millis(5),
                },
                true,
            ),
            (CommError::Disconnected { peer: 1 }, true),
            (CommError::PeerDead { peer: 2 }, false),
            (
                CommError::TypeMismatch {
                    source: 0,
                    tag: 1,
                    expected: "alloc::vec::Vec<u32>",
                },
                false,
            ),
            (CommError::SwitchDown { node: 0 }, false),
        ];
        for (e, retryable) in variants {
            assert_eq!(e.is_retryable(), retryable, "{e}");
        }
    }

    #[test]
    fn display_carries_identity() {
        let e = CommError::Timeout {
            source: 3,
            tag: 0x100,
            waited: Duration::from_millis(7),
        };
        let s = e.to_string();
        assert!(s.contains("source=3") && s.contains("0x100"), "{s}");
        let s = CommError::TypeMismatch {
            source: 1,
            tag: 9,
            expected: "alloc::vec::Vec<u64>",
        }
        .to_string();
        assert!(s.contains("Vec<u64>"), "{s}");
    }
}
