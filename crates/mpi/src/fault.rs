//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] is a seeded description of what can go wrong: messages
//! dropped, delayed, duplicated, or bit-flipped; endpoints killed after
//! their N-th outbound send. Every per-message decision is derived from a
//! [`TestRng`](hear_testkit::TestRng) seeded by the *identity* of the
//! message — `(plan seed, from, to, tag, per-link sequence number)` — so
//! the same schedule hits the same faults regardless of how the OS
//! interleaves rank threads. Kills are keyed on the victim endpoint's own
//! outbound send count, which is likewise schedule-independent.
//!
//! Payloads cross the fabric as `Box<dyn Any + Send>`, which can neither
//! be cloned nor inspected generically, so mutation ("corrupt") and
//! duplication each go through registered hooks:
//!
//! * a [`Corruptor`] flips bits in place and reports whether it handled
//!   the concrete payload type;
//! * a [`Cloner`] returns a boxed deep copy, or `None` if the type is
//!   foreign to it.
//!
//! Hooks for the primitive `Vec<uN>` payloads used by the collectives are
//! registered automatically; higher layers (e.g. the HoMAC packet types
//! in `hear-layer`) append their own.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hear_testkit::TestRng;

/// In-place payload mutator. Receives the payload and a per-message
/// random word; returns `true` if it recognised the concrete type and
/// applied a corruption.
pub type Corruptor = Arc<dyn Fn(&mut dyn Any, u64) -> bool + Send + Sync>;

/// Payload deep-copier for the duplicate fault. Returns `None` when the
/// concrete type is not one it knows how to clone.
pub type Cloner = Arc<dyn Fn(&(dyn Any + Send)) -> Option<Box<dyn Any + Send>> + Send + Sync>;

/// What the plan decided to do with one message (before kills are
/// considered). `Deliver` means "no fault sampled".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    Deliver,
    Drop,
    Delay(Duration),
    Duplicate,
    Corrupt,
}

/// A seeded, declarative description of injected faults.
///
/// All probabilities are expressed as "one in `n`" rates; `0` disables
/// the fault. The plan is immutable once handed to the fabric — per-run
/// mutable state (send counters, link sequence numbers) lives in
/// [`FaultState`].
#[derive(Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_one_in: u64,
    delay_one_in: u64,
    delay_by: Duration,
    duplicate_one_in: u64,
    corrupt_one_in: u64,
    /// `(endpoint, after_sends)`: the endpoint dies once it has completed
    /// `after_sends` outbound sends (`0` = dead from the start).
    kills: Vec<(usize, u64)>,
    /// `(endpoint, after_sends, for_sends)`: the endpoint's outbound link
    /// goes dark for sends `after_sends+1 ..= after_sends+for_sends`
    /// (dropped, endpoint marked suspect), then heals — the deterministic
    /// in-memory mirror of a transient TCP disconnect + reconnect.
    disconnects: Vec<(usize, u64, u64)>,
    corruptors: Vec<Corruptor>,
    cloners: Vec<Cloner>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("drop_one_in", &self.drop_one_in)
            .field("delay_one_in", &self.delay_one_in)
            .field("delay_by", &self.delay_by)
            .field("duplicate_one_in", &self.duplicate_one_in)
            .field("corrupt_one_in", &self.corrupt_one_in)
            .field("kills", &self.kills)
            .field("disconnects", &self.disconnects)
            .field("corruptors", &self.corruptors.len())
            .field("cloners", &self.cloners.len())
            .finish()
    }
}

impl FaultPlan {
    /// A plan with the given seed, no faults armed, and the built-in
    /// primitive-`Vec` corruptors/cloners registered.
    pub fn seeded(seed: u64) -> Self {
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::default()
        };
        register_primitive_hooks(&mut plan);
        plan
    }

    /// Drop one in `n` messages (0 disables).
    pub fn drop_one_in(mut self, n: u64) -> Self {
        self.drop_one_in = n;
        self
    }

    /// Delay one in `n` messages by `by` on top of the α–β model.
    pub fn delay_one_in(mut self, n: u64, by: Duration) -> Self {
        self.delay_one_in = n;
        self.delay_by = by;
        self
    }

    /// Deliver one in `n` messages twice.
    pub fn duplicate_one_in(mut self, n: u64) -> Self {
        self.duplicate_one_in = n;
        self
    }

    /// Bit-flip one in `n` messages (via the registered corruptors).
    pub fn corrupt_one_in(mut self, n: u64) -> Self {
        self.corrupt_one_in = n;
        self
    }

    /// Kill `endpoint` after it has completed `after_sends` outbound
    /// sends. `0` means the endpoint is dead from fabric construction.
    pub fn kill_endpoint_after(mut self, endpoint: usize, after_sends: u64) -> Self {
        self.kills.push((endpoint, after_sends));
        self
    }

    /// Drop `endpoint`'s outbound sends `after_sends+1 ..= after_sends +
    /// for_sends` and mark it suspect for that window; the first send
    /// past the window heals the link (counted as a reconnect). Unlike
    /// [`FaultPlan::kill_endpoint_after`], the endpoint survives —
    /// receivers waiting on it during the window observe
    /// `Disconnected` (retryable) rather than `PeerDead`.
    pub fn disconnect_endpoint_after(
        mut self,
        endpoint: usize,
        after_sends: u64,
        for_sends: u64,
    ) -> Self {
        self.disconnects.push((endpoint, after_sends, for_sends));
        self
    }

    /// Register an additional payload corruptor (tried before built-ins).
    pub fn with_corruptor(mut self, c: Corruptor) -> Self {
        self.corruptors.insert(0, c);
        self
    }

    /// Register an additional payload cloner (tried before built-ins).
    pub fn with_cloner(mut self, c: Cloner) -> Self {
        self.cloners.insert(0, c);
        self
    }

    /// Endpoints scheduled to die immediately (before any send).
    pub(crate) fn dead_on_arrival(&self) -> impl Iterator<Item = usize> + '_ {
        self.kills
            .iter()
            .filter(|(_, after)| *after == 0)
            .map(|(ep, _)| *ep)
    }

    /// If `endpoint` finishing its `sends_done`-th send triggers a kill,
    /// returns true.
    pub(crate) fn kill_triggered(&self, endpoint: usize, sends_done: u64) -> bool {
        self.kills
            .iter()
            .any(|&(ep, after)| ep == endpoint && after != 0 && sends_done >= after)
    }

    /// Where `endpoint`'s `ordinal`-th outbound send falls relative to
    /// its transient-disconnect windows.
    pub(crate) fn disconnect_phase(&self, endpoint: usize, ordinal: u64) -> DisconnectPhase {
        for &(ep, after, for_sends) in &self.disconnects {
            if ep != endpoint {
                continue;
            }
            if ordinal > after && ordinal <= after + for_sends {
                return DisconnectPhase::Dropping {
                    entering: ordinal == after + 1,
                };
            }
            if ordinal == after + for_sends + 1 {
                return DisconnectPhase::Healing;
            }
        }
        DisconnectPhase::Clear
    }

    /// Sample the fault decision for one message. Pure in the message
    /// identity: `(seed, from, to, tag, link_seq)` always yields the same
    /// action. At most one fault fires per message; the categories are
    /// tried in a fixed order (drop, corrupt, duplicate, delay) so rates
    /// compose predictably.
    pub(crate) fn action_for(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        link_seq: u64,
    ) -> FaultAction {
        if self.drop_one_in == 0
            && self.delay_one_in == 0
            && self.duplicate_one_in == 0
            && self.corrupt_one_in == 0
        {
            return FaultAction::Deliver;
        }
        let mut rng = TestRng::seed_from_u64(mix_identity(
            self.seed,
            from as u64,
            to as u64,
            tag,
            link_seq,
        ));
        if self.drop_one_in != 0 && rng.next_u64().is_multiple_of(self.drop_one_in) {
            return FaultAction::Drop;
        }
        if self.corrupt_one_in != 0 && rng.next_u64().is_multiple_of(self.corrupt_one_in) {
            return FaultAction::Corrupt;
        }
        if self.duplicate_one_in != 0 && rng.next_u64().is_multiple_of(self.duplicate_one_in) {
            return FaultAction::Duplicate;
        }
        if self.delay_one_in != 0 && rng.next_u64().is_multiple_of(self.delay_one_in) {
            return FaultAction::Delay(self.delay_by);
        }
        FaultAction::Deliver
    }

    /// The per-message random word handed to corruptors (independent of
    /// the action sampling stream).
    pub(crate) fn corruption_word(&self, from: usize, to: usize, tag: u64, link_seq: u64) -> u64 {
        let mut rng = TestRng::seed_from_u64(
            mix_identity(self.seed, from as u64, to as u64, tag, link_seq) ^ 0x9e3779b97f4a7c15,
        );
        rng.next_u64()
    }

    /// Run the payload through the registered corruptors; returns true if
    /// one of them handled the concrete type.
    pub(crate) fn corrupt_payload(&self, payload: &mut dyn Any, word: u64) -> bool {
        self.corruptors.iter().any(|c| c(payload, word))
    }

    /// Deep-copy the payload via the registered cloners, if any knows the
    /// concrete type.
    pub(crate) fn clone_payload(&self, payload: &(dyn Any + Send)) -> Option<Box<dyn Any + Send>> {
        self.cloners.iter().find_map(|c| c(payload))
    }
}

/// Per-run mutable fault bookkeeping, owned by the fabric: outbound send
/// counters per endpoint (for kill triggers) and a per-directed-link
/// sequence number (so per-message sampling is independent of thread
/// scheduling across links).
pub(crate) struct FaultState {
    endpoints: usize,
    sends_by: Vec<AtomicU64>,
    link_seq: Vec<AtomicU64>,
}

impl FaultState {
    pub(crate) fn new(endpoints: usize) -> Self {
        FaultState {
            endpoints,
            sends_by: (0..endpoints).map(|_| AtomicU64::new(0)).collect(),
            link_seq: (0..endpoints * endpoints)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Count one outbound send by `from`; returns the ordinal (1-based)
    /// of the send just completed.
    pub(crate) fn count_send(&self, from: usize) -> u64 {
        self.sends_by[from].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Next sequence number on the directed link `from → to` (0-based).
    pub(crate) fn next_link_seq(&self, from: usize, to: usize) -> u64 {
        self.link_seq[from * self.endpoints + to].fetch_add(1, Ordering::Relaxed)
    }
}

/// The transport-independent verdict of [`filter_send`] for one message:
/// deliver (with an optional duplicate copy and extra injected delay), or
/// drop it. The payload passed in may have been corrupted in place.
pub(crate) enum SendDecision {
    Deliver {
        dup: Option<Box<dyn Any + Send>>,
        extra_delay: Duration,
    },
    Drop,
}

/// A send ordinal's relation to the sender's transient-disconnect
/// windows, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DisconnectPhase {
    /// No window is active for this send.
    Clear,
    /// Inside a window: the send is dropped and the sender is suspect.
    /// `entering` is true on the window's first dropped send.
    Dropping { entering: bool },
    /// First send past a window: the link healed.
    Healing,
}

/// Everything a transport backend needs to act on one outbound message:
/// the delivery decision, whether this send triggers the sender's kill,
/// and the sender's suspect-state transition (`Some(true)` = entered a
/// disconnect window, `Some(false)` = healed, `None` = unchanged).
pub(crate) struct SendVerdict {
    pub(crate) decision: SendDecision,
    pub(crate) kill_after: bool,
    pub(crate) suspect: Option<bool>,
}

/// Apply an (optional) armed fault plan to one outbound message. This is
/// the single fault-decision point shared by every transport backend: the
/// in-memory fabric applies it just before mailbox deposit, the TCP
/// backend just before wire encoding (while the payload is still typed, so
/// the corruptor/cloner hooks work unchanged over sockets).
///
/// Returns the decision plus whether this send triggers the sender's
/// kill. When `to` is already dead the message is dropped without
/// counting a fault (a corpse receives nothing), but the sender's send
/// ordinal still advances — kill triggers stay schedule-independent.
pub(crate) fn filter_send(
    faults: Option<&(FaultPlan, FaultState)>,
    to_is_dead: bool,
    from: usize,
    to: usize,
    tag: u64,
    payload: &mut Box<dyn Any + Send>,
) -> SendVerdict {
    let Some((plan, state)) = faults else {
        return SendVerdict {
            decision: SendDecision::Deliver {
                dup: None,
                extra_delay: Duration::ZERO,
            },
            kill_after: false,
            suspect: None,
        };
    };
    // The send ordinal is the victim's own outbound count, so kill
    // triggers are independent of cross-thread scheduling. The
    // triggering send itself still completes ("dies after N sends").
    let ordinal = state.count_send(from);
    let kill_after = plan.kill_triggered(from, ordinal);
    let mut suspect = None;
    match plan.disconnect_phase(from, ordinal) {
        DisconnectPhase::Dropping { entering } => {
            if entering {
                hear_telemetry::incr(hear_telemetry::Metric::FaultDisconnect);
            }
            return SendVerdict {
                decision: SendDecision::Drop,
                kill_after,
                suspect: Some(true),
            };
        }
        DisconnectPhase::Healing => {
            hear_telemetry::incr(hear_telemetry::Metric::ReconnectsTotal);
            suspect = Some(false);
        }
        DisconnectPhase::Clear => {}
    }
    if to_is_dead {
        return SendVerdict {
            decision: SendDecision::Drop,
            kill_after,
            suspect,
        };
    }
    let link_seq = state.next_link_seq(from, to);
    let decision = match plan.action_for(from, to, tag, link_seq) {
        FaultAction::Deliver => SendDecision::Deliver {
            dup: None,
            extra_delay: Duration::ZERO,
        },
        FaultAction::Drop => {
            hear_telemetry::incr(hear_telemetry::Metric::FaultDrop);
            SendDecision::Drop
        }
        FaultAction::Delay(by) => {
            hear_telemetry::incr(hear_telemetry::Metric::FaultDelay);
            SendDecision::Deliver {
                dup: None,
                extra_delay: by,
            }
        }
        FaultAction::Duplicate => {
            let dup = plan.clone_payload(payload.as_ref());
            if dup.is_some() {
                hear_telemetry::incr(hear_telemetry::Metric::FaultDuplicate);
            }
            SendDecision::Deliver {
                dup,
                extra_delay: Duration::ZERO,
            }
        }
        FaultAction::Corrupt => {
            let word = plan.corruption_word(from, to, tag, link_seq);
            if plan.corrupt_payload(payload.as_mut(), word) {
                hear_telemetry::incr(hear_telemetry::Metric::FaultCorrupt);
            }
            SendDecision::Deliver {
                dup: None,
                extra_delay: Duration::ZERO,
            }
        }
    };
    SendVerdict {
        decision,
        kill_after,
        suspect,
    }
}

/// SplitMix64-style avalanche over the five identity words.
fn mix_identity(seed: u64, from: u64, to: u64, tag: u64, link_seq: u64) -> u64 {
    let mut h = seed ^ 0x51_7c_c1_b7_27_22_0a_95;
    for w in [from, to, tag, link_seq] {
        h ^= w.wrapping_mul(0x9e3779b97f4a7c15);
        h = h.rotate_left(27).wrapping_mul(0xbf58476d1ce4e5b9);
    }
    h ^= h >> 31;
    h.wrapping_mul(0x94d049bb133111eb)
}

/// Flip one bit (chosen by `word`) somewhere in a primitive vector, and
/// clone such vectors for the duplicate fault.
macro_rules! primitive_hooks {
    ($plan:expr, $($t:ty),+) => {{
        $plan.corruptors.push(Arc::new(|payload: &mut dyn Any, word: u64| {
            $(
                if let Some(v) = payload.downcast_mut::<Vec<$t>>() {
                    if v.is_empty() {
                        return true; // recognised; nothing to flip
                    }
                    let idx = (word as usize) % v.len();
                    let bit = (word >> 32) % (8 * std::mem::size_of::<$t>() as u64);
                    v[idx] ^= (1 as $t) << bit;
                    return true;
                }
            )+
            false
        }));
        $plan.cloners.push(Arc::new(|payload: &(dyn Any + Send)| {
            $(
                if let Some(v) = payload.downcast_ref::<Vec<$t>>() {
                    return Some(Box::new(v.clone()) as Box<dyn Any + Send>);
                }
            )+
            None
        }));
    }};
}

fn register_primitive_hooks(plan: &mut FaultPlan) {
    primitive_hooks!(plan, u8, u16, u32, u64, u128);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_are_deterministic_in_message_identity() {
        let plan = FaultPlan::seeded(7)
            .drop_one_in(3)
            .corrupt_one_in(3)
            .duplicate_one_in(3)
            .delay_one_in(3, Duration::from_millis(1));
        for link_seq in 0..64 {
            let a = plan.action_for(1, 2, 0x100, link_seq);
            let b = plan.action_for(1, 2, 0x100, link_seq);
            assert_eq!(a, b);
        }
        // Different identities decouple: at one-in-3 rates, 64 messages
        // must not all get the same action.
        let distinct: std::collections::HashSet<_> = (0..64)
            .map(|s| format!("{:?}", plan.action_for(1, 2, 0x100, s)))
            .collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn unarmed_plan_always_delivers() {
        let plan = FaultPlan::seeded(1);
        for s in 0..32 {
            assert_eq!(plan.action_for(0, 1, 5, s), FaultAction::Deliver);
        }
    }

    #[test]
    fn builtin_corruptor_flips_exactly_one_bit() {
        let plan = FaultPlan::seeded(0).corrupt_one_in(1);
        let orig = vec![0u32; 8];
        let mut v: Box<dyn Any> = Box::new(orig.clone());
        assert!(plan.corrupt_payload(v.as_mut(), 0xdead_beef_cafe_f00d));
        let got = v.downcast::<Vec<u32>>().unwrap();
        let flipped: u32 = got
            .iter()
            .zip(&orig)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn builtin_cloner_round_trips() {
        let plan = FaultPlan::seeded(0).duplicate_one_in(1);
        let v: Box<dyn Any + Send> = Box::new(vec![1u64, 2, 3]);
        let copy = plan
            .clone_payload(v.as_ref())
            .expect("Vec<u64> is cloneable");
        assert_eq!(*copy.downcast::<Vec<u64>>().unwrap(), vec![1u64, 2, 3]);
        let foreign: Box<dyn Any + Send> = Box::new(String::from("nope"));
        assert!(plan.clone_payload(foreign.as_ref()).is_none());
    }

    #[test]
    fn kill_bookkeeping() {
        let plan = FaultPlan::seeded(0)
            .kill_endpoint_after(2, 0)
            .kill_endpoint_after(3, 5);
        assert_eq!(plan.dead_on_arrival().collect::<Vec<_>>(), vec![2]);
        assert!(!plan.kill_triggered(3, 4));
        assert!(plan.kill_triggered(3, 5));
        assert!(!plan.kill_triggered(2, 9)); // after == 0 handled at construction
    }

    #[test]
    fn disconnect_window_phases() {
        let plan = FaultPlan::seeded(0).disconnect_endpoint_after(1, 3, 2);
        // Sends 1..=3 are before the window, 4..=5 inside, 6 heals.
        for ordinal in 1..=3 {
            assert_eq!(plan.disconnect_phase(1, ordinal), DisconnectPhase::Clear);
        }
        assert_eq!(
            plan.disconnect_phase(1, 4),
            DisconnectPhase::Dropping { entering: true }
        );
        assert_eq!(
            plan.disconnect_phase(1, 5),
            DisconnectPhase::Dropping { entering: false }
        );
        assert_eq!(plan.disconnect_phase(1, 6), DisconnectPhase::Healing);
        assert_eq!(plan.disconnect_phase(1, 7), DisconnectPhase::Clear);
        // Other endpoints are untouched.
        assert_eq!(plan.disconnect_phase(0, 4), DisconnectPhase::Clear);
    }

    #[test]
    fn fault_state_counters() {
        let st = FaultState::new(4);
        assert_eq!(st.count_send(1), 1);
        assert_eq!(st.count_send(1), 2);
        assert_eq!(st.next_link_seq(1, 2), 0);
        assert_eq!(st.next_link_seq(1, 2), 1);
        assert_eq!(st.next_link_seq(2, 1), 0);
    }
}
