//! The TCP transport: real kernel sockets under the same mailbox matcher.
//!
//! Two deployment shapes, one [`Transport`] implementation:
//!
//! * **Loopback mesh** ([`TcpTransport::mesh`]): every endpoint lives in
//!   this process (exactly like the in-memory fabric), but each unordered
//!   endpoint pair is joined by a genuine `127.0.0.1` socket pair and every
//!   non-self message is framed, written to the kernel, and reassembled by
//!   a progress thread on the other side. This is what
//!   `HEAR_TRANSPORT=tcp` selects under the [`Simulator`](crate::Simulator):
//!   the whole existing test matrix runs with real syscalls, real frame
//!   torn-reads, and real socket buffering in the path.
//! * **Multi-process** ([`TcpTransport::connect`]): one OS process per
//!   rank. Every rank binds an ephemeral data listener; rank 0 additionally
//!   binds a rendezvous listener (fixed port via `HEAR_PORT_BASE`, or an
//!   ephemeral port published through `HEAR_RENDEZVOUS_FILE`). Non-zero
//!   ranks dial rank 0, introduce themselves with a `Hello{rank, port}`
//!   frame, and receive the full rank→port `Table`; the pairwise mesh is
//!   then completed with rank *i* dialing every rank *j < i* (the
//!   rendezvous connections double as the data connections to rank 0).
//!
//! After the mesh exists, a ring RTT probe (`Ping`/`Pong` to the next
//! rank) measures the real round trip so deadline budgets derived from
//! [`Transport::rtt_estimate`] stay meaningful over sockets. A single
//! progress thread then owns the read side of every connection:
//! nonblocking reads feed per-connection [`FrameDecoder`]s, decoded
//! messages are deposited into the same [`Mailbox`] array the in-memory
//! fabric uses (so `recv_on` semantics — FIFO per `(source, tag)`, typed
//! deadlines, death flags — are shared code, not reimplemented).
//!
//! Failure mapping: EOF / read error / corrupt frame header on a
//! connection marks the attributed peer dead and wakes every waiter, so
//! blocked receives resolve to `CommError::PeerDead`; a payload that
//! cannot be decoded poisons only its own message (the matching receive
//! gets `CommError::TypeMismatch`). Deadline expiry stays `Timeout`, same
//! as the in-memory fabric. Fault plans are applied *before* encoding,
//! while the payload is still typed, so the chaos suite's corrupt /
//! duplicate / drop / delay / kill injections work unchanged over sockets.

pub mod wire;

use std::any::Any;
use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::error::CommError;
use crate::fabric::{
    count_delivery, lock_unpoisoned, recv_on_mailboxes, LinkClock, Mailbox, NetConfig,
};
use crate::fault::{filter_send, FaultPlan, FaultState, SendDecision, SendVerdict};
use crate::transport::{Envelope, Transport};
use std::sync::atomic::AtomicU64;
use wire::{encode_frame, Frame, FrameDecoder, FrameHeader, FrameKind};

/// Default ceiling on connection establishment (bind + rendezvous + mesh
/// + RTT probe), overridable with `HEAR_TCP_SETUP_TIMEOUT_MS`.
const DEFAULT_SETUP_TIMEOUT: Duration = Duration::from_secs(10);

/// Floor for the measured RTT: below this, condvar wake latency dominates
/// and a tighter deadline budget would only produce false timeouts.
const RTT_FLOOR: Duration = Duration::from_micros(50);

/// Ping/pong iterations of the setup RTT probe.
const RTT_PROBES: u32 = 4;

fn setup_timeout() -> Duration {
    std::env::var("HEAR_TCP_SETUP_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(DEFAULT_SETUP_TIMEOUT)
}

/// Bounded retries a failing frame write gets (exponential backoff from
/// [`WRITE_RETRY_BACKOFF`]) before the peer is declared dead. During the
/// retry window the peer is *suspect*: receivers see the retryable
/// `Disconnected` instead of `Timeout`.
const WRITE_RETRIES: u32 = 3;
const WRITE_RETRY_BACKOFF: Duration = Duration::from_millis(1);

/// Heartbeat supervision of the multi-process mesh: the progress thread
/// pings every peer each `interval`, and a peer not heard from (any
/// frame, including the `Pong` replies) for `interval × miss_budget` is
/// declared dead. Hung-open sockets (a peer stopped by SIGSTOP, a
/// half-broken NAT path) therefore harden into a typed `PeerDead`
/// instead of an unbounded hang; an outright SIGKILL is still caught
/// faster by EOF.
#[derive(Debug, Clone, Copy)]
struct Heartbeat {
    interval: Duration,
    miss_budget: u32,
}

impl Heartbeat {
    /// `HEAR_HEARTBEAT_MS` (default 100) and `HEAR_HEARTBEAT_MISS`
    /// (default 10): detection within ~1 s out of the box.
    fn from_env() -> Heartbeat {
        let ms = std::env::var("HEAR_HEARTBEAT_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(100)
            .max(1);
        let miss = std::env::var("HEAR_HEARTBEAT_MISS")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(10)
            .max(1);
        Heartbeat {
            interval: Duration::from_millis(ms),
            miss_budget: miss,
        }
    }
}

/// How rank 0's rendezvous listener is found by the other ranks.
#[derive(Debug, Clone)]
pub enum Rendezvous {
    /// Rank 0 binds exactly this port; everyone else dials it directly.
    Port(u16),
    /// Rank 0 binds an ephemeral port and publishes it through this file
    /// (written atomically via rename); everyone else polls the file.
    /// This is the hygienic default: no fixed port, so concurrent
    /// launchers on one host never collide.
    File(PathBuf),
}

impl Rendezvous {
    /// `HEAR_PORT_BASE` (explicit port) or `HEAR_RENDEZVOUS_FILE`.
    pub fn from_env() -> Option<Rendezvous> {
        if let Ok(p) = std::env::var("HEAR_PORT_BASE") {
            return p.parse::<u16>().ok().map(Rendezvous::Port);
        }
        std::env::var("HEAR_RENDEZVOUS_FILE")
            .ok()
            .map(|p| Rendezvous::File(PathBuf::from(p)))
    }
}

/// Which endpoints this process hosts, and how frames route out.
enum Topology {
    /// All endpoints in-process; `writers[from * total + to]` is the
    /// from-side of the socket pair joining the two.
    Mesh {
        writers: Vec<Option<Mutex<TcpStream>>>,
    },
    /// One process per rank; `writers[peer]` is the connection to `peer`.
    Proc {
        me: usize,
        writers: Vec<Option<Mutex<TcpStream>>>,
    },
}

/// An inbound payload still in wire form. Frames are deposited encoded
/// and decoded at `recv_on` time, so codec registration only has to
/// happen before the *receiver* asks — not before the sender's bytes hit
/// this process (multi-process setup races otherwise).
struct RawPayload {
    wire_id: u32,
    bytes: Vec<u8>,
}

struct Inner {
    total: usize,
    topo: Topology,
    mailboxes: Vec<Mailbox>,
    dead: Vec<AtomicBool>,
    /// Endpoints whose link is mid-heal (write-retry backoff, injected
    /// disconnect window): receivers report `Disconnected` (retryable)
    /// instead of `Timeout` while the flag is up.
    suspect: Vec<AtomicBool>,
    /// Milliseconds since `start` at which each peer was last heard from
    /// (any inbound frame). Drives the heartbeat miss budget.
    last_heard: Vec<AtomicU64>,
    start: Instant,
    /// Armed only in multi-process (`Proc`) topology; the in-process mesh
    /// learns of deaths by EOF and explicit kills.
    heartbeat: Option<Heartbeat>,
    clock: LinkClock,
    faults: Option<(FaultPlan, FaultState)>,
    rtt: Duration,
    shutdown: AtomicBool,
}

/// One connection's read side, owned by the progress thread.
struct ReadConn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// The endpoint whose outbound frames appear here; EOF or a corrupt
    /// stream implicates this endpoint.
    peer: usize,
    alive: bool,
}

/// See the [module docs](self) for the protocol; see [`Transport`] for
/// the contract this satisfies.
pub struct TcpTransport {
    inner: Arc<Inner>,
    progress: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Inner {
    fn mark_dead(&self, endpoint: usize) {
        if endpoint < self.total && !self.dead[endpoint].swap(true, Ordering::SeqCst) {
            for mb in &self.mailboxes {
                mb.wake();
            }
        }
    }

    fn is_dead(&self, endpoint: usize) -> bool {
        endpoint < self.total && self.dead[endpoint].load(Ordering::SeqCst)
    }

    fn is_suspect(&self, endpoint: usize) -> bool {
        endpoint < self.total && self.suspect[endpoint].load(Ordering::SeqCst)
    }

    fn mark_suspect(&self, endpoint: usize, flag: bool) {
        if endpoint >= self.total {
            return;
        }
        if self.suspect[endpoint].swap(flag, Ordering::SeqCst) && !flag {
            // The link healed: wake parked receivers so they stop
            // resolving to `Disconnected`.
            for mb in &self.mailboxes {
                mb.wake();
            }
        }
    }

    /// Record liveness evidence for `peer` (any inbound bytes count).
    fn note_heard(&self, peer: usize) {
        if peer < self.total {
            let ms = self.start.elapsed().as_millis() as u64;
            self.last_heard[peer].store(ms, Ordering::Relaxed);
        }
    }

    fn writer_for(&self, from: usize, to: usize) -> Option<&Mutex<TcpStream>> {
        match &self.topo {
            Topology::Mesh { writers } => writers.get(from * self.total + to)?.as_ref(),
            Topology::Proc { writers, .. } => writers.get(to)?.as_ref(),
        }
    }

    /// Whether a message `from → to` is deposited straight into the local
    /// mailbox (no socket): self-sends in mesh mode, the local rank in
    /// multi-process mode.
    fn deposits_locally(&self, from: usize, to: usize) -> bool {
        match &self.topo {
            Topology::Mesh { .. } => from == to,
            Topology::Proc { me, .. } => to == *me,
        }
    }

    fn deposit(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: usize,
        extra: Duration,
    ) {
        count_delivery(bytes);
        let available_at = self.clock.available_at(from, to, bytes, extra);
        self.mailboxes[to].deposit(
            from,
            tag,
            Envelope {
                payload,
                available_at,
            },
        );
    }

    /// Frame a typed message and push it down the right socket; a write
    /// failure means the connection is gone, so the peer is marked dead.
    fn ship(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: usize,
        extra: Duration,
    ) {
        if to >= self.total {
            debug_assert!(
                false,
                "send to endpoint {to} outside this transport ({})",
                self.total
            );
            return;
        }
        if self.deposits_locally(from, to) {
            self.deposit(from, to, tag, payload, bytes, extra);
            return;
        }
        let (type_id, body) = wire::encode_payload(payload.as_ref());
        let header = FrameHeader {
            kind: FrameKind::Msg,
            type_id,
            from: from as u32,
            to: to as u32,
            tag,
            delay_ns: u64::try_from(extra.as_nanos())
                .unwrap_or(u64::MAX)
                .min(u32::MAX as u64) as u32,
            len: 0,
        };
        self.write_frame(from, to, &encode_frame(header, &body));
    }

    /// Push raw frame bytes down the `from → to` socket. Transient write
    /// failures (`WouldBlock`/`TimedOut`) get [`WRITE_RETRIES`] bounded
    /// exponential-backoff retries, resuming from the exact byte offset
    /// reached (so a partial write never desyncs the frame stream), with
    /// the peer marked suspect for the duration; only an unrecoverable
    /// error (or an exhausted budget) declares the peer dead.
    fn write_frame(&self, from: usize, to: usize, bytes: &[u8]) {
        let Some(w) = self.writer_for(from, to) else {
            return;
        };
        let mut s = lock_unpoisoned(w);
        let mut off = 0usize;
        let mut backoff = WRITE_RETRY_BACKOFF;
        for attempt in 0..=WRITE_RETRIES {
            match write_from_offset(&mut s, bytes, &mut off) {
                Ok(()) => {
                    if attempt > 0 {
                        self.mark_suspect(to, false);
                        hear_telemetry::incr(hear_telemetry::Metric::ReconnectsTotal);
                    }
                    return;
                }
                Err(e)
                    if attempt < WRITE_RETRIES
                        && matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                {
                    self.mark_suspect(to, true);
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
                Err(_) => break,
            }
        }
        drop(s);
        self.mark_suspect(to, false);
        self.mark_dead(to);
    }

    /// Ping every live peer connection (multi-process topology only).
    fn emit_heartbeats(&self) {
        let Topology::Proc { me, writers } = &self.topo else {
            return;
        };
        for (peer, w) in writers.iter().enumerate() {
            if w.is_none() || peer == *me || self.is_dead(peer) {
                continue;
            }
            self.write_frame(
                *me,
                peer,
                &encode_frame(FrameHeader::control(FrameKind::Ping, *me), &[]),
            );
            hear_telemetry::incr(hear_telemetry::Metric::HeartbeatsTotal);
        }
    }

    /// Declare dead any peer silent past the heartbeat miss budget.
    fn check_heartbeat_misses(&self, hb: Heartbeat) {
        let Topology::Proc { me, writers } = &self.topo else {
            return;
        };
        let elapsed = self.start.elapsed().as_millis() as u64;
        let budget = (hb.interval.as_millis() as u64).saturating_mul(hb.miss_budget as u64);
        for (peer, w) in writers.iter().enumerate() {
            if w.is_none() || peer == *me || self.is_dead(peer) {
                continue;
            }
            let heard = self.last_heard[peer].load(Ordering::Relaxed);
            if elapsed.saturating_sub(heard) > budget {
                self.mark_dead(peer);
            }
        }
    }

    /// Progress-thread handler for one reassembled frame.
    fn handle_frame(&self, frame: Frame) {
        let from = frame.header.from as usize;
        let to = frame.header.to as usize;
        match frame.header.kind {
            FrameKind::Msg => {
                if to >= self.total {
                    return;
                }
                // Deposit the *encoded* bytes and decode lazily at
                // `recv_on`: a peer's first frames can arrive before this
                // process has registered its payload codecs (codec
                // registration rides application setup, e.g.
                // `SecureComm::new`), and by the time a receiver asks for
                // the message, its codecs are necessarily in place.
                let len = frame.payload.len();
                let raw = RawPayload {
                    wire_id: frame.header.type_id,
                    bytes: frame.payload,
                };
                let extra = Duration::from_nanos(frame.header.delay_ns as u64);
                self.deposit(from, to, frame.header.tag, Box::new(raw), len, extra);
            }
            FrameKind::Ping => {
                // A live-phase probe: answer from the pinged endpoint.
                self.write_frame(
                    to,
                    from,
                    &encode_frame(FrameHeader::control(FrameKind::Pong, to), &[]),
                );
            }
            // `Pong` replies already refreshed `last_heard` when their
            // bytes were read; setup-phase kinds (`Hello`/`Table`)
            // arriving late are stale — FIFO per connection means this
            // cannot happen for a well-behaved peer.
            FrameKind::Hello | FrameKind::Table | FrameKind::Pong => {}
        }
    }
}

/// Write `bytes[*off..]`, advancing `off` past every byte the kernel
/// accepted, then flush. On error `off` records exactly how far the
/// frame got, so a retry resumes mid-frame instead of resending (and
/// desyncing) the stream. `Interrupted` is absorbed here.
fn write_from_offset(s: &mut TcpStream, bytes: &[u8], off: &mut usize) -> std::io::Result<()> {
    while *off < bytes.len() {
        match s.write(&bytes[*off..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => *off += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    s.flush()
}

/// The progress engine: nonblocking reads over every connection, frame
/// reassembly, and mailbox deposit. One thread per transport.
fn progress_loop(inner: Arc<Inner>, mut conns: Vec<ReadConn>) {
    let mut buf = vec![0u8; 64 << 10];
    // First heartbeat goes out immediately: short-lived worlds still
    // record supervision activity, and `last_heard` gets its first
    // refresh within one RTT of the mesh going live.
    let mut next_ping = Instant::now();
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if let Some(hb) = inner.heartbeat {
            let now = Instant::now();
            if now >= next_ping {
                inner.emit_heartbeats();
                next_ping = now + hb.interval;
            }
            inner.check_heartbeat_misses(hb);
        }
        let mut idle = true;
        for c in conns.iter_mut().filter(|c| c.alive) {
            loop {
                match c.stream.read(&mut buf) {
                    Ok(0) => {
                        c.alive = false;
                        if !inner.shutdown.load(Ordering::SeqCst) {
                            inner.mark_dead(c.peer);
                        }
                        break;
                    }
                    Ok(n) => {
                        idle = false;
                        inner.note_heard(c.peer);
                        c.dec.push(&buf[..n]);
                        loop {
                            match c.dec.next_frame() {
                                Ok(Some(frame)) => inner.handle_frame(frame),
                                Ok(None) => break,
                                Err(_) => {
                                    // Corrupt stream: unrecoverable desync.
                                    c.alive = false;
                                    inner.mark_dead(c.peer);
                                    break;
                                }
                            }
                        }
                        if !c.alive || n < buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        c.alive = false;
                        if !inner.shutdown.load(Ordering::SeqCst) {
                            inner.mark_dead(c.peer);
                        }
                        break;
                    }
                }
            }
        }
        if idle {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// A connected loopback socket pair.
fn socket_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    let addr = listener.local_addr()?;
    let client = TcpStream::connect(addr)?;
    let (server, _) = listener.accept()?;
    client.set_nodelay(true)?;
    server.set_nodelay(true)?;
    Ok((client, server))
}

/// Blocking frame read with an absolute deadline (setup phase only; the
/// live phase is nonblocking inside the progress thread).
fn read_frame_deadline(
    stream: &mut TcpStream,
    dec: &mut FrameDecoder,
    deadline: Instant,
) -> std::io::Result<Frame> {
    let mut buf = [0u8; 4096];
    loop {
        match dec.next_frame() {
            Ok(Some(frame)) => return Ok(frame),
            Ok(None) => {}
            Err(e) => return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "setup deadline expired waiting for a frame",
            ));
        }
        stream.set_read_timeout(Some((deadline - now).min(Duration::from_millis(100))))?;
        match stream.read(&mut buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed during setup",
                ))
            }
            Ok(n) => dec.push(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn expect_kind(frame: &Frame, kind: FrameKind) -> std::io::Result<()> {
    if frame.header.kind == kind {
        Ok(())
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "expected {kind:?} frame during setup, got {:?}",
                frame.header.kind
            ),
        ))
    }
}

fn accept_deadline(listener: &TcpListener, deadline: Instant) -> std::io::Result<TcpStream> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok((s, _)) => {
                s.set_nonblocking(false)?;
                s.set_nodelay(true)?;
                return Ok(s);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "setup deadline expired waiting for a connection",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn connect_retry(port: u16, deadline: Instant) -> std::io::Result<TcpStream> {
    let addr = SocketAddr::from((Ipv4Addr::LOCALHOST, port));
    loop {
        let now = Instant::now();
        if now >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("setup deadline expired dialing 127.0.0.1:{port}"),
            ));
        }
        match TcpStream::connect_timeout(&addr, (deadline - now).min(Duration::from_millis(250))) {
            Ok(s) => {
                s.set_nodelay(true)?;
                return Ok(s);
            }
            // The peer's listener may simply not exist yet.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Atomically publish rank 0's rendezvous port: write-to-temp + rename,
/// so pollers never observe a half-written file.
fn publish_port(path: &Path, port: u16) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, format!("{port}\n"))?;
    std::fs::rename(&tmp, path)
}

fn poll_port_file(path: &Path, deadline: Instant) -> std::io::Result<u16> {
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(port) = text.trim().parse::<u16>() {
                return Ok(port);
            }
        }
        if Instant::now() >= deadline {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!("rendezvous file {} never appeared", path.display()),
            ));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

impl TcpTransport {
    /// Build an in-process loopback mesh over `endpoints` endpoints: one
    /// real socket pair per unordered endpoint pair, every non-self
    /// message crossing the kernel. Modeled α–β delay (`net`) and fault
    /// injection compose on top exactly as in the in-memory fabric.
    pub fn mesh(
        endpoints: usize,
        net: NetConfig,
        faults: Option<FaultPlan>,
    ) -> std::io::Result<TcpTransport> {
        let total = endpoints;
        let mut writers: Vec<Option<Mutex<TcpStream>>> = (0..total * total).map(|_| None).collect();
        let mut readers: Vec<ReadConn> = Vec::with_capacity(total.saturating_sub(1) * total);
        for a in 0..total {
            for b in a + 1..total {
                let (sa, sb) = socket_pair()?;
                // Frames written into `sa` (by endpoint a) surface on `sb`
                // and vice versa; each end is read-cloned for the progress
                // thread and write-owned by its endpoint.
                readers.push(ReadConn {
                    stream: sa.try_clone()?,
                    dec: FrameDecoder::new(),
                    peer: b,
                    alive: true,
                });
                readers.push(ReadConn {
                    stream: sb.try_clone()?,
                    dec: FrameDecoder::new(),
                    peer: a,
                    alive: true,
                });
                writers[a * total + b] = Some(Mutex::new(sa));
                writers[b * total + a] = Some(Mutex::new(sb));
            }
        }

        // RTT probe over the (0, 1) pair before anything goes nonblocking.
        let mut rtt = RTT_FLOOR;
        if total >= 2 {
            let deadline = Instant::now() + setup_timeout();
            let ping01 = encode_frame(FrameHeader::control(FrameKind::Ping, 0), &[]);
            let pong10 = encode_frame(FrameHeader::control(FrameKind::Pong, 1), &[]);
            let t0 = Instant::now();
            for _ in 0..RTT_PROBES {
                lock_unpoisoned(writers[1].as_ref().expect("pair (0,1) exists"))
                    .write_all(&ping01)?;
                // readers[1] is the b-side clone of pair (0, 1): endpoint
                // 0's frames surface here.
                let r1 = &mut readers[1];
                let f = read_frame_deadline(&mut r1.stream, &mut r1.dec, deadline)?;
                expect_kind(&f, FrameKind::Ping)?;
                lock_unpoisoned(writers[total].as_ref().expect("pair (1,0) exists"))
                    .write_all(&pong10)?;
                let r0 = &mut readers[0];
                let f = read_frame_deadline(&mut r0.stream, &mut r0.dec, deadline)?;
                expect_kind(&f, FrameKind::Pong)?;
            }
            rtt = (t0.elapsed() / RTT_PROBES).max(RTT_FLOOR);
        }

        // Mirror `Fabric::with_faults`: endpoints scheduled to die before
        // their first send are dead from the start, not merely on first use.
        let dead: Vec<AtomicBool> = (0..total).map(|_| AtomicBool::new(false)).collect();
        if let Some(plan) = &faults {
            for ep in plan.dead_on_arrival() {
                dead[ep].store(true, Ordering::SeqCst);
            }
        }

        Self::finish(
            Inner {
                total,
                topo: Topology::Mesh { writers },
                mailboxes: (0..total).map(|_| Mailbox::default()).collect(),
                dead,
                suspect: (0..total).map(|_| AtomicBool::new(false)).collect(),
                last_heard: (0..total).map(|_| AtomicU64::new(0)).collect(),
                start: Instant::now(),
                heartbeat: None,
                clock: LinkClock::new(net),
                faults: faults.map(|p| {
                    let st = FaultState::new(total);
                    (p, st)
                }),
                rtt: rtt.max(net.alpha * 2),
                shutdown: AtomicBool::new(false),
            },
            readers,
        )
    }

    /// Join a multi-process world as `rank` of `world`: full-mesh
    /// connection establishment through the rendezvous rank (see the
    /// [module docs](self)), a ring RTT probe, then the progress engine.
    ///
    /// The returned transport serves exactly the `world` rank endpoints;
    /// in-network switch endpoints are a single-process (mesh/fabric)
    /// feature.
    pub fn connect(
        rank: usize,
        world: usize,
        rendezvous: Rendezvous,
        net: NetConfig,
    ) -> std::io::Result<TcpTransport> {
        assert!(rank < world, "rank {rank} outside world {world}");
        let deadline = Instant::now() + setup_timeout();
        let mut conns: Vec<Option<(TcpStream, FrameDecoder)>> = (0..world).map(|_| None).collect();

        if world > 1 {
            if rank == 0 {
                let listener = match &rendezvous {
                    Rendezvous::Port(p) => TcpListener::bind((Ipv4Addr::LOCALHOST, *p))?,
                    Rendezvous::File(path) => {
                        let l = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
                        publish_port(path, l.local_addr()?.port())?;
                        l
                    }
                };
                let mut ports = vec![0u16; world];
                for _ in 1..world {
                    let mut s = accept_deadline(&listener, deadline)?;
                    let mut dec = FrameDecoder::new();
                    let hello = read_frame_deadline(&mut s, &mut dec, deadline)?;
                    expect_kind(&hello, FrameKind::Hello)?;
                    let peer = hello.header.from as usize;
                    if peer == 0
                        || peer >= world
                        || conns[peer].is_some()
                        || hello.payload.len() != 2
                    {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad hello from alleged rank {peer}"),
                        ));
                    }
                    ports[peer] = u16::from_le_bytes([hello.payload[0], hello.payload[1]]);
                    conns[peer] = Some((s, dec));
                }
                let table: Vec<u8> = ports.iter().flat_map(|p| p.to_le_bytes()).collect();
                let frame = encode_frame(FrameHeader::control(FrameKind::Table, 0), &table);
                for (s, _) in conns.iter_mut().flatten() {
                    s.write_all(&frame)?;
                }
            } else {
                // Every rank binds its data listener *before* talking to
                // rank 0, so any port published in the table is live.
                let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
                let my_port = listener.local_addr()?.port();
                let rdv_port = match &rendezvous {
                    Rendezvous::Port(p) => *p,
                    Rendezvous::File(path) => poll_port_file(path, deadline)?,
                };
                let mut s = connect_retry(rdv_port, deadline)?;
                s.write_all(&encode_frame(
                    FrameHeader::control(FrameKind::Hello, rank),
                    &my_port.to_le_bytes(),
                ))?;
                let mut dec = FrameDecoder::new();
                let table = read_frame_deadline(&mut s, &mut dec, deadline)?;
                expect_kind(&table, FrameKind::Table)?;
                let ports: Vec<u16> = table
                    .payload
                    .chunks_exact(2)
                    .map(|c| u16::from_le_bytes([c[0], c[1]]))
                    .collect();
                if ports.len() != world {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "rendezvous table has the wrong arity",
                    ));
                }
                conns[0] = Some((s, dec));
                // Mesh among non-zero ranks: dial every lower rank, accept
                // from every higher one.
                for (j, port) in ports.iter().enumerate().take(rank).skip(1) {
                    let mut s = connect_retry(*port, deadline)?;
                    s.write_all(&encode_frame(
                        FrameHeader::control(FrameKind::Hello, rank),
                        &[],
                    ))?;
                    conns[j] = Some((s, FrameDecoder::new()));
                }
                for _ in rank + 1..world {
                    let mut s = accept_deadline(&listener, deadline)?;
                    let mut dec = FrameDecoder::new();
                    let hello = read_frame_deadline(&mut s, &mut dec, deadline)?;
                    expect_kind(&hello, FrameKind::Hello)?;
                    let peer = hello.header.from as usize;
                    if peer <= rank || peer >= world || conns[peer].is_some() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("bad mesh hello from alleged rank {peer}"),
                        ));
                    }
                    conns[peer] = Some((s, dec));
                }
            }
        }

        // Ring RTT probe: ping the next rank, serve the previous one.
        // First writes are unconditional, so the ring cannot deadlock; per
        // connection FIFO guarantees the probe frames drain before any
        // data frame the progress thread should see.
        let mut rtt = RTT_FLOOR;
        if world > 1 {
            let next = (rank + 1) % world;
            let prev = (rank + world - 1) % world;
            let t0 = Instant::now();
            for _ in 0..RTT_PROBES {
                {
                    let (s, _) = conns[next].as_mut().expect("ring neighbour connected");
                    s.write_all(&encode_frame(
                        FrameHeader::control(FrameKind::Ping, rank),
                        &[],
                    ))?;
                }
                {
                    let (s, dec) = conns[prev].as_mut().expect("ring neighbour connected");
                    let f = read_frame_deadline(s, dec, deadline)?;
                    expect_kind(&f, FrameKind::Ping)?;
                    s.write_all(&encode_frame(
                        FrameHeader::control(FrameKind::Pong, rank),
                        &[],
                    ))?;
                }
                {
                    let (s, dec) = conns[next].as_mut().expect("ring neighbour connected");
                    let f = read_frame_deadline(s, dec, deadline)?;
                    expect_kind(&f, FrameKind::Pong)?;
                }
            }
            rtt = (t0.elapsed() / RTT_PROBES).max(RTT_FLOOR);
        }

        let mut writers: Vec<Option<Mutex<TcpStream>>> = (0..world).map(|_| None).collect();
        let mut readers: Vec<ReadConn> = Vec::with_capacity(world.saturating_sub(1));
        for (peer, slot) in conns.into_iter().enumerate() {
            if let Some((s, dec)) = slot {
                s.set_read_timeout(None)?;
                readers.push(ReadConn {
                    stream: s.try_clone()?,
                    dec,
                    peer,
                    alive: true,
                });
                writers[peer] = Some(Mutex::new(s));
            }
        }

        Self::finish(
            Inner {
                total: world,
                topo: Topology::Proc { me: rank, writers },
                mailboxes: (0..world).map(|_| Mailbox::default()).collect(),
                dead: (0..world).map(|_| AtomicBool::new(false)).collect(),
                suspect: (0..world).map(|_| AtomicBool::new(false)).collect(),
                last_heard: (0..world).map(|_| AtomicU64::new(0)).collect(),
                start: Instant::now(),
                heartbeat: Some(Heartbeat::from_env()),
                clock: LinkClock::new(net),
                faults: None,
                rtt: rtt.max(net.alpha * 2),
                shutdown: AtomicBool::new(false),
            },
            readers,
        )
    }

    /// [`TcpTransport::connect`] configured entirely from the environment
    /// the [`Launcher`](crate::Launcher) sets: `HEAR_RANK`, `HEAR_WORLD`,
    /// and `HEAR_PORT_BASE` / `HEAR_RENDEZVOUS_FILE`. Returns the
    /// transport plus `(rank, world)`. `None` when the environment says
    /// this is not a launched child.
    pub fn connect_from_env() -> Option<std::io::Result<(TcpTransport, usize, usize)>> {
        let rank = std::env::var("HEAR_RANK").ok()?.parse::<usize>().ok()?;
        let world = std::env::var("HEAR_WORLD").ok()?.parse::<usize>().ok()?;
        let rendezvous = Rendezvous::from_env()?;
        Some(
            TcpTransport::connect(rank, world, rendezvous, NetConfig::instant())
                .map(|t| (t, rank, world)),
        )
    }

    fn finish(inner: Inner, mut readers: Vec<ReadConn>) -> std::io::Result<TcpTransport> {
        for c in &mut readers {
            c.stream.set_nonblocking(true)?;
        }
        let inner = Arc::new(inner);
        let handle = {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("hear-tcp-progress".into())
                .spawn(move || progress_loop(inner, readers))?
        };
        Ok(TcpTransport {
            inner,
            progress: Mutex::new(Some(handle)),
        })
    }
}

impl Transport for TcpTransport {
    fn endpoints(&self) -> usize {
        self.inner.total
    }

    fn send_boxed(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        mut payload: Box<dyn Any + Send>,
        bytes: usize,
    ) {
        let inner = &*self.inner;
        if inner.is_dead(from) {
            return; // a dead endpoint emits nothing
        }
        let SendVerdict {
            decision,
            kill_after,
            suspect,
        } = filter_send(
            inner.faults.as_ref(),
            inner.is_dead(to),
            from,
            to,
            tag,
            &mut payload,
        );
        if let Some(flag) = suspect {
            inner.mark_suspect(from, flag);
        }
        if let SendDecision::Deliver { dup, extra_delay } = decision {
            if let Some(copy) = dup {
                inner.ship(from, to, tag, copy, bytes, Duration::ZERO);
            }
            inner.ship(from, to, tag, payload, bytes, extra_delay);
        }
        if kill_after {
            hear_telemetry::incr(hear_telemetry::Metric::FaultKill);
            self.kill(from);
        }
    }

    fn recv_on(
        &self,
        me: usize,
        source: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Envelope, CommError> {
        let inner = &*self.inner;
        let mut env = recv_on_mailboxes(
            &inner.mailboxes,
            &|ep| inner.is_dead(ep),
            &|ep| inner.is_suspect(ep),
            me,
            source,
            tag,
            deadline,
        )?;
        // Socket-borne messages arrive encoded (see `handle_frame`);
        // local deposits (self-sends, mesh-mode short circuits) are
        // already typed and pass through untouched.
        if env.payload.is::<RawPayload>() {
            let raw = env
                .payload
                .downcast::<RawPayload>()
                .expect("checked RawPayload");
            env.payload = wire::decode_payload(raw.wire_id, &raw.bytes);
        }
        Ok(env)
    }

    fn is_dead(&self, endpoint: usize) -> bool {
        self.inner.is_dead(endpoint)
    }

    fn kill(&self, endpoint: usize) {
        self.inner.mark_dead(endpoint);
        // In multi-process mode, killing the *local* rank must be visible
        // to the other processes: shutting the sockets gives every peer an
        // EOF, which their progress threads map to a dead endpoint.
        if let Topology::Proc { me, writers } = &self.inner.topo {
            if endpoint == *me {
                for w in writers.iter().flatten() {
                    let _ = lock_unpoisoned(w).shutdown(std::net::Shutdown::Both);
                }
            }
        }
    }

    fn rtt_estimate(&self) -> Duration {
        self.inner.rtt
    }

    fn name(&self) -> &'static str {
        "tcp"
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let shutdown_all = |writers: &[Option<Mutex<TcpStream>>]| {
            for w in writers.iter().flatten() {
                let _ = lock_unpoisoned(w).shutdown(std::net::Shutdown::Both);
            }
        };
        match &self.inner.topo {
            Topology::Mesh { writers } => shutdown_all(writers),
            Topology::Proc { writers, .. } => shutdown_all(writers),
        }
        if let Some(h) = lock_unpoisoned(&self.progress).take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(n: usize) -> TcpTransport {
        TcpTransport::mesh(n, NetConfig::instant(), None).expect("loopback mesh")
    }

    #[test]
    fn mesh_message_crosses_a_real_socket() {
        let t = mesh(2);
        t.send_boxed(0, 1, 7, Box::new(vec![1u64, 2, 3]), 24);
        let env = t
            .recv_on(1, 0, 7, Some(Instant::now() + Duration::from_secs(5)))
            .unwrap();
        assert_eq!(*env.payload.downcast::<Vec<u64>>().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn mesh_self_send_short_circuits() {
        let t = mesh(2);
        t.send_boxed(0, 0, 9, Box::new(vec![5u32]), 4);
        let env = t
            .recv_on(0, 0, 9, Some(Instant::now() + Duration::from_secs(5)))
            .unwrap();
        assert_eq!(*env.payload.downcast::<Vec<u32>>().unwrap(), vec![5]);
    }

    #[test]
    fn mesh_fifo_survives_framing() {
        let t = mesh(2);
        for i in 0..50u32 {
            t.send_boxed(0, 1, 3, Box::new(vec![i]), 4);
        }
        for i in 0..50u32 {
            let env = t
                .recv_on(1, 0, 3, Some(Instant::now() + Duration::from_secs(5)))
                .unwrap();
            assert_eq!(*env.payload.downcast::<Vec<u32>>().unwrap(), vec![i]);
        }
    }

    #[test]
    fn mesh_kill_resolves_waiters_to_peer_dead() {
        let t = Arc::new(mesh(2));
        let t2 = t.clone();
        let h = std::thread::spawn(move || t2.recv_on(1, 0, 0, None));
        std::thread::sleep(Duration::from_millis(20));
        t.kill(0);
        assert_eq!(
            h.join().unwrap().unwrap_err(),
            CommError::PeerDead { peer: 0 }
        );
        // And a corpse emits nothing: the send is suppressed and the
        // receive short-circuits on the death flag.
        t.send_boxed(0, 1, 1, Box::new(vec![1u8]), 1);
        let err = t
            .recv_on(1, 0, 1, Some(Instant::now() + Duration::from_millis(30)))
            .unwrap_err();
        assert_eq!(err, CommError::PeerDead { peer: 0 });
    }

    #[test]
    fn mesh_timeout_is_typed() {
        let t = mesh(2);
        let err = t
            .recv_on(1, 0, 42, Some(Instant::now() + Duration::from_millis(10)))
            .unwrap_err();
        assert!(
            matches!(
                err,
                CommError::Timeout {
                    source: 0,
                    tag: 42,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn mesh_measures_a_positive_rtt() {
        let t = mesh(3);
        assert!(t.rtt_estimate() >= RTT_FLOOR);
        assert!(
            t.rtt_estimate() < Duration::from_secs(1),
            "loopback rtt {:?}",
            t.rtt_estimate()
        );
        assert_eq!(t.name(), "tcp");
        assert_eq!(t.endpoints(), 3);
    }

    #[test]
    fn mesh_faults_drop_and_duplicate_over_sockets() {
        // Drop everything: nothing arrives.
        let t = TcpTransport::mesh(
            2,
            NetConfig::instant(),
            Some(FaultPlan::seeded(1).drop_one_in(1)),
        )
        .unwrap();
        t.send_boxed(0, 1, 0, Box::new(vec![1u32]), 4);
        assert!(matches!(
            t.recv_on(1, 0, 0, Some(Instant::now() + Duration::from_millis(40))),
            Err(CommError::Timeout { .. })
        ));

        // Duplicate everything: two copies arrive through the socket.
        let t = TcpTransport::mesh(
            2,
            NetConfig::instant(),
            Some(FaultPlan::seeded(1).duplicate_one_in(1)),
        )
        .unwrap();
        t.send_boxed(0, 1, 0, Box::new(vec![7u32]), 4);
        for _ in 0..2 {
            let env = t
                .recv_on(1, 0, 0, Some(Instant::now() + Duration::from_secs(5)))
                .unwrap();
            assert_eq!(*env.payload.downcast::<Vec<u32>>().unwrap(), vec![7]);
        }
    }

    #[test]
    fn mesh_fault_corrupt_flips_bits_before_encoding() {
        let t = TcpTransport::mesh(
            2,
            NetConfig::instant(),
            Some(FaultPlan::seeded(1).corrupt_one_in(1)),
        )
        .unwrap();
        t.send_boxed(0, 1, 0, Box::new(vec![0u32; 4]), 16);
        let env = t
            .recv_on(1, 0, 0, Some(Instant::now() + Duration::from_secs(5)))
            .unwrap();
        let got = env.payload.downcast::<Vec<u32>>().unwrap();
        let flipped: u32 = got.iter().map(|w| w.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped: {got:?}");
    }

    #[test]
    fn mesh_injected_delay_rides_the_header() {
        let t = TcpTransport::mesh(
            2,
            NetConfig::instant(),
            Some(FaultPlan::seeded(1).delay_one_in(1, Duration::from_millis(60))),
        )
        .unwrap();
        t.send_boxed(0, 1, 0, Box::new(vec![9u8]), 1);
        // The delayed message times out a tight deadline ("late, not
        // lost")...
        let err = t
            .recv_on(1, 0, 0, Some(Instant::now() + Duration::from_millis(10)))
            .unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }));
        // ...and is delivered intact to a patient receiver.
        let env = t
            .recv_on(1, 0, 0, Some(Instant::now() + Duration::from_secs(5)))
            .unwrap();
        assert_eq!(*env.payload.downcast::<Vec<u8>>().unwrap(), vec![9]);
    }

    #[test]
    fn mesh_alpha_beta_model_applies_over_sockets() {
        let net = NetConfig {
            alpha: Duration::from_millis(30),
            beta_ns_per_byte: 0.0,
        };
        let t = TcpTransport::mesh(2, net, None).unwrap();
        let t0 = Instant::now();
        t.send_boxed(0, 1, 0, Box::new(vec![1u8]), 1);
        t.recv_on(1, 0, 0, None).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(28),
            "elapsed {:?}",
            t0.elapsed()
        );
    }
}
