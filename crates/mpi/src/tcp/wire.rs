//! Wire framing and the payload codec registry for the TCP transport.
//!
//! Every message on a socket is one *frame*: a fixed 32-byte little-endian
//! header followed by `len` payload bytes.
//!
//! ```text
//!  offset  size  field     meaning
//!  ------  ----  --------  ------------------------------------------
//!       0     2  magic     0xAE57, guards against stream desync
//!       2     1  version   wire protocol version (currently 1)
//!       3     1  kind      Msg | Hello | Table | Ping | Pong
//!       4     4  type_id   payload codec id (Msg frames only)
//!       8     4  from      sending endpoint
//!      12     4  to        receiving endpoint
//!      16     8  tag       full wire tag (context | collective | attempt)
//!      24     4  delay_ns  injected extra delay, honoured at deposit
//!      28     4  len       payload byte count (≤ 256 MiB)
//! ```
//!
//! Failure philosophy, pinned by the tests at the bottom:
//!
//! * a *corrupt header* (bad magic/version/kind, oversize length) means the
//!   byte stream itself can no longer be trusted — [`FrameDecoder`] returns
//!   a [`WireError`] and the connection owner marks the peer dead
//!   ([`CommError::PeerDead`](crate::CommError::PeerDead)); it never panics;
//! * an *undecodable payload* (unknown `type_id`, or bytes the codec
//!   rejects) poisons only that one message: the decoder deposits a
//!   [`WireUndecodable`] envelope, so the receiver's typed downcast fails
//!   and surfaces [`CommError::TypeMismatch`](crate::CommError::TypeMismatch).
//!
//! Payloads are `Box<dyn Any + Send>` above this layer, so encoding needs a
//! runtime registry: [`register_vec_codec`] maps a concrete `Vec<T>` to a
//! stable `type_id` with fixed-width per-element encode/decode functions.
//! Primitive vectors are pre-registered; downstream crates (hear-layer's
//! HoMAC packets, `Vec<Hfp>`) register theirs at startup using ids at or
//! above [`WIRE_ID_USER_BASE`].

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{LazyLock, RwLock};

/// First two bytes of every frame.
pub const MAGIC: u16 = 0xAE57;
/// Current wire protocol version.
pub const VERSION: u8 = 1;
/// Fixed frame header size in bytes.
pub const HEADER_LEN: usize = 32;
/// Upper bound on a single frame's payload; anything larger is treated as
/// a corrupt header (a genuine 256 MiB message should be chunked far
/// upstream of the transport).
pub const MAX_FRAME_LEN: u32 = 256 << 20;
/// First `type_id` available to codecs registered outside this crate.
pub const WIRE_ID_USER_BASE: u32 = 0x40;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// A typed point-to-point message (the only kind with a payload codec).
    Msg = 0,
    /// Connection preamble: `{rank, data_port}` of the dialing side.
    Hello = 1,
    /// Rendezvous answer: the full rank→port table.
    Table = 2,
    /// RTT probe.
    Ping = 3,
    /// RTT probe answer.
    Pong = 4,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        match v {
            0 => Some(FrameKind::Msg),
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Table),
            3 => Some(FrameKind::Ping),
            4 => Some(FrameKind::Pong),
            _ => None,
        }
    }
}

/// Why a byte stream stopped being parseable. All variants are
/// connection-fatal: the decoder cannot resynchronise, so the owning
/// connection marks its peer dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    BadMagic(u16),
    BadVersion(u8),
    BadKind(u8),
    Oversize(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#06x} (expected {MAGIC:#06x})"),
            WireError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {VERSION})")
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The parsed fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub kind: FrameKind,
    pub type_id: u32,
    pub from: u32,
    pub to: u32,
    pub tag: u64,
    pub delay_ns: u32,
    pub len: u32,
}

impl FrameHeader {
    /// A control-frame header (no payload codec, no tag).
    pub fn control(kind: FrameKind, from: usize) -> FrameHeader {
        FrameHeader {
            kind,
            type_id: 0,
            from: from as u32,
            to: 0,
            tag: 0,
            delay_ns: 0,
            len: 0,
        }
    }

    /// Serialize into the 32-byte wire form.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        h[2] = VERSION;
        h[3] = self.kind as u8;
        h[4..8].copy_from_slice(&self.type_id.to_le_bytes());
        h[8..12].copy_from_slice(&self.from.to_le_bytes());
        h[12..16].copy_from_slice(&self.to.to_le_bytes());
        h[16..24].copy_from_slice(&self.tag.to_le_bytes());
        h[24..28].copy_from_slice(&self.delay_ns.to_le_bytes());
        h[28..32].copy_from_slice(&self.len.to_le_bytes());
        h
    }

    /// Parse and validate a 32-byte wire header.
    pub fn decode(h: &[u8; HEADER_LEN]) -> Result<FrameHeader, WireError> {
        let magic = u16::from_le_bytes([h[0], h[1]]);
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if h[2] != VERSION {
            return Err(WireError::BadVersion(h[2]));
        }
        let kind = FrameKind::from_u8(h[3]).ok_or(WireError::BadKind(h[3]))?;
        let len = u32::from_le_bytes([h[28], h[29], h[30], h[31]]);
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversize(len));
        }
        Ok(FrameHeader {
            kind,
            type_id: u32::from_le_bytes([h[4], h[5], h[6], h[7]]),
            from: u32::from_le_bytes([h[8], h[9], h[10], h[11]]),
            to: u32::from_le_bytes([h[12], h[13], h[14], h[15]]),
            tag: u64::from_le_bytes([h[16], h[17], h[18], h[19], h[20], h[21], h[22], h[23]]),
            delay_ns: u32::from_le_bytes([h[24], h[25], h[26], h[27]]),
            len,
        })
    }
}

/// One complete reassembled frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub header: FrameHeader,
    pub payload: Vec<u8>,
}

/// Serialize a whole frame (header stamped with `payload.len()`).
pub fn encode_frame(mut header: FrameHeader, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "frame payload too large"
    );
    header.len = payload.len() as u32;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&header.encode());
    out.extend_from_slice(payload);
    out
}

/// Incremental frame reassembly over an arbitrary byte stream.
///
/// `push` whatever the socket produced — any split, down to one byte at a
/// time — then drain complete frames with `next_frame`. Parsing state is a
/// single buffer with a consumed-prefix offset; the prefix is compacted
/// away once it outgrows 64 KiB so long-lived connections don't grow
/// unboundedly.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    off: usize,
}

impl FrameDecoder {
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append raw bytes read from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet parsed into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.off
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are needed,
    /// or a fatal [`WireError`] if the stream is corrupt.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = self.buf.len() - self.off;
        if avail < HEADER_LEN {
            return Ok(None);
        }
        let mut raw = [0u8; HEADER_LEN];
        raw.copy_from_slice(&self.buf[self.off..self.off + HEADER_LEN]);
        let header = FrameHeader::decode(&raw)?;
        let total = HEADER_LEN + header.len as usize;
        if avail < total {
            return Ok(None);
        }
        let payload = self.buf[self.off + HEADER_LEN..self.off + total].to_vec();
        self.off += total;
        if self.off == self.buf.len() {
            self.buf.clear();
            self.off = 0;
        } else if self.off > 64 << 10 {
            self.buf.drain(..self.off);
            self.off = 0;
        }
        Ok(Some(Frame { header, payload }))
    }
}

/// Poison payload deposited when a `Msg` frame's `type_id` is unknown or
/// its bytes fail to decode. The receiver's typed downcast then fails the
/// normal way, yielding `CommError::TypeMismatch` instead of a panic or a
/// silently wrong value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireUndecodable {
    /// The `type_id` the frame claimed.
    pub wire_id: u32,
    /// Payload length of the rejected frame.
    pub len: usize,
}

type EncodeFn = Box<dyn Fn(&(dyn Any + Send)) -> Option<Vec<u8>> + Send + Sync>;
type DecodeFn = Box<dyn Fn(&[u8]) -> Option<Box<dyn Any + Send>> + Send + Sync>;

struct Registry {
    by_type: HashMap<TypeId, (u32, EncodeFn)>,
    by_wire: HashMap<u32, (&'static str, DecodeFn)>,
}

static REGISTRY: LazyLock<RwLock<Registry>> = LazyLock::new(|| {
    let mut reg = Registry {
        by_type: HashMap::new(),
        by_wire: HashMap::new(),
    };
    builtin_codecs(&mut reg);
    RwLock::new(reg)
});

fn registry_insert<T: Send + 'static>(
    reg: &mut Registry,
    wire_id: u32,
    elem_bytes: usize,
    write: fn(&T, &mut Vec<u8>),
    read: fn(&[u8]) -> Option<T>,
) {
    let name = std::any::type_name::<Vec<T>>();
    if let Some((existing, _)) = reg.by_type.get(&TypeId::of::<Vec<T>>()) {
        assert!(
            *existing == wire_id,
            "codec for {name} already registered under wire id {existing:#x}, now {wire_id:#x}"
        );
        return; // idempotent re-registration
    }
    if let Some((other, _)) = reg.by_wire.get(&wire_id) {
        panic!("wire id {wire_id:#x} already taken by {other}, cannot assign it to {name}");
    }
    let encode: EncodeFn = Box::new(move |payload| {
        let v = payload.downcast_ref::<Vec<T>>()?;
        let mut out = Vec::with_capacity(v.len() * elem_bytes);
        for item in v {
            let before = out.len();
            write(item, &mut out);
            debug_assert_eq!(
                out.len() - before,
                elem_bytes,
                "codec {name} wrote a wrong-width element"
            );
        }
        Some(out)
    });
    let decode: DecodeFn = Box::new(move |bytes| {
        if elem_bytes == 0 || bytes.len() % elem_bytes != 0 {
            return None;
        }
        let mut v: Vec<T> = Vec::with_capacity(bytes.len() / elem_bytes);
        for chunk in bytes.chunks_exact(elem_bytes) {
            v.push(read(chunk)?);
        }
        Some(Box::new(v) as Box<dyn Any + Send>)
    });
    reg.by_type
        .insert(TypeId::of::<Vec<T>>(), (wire_id, encode));
    reg.by_wire.insert(wire_id, (name, decode));
}

/// Register a codec for `Vec<T>` under `wire_id`, where every element
/// occupies exactly `elem_bytes` on the wire. `write` must append exactly
/// `elem_bytes`; `read` gets exactly `elem_bytes` and returns `None` for
/// bit patterns that are not a valid `T` (the whole message then poisons
/// to [`WireUndecodable`]).
///
/// Idempotent for an identical re-registration; panics if `Vec<T>` or
/// `wire_id` is already bound differently. Downstream crates must use ids
/// at or above [`WIRE_ID_USER_BASE`].
pub fn register_vec_codec<T: Send + 'static>(
    wire_id: u32,
    elem_bytes: usize,
    write: fn(&T, &mut Vec<u8>),
    read: fn(&[u8]) -> Option<T>,
) {
    let mut reg = REGISTRY.write().unwrap_or_else(|e| e.into_inner());
    registry_insert(&mut reg, wire_id, elem_bytes, write, read);
}

macro_rules! builtin_le_codec {
    ($reg:expr, $id:expr, $t:ty) => {
        registry_insert::<$t>(
            $reg,
            $id,
            std::mem::size_of::<$t>(),
            |v, out| out.extend_from_slice(&v.to_le_bytes()),
            |b| Some(<$t>::from_le_bytes(b.try_into().ok()?)),
        );
    };
}

fn builtin_codecs(reg: &mut Registry) {
    builtin_le_codec!(reg, 0x01, u8);
    builtin_le_codec!(reg, 0x02, u16);
    builtin_le_codec!(reg, 0x03, u32);
    builtin_le_codec!(reg, 0x04, u64);
    builtin_le_codec!(reg, 0x05, u128);
    builtin_le_codec!(reg, 0x06, i8);
    builtin_le_codec!(reg, 0x07, i16);
    builtin_le_codec!(reg, 0x08, i32);
    builtin_le_codec!(reg, 0x09, i64);
    builtin_le_codec!(reg, 0x0A, f32);
    builtin_le_codec!(reg, 0x0B, f64);
    // usize travels as u64 so 32- and 64-bit peers agree on the width.
    registry_insert::<usize>(
        reg,
        0x0C,
        8,
        |v, out| out.extend_from_slice(&(*v as u64).to_le_bytes()),
        |b| usize::try_from(u64::from_le_bytes(b.try_into().ok()?)).ok(),
    );
    registry_insert::<bool>(
        reg,
        0x0D,
        1,
        |v, out| out.push(*v as u8),
        |b| match b[0] {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        },
    );
    // The (color, key, rank) triple Communicator::split allgathers.
    registry_insert::<(u64, i64, usize)>(
        reg,
        0x0E,
        24,
        |(c, k, r), out| {
            out.extend_from_slice(&c.to_le_bytes());
            out.extend_from_slice(&k.to_le_bytes());
            out.extend_from_slice(&(*r as u64).to_le_bytes());
        },
        |b| {
            let c = u64::from_le_bytes(b[0..8].try_into().ok()?);
            let k = i64::from_le_bytes(b[8..16].try_into().ok()?);
            let r = usize::try_from(u64::from_le_bytes(b[16..24].try_into().ok()?)).ok()?;
            Some((c, k, r))
        },
    );
}

/// Encode a boxed payload for a `Msg` frame: `(type_id, bytes)`.
///
/// Panics when the concrete type has no registered codec — that is a build
/// wiring bug (a new payload type reached the TCP backend without a
/// matching [`register_vec_codec`] call), not a runtime condition.
pub fn encode_payload(payload: &(dyn Any + Send)) -> (u32, Vec<u8>) {
    let reg = REGISTRY.read().unwrap_or_else(|e| e.into_inner());
    let tid = payload.type_id();
    match reg.by_type.get(&tid) {
        Some((wire_id, encode)) => match encode(payload) {
            Some(bytes) => (*wire_id, bytes),
            None => unreachable!("codec registered for {tid:?} refused its own type"),
        },
        None => panic!(
            "payload type {tid:?} has no TCP wire codec; register one with \
             hear_mpi::tcp::wire::register_vec_codec (ids >= {WIRE_ID_USER_BASE:#x})"
        ),
    }
}

/// True if `payload`'s concrete type has a registered codec.
pub fn can_encode(payload: &(dyn Any + Send)) -> bool {
    let reg = REGISTRY.read().unwrap_or_else(|e| e.into_inner());
    reg.by_type.contains_key(&payload.type_id())
}

/// Decode a `Msg` frame's payload. Unknown `type_id`s and codec rejections
/// degrade to a [`WireUndecodable`] poison value rather than an error —
/// only the receive that matches this message should fail, as a
/// `TypeMismatch`, not the connection.
pub fn decode_payload(wire_id: u32, bytes: &[u8]) -> Box<dyn Any + Send> {
    let reg = REGISTRY.read().unwrap_or_else(|e| e.into_inner());
    match reg.by_wire.get(&wire_id) {
        Some((_, decode)) => match decode(bytes) {
            Some(payload) => payload,
            None => Box::new(WireUndecodable {
                wire_id,
                len: bytes.len(),
            }),
        },
        None => Box::new(WireUndecodable {
            wire_id,
            len: bytes.len(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_testkit::prelude::*;
    // Both globs export an `Any` (the trait here, a strategy there).
    use std::any::Any;

    fn roundtrip_header(h: FrameHeader) -> FrameHeader {
        FrameHeader::decode(&h.encode()).expect("self-encoded header must decode")
    }

    proptest! {
        #[test]
        fn header_roundtrips_bitexact(
            kind_idx in 0u8..5,
            type_id in any::<u32>(),
            from in any::<u32>(),
            to in any::<u32>(),
            tag in any::<u64>(),
            delay_ns in any::<u32>(),
            len in 0u32..=MAX_FRAME_LEN,
        ) {
            let h = FrameHeader {
                kind: FrameKind::from_u8(kind_idx).unwrap(),
                type_id,
                from,
                to,
                tag,
                delay_ns,
                len,
            };
            prop_assert_eq!(roundtrip_header(h), h);
        }

        #[test]
        fn primitive_payloads_roundtrip_bitexact(
            vu64 in hear_testkit::collection::vec(any::<u64>(), 0..40),
            vu8 in hear_testkit::collection::vec(any::<u8>(), 0..40),
            vi32 in hear_testkit::collection::vec(any::<i32>(), 0..40),
            vf64 in hear_testkit::collection::vec(any::<f64>(), 0..40),
            vus in hear_testkit::collection::vec(0usize..=usize::MAX >> 1, 0..40),
        ) {
            let (id, bytes) = encode_payload(&vu64);
            let back = decode_payload(id, &bytes);
            prop_assert_eq!(back.downcast_ref::<Vec<u64>>(), Some(&vu64));

            let (id, bytes) = encode_payload(&vu8);
            let back = decode_payload(id, &bytes);
            prop_assert_eq!(back.downcast_ref::<Vec<u8>>(), Some(&vu8));

            let (id, bytes) = encode_payload(&vi32);
            let back = decode_payload(id, &bytes);
            prop_assert_eq!(back.downcast_ref::<Vec<i32>>(), Some(&vi32));

            // f64 must round-trip *bit-for-bit*, NaN payloads included.
            let (id, bytes) = encode_payload(&vf64);
            let back = decode_payload(id, &bytes);
            let back = back.downcast_ref::<Vec<f64>>().unwrap();
            prop_assert_eq!(back.len(), vf64.len());
            for (a, b) in back.iter().zip(&vf64) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }

            let (id, bytes) = encode_payload(&vus);
            let back = decode_payload(id, &bytes);
            prop_assert_eq!(back.downcast_ref::<Vec<usize>>(), Some(&vus));
        }

        #[test]
        fn whole_frames_roundtrip_through_decoder(
            tag in any::<u64>(),
            from in 0u32..64,
            to in 0u32..64,
            payload in hear_testkit::collection::vec(any::<u8>(), 0..200),
        ) {
            let header = FrameHeader {
                kind: FrameKind::Msg,
                type_id: 0x01,
                from,
                to,
                tag,
                delay_ns: 0,
                len: 0,
            };
            let bytes = encode_frame(header, &payload);
            let mut dec = FrameDecoder::new();
            dec.push(&bytes);
            let frame = dec.next_frame().unwrap().expect("one whole frame");
            prop_assert_eq!(frame.header.tag, tag);
            prop_assert_eq!(frame.header.from, from);
            prop_assert_eq!(&frame.payload, &payload);
            prop_assert!(dec.next_frame().unwrap().is_none());
            prop_assert_eq!(dec.pending(), 0);
        }
    }

    /// Torn reads: a multi-frame stream split at *every* byte boundary
    /// (and additionally dribbled one byte at a time) reassembles to the
    /// identical frame sequence.
    #[test]
    fn torn_reads_reassemble_at_every_boundary() {
        let frames: Vec<Vec<u8>> = vec![
            encode_frame(FrameHeader::control(FrameKind::Ping, 3), &[]),
            encode_frame(
                FrameHeader {
                    kind: FrameKind::Msg,
                    type_id: 0x04,
                    from: 1,
                    to: 2,
                    tag: 0xDEAD_BEEF,
                    delay_ns: 17,
                    len: 0,
                },
                &7u64.to_le_bytes(),
            ),
            encode_frame(FrameHeader::control(FrameKind::Hello, 9), &[1, 2, 3]),
        ];
        let stream: Vec<u8> = frames.concat();

        let drain = |dec: &mut FrameDecoder| {
            let mut out = Vec::new();
            while let Some(f) = dec.next_frame().expect("clean stream") {
                out.push(f);
            }
            out
        };

        let mut reference = FrameDecoder::new();
        reference.push(&stream);
        let expected = drain(&mut reference);
        assert_eq!(expected.len(), 3);

        for split in 0..=stream.len() {
            let mut dec = FrameDecoder::new();
            dec.push(&stream[..split]);
            let mut got = drain(&mut dec);
            dec.push(&stream[split..]);
            got.extend(drain(&mut dec));
            assert_eq!(got, expected, "split at byte {split} changed the decode");
        }

        let mut dribble = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dribble.push(std::slice::from_ref(b));
            got.extend(drain(&mut dribble));
        }
        assert_eq!(got, expected);
    }

    /// Pin: corrupt headers are typed [`WireError`]s — never panics, never
    /// silently skipped bytes.
    #[test]
    fn malformed_headers_are_typed_errors() {
        let good = encode_frame(FrameHeader::control(FrameKind::Ping, 0), &[]);

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.push(&bad_magic);
        assert!(matches!(dec.next_frame(), Err(WireError::BadMagic(_))));

        let mut bad_version = good.clone();
        bad_version[2] = VERSION + 9;
        let mut dec = FrameDecoder::new();
        dec.push(&bad_version);
        assert_eq!(dec.next_frame(), Err(WireError::BadVersion(VERSION + 9)));

        let mut bad_kind = good.clone();
        bad_kind[3] = 0x7F;
        let mut dec = FrameDecoder::new();
        dec.push(&bad_kind);
        assert_eq!(dec.next_frame(), Err(WireError::BadKind(0x7F)));

        let mut oversize = good.clone();
        oversize[28..32].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&oversize);
        assert_eq!(
            dec.next_frame(),
            Err(WireError::Oversize(MAX_FRAME_LEN + 1))
        );
    }

    /// Pin: undecodable *payloads* poison just that message, so the
    /// eventual typed receive fails as `TypeMismatch` — the stream and
    /// connection stay healthy.
    #[test]
    fn undecodable_payload_poisons_not_panics() {
        // Unknown wire id.
        let poison = decode_payload(0x3FFF_FFFF, &[1, 2, 3]);
        let u = poison
            .downcast_ref::<WireUndecodable>()
            .expect("unknown id must produce the poison marker");
        assert_eq!((u.wire_id, u.len), (0x3FFF_FFFF, 3));
        assert!(poison.downcast_ref::<Vec<u64>>().is_none());

        // Known codec, torn width: 5 bytes is not a whole number of u64s.
        let poison = decode_payload(0x04, &[0, 1, 2, 3, 4]);
        assert!(poison.downcast_ref::<WireUndecodable>().is_some());

        // Known codec, invalid bit pattern (bool 0x02).
        let poison = decode_payload(0x0D, &[0, 1, 2]);
        assert!(poison.downcast_ref::<WireUndecodable>().is_some());
    }

    #[test]
    fn registration_is_idempotent_but_conflicts_panic() {
        fn w(v: &u64, out: &mut Vec<u8>) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn r(b: &[u8]) -> Option<u64> {
            Some(u64::from_le_bytes(b.try_into().ok()?))
        }
        // Same binding twice: fine.
        register_vec_codec::<u64>(0x04, 8, w, r);
        register_vec_codec::<u64>(0x04, 8, w, r);
        // Same type under a new id: refused.
        let clash = std::panic::catch_unwind(|| register_vec_codec::<u64>(0x99, 8, w, r));
        assert!(
            clash.is_err(),
            "rebinding Vec<u64> to a second id must panic"
        );
    }

    #[test]
    fn unregistered_type_panics_with_register_hint() {
        #[derive(Debug)]
        struct Private;
        let payload: Box<dyn Any + Send> = Box::new(vec![Private]);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| encode_payload(&*payload)))
                .expect_err("unregistered type must panic at send");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("register_vec_codec"),
            "panic must name the fix: {msg}"
        );
    }
}
