//! In-network compute: a switch aggregation tree (SHArP-style).
//!
//! The defining property of INC — and the reason HEAR exists — is that the
//! *network devices* perform the reduction. This module models a radix-k
//! tree of switch threads that fold incoming vectors with an opaque
//! associative operation and forward one aggregate upward; the root
//! multicasts the result back down. The switch endpoints are constructed
//! **without any key material** and their API accepts only already-
//! encrypted buffers plus the combine function — the untrusted-network
//! boundary of the threat model (Fig. 2), enforced at the type level.
//!
//! Bandwidth-wise this is the up-to-2× saving the paper cites: each rank
//! sends its vector once and receives one aggregate, instead of the
//! 2×(P−1)/P volume of a ring.

use crate::comm::Communicator;
use crate::error::CommError;
use crate::transport::Transport;
use std::sync::Arc;
use std::time::Instant;

/// Static description of the switch tree built for a communicator.
#[derive(Debug, Clone)]
pub struct SwitchTopology {
    /// Fan-in of each switch node.
    pub radix: usize,
    /// Number of leaf switches (each serving up to `radix` ranks).
    pub leaves: usize,
    /// Total switch nodes (leaves + inner + root).
    pub nodes: usize,
    /// Endpoint index of the first switch in the fabric (ranks occupy
    /// 0..world).
    pub base_endpoint: usize,
    /// parent[i] = index (within switch nodes) of node i's parent; the
    /// root's parent is itself.
    pub parent: Vec<usize>,
    /// children[i] = rank endpoints (level 0) or switch endpoints feeding i.
    pub children: Vec<Vec<usize>>,
    /// Which switch node each rank reports to.
    pub leaf_of_rank: Vec<usize>,
}

impl SwitchTopology {
    /// Build a radix-`radix` reduction tree over `world` ranks.
    pub fn build(world: usize, radix: usize, base_endpoint: usize) -> SwitchTopology {
        assert!(radix >= 2, "switch radix must be at least 2");
        assert!(world >= 1);
        // Level 0: leaves over ranks.
        let leaves = world.div_ceil(radix);
        let mut levels: Vec<Vec<Vec<usize>>> = Vec::new(); // children lists per level
        let leaf_children: Vec<Vec<usize>> = (0..leaves)
            .map(|l| (l * radix..((l + 1) * radix).min(world)).collect())
            .collect();
        levels.push(leaf_children);
        // Higher levels until a single root remains.
        while levels.last().unwrap().len() > 1 {
            let below = levels.last().unwrap().len();
            let groups = below.div_ceil(radix);
            let level: Vec<Vec<usize>> = (0..groups)
                .map(|g| (g * radix..((g + 1) * radix).min(below)).collect())
                .collect();
            levels.push(level);
        }
        // Assign node ids level by level and wire parent/children with
        // absolute endpoint ids.
        let mut parent = Vec::new();
        let mut children: Vec<Vec<usize>> = Vec::new();
        let mut leaf_of_rank = vec![0usize; world];
        let mut level_start = Vec::new();
        let mut next_id = 0usize;
        for level in &levels {
            level_start.push(next_id);
            next_id += level.len();
        }
        let nodes = next_id;
        parent.resize(nodes, 0);
        for (li, level) in levels.iter().enumerate() {
            for (ni, kids) in level.iter().enumerate() {
                let id = level_start[li] + ni;
                if li == 0 {
                    for &r in kids {
                        leaf_of_rank[r] = id;
                    }
                    children.push(kids.clone());
                } else {
                    children.push(kids.iter().map(|k| level_start[li - 1] + k).collect());
                }
                // Parent sits in the next level, group ni / radix.
                if li + 1 < levels.len() {
                    parent[id] = level_start[li + 1] + ni / radix;
                } else {
                    parent[id] = id; // root
                }
            }
        }
        // Children lists above level 0 refer to switch node ids; convert to
        // endpoint ids lazily (endpoint = base + node id). Rank children
        // stay as rank endpoints.
        SwitchTopology {
            radix,
            leaves,
            nodes,
            base_endpoint,
            parent,
            children,
            leaf_of_rank,
        }
    }

    pub fn root(&self) -> usize {
        self.nodes - 1
    }

    /// Tree depth in switch hops (1 for a single-switch fabric).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut width = self.leaves;
        while width > 1 {
            width = width.div_ceil(self.radix);
            d += 1;
        }
        d
    }
}

/// Run one switch node's aggregation for a single allreduce operation.
///
/// `T` and `op` are all the switch gets: no keys, no plaintext. The
/// service is deadline-aware: if a child or parent goes silent (dropped
/// message, killed endpoint, or this node itself killed), the service
/// returns the error and the node thread exits instead of leaking — the
/// ranks waiting below observe their own `Timeout`/`PeerDead` and map it
/// to `SwitchDown`.
pub(crate) fn switch_node_service<T, F>(
    fabric: &Arc<dyn Transport>,
    topo: &SwitchTopology,
    node: usize,
    tag: u64,
    op: &F,
    deadline: Option<Instant>,
) -> Result<(), CommError>
where
    T: Clone + Send + 'static,
    F: Fn(&T, &T) -> T,
{
    let me = topo.base_endpoint + node;
    let is_leaf = node < topo.leaves;
    // Gather from children (ranks for leaves, switches otherwise).
    let sources: Vec<usize> = if is_leaf {
        topo.children[node].clone()
    } else {
        topo.children[node]
            .iter()
            .map(|c| topo.base_endpoint + c)
            .collect()
    };
    let take = |src: usize, t: u64| -> Result<Vec<T>, CommError> {
        let env = fabric.recv_on(me, src, t, deadline)?;
        env.payload
            .downcast::<Vec<T>>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch {
                source: src,
                tag: t,
                expected: std::any::type_name::<Vec<T>>(),
            })
    };
    let mut acc: Option<Vec<T>> = None;
    for &src in &sources {
        let v = take(src, tag)?;
        acc = Some(match acc {
            None => v,
            Some(mut a) => {
                for (x, y) in a.iter_mut().zip(&v) {
                    *x = op(x, y);
                }
                a
            }
        });
    }
    let acc = acc.expect("switch node with no children");
    let bytes = std::mem::size_of::<T>() * acc.len();
    if node == topo.root() {
        // Multicast the aggregate back to every child subtree.
        if topo.nodes == 1 {
            for &r in &topo.children[node] {
                fabric.send_boxed(me, r, tag + 1, Box::new(acc.clone()), bytes);
            }
        } else {
            for &c in &topo.children[node] {
                fabric.send_boxed(
                    me,
                    topo.base_endpoint + c,
                    tag + 1,
                    Box::new(acc.clone()),
                    bytes,
                );
            }
        }
    } else {
        fabric.send_boxed(
            me,
            topo.base_endpoint + topo.parent[node],
            tag,
            Box::new(acc),
            bytes,
        );
    }
    // Downward multicast for non-root nodes.
    if node != topo.root() {
        let v = take(topo.base_endpoint + topo.parent[node], tag + 1)?;
        if is_leaf {
            for &r in &topo.children[node] {
                fabric.send_boxed(me, r, tag + 1, Box::new(v.clone()), bytes);
            }
        } else {
            for &c in &topo.children[node] {
                fabric.send_boxed(
                    me,
                    topo.base_endpoint + c,
                    tag + 1,
                    Box::new(v.clone()),
                    bytes,
                );
            }
        }
    }
    Ok(())
}

impl Communicator {
    /// Allreduce offloaded to the in-network switch tree. Requires the
    /// simulator to have been built with [`crate::SimConfig::with_switch`].
    ///
    /// Each rank sends one vector up and receives one aggregate down —
    /// the INC bandwidth advantage. The reduction happens entirely on
    /// key-less switch endpoints, so callers MUST pass encrypted data (the
    /// HEAR layer does; the plaintext variant exists only as the insecure
    /// baseline the paper argues against).
    pub fn allreduce_inc<T, F>(&self, data: &[T], op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        let tag = self.next_coll_tag();
        self.allreduce_inc_tagged(tag, data.to_vec(), op)
    }

    /// Switch-tree allreduce consuming the input buffer — the copy-free
    /// entry the HEAR engine chunks over.
    pub fn allreduce_inc_owned<T, F>(&self, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        let tag = self.next_coll_tag();
        self.allreduce_inc_tagged(tag, data, op)
    }

    pub(crate) fn allreduce_inc_tagged<T, F>(&self, tag: u64, data: Vec<T>, op: F) -> Vec<T>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        self.try_allreduce_inc_tagged(tag, data, op, None)
            .unwrap_or_else(|e| panic!("INC allreduce (tag {tag:#x}) failed: {e}"))
    }

    /// Fallible switch-tree allreduce. A silent or dead switch surfaces
    /// as [`CommError::SwitchDown`]: a rank cannot tell a slow switch
    /// from a dead one, and either way the recovery is the same — fall
    /// back to a host algorithm — so timeouts waiting on the tree and
    /// deaths of switch endpoints both map to `SwitchDown`. Failures of
    /// *rank* endpoints keep their own variants.
    pub fn try_allreduce_inc_tagged<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        let topo = self
            .switch_topology()
            .expect("allreduce_inc requires a switch-enabled simulator");
        // Kick the switch service for this collective (one service task per
        // switch node, spawned by the simulator's switch executor).
        self.spawn_switch_service::<T, F>(&topo, tag, op, deadline);
        let leaf_node = topo.leaf_of_rank[self.rank()];
        let leaf = topo.base_endpoint + leaf_node;
        let bytes = std::mem::size_of_val(&data[..]);
        self.transport
            .send_boxed(self.rank(), leaf, tag, Box::new(data), bytes);
        let env = match self.transport.recv_on(self.rank(), leaf, tag + 1, deadline) {
            Ok(env) => env,
            Err(CommError::Timeout { .. }) => {
                return Err(CommError::SwitchDown { node: leaf_node });
            }
            Err(CommError::PeerDead { peer }) if peer >= topo.base_endpoint => {
                return Err(CommError::SwitchDown {
                    node: peer - topo.base_endpoint,
                });
            }
            Err(e) => return Err(e),
        };
        env.payload
            .downcast::<Vec<T>>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch {
                source: leaf,
                tag: tag + 1,
                expected: std::any::type_name::<Vec<T>>(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::{SimConfig, Simulator};

    #[test]
    fn topology_shapes() {
        let t = SwitchTopology::build(8, 4, 8);
        assert_eq!(t.leaves, 2);
        assert_eq!(t.nodes, 3); // two leaves + root
        assert_eq!(t.root(), 2);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.children[0], vec![0, 1, 2, 3]);
        assert_eq!(t.children[2], vec![0, 1]); // node ids of the leaves
        assert_eq!(t.leaf_of_rank, vec![0, 0, 0, 0, 1, 1, 1, 1]);

        let t1 = SwitchTopology::build(3, 4, 3);
        assert_eq!(t1.nodes, 1);
        assert_eq!(t1.depth(), 1);
        assert_eq!(t1.root(), 0);

        let deep = SwitchTopology::build(64, 4, 64);
        assert_eq!(deep.leaves, 16);
        assert_eq!(deep.nodes, 16 + 4 + 1);
        assert_eq!(deep.depth(), 3);
        // Every rank maps to a leaf; every non-root has a parent above it.
        for n in 0..deep.nodes - 1 {
            assert!(deep.parent[n] > n);
        }
    }

    #[test]
    fn inc_allreduce_matches_host_allreduce() {
        for world in [1usize, 2, 3, 4, 5, 8, 9] {
            let results = Simulator::with_config(world, SimConfig::default().with_switch(4)).run(
                move |comm| {
                    let data: Vec<u64> =
                        (0..6).map(|j| (comm.rank() as u64 + 1) * 10 + j).collect();
                    let inc = comm.allreduce_inc(&data, |a: &u64, b: &u64| a + b);
                    let host = comm.allreduce(&data, |a, b| a + b);
                    (inc, host)
                },
            );
            for (inc, host) in &results {
                assert_eq!(inc, host, "world={world}");
            }
        }
    }

    #[test]
    fn inc_allreduce_deep_tree() {
        // Radix 2 over 8 ranks: 3 switch levels.
        let results = Simulator::with_config(8, SimConfig::default().with_switch(2))
            .run(|comm| comm.allreduce_inc(&[comm.rank() as u32, 1], |a, b| a + b));
        for v in &results {
            assert_eq!(*v, vec![28, 8]);
        }
    }

    #[test]
    fn repeated_inc_collectives() {
        let results = Simulator::with_config(4, SimConfig::default().with_switch(4)).run(|comm| {
            let mut acc = 0u64;
            for i in 0..5u64 {
                acc += comm.allreduce_inc(&[i], |a, b| a + b)[0];
            }
            acc
        });
        // Σ_{i<5} 4i = 40.
        for v in &results {
            assert_eq!(*v, 40);
        }
    }

    #[test]
    #[should_panic(expected = "switch-enabled")]
    fn inc_without_switch_panics() {
        Simulator::new(2).run(|comm| {
            comm.allreduce_inc(&[1u8], |a, b| a ^ b);
        });
    }
}
