//! The simulator: spawns one OS thread per rank, wires the fabric and the
//! optional in-network switch tree, runs the user's per-rank function.

use crate::comm::Communicator;
use crate::fabric::{Fabric, NetConfig};
use crate::fault::FaultPlan;
use crate::inc::SwitchTopology;
use crate::transport::Transport;
use std::sync::Arc;

/// Which message-passing backend a [`Simulator`] wires under the ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Resolve from the `HEAR_TRANSPORT` environment variable at `run()`
    /// time (`"tcp"` selects the socket backend; anything else — or the
    /// variable being unset — selects the in-memory fabric). This is what
    /// lets the whole test and bench suite switch backends with one env
    /// var and zero per-test edits.
    #[default]
    FromEnv,
    /// The in-memory mailbox fabric (single process, zero copies).
    Memory,
    /// A real-socket loopback mesh: every endpoint pair is connected by a
    /// kernel TCP socket and every message is framed onto the wire, while
    /// all endpoints still live in this process.
    Tcp,
}

impl TransportKind {
    pub(crate) fn resolve(self) -> TransportKind {
        match self {
            TransportKind::FromEnv => match std::env::var("HEAR_TRANSPORT").as_deref() {
                Ok("tcp") => TransportKind::Tcp,
                _ => TransportKind::Memory,
            },
            other => other,
        }
    }
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub net: NetConfig,
    /// Fan-in of the INC switch tree; `None` disables in-network compute.
    pub switch_radix: Option<usize>,
    /// Deterministic fault-injection plan; `None` runs a healthy fabric.
    pub faults: Option<FaultPlan>,
    /// Backend selection; defaults to honouring `HEAR_TRANSPORT`.
    pub transport: TransportKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            net: NetConfig::instant(),
            switch_radix: None,
            faults: None,
            transport: TransportKind::FromEnv,
        }
    }
}

impl SimConfig {
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    pub fn with_switch(mut self, radix: usize) -> Self {
        self.switch_radix = Some(radix);
        self
    }

    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }
}

/// A `world`-rank single-process MPI job.
pub struct Simulator {
    world: usize,
    config: SimConfig,
}

impl Simulator {
    pub fn new(world: usize) -> Self {
        Self::with_config(world, SimConfig::default())
    }

    pub fn with_config(world: usize, config: SimConfig) -> Self {
        assert!(world >= 1, "need at least one rank");
        Simulator { world, config }
    }

    /// Run `f` on every rank concurrently and return the per-rank results
    /// in rank order. Panics in any rank propagate.
    pub fn run<F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&Communicator) -> R + Send + Sync,
        R: Send,
    {
        let topo = self
            .config
            .switch_radix
            .map(|radix| Arc::new(SwitchTopology::build(self.world, radix, self.world)));
        let endpoints = self.world + topo.as_ref().map_or(0, |t| t.nodes);
        let transport: Arc<dyn Transport> = match self.config.transport.resolve() {
            TransportKind::Tcp => Arc::new(
                crate::tcp::TcpTransport::mesh(
                    endpoints,
                    self.config.net,
                    self.config.faults.clone(),
                )
                .expect("loopback TCP mesh construction failed"),
            ),
            _ => Arc::new(Fabric::with_faults(
                endpoints,
                self.config.net,
                self.config.faults.clone(),
            )),
        };
        let comms: Vec<Communicator> = (0..self.world)
            .map(|rank| {
                let mut c = Communicator::new(rank, self.world, transport.clone());
                c.set_switch(topo.clone());
                c
            })
            .collect();
        // Rank threads inherit the launching thread's telemetry registry
        // (private installed context or enabled global), each under a lane
        // attributed to its own rank — that is what makes chrome-trace
        // lanes line up with MPI ranks.
        let tele = hear_telemetry::spawn_context();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .iter()
                .map(|comm| {
                    let tele = tele.clone();
                    let transport = transport.clone();
                    scope.spawn(move || {
                        let _tele = tele.map(|(reg, _)| reg.install(Some(comm.rank())));
                        // A panicking rank is marked dead before the panic
                        // propagates, so sibling ranks' receives resolve to
                        // `PeerDead` instead of deadlocking on its silence.
                        let rank = comm.rank();
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm))) {
                            Ok(r) => r,
                            Err(payload) => {
                                transport.kill(rank);
                                std::panic::resume_unwind(payload);
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_see_their_identity() {
        let results = Simulator::new(5).run(|comm| (comm.rank(), comm.world()));
        for (r, res) in results.iter().enumerate() {
            assert_eq!(*res, (r, 5));
        }
    }

    #[test]
    fn results_in_rank_order() {
        let results = Simulator::new(8).run(|comm| comm.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_world_rejected() {
        let _ = Simulator::new(0);
    }

    #[test]
    fn telemetry_lanes_and_counters_match_schedule() {
        use hear_telemetry::{Metric, Registry};
        // Private registry so concurrent tests can't pollute the counts.
        let reg = Registry::new_enabled();
        let _g = reg.install(None);
        const LEN: usize = 5;
        let results = Simulator::new(4).run(|comm| {
            let data: Vec<u64> = (0..LEN as u64).map(|j| comm.rank() as u64 + j).collect();
            comm.allreduce(&data, |a, b| a + b)
        });
        assert_eq!(results.len(), 4);
        // Recursive doubling, P = 4 (power of two): log2(P) = 2 sendrecv
        // steps per rank -> 4·2 = 8 messages, each LEN u64s.
        assert_eq!(reg.counter(Metric::FabricMsgs), 8);
        assert_eq!(reg.counter(Metric::FabricBytes), 8 * LEN as u64 * 8);
        // One tag allocation per rank.
        assert_eq!(reg.counter(Metric::Collectives), 4);
        // Every rank owns a lane, correctly attributed.
        let ranks = reg.lane_ranks();
        for r in 0..4 {
            assert!(ranks.contains(&Some(r)), "missing lane for rank {r}");
        }
        // Per-rank span stream survives concurrent recording intact.
        let evs = reg.span_events();
        for r in 0..4 {
            let of = |name: &str| {
                evs.iter()
                    .filter(|e| e.name == name && e.rank == Some(r))
                    .count()
            };
            assert_eq!(of("allreduce"), 1, "rank {r}");
            assert_eq!(of("send"), 2, "rank {r}");
            assert_eq!(of("recv"), 2, "rank {r}");
            assert_eq!(of("reduce"), 2, "rank {r}");
        }
        // Nothing leaked into a foreign lane: every event is rank-tagged.
        assert!(evs.iter().all(|e| e.rank.is_some()));
    }

    #[test]
    fn panicking_rank_mid_send_leaves_siblings_with_typed_errors() {
        use crate::error::CommError;
        use std::sync::Mutex;
        use std::time::Duration;
        // Siblings report through shared state because the run() join
        // re-raises rank 0's panic.
        type Outcome = (usize, Result<Vec<u8>, CommError>);
        let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::new());
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Simulator::new(3).run(|comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, vec![7u8]);
                    panic!("rank 0 dies mid-protocol");
                }
                // Rank 1 first drains the message already on the wire,
                // then both siblings wait on traffic that will never come.
                if comm.rank() == 1 {
                    let queued = comm.recv_timeout::<u8>(0, 1, Duration::from_secs(5));
                    outcomes.lock().unwrap().push((1, queued));
                }
                let silent = comm.recv_timeout::<u8>(0, 2, Duration::from_secs(5));
                outcomes.lock().unwrap().push((comm.rank(), silent));
            })
        }));
        assert!(run.is_err(), "rank 0's panic must still propagate");
        let outcomes = outcomes.into_inner().unwrap();
        assert_eq!(outcomes.len(), 3, "all sibling receives completed");
        for (rank, res) in &outcomes {
            match res {
                Ok(v) => assert_eq!((*rank, v.as_slice()), (1, &[7u8][..])),
                Err(e) => assert!(
                    matches!(
                        e,
                        CommError::PeerDead { peer: 0 } | CommError::Timeout { .. }
                    ),
                    "rank {rank}: unexpected {e}"
                ),
            }
        }
        // The queued message was delivered; the silent waits got errors.
        assert_eq!(outcomes.iter().filter(|(_, r)| r.is_ok()).count(), 1);
    }

    #[test]
    fn net_config_plumbing() {
        let cfg = SimConfig::default()
            .with_net(NetConfig::aries_per_rank())
            .with_switch(16);
        assert!(cfg.switch_radix == Some(16));
        assert!(!cfg.net.is_instant());
    }
}
