//! Rank-per-process launching for the TCP transport.
//!
//! [`Launcher`] spawns `world` copies of a program (by default the current
//! executable) with the environment the TCP backend's rendezvous needs —
//! `HEAR_RANK`, `HEAR_WORLD`, and a per-launch `HEAR_RENDEZVOUS_FILE` —
//! then supervises the tree: the first child failing (or a watchdog
//! expiring) kills every survivor, and the per-rank exit codes are
//! reported in [`Outcome`]. Each launch gets its own rendezvous file and
//! only ephemeral ports, so any number of launchers can run concurrently
//! on one host without coordination.
//!
//! Child side: [`child_rank`] says whether this process *is* a launched
//! rank, and [`child_comm`] performs the full TCP rendezvous and hands
//! back a ready [`Communicator`] — the one-constructor switch that lets
//! any existing test or bench run multi-process:
//!
//! ```no_run
//! use hear_mpi::launch;
//! if let Some(comm) = launch::child_comm() {
//!     let comm = comm.expect("TCP rendezvous");
//!     let sums = comm.allreduce(&[comm.rank() as u64 + 1], |a, b| a + b);
//!     assert_eq!(sums[0], (1..=comm.world() as u64).sum());
//! }
//! ```

use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::comm::Communicator;
use crate::tcp::TcpTransport;

static LAUNCH_SEQ: AtomicU64 = AtomicU64::new(0);

/// Builder for a rank-per-process tree.
pub struct Launcher {
    world: usize,
    watchdog: Duration,
    program: Option<PathBuf>,
    args: Vec<String>,
    envs: Vec<(String, String)>,
    shrink_tolerant: bool,
}

impl Launcher {
    /// A launcher for `world` single-rank processes of the current
    /// executable, with a 60 s watchdog.
    pub fn new(world: usize) -> Launcher {
        Launcher {
            world,
            watchdog: Duration::from_secs(60),
            program: None,
            args: Vec::new(),
            envs: Vec::new(),
            shrink_tolerant: false,
        }
    }

    /// Tolerate individual rank deaths instead of fail-fast-killing the
    /// tree: with shrink-and-continue enabled in the children, a dead
    /// rank is a survivable event the survivors reconfigure around, so
    /// the supervisor keeps the tree running and reports the per-rank
    /// exits at the end. The watchdog still bounds a wedged tree.
    pub fn allow_shrink(mut self) -> Launcher {
        self.shrink_tolerant = true;
        self
    }

    /// Wall-clock ceiling on the whole tree; on expiry every child is
    /// killed and [`Outcome::watchdog_fired`] is set. A hang therefore
    /// becomes a *distinct, detectable* failure, never a stuck CI job.
    pub fn watchdog(mut self, limit: Duration) -> Launcher {
        self.watchdog = limit;
        self
    }

    /// Launch `program` instead of the current executable.
    pub fn program(mut self, program: impl Into<PathBuf>) -> Launcher {
        self.program = Some(program.into());
        self
    }

    /// Append one command-line argument for every child.
    pub fn arg(mut self, arg: impl Into<String>) -> Launcher {
        self.args.push(arg.into());
        self
    }

    /// Append command-line arguments for every child.
    pub fn args<I: IntoIterator<Item = S>, S: Into<String>>(mut self, args: I) -> Launcher {
        self.args.extend(args.into_iter().map(Into::into));
        self
    }

    /// Set an extra environment variable for every child.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Launcher {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Spawn the tree. Children start rendezvous immediately; supervise
    /// with [`Tree::wait`] (or poke individual ranks first, e.g.
    /// [`Tree::kill_rank`] for fault drills).
    pub fn spawn(self) -> std::io::Result<Tree> {
        let program = match self.program {
            Some(p) => p,
            None => std::env::current_exe()?,
        };
        let rendezvous_file = std::env::temp_dir().join(format!(
            "hear-rendezvous-{}-{}.port",
            std::process::id(),
            LAUNCH_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        // A stale file from a recycled pid would poison rendezvous.
        let _ = std::fs::remove_file(&rendezvous_file);
        let mut children = Vec::with_capacity(self.world);
        for rank in 0..self.world {
            let mut cmd = Command::new(&program);
            cmd.args(&self.args)
                .env("HEAR_RANK", rank.to_string())
                .env("HEAR_WORLD", self.world.to_string())
                .env("HEAR_RENDEZVOUS_FILE", &rendezvous_file)
                .stdin(Stdio::null());
            for (k, v) in &self.envs {
                cmd.env(k, v);
            }
            match cmd.spawn() {
                Ok(child) => children.push(Some(child)),
                Err(e) => {
                    // Abort the partial tree before reporting.
                    let mut tree = Tree {
                        children,
                        statuses: Vec::new(),
                        expected_dead: Vec::new(),
                        rendezvous_file: rendezvous_file.clone(),
                        deadline: Instant::now(),
                        shrink_tolerant: self.shrink_tolerant,
                    };
                    tree.statuses = vec![None; tree.children.len()];
                    tree.expected_dead = vec![false; tree.children.len()];
                    tree.kill_all();
                    return Err(e);
                }
            }
        }
        let statuses = vec![None; children.len()];
        let expected_dead = vec![false; children.len()];
        Ok(Tree {
            children,
            statuses,
            expected_dead,
            rendezvous_file,
            deadline: Instant::now() + self.watchdog,
            shrink_tolerant: self.shrink_tolerant,
        })
    }
}

/// How a launched tree ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Per-rank exit code; `None` means killed by a signal (including a
    /// supervisor kill after a sibling failed or the watchdog fired).
    pub codes: Vec<Option<i32>>,
    /// The watchdog expired before every child exited.
    pub watchdog_fired: bool,
}

impl Outcome {
    /// Every rank exited 0 and the watchdog stayed quiet.
    pub fn success(&self) -> bool {
        !self.watchdog_fired && self.codes.iter().all(|c| *c == Some(0))
    }
}

/// A running rank tree; see [`Launcher::spawn`].
pub struct Tree {
    children: Vec<Option<Child>>,
    statuses: Vec<Option<ExitStatus>>,
    /// Ranks killed deliberately through [`Tree::kill_rank`]: their
    /// (signal) deaths are the drill, not a failure, so they do not
    /// trigger the fail-fast teardown of the survivors.
    expected_dead: Vec<bool>,
    rendezvous_file: PathBuf,
    deadline: Instant,
    /// [`Launcher::allow_shrink`]: rank deaths do not fail-fast the tree.
    shrink_tolerant: bool,
}

impl Tree {
    pub fn world(&self) -> usize {
        self.children.len()
    }

    /// Forcibly kill one rank (fault drills: the surviving ranks must
    /// observe `PeerDead` through the transport). The killed rank's death
    /// is expected — [`Tree::wait`] keeps supervising the survivors
    /// instead of fail-fast-killing the tree, so a drill can watch them
    /// react. Idempotent; no-op for a rank that already exited.
    pub fn kill_rank(&mut self, rank: usize) {
        if let Some(flag) = self.expected_dead.get_mut(rank) {
            *flag = true;
        }
        if let Some(child) = self.children.get_mut(rank).and_then(Option::as_mut) {
            let _ = child.kill();
        }
    }

    fn kill_all(&mut self) {
        for child in self.children.iter_mut().flatten() {
            let _ = child.kill();
        }
        // Reap so nothing is left as a zombie.
        for (i, slot) in self.children.iter_mut().enumerate() {
            if let Some(mut child) = slot.take() {
                if let Ok(status) = child.wait() {
                    if i < self.statuses.len() {
                        self.statuses[i].get_or_insert(status);
                    }
                }
            }
        }
    }

    /// Supervise until every rank exits, a rank fails, or the watchdog
    /// fires. On the first non-zero exit (or watchdog expiry) the rest of
    /// the tree is killed. Exit codes are reported per rank.
    pub fn wait(mut self) -> Outcome {
        let mut watchdog_fired = false;
        loop {
            let mut all_done = true;
            let mut failure = false;
            for rank in 0..self.children.len() {
                if self.statuses[rank].is_some() {
                    continue;
                }
                let Some(child) = self.children[rank].as_mut() else {
                    continue;
                };
                match child.try_wait() {
                    Ok(Some(status)) => {
                        self.statuses[rank] = Some(status);
                        self.children[rank] = None;
                        if !status.success() && !self.expected_dead[rank] && !self.shrink_tolerant {
                            failure = true;
                        }
                    }
                    Ok(None) => all_done = false,
                    Err(_) => {
                        // Treat an unwaitable child as failed.
                        self.children[rank] = None;
                        failure = true;
                    }
                }
            }
            if failure {
                self.kill_all();
                break;
            }
            if all_done {
                break;
            }
            if Instant::now() >= self.deadline {
                watchdog_fired = true;
                self.kill_all();
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let codes = self
            .statuses
            .iter()
            .map(|s| s.and_then(|st| st.code()))
            .collect();
        let _ = std::fs::remove_file(&self.rendezvous_file);
        Outcome {
            codes,
            watchdog_fired,
        }
    }
}

impl Drop for Tree {
    fn drop(&mut self) {
        self.kill_all();
        let _ = std::fs::remove_file(&self.rendezvous_file);
    }
}

/// This process's rank, when it was spawned by a [`Launcher`].
pub fn child_rank() -> Option<usize> {
    std::env::var("HEAR_RANK").ok()?.parse().ok()
}

/// This process's world size, when it was spawned by a [`Launcher`].
pub fn child_world() -> Option<usize> {
    std::env::var("HEAR_WORLD").ok()?.parse().ok()
}

/// Perform the TCP rendezvous this environment describes and return the
/// world [`Communicator`] for this process's rank. `None` when the
/// process was not spawned by a [`Launcher`] (no `HEAR_RANK` etc.), so a
/// binary can branch between parent and child roles with one call.
pub fn child_comm() -> Option<std::io::Result<Communicator>> {
    match TcpTransport::connect_from_env()? {
        Ok((transport, rank, world)) => {
            Some(Ok(Communicator::new(rank, world, Arc::new(transport))))
        }
        Err(e) => Some(Err(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(world: usize, script: &str) -> Launcher {
        Launcher::new(world).program("/bin/sh").args(["-c", script])
    }

    #[test]
    fn all_zero_exits_is_success() {
        let outcome = sh(3, "exit 0").spawn().unwrap().wait();
        assert!(outcome.success(), "{outcome:?}");
        assert_eq!(outcome.codes, vec![Some(0); 3]);
    }

    #[test]
    fn nonzero_exit_fails_the_tree_and_kills_survivors() {
        // Rank with HEAR_RANK=1 exits 7 immediately; the others would
        // sleep far past the watchdog if they were not killed.
        let t0 = Instant::now();
        let outcome = sh(3, r#"if [ "$HEAR_RANK" = 1 ]; then exit 7; fi; sleep 30"#)
            .watchdog(Duration::from_secs(20))
            .spawn()
            .unwrap()
            .wait();
        assert!(!outcome.success());
        assert!(!outcome.watchdog_fired);
        assert_eq!(outcome.codes[1], Some(7));
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "survivors were killed, not awaited"
        );
    }

    #[test]
    fn watchdog_kills_a_hung_tree() {
        let t0 = Instant::now();
        let outcome = sh(2, "sleep 30")
            .watchdog(Duration::from_millis(300))
            .spawn()
            .unwrap()
            .wait();
        assert!(outcome.watchdog_fired);
        assert!(!outcome.success());
        assert!(t0.elapsed() < Duration::from_secs(10));
        // Killed by signal → no exit code.
        assert_eq!(outcome.codes, vec![None, None]);
    }

    #[test]
    fn kill_rank_is_a_targeted_fault() {
        // The drilled rank dies by signal; the survivor keeps running to
        // its own (clean) exit — a drill must be able to watch survivors
        // react instead of having the supervisor tear them down.
        let mut tree = sh(2, "sleep 0.4; exit 0")
            .watchdog(Duration::from_secs(20))
            .spawn()
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        tree.kill_rank(0);
        let t0 = Instant::now();
        let outcome = tree.wait();
        assert!(!outcome.success(), "a signal death is still not a success");
        assert!(!outcome.watchdog_fired);
        assert_eq!(outcome.codes[0], None, "rank 0 died by signal");
        assert_eq!(outcome.codes[1], Some(0), "survivor ran to completion");
        assert!(t0.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn allow_shrink_keeps_survivors_running_past_a_rank_death() {
        // Inverse of `nonzero_exit_fails_the_tree_and_kills_survivors`:
        // with shrink tolerance the dead rank's non-zero exit is recorded
        // but the survivors run to their own completion.
        let outcome = sh(
            3,
            r#"if [ "$HEAR_RANK" = 1 ]; then exit 7; fi; sleep 0.3; exit 0"#,
        )
        .watchdog(Duration::from_secs(20))
        .allow_shrink()
        .spawn()
        .unwrap()
        .wait();
        assert!(!outcome.watchdog_fired);
        assert_eq!(outcome.codes[1], Some(7));
        assert_eq!(outcome.codes[0], Some(0), "survivor was not torn down");
        assert_eq!(outcome.codes[2], Some(0), "survivor was not torn down");
        assert!(!outcome.success(), "a rank death still is not a success");
    }

    #[test]
    fn concurrent_launchers_do_not_collide() {
        // Ephemeral-port + per-launch rendezvous-file hygiene: two trees
        // side by side share nothing nameable, so both must succeed.
        let a = sh(2, "exit 0").spawn().unwrap();
        let b = sh(2, "exit 0").spawn().unwrap();
        assert!(a.wait().success());
        assert!(b.wait().success());
    }
}
