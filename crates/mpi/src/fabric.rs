//! The in-memory message fabric: per-rank mailboxes with MPI-style
//! `(source, tag)` matching, an optional transit-delay model, and
//! deterministic fault injection.
//!
//! Senders deposit messages directly into the destination mailbox and
//! continue (an eager/RDMA-like model); receivers block on a condition
//! variable until a matching message exists. Each message carries an
//! `available_at` timestamp computed from the α–β delay model, so a
//! receiver that arrives early sleeps out the remaining transit time —
//! that is what gives communication a real cost that pipelining (Fig. 6)
//! can hide.
//!
//! Failure semantics: every receive goes through [`Fabric::recv_on`],
//! which takes an optional deadline and returns a typed
//! [`CommError`](crate::CommError) instead of blocking forever. Endpoints
//! can die — by a [`FaultPlan`] kill trigger or because their thread
//! panicked — and `recv_on` reports `PeerDead` to anyone waiting on them.
//! An armed fault plan additionally drops, delays, duplicates, or
//! corrupts messages inside [`Fabric::send_boxed`], deterministically in
//! the message identity.
//!
//! The mailbox matcher ([`Mailbox`], [`recv_on_mailboxes`]) and the link
//! serialization clock ([`LinkClock`]) are shared with the
//! [`tcp`](crate::tcp) backend, which replaces only the wire underneath
//! them with real kernel sockets.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::error::CommError;
use crate::fault::{filter_send, FaultPlan, FaultState, SendDecision, SendVerdict};
use crate::transport::{Envelope, Transport};

/// Lock ignoring poisoning: the fabric must stay usable when a sibling
/// rank's thread panics mid-send (failure-injection tests rely on this,
/// and it matches the `parking_lot` semantics this module started with).
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Upper bound on one condvar park: bounded so a receiver re-checks the
/// peer's death flag and its deadline even if a wakeup is missed.
const WAIT_SLICE: Duration = Duration::from_millis(1);

thread_local! {
    static TRANSIT_WAIT_NANOS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Nanoseconds *this thread* has spent sleeping out modeled transit time
/// (the α–β delay between a message's deposit and its `available_at`).
///
/// Unlike the global `hear_transit_wait_nanos_total` counter this is
/// per-thread, which is what makes pipelining measurable without wall
/// clocks: a main thread whose receives are serviced by progress threads
/// accumulates zero transit wait, while a blocked-sync main thread eats
/// the full α per block.
pub fn thread_transit_wait_nanos() -> u64 {
    TRANSIT_WAIT_NANOS.with(|c| c.get())
}

fn record_transit_wait(wait: Duration) {
    let n = wait.as_nanos() as u64;
    TRANSIT_WAIT_NANOS.with(|c| c.set(c.get() + n));
    hear_telemetry::add(hear_telemetry::Metric::TransitWaitNanos, n);
}

/// Transit-cost model: `delay = alpha + beta_ns_per_byte × bytes`.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    pub alpha: Duration,
    pub beta_ns_per_byte: f64,
}

impl NetConfig {
    /// Zero-cost fabric (unit tests, functional runs).
    pub fn instant() -> Self {
        NetConfig {
            alpha: Duration::ZERO,
            beta_ns_per_byte: 0.0,
        }
    }

    /// A per-rank share of a saturated Aries NIC at full PPN, matching the
    /// paper's Fig. 6 setting: 0.347 GB/s/rank and a ~1.4 µs small-message
    /// latency.
    pub fn aries_per_rank() -> Self {
        NetConfig {
            alpha: Duration::from_nanos(1_400),
            // 0.347 GB/s  →  1 / 0.347 ≈ 2.88 ns per byte.
            beta_ns_per_byte: 1.0 / 0.347,
        }
    }

    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.alpha + Duration::from_nanos((self.beta_ns_per_byte * bytes as f64) as u64)
    }

    pub fn is_instant(&self) -> bool {
        self.alpha.is_zero() && self.beta_ns_per_byte == 0.0
    }
}

/// Per-directed-link serialization clock for the α–β model: a message
/// starts its transit only after the previous message on the same
/// `(from, to)` link has fully left the wire, so concurrent sends share
/// the link's finite rate instead of overlapping for free. (Latency α
/// still pipelines across links.)
pub(crate) struct LinkClock {
    net: NetConfig,
    busy_until: Mutex<HashMap<(usize, usize), Instant>>,
}

impl LinkClock {
    pub fn new(net: NetConfig) -> Self {
        LinkClock {
            net,
            busy_until: Mutex::new(HashMap::new()),
        }
    }

    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    /// When a `bytes`-sized message sent now on `from → to` becomes
    /// consumable, including any injected extra delay.
    pub fn available_at(&self, from: usize, to: usize, bytes: usize, extra: Duration) -> Instant {
        let now = Instant::now();
        if self.net.is_instant() {
            return now + extra;
        }
        let serialization = Duration::from_nanos((self.net.beta_ns_per_byte * bytes as f64) as u64);
        let mut links = lock_unpoisoned(&self.busy_until);
        let busy = links.entry((from, to)).or_insert(now);
        let start = (*busy).max(now);
        let done = start + serialization;
        *busy = done;
        done + self.net.alpha + extra
    }
}

#[derive(Default)]
struct MailboxState {
    // (source, tag) → FIFO of envelopes: MPI's non-overtaking rule per
    // matched pair.
    queues: HashMap<(usize, u64), VecDeque<Envelope>>,
}

impl MailboxState {
    fn pop_match(&mut self, source: usize, tag: u64) -> Option<Envelope> {
        self.queues.get_mut(&(source, tag))?.pop_front()
    }

    fn push_front(&mut self, source: usize, tag: u64, env: Envelope) {
        self.queues
            .entry((source, tag))
            .or_default()
            .push_front(env);
    }
}

/// One rank's inbound mailbox: MPMC with `(source, tag)` matching.
#[derive(Default)]
pub(crate) struct Mailbox {
    state: Mutex<MailboxState>,
    signal: Condvar,
}

impl Mailbox {
    pub fn deposit(&self, source: usize, tag: u64, env: Envelope) {
        let mut st = lock_unpoisoned(&self.state);
        st.queues.entry((source, tag)).or_default().push_back(env);
        self.signal.notify_all();
    }

    /// Wake every parked receiver (used when an endpoint dies, so waits
    /// re-check death flags instead of sleeping out their slice).
    pub fn wake(&self) {
        self.signal.notify_all();
    }

    /// Block until a message matching `(source, tag)` is present, then take
    /// it, sleeping out any remaining modeled transit time.
    ///
    /// Production receives go through [`Fabric::recv_on`] (deadline- and
    /// death-aware); this infallible form survives for mailbox unit tests.
    #[cfg(test)]
    pub fn take(&self, source: usize, tag: u64) -> Envelope {
        let mut early = None;
        for _ in 0..128 {
            if let Some(env) = lock_unpoisoned(&self.state).pop_match(source, tag) {
                early = Some(env);
                break;
            }
            std::thread::yield_now();
        }
        let env = early.unwrap_or_else(|| {
            let mut st = lock_unpoisoned(&self.state);
            loop {
                if let Some(env) = st.pop_match(source, tag) {
                    break env;
                }
                st = self.signal.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        });
        let now = Instant::now();
        if env.available_at > now {
            std::thread::sleep(env.available_at - now);
        }
        env
    }

    /// Non-blocking probe.
    #[cfg(test)]
    pub fn try_take(&self, source: usize, tag: u64) -> Option<Envelope> {
        let env = {
            let mut st = lock_unpoisoned(&self.state);
            st.queues.get_mut(&(source, tag))?.pop_front()?
        };
        let now = Instant::now();
        if env.available_at > now {
            std::thread::sleep(env.available_at - now);
        }
        Some(env)
    }
}

/// The backend-independent receive loop over a mailbox array: bounded
/// spin, then bounded condvar parks, with the check order every pass being
/// matching message → `source` dead → `me` dead → deadline expired.
///
/// Arrival is polled with a bounded spin (yielding the core each miss)
/// before parking: the pipelined allreduce path counts on that fast wake
/// for back-to-back block handoffs. Parks are bounded `wait_timeout`
/// slices so a missed wakeup (or a kill racing the dead-flag check)
/// delays the verdict by at most [`WAIT_SLICE`].
///
/// A message still in modeled transit past the deadline is pushed back to
/// the *front* of its queue (preserving FIFO) and reported as `Timeout` —
/// the message is late, not lost.
///
/// `is_suspect` reports whether an endpoint's link is in a known
/// transient-disconnect window (a fault plan's injected window, or the
/// TCP backend's write-retry backoff): a deadline that expires with no
/// message *and* a suspect source is reported as `Disconnected` — the
/// retryable "resend once the link heals" verdict — instead of a bare
/// `Timeout`.
pub(crate) fn recv_on_mailboxes(
    mailboxes: &[Mailbox],
    is_dead: &dyn Fn(usize) -> bool,
    is_suspect: &dyn Fn(usize) -> bool,
    me: usize,
    source: usize,
    tag: u64,
    deadline: Option<Instant>,
) -> Result<Envelope, CommError> {
    let started = Instant::now();
    let mb = &mailboxes[me];
    let mut early = None;
    for _ in 0..128 {
        if let Some(env) = lock_unpoisoned(&mb.state).pop_match(source, tag) {
            early = Some(env);
            break;
        }
        std::thread::yield_now();
    }
    if early.is_some() {
        hear_telemetry::incr(hear_telemetry::Metric::MailboxSpinHits);
    }
    let env = match early {
        Some(env) => env,
        None => {
            hear_telemetry::incr(hear_telemetry::Metric::MailboxParks);
            let mut st = lock_unpoisoned(&mb.state);
            loop {
                if let Some(env) = st.pop_match(source, tag) {
                    break env;
                }
                if is_dead(source) {
                    return Err(CommError::PeerDead { peer: source });
                }
                if is_dead(me) {
                    return Err(CommError::PeerDead { peer: me });
                }
                let now = Instant::now();
                let slice = match deadline {
                    Some(dl) if now >= dl => {
                        if is_suspect(source) {
                            return Err(CommError::Disconnected { peer: source });
                        }
                        return Err(CommError::Timeout {
                            source,
                            tag,
                            waited: started.elapsed(),
                        });
                    }
                    Some(dl) => (dl - now).min(WAIT_SLICE),
                    None => WAIT_SLICE,
                };
                let (guard, _timeout) = mb
                    .signal
                    .wait_timeout(st, slice)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }
    };
    let now = Instant::now();
    if env.available_at > now {
        if let Some(dl) = deadline {
            if env.available_at > dl {
                lock_unpoisoned(&mb.state).push_front(source, tag, env);
                return Err(CommError::Timeout {
                    source,
                    tag,
                    waited: started.elapsed(),
                });
            }
        }
        let wait = env.available_at - now;
        record_transit_wait(wait);
        std::thread::sleep(wait);
    }
    Ok(env)
}

/// Count one delivered message in the global telemetry registry (shared
/// by every transport backend so dashboards do not care which wire moved
/// the bytes).
pub(crate) fn count_delivery(bytes: usize) {
    hear_telemetry::incr(hear_telemetry::Metric::FabricMsgs);
    hear_telemetry::add(hear_telemetry::Metric::FabricBytes, bytes as u64);
    hear_telemetry::observe(hear_telemetry::Hist::FabricMsgBytes, bytes as u64);
}

/// The shared in-memory fabric: one mailbox per endpoint (ranks first,
/// then any in-network switch nodes), the delay model, per-endpoint death
/// flags, and an optional fault plan.
pub(crate) struct Fabric {
    pub mailboxes: Vec<Mailbox>,
    clock: LinkClock,
    dead: Vec<AtomicBool>,
    /// Endpoints currently inside a transient-disconnect window: their
    /// sends are being dropped but they are expected back, so receivers
    /// report `Disconnected` (retryable) rather than `Timeout`.
    suspect: Vec<AtomicBool>,
    faults: Option<(FaultPlan, FaultState)>,
}

impl Fabric {
    #[cfg(test)]
    pub fn new(endpoints: usize, net: NetConfig) -> Self {
        Fabric::with_faults(endpoints, net, None)
    }

    pub fn with_faults(endpoints: usize, net: NetConfig, faults: Option<FaultPlan>) -> Self {
        let dead: Vec<AtomicBool> = (0..endpoints).map(|_| AtomicBool::new(false)).collect();
        if let Some(plan) = &faults {
            for ep in plan.dead_on_arrival() {
                dead[ep].store(true, Ordering::SeqCst);
            }
        }
        Fabric {
            mailboxes: (0..endpoints).map(|_| Mailbox::default()).collect(),
            clock: LinkClock::new(net),
            dead,
            suspect: (0..endpoints).map(|_| AtomicBool::new(false)).collect(),
            faults: faults.map(|p| {
                let st = FaultState::new(endpoints);
                (p, st)
            }),
        }
    }

    pub fn is_dead(&self, endpoint: usize) -> bool {
        self.dead[endpoint].load(Ordering::SeqCst)
    }

    pub fn is_suspect(&self, endpoint: usize) -> bool {
        self.suspect[endpoint].load(Ordering::SeqCst)
    }

    /// Mark `endpoint` dead and wake every parked receiver so waits on it
    /// resolve to `PeerDead` instead of hanging. Idempotent. Used both by
    /// fault-plan kill triggers and by the simulator when a rank thread
    /// panics.
    pub fn kill(&self, endpoint: usize) {
        if !self.dead[endpoint].swap(true, Ordering::SeqCst) {
            for mb in &self.mailboxes {
                mb.wake();
            }
        }
    }

    fn kill_injected(&self, endpoint: usize) {
        hear_telemetry::incr(hear_telemetry::Metric::FaultKill);
        self.kill(endpoint);
    }

    pub fn send_boxed(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        mut payload: Box<dyn Any + Send>,
        bytes: usize,
    ) {
        if self.is_dead(from) {
            return; // a dead endpoint emits nothing
        }
        let SendVerdict {
            decision,
            kill_after,
            suspect,
        } = filter_send(
            self.faults.as_ref(),
            self.is_dead(to),
            from,
            to,
            tag,
            &mut payload,
        );
        if let Some(flag) = suspect {
            self.suspect[from].store(flag, Ordering::SeqCst);
            if !flag {
                // The window closed: wake parked receivers so they stop
                // reporting `Disconnected` for a healed link.
                for mb in &self.mailboxes {
                    mb.wake();
                }
            }
        }
        if let SendDecision::Deliver { dup, extra_delay } = decision {
            if let Some(copy) = dup {
                self.deliver(from, to, tag, copy, bytes, Duration::ZERO);
            }
            self.deliver(from, to, tag, payload, bytes, extra_delay);
        }
        if kill_after {
            self.kill_injected(from);
        }
    }

    fn deliver(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: usize,
        extra_delay: Duration,
    ) {
        count_delivery(bytes);
        let available_at = self.clock.available_at(from, to, bytes, extra_delay);
        self.mailboxes[to].deposit(
            from,
            tag,
            Envelope {
                payload,
                available_at,
            },
        );
    }

    /// Receive on endpoint `me` a message matching `(source, tag)`,
    /// optionally bounded by a deadline. See [`recv_on_mailboxes`] for
    /// the matching and failure semantics.
    pub fn recv_on(
        &self,
        me: usize,
        source: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Envelope, CommError> {
        recv_on_mailboxes(
            &self.mailboxes,
            &|ep| self.is_dead(ep),
            &|ep| self.is_suspect(ep),
            me,
            source,
            tag,
            deadline,
        )
    }
}

impl Transport for Fabric {
    fn endpoints(&self) -> usize {
        self.mailboxes.len()
    }

    fn send_boxed(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: usize,
    ) {
        Fabric::send_boxed(self, from, to, tag, payload, bytes);
    }

    fn recv_on(
        &self,
        me: usize,
        source: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Envelope, CommError> {
        Fabric::recv_on(self, me, source, tag, deadline)
    }

    fn is_dead(&self, endpoint: usize) -> bool {
        Fabric::is_dead(self, endpoint)
    }

    fn kill(&self, endpoint: usize) {
        Fabric::kill(self, endpoint);
    }

    fn rtt_estimate(&self) -> Duration {
        // A round trip through two mailboxes is two condvar wakes plus
        // twice the modeled α; the floor covers scheduler wake latency.
        (self.clock.net().alpha * 2).max(Duration::from_micros(50))
    }

    fn name(&self) -> &'static str {
        "mem"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_take_roundtrip() {
        let mb = Mailbox::default();
        mb.deposit(
            3,
            7,
            Envelope {
                payload: Box::new(vec![1u32, 2]),
                available_at: Instant::now(),
            },
        );
        let env = mb.take(3, 7);
        let v = env.payload.downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![1, 2]);
    }

    #[test]
    fn tag_matching_is_selective() {
        let mb = Mailbox::default();
        let now = Instant::now();
        mb.deposit(
            0,
            1,
            Envelope {
                payload: Box::new(10u8),
                available_at: now,
            },
        );
        mb.deposit(
            0,
            2,
            Envelope {
                payload: Box::new(20u8),
                available_at: now,
            },
        );
        assert!(mb.try_take(0, 3).is_none());
        assert_eq!(*mb.take(0, 2).payload.downcast::<u8>().unwrap(), 20);
        assert_eq!(*mb.take(0, 1).payload.downcast::<u8>().unwrap(), 10);
    }

    #[test]
    fn fifo_per_matched_pair() {
        let mb = Mailbox::default();
        let now = Instant::now();
        for i in 0..5u8 {
            mb.deposit(
                1,
                9,
                Envelope {
                    payload: Box::new(i),
                    available_at: now,
                },
            );
        }
        for i in 0..5u8 {
            assert_eq!(*mb.take(1, 9).payload.downcast::<u8>().unwrap(), i);
        }
    }

    #[test]
    fn blocking_take_wakes_on_deposit() {
        let mb = std::sync::Arc::new(Mailbox::default());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || *mb2.take(0, 0).payload.downcast::<u64>().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        mb.deposit(
            0,
            0,
            Envelope {
                payload: Box::new(42u64),
                available_at: Instant::now(),
            },
        );
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn delay_model_enforced_on_take() {
        let net = NetConfig {
            alpha: Duration::from_millis(30),
            beta_ns_per_byte: 0.0,
        };
        let fab = Fabric::new(2, net);
        let t0 = Instant::now();
        fab.send_boxed(0, 1, 0, Box::new(1u8), 1);
        let _ = fab.mailboxes[1].take(0, 0);
        assert!(
            t0.elapsed() >= Duration::from_millis(28),
            "elapsed {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn delay_formula() {
        let net = NetConfig {
            alpha: Duration::from_nanos(1000),
            beta_ns_per_byte: 2.0,
        };
        assert_eq!(net.delay_for(500), Duration::from_nanos(2000));
        assert!(NetConfig::instant().is_instant());
        assert!(!NetConfig::aries_per_rank().is_instant());
    }

    #[test]
    fn recv_on_times_out_with_typed_error() {
        let fab = Fabric::new(2, NetConfig::instant());
        let deadline = Instant::now() + Duration::from_millis(10);
        let err = fab.recv_on(1, 0, 7, Some(deadline)).unwrap_err();
        assert!(
            matches!(
                err,
                CommError::Timeout {
                    source: 0,
                    tag: 7,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn recv_on_reports_dead_peer_even_mid_wait() {
        let fab = std::sync::Arc::new(Fabric::new(2, NetConfig::instant()));
        let fab2 = fab.clone();
        let h = std::thread::spawn(move || fab2.recv_on(1, 0, 0, None));
        std::thread::sleep(Duration::from_millis(10));
        fab.kill(0);
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err, CommError::PeerDead { peer: 0 });
    }

    #[test]
    fn recv_on_delivers_queued_message_from_dead_peer() {
        // A message already on the wire when the sender dies still arrives.
        let fab = Fabric::new(2, NetConfig::instant());
        fab.send_boxed(0, 1, 3, Box::new(5u8), 1);
        fab.kill(0);
        let env = fab.recv_on(1, 0, 3, None).unwrap();
        assert_eq!(*env.payload.downcast::<u8>().unwrap(), 5);
    }

    #[test]
    fn in_transit_past_deadline_is_late_not_lost() {
        let net = NetConfig {
            alpha: Duration::from_millis(50),
            beta_ns_per_byte: 0.0,
        };
        let fab = Fabric::new(2, net);
        fab.send_boxed(0, 1, 0, Box::new(9u8), 1);
        let err = fab
            .recv_on(1, 0, 0, Some(Instant::now() + Duration::from_millis(5)))
            .unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }));
        // Without a deadline the same message is delivered intact.
        let env = fab.recv_on(1, 0, 0, None).unwrap();
        assert_eq!(*env.payload.downcast::<u8>().unwrap(), 9);
    }

    #[test]
    fn transit_wait_is_accounted_per_thread() {
        let net = NetConfig {
            alpha: Duration::from_millis(20),
            beta_ns_per_byte: 0.0,
        };
        let fab = std::sync::Arc::new(Fabric::new(2, net));
        fab.send_boxed(0, 1, 0, Box::new(1u8), 1);
        let fab2 = fab.clone();
        let waited_in_thread = std::thread::spawn(move || {
            let before = thread_transit_wait_nanos();
            fab2.recv_on(1, 0, 0, None).unwrap();
            thread_transit_wait_nanos() - before
        })
        .join()
        .unwrap();
        assert!(
            waited_in_thread >= 10_000_000,
            "waited {waited_in_thread}ns"
        );
    }

    #[test]
    fn plan_drop_suppresses_delivery() {
        let plan = FaultPlan::seeded(1).drop_one_in(1); // drop everything
        let fab = Fabric::with_faults(2, NetConfig::instant(), Some(plan));
        fab.send_boxed(0, 1, 0, Box::new(vec![1u32]), 4);
        let err = fab
            .recv_on(1, 0, 0, Some(Instant::now() + Duration::from_millis(10)))
            .unwrap_err();
        assert!(matches!(err, CommError::Timeout { .. }));
    }

    #[test]
    fn plan_duplicate_delivers_twice() {
        let plan = FaultPlan::seeded(1).duplicate_one_in(1);
        let fab = Fabric::with_faults(2, NetConfig::instant(), Some(plan));
        fab.send_boxed(0, 1, 0, Box::new(vec![7u32]), 4);
        for _ in 0..2 {
            let env = fab.recv_on(1, 0, 0, None).unwrap();
            assert_eq!(*env.payload.downcast::<Vec<u32>>().unwrap(), vec![7]);
        }
    }

    #[test]
    fn plan_corrupt_flips_payload() {
        let plan = FaultPlan::seeded(1).corrupt_one_in(1);
        let fab = Fabric::with_faults(2, NetConfig::instant(), Some(plan));
        fab.send_boxed(0, 1, 0, Box::new(vec![0u32; 4]), 16);
        let env = fab.recv_on(1, 0, 0, None).unwrap();
        let got = env.payload.downcast::<Vec<u32>>().unwrap();
        let flipped: u32 = got.iter().map(|w| w.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped: {got:?}");
    }

    #[test]
    fn kill_after_n_sends_completes_the_nth() {
        let plan = FaultPlan::seeded(1).kill_endpoint_after(0, 2);
        let fab = Fabric::with_faults(2, NetConfig::instant(), Some(plan));
        fab.send_boxed(0, 1, 0, Box::new(1u8), 1);
        fab.send_boxed(0, 1, 0, Box::new(2u8), 1); // completes, then kills 0
        fab.send_boxed(0, 1, 0, Box::new(3u8), 1); // from a corpse: dropped
        assert_eq!(
            *fab.recv_on(1, 0, 0, None)
                .unwrap()
                .payload
                .downcast::<u8>()
                .unwrap(),
            1
        );
        assert_eq!(
            *fab.recv_on(1, 0, 0, None)
                .unwrap()
                .payload
                .downcast::<u8>()
                .unwrap(),
            2
        );
        assert!(fab.is_dead(0));
        let err = fab
            .recv_on(1, 0, 0, Some(Instant::now() + Duration::from_millis(5)))
            .unwrap_err();
        assert_eq!(err, CommError::PeerDead { peer: 0 });
    }

    #[test]
    fn disconnect_window_is_transient_and_typed() {
        // Endpoint 0's second and third sends fall into a disconnect
        // window: they vanish, waiters see the retryable `Disconnected`,
        // and the fourth send heals the link.
        let plan = FaultPlan::seeded(1).disconnect_endpoint_after(0, 1, 2);
        let fab = Fabric::with_faults(2, NetConfig::instant(), Some(plan));
        fab.send_boxed(0, 1, 0, Box::new(1u8), 1);
        assert_eq!(
            *fab.recv_on(1, 0, 0, None)
                .unwrap()
                .payload
                .downcast::<u8>()
                .unwrap(),
            1
        );
        fab.send_boxed(0, 1, 0, Box::new(2u8), 1); // dropped, suspect on
        assert!(fab.is_suspect(0));
        let err = fab
            .recv_on(1, 0, 0, Some(Instant::now() + Duration::from_millis(5)))
            .unwrap_err();
        assert_eq!(err, CommError::Disconnected { peer: 0 });
        assert!(err.is_retryable());
        fab.send_boxed(0, 1, 0, Box::new(3u8), 1); // dropped (in window)
        fab.send_boxed(0, 1, 0, Box::new(4u8), 1); // heals + delivers
        assert!(!fab.is_suspect(0));
        assert!(!fab.is_dead(0), "a disconnect is not a death");
        assert_eq!(
            *fab.recv_on(1, 0, 0, None)
                .unwrap()
                .payload
                .downcast::<u8>()
                .unwrap(),
            4
        );
    }

    #[test]
    fn dead_on_arrival_endpoint_never_speaks() {
        let plan = FaultPlan::seeded(1).kill_endpoint_after(0, 0);
        let fab = Fabric::with_faults(2, NetConfig::instant(), Some(plan));
        assert!(fab.is_dead(0));
        fab.send_boxed(0, 1, 0, Box::new(1u8), 1);
        let err = fab.recv_on(1, 0, 0, None).unwrap_err();
        assert_eq!(err, CommError::PeerDead { peer: 0 });
    }

    #[test]
    fn fabric_transport_rtt_floor() {
        let fab = Fabric::new(2, NetConfig::instant());
        let t: &dyn Transport = &fab;
        assert!(t.rtt_estimate() >= Duration::from_micros(50));
        assert_eq!(t.name(), "mem");
        assert_eq!(t.endpoints(), 2);
        let slow = Fabric::new(
            2,
            NetConfig {
                alpha: Duration::from_millis(10),
                beta_ns_per_byte: 0.0,
            },
        );
        assert_eq!(
            Transport::rtt_estimate(&slow),
            Duration::from_millis(20),
            "modeled α dominates the floor"
        );
    }
}
