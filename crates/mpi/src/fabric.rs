//! The message fabric: per-rank mailboxes with MPI-style `(source, tag)`
//! matching and an optional transit-delay model.
//!
//! Senders deposit messages directly into the destination mailbox and
//! continue (an eager/RDMA-like model); receivers block on a condition
//! variable until a matching message exists. Each message carries an
//! `available_at` timestamp computed from the α–β delay model, so a
//! receiver that arrives early sleeps out the remaining transit time —
//! that is what gives communication a real cost that pipelining (Fig. 6)
//! can hide.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Lock ignoring poisoning: the fabric must stay usable when a sibling
/// rank's thread panics mid-send (failure-injection tests rely on this,
/// and it matches the `parking_lot` semantics this module started with).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Transit-cost model: `delay = alpha + beta_ns_per_byte × bytes`.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    pub alpha: Duration,
    pub beta_ns_per_byte: f64,
}

impl NetConfig {
    /// Zero-cost fabric (unit tests, functional runs).
    pub fn instant() -> Self {
        NetConfig {
            alpha: Duration::ZERO,
            beta_ns_per_byte: 0.0,
        }
    }

    /// A per-rank share of a saturated Aries NIC at full PPN, matching the
    /// paper's Fig. 6 setting: 0.347 GB/s/rank and a ~1.4 µs small-message
    /// latency.
    pub fn aries_per_rank() -> Self {
        NetConfig {
            alpha: Duration::from_nanos(1_400),
            // 0.347 GB/s  →  1 / 0.347 ≈ 2.88 ns per byte.
            beta_ns_per_byte: 1.0 / 0.347,
        }
    }

    pub fn delay_for(&self, bytes: usize) -> Duration {
        self.alpha + Duration::from_nanos((self.beta_ns_per_byte * bytes as f64) as u64)
    }

    pub fn is_instant(&self) -> bool {
        self.alpha.is_zero() && self.beta_ns_per_byte == 0.0
    }
}

pub(crate) struct Envelope {
    pub payload: Box<dyn Any + Send>,
    pub available_at: Instant,
}

#[derive(Default)]
struct MailboxState {
    // (source, tag) → FIFO of envelopes: MPI's non-overtaking rule per
    // matched pair.
    queues: HashMap<(usize, u64), VecDeque<Envelope>>,
}

impl MailboxState {
    fn pop_match(&mut self, source: usize, tag: u64) -> Option<Envelope> {
        self.queues.get_mut(&(source, tag))?.pop_front()
    }
}

/// One rank's inbound mailbox: MPMC with `(source, tag)` matching.
#[derive(Default)]
pub(crate) struct Mailbox {
    state: Mutex<MailboxState>,
    signal: Condvar,
}

impl Mailbox {
    pub fn deposit(&self, source: usize, tag: u64, env: Envelope) {
        let mut st = lock_unpoisoned(&self.state);
        st.queues.entry((source, tag)).or_default().push_back(env);
        self.signal.notify_all();
    }

    /// Block until a message matching `(source, tag)` is present, then take
    /// it, sleeping out any remaining modeled transit time.
    ///
    /// Arrival is polled with a bounded spin (yielding the core each miss)
    /// before parking on the condition variable: `parking_lot` spun
    /// adaptively before sleeping, and the pipelined allreduce path counts
    /// on that fast wake for back-to-back block handoffs — parking
    /// immediately adds a futex round-trip to every block and erases the
    /// overlap win on small blocks.
    pub fn take(&self, source: usize, tag: u64) -> Envelope {
        let mut early = None;
        for _ in 0..128 {
            if let Some(env) = lock_unpoisoned(&self.state).pop_match(source, tag) {
                early = Some(env);
                break;
            }
            std::thread::yield_now();
        }
        if early.is_some() {
            hear_telemetry::incr(hear_telemetry::Metric::MailboxSpinHits);
        }
        let env = early.unwrap_or_else(|| {
            hear_telemetry::incr(hear_telemetry::Metric::MailboxParks);
            let mut st = lock_unpoisoned(&self.state);
            loop {
                if let Some(env) = st.pop_match(source, tag) {
                    break env;
                }
                st = self.signal.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        });
        let now = Instant::now();
        if env.available_at > now {
            std::thread::sleep(env.available_at - now);
        }
        env
    }

    /// Non-blocking probe.
    #[cfg(test)]
    pub fn try_take(&self, source: usize, tag: u64) -> Option<Envelope> {
        let env = {
            let mut st = lock_unpoisoned(&self.state);
            st.queues.get_mut(&(source, tag))?.pop_front()?
        };
        let now = Instant::now();
        if env.available_at > now {
            std::thread::sleep(env.available_at - now);
        }
        Some(env)
    }
}

/// The shared fabric: one mailbox per endpoint (ranks first, then any
/// in-network switch nodes) and the delay model.
///
/// Bandwidth is serialized per directed link: a message starts its transit
/// only after the previous message on the same `(from, to)` link has fully
/// left the wire, so concurrent sends share the link's finite rate instead
/// of overlapping for free. (Latency α still pipelines across links.)
pub(crate) struct Fabric {
    pub mailboxes: Vec<Mailbox>,
    pub net: NetConfig,
    link_busy_until: Mutex<HashMap<(usize, usize), Instant>>,
}

impl Fabric {
    pub fn new(endpoints: usize, net: NetConfig) -> Self {
        Fabric {
            mailboxes: (0..endpoints).map(|_| Mailbox::default()).collect(),
            net,
            link_busy_until: Mutex::new(HashMap::new()),
        }
    }

    pub fn send_boxed(
        &self,
        from: usize,
        to: usize,
        tag: u64,
        payload: Box<dyn Any + Send>,
        bytes: usize,
    ) {
        hear_telemetry::incr(hear_telemetry::Metric::FabricMsgs);
        hear_telemetry::add(hear_telemetry::Metric::FabricBytes, bytes as u64);
        hear_telemetry::observe(hear_telemetry::Hist::FabricMsgBytes, bytes as u64);
        let now = Instant::now();
        let available_at = if self.net.is_instant() {
            now
        } else {
            let serialization =
                Duration::from_nanos((self.net.beta_ns_per_byte * bytes as f64) as u64);
            let mut links = lock_unpoisoned(&self.link_busy_until);
            let busy = links.entry((from, to)).or_insert(now);
            let start = (*busy).max(now);
            let done = start + serialization;
            *busy = done;
            done + self.net.alpha
        };
        self.mailboxes[to].deposit(
            from,
            tag,
            Envelope {
                payload,
                available_at,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deposit_take_roundtrip() {
        let mb = Mailbox::default();
        mb.deposit(
            3,
            7,
            Envelope {
                payload: Box::new(vec![1u32, 2]),
                available_at: Instant::now(),
            },
        );
        let env = mb.take(3, 7);
        let v = env.payload.downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![1, 2]);
    }

    #[test]
    fn tag_matching_is_selective() {
        let mb = Mailbox::default();
        let now = Instant::now();
        mb.deposit(
            0,
            1,
            Envelope {
                payload: Box::new(10u8),
                available_at: now,
            },
        );
        mb.deposit(
            0,
            2,
            Envelope {
                payload: Box::new(20u8),
                available_at: now,
            },
        );
        assert!(mb.try_take(0, 3).is_none());
        assert_eq!(*mb.take(0, 2).payload.downcast::<u8>().unwrap(), 20);
        assert_eq!(*mb.take(0, 1).payload.downcast::<u8>().unwrap(), 10);
    }

    #[test]
    fn fifo_per_matched_pair() {
        let mb = Mailbox::default();
        let now = Instant::now();
        for i in 0..5u8 {
            mb.deposit(
                1,
                9,
                Envelope {
                    payload: Box::new(i),
                    available_at: now,
                },
            );
        }
        for i in 0..5u8 {
            assert_eq!(*mb.take(1, 9).payload.downcast::<u8>().unwrap(), i);
        }
    }

    #[test]
    fn blocking_take_wakes_on_deposit() {
        let mb = std::sync::Arc::new(Mailbox::default());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || *mb2.take(0, 0).payload.downcast::<u64>().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        mb.deposit(
            0,
            0,
            Envelope {
                payload: Box::new(42u64),
                available_at: Instant::now(),
            },
        );
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn delay_model_enforced_on_take() {
        let net = NetConfig {
            alpha: Duration::from_millis(30),
            beta_ns_per_byte: 0.0,
        };
        let fab = Fabric::new(2, net);
        let t0 = Instant::now();
        fab.send_boxed(0, 1, 0, Box::new(1u8), 1);
        let _ = fab.mailboxes[1].take(0, 0);
        assert!(
            t0.elapsed() >= Duration::from_millis(28),
            "elapsed {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn delay_formula() {
        let net = NetConfig {
            alpha: Duration::from_nanos(1000),
            beta_ns_per_byte: 2.0,
        };
        assert_eq!(net.delay_for(500), Duration::from_nanos(2000));
        assert!(NetConfig::instant().is_instant());
        assert!(!NetConfig::aries_per_rank().is_instant());
    }
}
