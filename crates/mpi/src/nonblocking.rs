//! Nonblocking collectives (`MPI_Iallreduce` and friends).
//!
//! The paper's libhear overlaps encryption/decryption of neighbouring
//! pipeline blocks with the in-flight reduction of the current block
//! (paper §6, "Communication"). This module supplies the primitive that
//! makes the overlap possible: a posted collective returns a [`Request`]
//! immediately and progresses on a helper thread, while the caller keeps
//! the CPU for crypto work.
//!
//! The collective tag block is allocated at *post* time, in program order,
//! so blocking and nonblocking collectives can be freely interleaved as
//! long as every rank posts them in the same order — the usual MPI rule.

use crate::comm::Communicator;
use crate::error::CommError;
use std::thread::JoinHandle;
use std::time::Instant;

/// Handle to an in-flight collective. Dropping a request without waiting
/// detaches the progress thread (the operation still completes).
pub struct Request<R: Send + 'static> {
    handle: JoinHandle<R>,
}

impl<R: Send + 'static> Request<R> {
    /// Block until the operation completes and return its result.
    pub fn wait(self) -> R {
        self.handle
            .join()
            .expect("collective progress thread panicked")
    }

    /// True when the result is ready (wait will not block).
    pub fn test(&self) -> bool {
        self.handle.is_finished()
    }
}

impl Communicator {
    /// Nonblocking recursive-doubling allreduce.
    pub fn iallreduce<T, F>(&self, data: Vec<T>, op: F) -> Request<Vec<T>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + 'static,
    {
        let tag = self.next_coll_tag();
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                comm.allreduce_owned_tagged(tag, data, op)
            }),
        }
    }

    /// Nonblocking ring allreduce (bandwidth-optimal; the variant libhear
    /// pipelines large messages over).
    pub fn iallreduce_ring<T, F>(&self, data: Vec<T>, op: F) -> Request<Vec<T>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + 'static,
    {
        let tag = self.next_coll_tag();
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                comm.allreduce_ring_owned_tagged(tag, data, op)
            }),
        }
    }

    /// Nonblocking switch-tree allreduce — the INC counterpart of
    /// [`Communicator::iallreduce_ring`], letting the HEAR engine pipeline
    /// blocks over the switch just like over the ring.
    pub fn iallreduce_inc<T, F>(&self, data: Vec<T>, op: F) -> Request<Vec<T>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        let tag = self.next_coll_tag();
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                comm.allreduce_inc_tagged(tag, data, op)
            }),
        }
    }

    /// Fallible nonblocking recursive-doubling allreduce on a caller-
    /// reserved tag: the progress thread's waits are bounded by `deadline`
    /// and failures come back typed through `wait()` instead of poisoning
    /// the join. The engine's retry loop posts these.
    pub fn try_iallreduce_tagged<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<T>, CommError>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + 'static,
    {
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                comm.try_allreduce_owned_tagged(tag, data, op, deadline)
            }),
        }
    }

    /// Fallible nonblocking ring allreduce on a caller-reserved tag.
    pub fn try_iallreduce_ring_tagged<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<T>, CommError>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + 'static,
    {
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                let mut seg = Vec::new();
                comm.try_allreduce_ring_owned_tagged_with_seg(tag, data, op, &mut seg, deadline)
            }),
        }
    }

    /// Fallible nonblocking hierarchical allreduce on a caller-reserved
    /// tag block (`tag..tag+2`): intra-group reduce, inter-leader ring,
    /// intra-group broadcast. See
    /// [`Communicator::allreduce_hier`](crate::comm::Communicator) for the
    /// topology.
    pub fn try_iallreduce_hier_tagged<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        group: usize,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<T>, CommError>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + 'static,
    {
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                let mut seg = Vec::new();
                comm.try_allreduce_hier_owned_tagged_with_seg(
                    tag, data, op, group, &mut seg, deadline,
                )
            }),
        }
    }

    /// Fallible nonblocking ring reduce-scatter on a caller-reserved tag:
    /// the result is this rank's fully reduced chunk (MPI layout).
    pub fn try_ireduce_scatter_tagged<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<T>, CommError>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + 'static,
    {
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                let mut seg = Vec::new();
                comm.try_reduce_scatter_tagged_with_seg(tag, data, op, &mut seg, deadline)
            }),
        }
    }

    /// Fallible nonblocking ring allgather on a caller-reserved tag.
    pub fn try_iallgather_tagged<T>(
        &self,
        tag: u64,
        mine: Vec<T>,
        counts: Vec<usize>,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<T>, CommError>>
    where
        T: Clone + Default + Send + 'static,
    {
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                let mut seg = Vec::new();
                comm.try_allgather_tagged_with_seg(tag, mine, &counts, &mut seg, deadline)
            }),
        }
    }

    /// Fallible nonblocking personalized all-to-all on a caller-reserved
    /// tag.
    pub fn try_ialltoall_tagged<T>(
        &self,
        tag: u64,
        chunks: Vec<Vec<T>>,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<Vec<T>>, CommError>>
    where
        T: Clone + Send + 'static,
    {
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                comm.try_alltoall_tagged(tag, chunks, deadline)
            }),
        }
    }

    /// Fallible nonblocking switch-tree allreduce on a caller-reserved tag.
    pub fn try_iallreduce_inc_tagged<T, F>(
        &self,
        tag: u64,
        data: Vec<T>,
        op: F,
        deadline: Option<Instant>,
    ) -> Request<Result<Vec<T>, CommError>>
    where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        let comm = self.clone();
        let tele = hear_telemetry::spawn_context();
        Request {
            handle: std::thread::spawn(move || {
                let _tele = tele.map(|(reg, rank)| reg.install(rank));
                comm.try_allreduce_inc_tagged(tag, data, op, deadline)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::simulator::Simulator;
    use std::time::Duration;

    #[test]
    fn iallreduce_matches_blocking() {
        let results = Simulator::new(4).run(|comm| {
            let data: Vec<u64> = (0..16).map(|j| comm.rank() as u64 + j).collect();
            let req = comm.iallreduce(data.clone(), |a: &u64, b: &u64| a + b);
            let blocking = comm.allreduce(&data, |a, b| a + b);
            let nb = req.wait();
            (nb, blocking)
        });
        for (nb, blocking) in &results {
            assert_eq!(nb, blocking);
        }
    }

    #[test]
    fn multiple_inflight_requests_complete_in_any_order() {
        let results = Simulator::new(3).run(|comm| {
            let r1 = comm.iallreduce(vec![1u32], |a, b| a + b);
            let r2 = comm.iallreduce(vec![10u32], |a, b| a + b);
            let r3 = comm.iallreduce_ring(vec![100u32; 7], |a, b| a + b);
            // Wait out of order.
            let v3 = r3.wait();
            let v1 = r1.wait();
            let v2 = r2.wait();
            (v1[0], v2[0], v3[0])
        });
        for r in &results {
            assert_eq!(*r, (3, 30, 300));
        }
    }

    #[test]
    fn overlap_with_compute() {
        // Post, compute, then wait: the collective must have progressed in
        // the background (checked via test()).
        let results = Simulator::new(2).run(|comm| {
            let req = comm.iallreduce(vec![comm.rank() as u64], |a, b| a + b);
            std::thread::sleep(Duration::from_millis(50));
            let ready_before_wait = req.test();
            (req.wait()[0], ready_before_wait)
        });
        for (sum, ready) in &results {
            assert_eq!(*sum, 1);
            assert!(
                ready,
                "request should have completed during the overlap window"
            );
        }
    }

    #[test]
    fn iallreduce_inc_matches_blocking_inc() {
        use crate::simulator::SimConfig;
        let results = Simulator::with_config(4, SimConfig::default().with_switch(4)).run(|comm| {
            let data: Vec<u64> = (0..9).map(|j| comm.rank() as u64 * 10 + j).collect();
            let req = comm.iallreduce_inc(data.clone(), |a: &u64, b: &u64| a + b);
            let blocking = comm.allreduce_inc(&data, |a: &u64, b: &u64| a + b);
            (req.wait(), blocking)
        });
        for (nb, blocking) in &results {
            assert_eq!(nb, blocking);
        }
    }

    #[test]
    fn interleaved_blocking_and_nonblocking() {
        let results = Simulator::new(2).run(|comm| {
            let r1 = comm.iallreduce(vec![1u8], |a, b| a + b);
            let b1 = comm.allreduce(&[2u8], |a, b| a + b);
            let r2 = comm.iallreduce(vec![3u8], |a, b| a + b);
            (r1.wait()[0], b1[0], r2.wait()[0])
        });
        for r in &results {
            assert_eq!(*r, (2, 4, 6));
        }
    }
}
