//! # hear-mpi — a thread-backed MPI-like runtime with in-network compute
//!
//! The paper evaluates libhear on Cray MPICH over the Aries interconnect;
//! offline, this crate provides the message-passing substrate: a
//! [`Simulator`] spawns one thread per rank, each holding a
//! [`Communicator`] with MPI-style point-to-point messaging (source + tag
//! matching, non-overtaking), the classical collectives (binomial
//! broadcast/reduce, recursive-doubling and ring allreduce, allgather,
//! alltoall, scatter/gather, barrier), nonblocking requests, and — the
//! part that motivates HEAR — an in-network switch aggregation tree
//! ([`inc`]) whose nodes hold **no key material** and fold only opaque
//! (encrypted) vectors.
//!
//! An α–β transit-delay model ([`NetConfig`]) gives communication a real
//! cost so overlap experiments (paper Fig. 6) measure something.
//!
//! ```
//! use hear_mpi::Simulator;
//! let sums = Simulator::new(4).run(|comm| {
//!     comm.allreduce(&[comm.rank() as u64 + 1], |a, b| a + b)
//! });
//! assert!(sums.iter().all(|v| v[0] == 10));
//! ```

mod collectives;
mod comm;
mod error;
mod fabric;
mod fault;
pub mod inc;
pub mod launch;
mod nonblocking;
mod simulator;
pub mod tcp;
mod transport;

pub use collectives::ring_chunk_bounds;
pub use comm::{Communicator, ATTEMPT_TAG_STRIDE, COLL_BLOCK_TAG_STRIDE, MAX_TAG_ATTEMPTS};
pub use error::CommError;
pub use fabric::{thread_transit_wait_nanos, NetConfig};
pub use fault::{Cloner, Corruptor, FaultPlan};
pub use inc::SwitchTopology;
pub use launch::Launcher;
pub use nonblocking::Request;
pub use simulator::{SimConfig, Simulator, TransportKind};
pub use tcp::TcpTransport;
pub use transport::{Envelope, Transport};
