//! The communicator: rank identity, typed point-to-point messaging and the
//! collective tag discipline.

use crate::error::CommError;
use crate::inc::SwitchTopology;
use crate::transport::{Envelope, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tag space partitioning: user tags live below 2^32; collective-internal
/// tags carry the collective sequence number above that boundary so
/// overlapping collectives (blocking + nonblocking) can never match each
/// other's wires. Bits 48+ carry the communicator context id so split
/// communicators sharing endpoints can never match each other's traffic.
pub(crate) const COLL_TAG_BASE: u64 = 1 << 32;
pub(crate) const CONTEXT_SHIFT: u32 = 48;

/// Tag distance between consecutive collective sequence numbers: each
/// collective owns a block of 256 tags.
pub const COLL_BLOCK_TAG_STRIDE: u64 = 1 << 8;

/// Tag distance between successive *attempts* of the same logical
/// collective: a retry re-runs the schedule on fresh tags so stale wires
/// from the failed attempt can never be matched. Each attempt slot still
/// leaves `tag + 1` free for the INC multicast leg.
pub const ATTEMPT_TAG_STRIDE: u64 = 8;

/// Attempts per collective block: `MAX_TAG_ATTEMPTS × ATTEMPT_TAG_STRIDE`
/// must stay below [`COLL_BLOCK_TAG_STRIDE`].
pub const MAX_TAG_ATTEMPTS: u64 = COLL_BLOCK_TAG_STRIDE / ATTEMPT_TAG_STRIDE;

/// A handle to one rank of a simulated communicator. Cheap to clone; clones
/// share the rank's mailbox and collective sequence (a clone is what a
/// nonblocking request's progress thread holds).
pub struct Communicator {
    rank: usize,
    world: usize,
    pub(crate) transport: Arc<dyn Transport>,
    pub(crate) coll_seq: Arc<AtomicU64>,
    switch: Option<Arc<SwitchTopology>>,
    /// Communicator context id, mixed into every tag (MPI's context_id).
    context: u64,
    /// Global endpoint of each member; `None` = the world communicator
    /// (identity mapping).
    members: Option<Arc<Vec<usize>>>,
}

impl Clone for Communicator {
    fn clone(&self) -> Self {
        Communicator {
            rank: self.rank,
            world: self.world,
            transport: self.transport.clone(),
            coll_seq: self.coll_seq.clone(),
            switch: self.switch.clone(),
            context: self.context,
            members: self.members.clone(),
        }
    }
}

impl Communicator {
    pub(crate) fn new(rank: usize, world: usize, transport: Arc<dyn Transport>) -> Self {
        Communicator {
            rank,
            world,
            transport,
            coll_seq: Arc::new(AtomicU64::new(0)),
            switch: None,
            context: 0,
            members: None,
        }
    }

    /// Global fabric endpoint of a (virtual) rank of this communicator.
    #[inline]
    fn endpoint(&self, rank: usize) -> usize {
        match &self.members {
            None => rank,
            Some(m) => m[rank],
        }
    }

    #[inline]
    fn tag_with_context(&self, tag: u64) -> u64 {
        tag | (self.context << CONTEXT_SHIFT)
    }

    /// Split this communicator MPI_Comm_split-style: ranks with the same
    /// `color` form a new communicator, ordered by `(key, old rank)`.
    /// Collective over the parent communicator. The child has a fresh
    /// collective sequence, its own context id (so its traffic can never
    /// match the parent's), and no INC switch.
    pub fn split(&self, color: u64, key: i64) -> Communicator {
        // Gather every member's (color, key, old_rank).
        let triples = self.allgather(vec![(color, key, self.rank)]);
        let mut mine: Vec<(i64, usize)> = triples
            .iter()
            .map(|v| v[0])
            .filter(|(c, _, _)| *c == color)
            .map(|(_, k, r)| (k, r))
            .collect();
        mine.sort_unstable();
        let members: Vec<usize> = mine.iter().map(|(_, r)| self.endpoint(*r)).collect();
        let new_rank = mine
            .iter()
            .position(|(_, r)| *r == self.rank)
            .expect("caller is a member of its own color group");
        // Context id: derived deterministically from the parent context,
        // the split's program position, and the color — identical on every
        // member, distinct across groups and successive splits. 16 bits.
        let seq = self.coll_seq.load(Ordering::Relaxed);
        let mut ctx = self
            .context
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(seq)
            .wrapping_mul(0x85eb_ca6b)
            .wrapping_add(color);
        ctx = (ctx ^ (ctx >> 13)) & 0xffff;
        Communicator {
            rank: new_rank,
            world: members.len(),
            transport: self.transport.clone(),
            coll_seq: Arc::new(AtomicU64::new(0)),
            switch: None,
            context: ctx.max(1), // 0 is reserved for the world communicator
            members: Some(Arc::new(members)),
        }
    }

    /// Shrink this communicator to a survivor subset after a membership
    /// agreement round. **Non-collective**: unlike [`Communicator::split`]
    /// this exchanges no messages — every survivor must call it with the
    /// *same* `survivors` list (ascending ranks of this communicator, dead
    /// members excluded), which the agreement protocol guarantees. The
    /// child keeps the parent's transport but gets a fresh collective
    /// sequence and a context id derived deterministically from the
    /// parent's context, its sequence position, and the survivor set — so
    /// post-shrink traffic can never match stale wires of the pre-shrink
    /// ring, and successive shrinks stay distinct.
    pub fn shrink(&self, survivors: &[usize]) -> Communicator {
        assert!(!survivors.is_empty(), "survivor set cannot be empty");
        assert!(
            survivors.windows(2).all(|w| w[0] < w[1]),
            "survivor set must be strictly ascending"
        );
        let new_rank = survivors
            .iter()
            .position(|&r| r == self.rank)
            .expect("caller must be in the survivor set");
        let members: Vec<usize> = survivors.iter().map(|&r| self.endpoint(r)).collect();
        let mask: u64 = survivors.iter().fold(0, |m, &r| m | (1u64 << (r % 64)));
        let seq = self.coll_seq.load(Ordering::Relaxed);
        let mut ctx = self
            .context
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(seq)
            .wrapping_mul(0x85eb_ca6b)
            .wrapping_add(mask);
        ctx = (ctx ^ (ctx >> 13)) & 0xffff;
        Communicator {
            rank: new_rank,
            world: members.len(),
            transport: self.transport.clone(),
            coll_seq: Arc::new(AtomicU64::new(0)),
            switch: None,
            context: ctx.max(1), // 0 is reserved for the world communicator
            members: Some(Arc::new(members)),
        }
    }

    /// Whether the transport has declared `rank`'s endpoint dead (fault
    /// plan kill, heartbeat miss budget exhausted, connection loss). Local
    /// view only — no message exchange.
    pub fn is_peer_dead(&self, rank: usize) -> bool {
        self.transport.is_dead(self.endpoint(rank))
    }

    /// Checked send on an explicit full wire tag (collective tag space
    /// allowed) — the membership-agreement plumbing sends its suspicion
    /// masks on tags reserved via [`Communicator::reserve_coll_tags`].
    pub fn try_send_tagged<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        data: Vec<T>,
    ) -> Result<(), CommError> {
        self.try_send_internal(dst, tag, data)
    }

    /// Deadline-bounded receive on an explicit full wire tag (collective
    /// tag space allowed) — the receive half of the agreement plumbing.
    pub fn try_recv_tagged<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError> {
        self.try_recv_internal(src, tag, deadline)
    }

    pub(crate) fn set_switch(&mut self, topo: Option<Arc<SwitchTopology>>) {
        self.switch = topo;
    }

    /// The in-network switch topology, when the simulator enabled one.
    pub fn switch_topology(&self) -> Option<Arc<SwitchTopology>> {
        self.switch.clone()
    }

    /// Launch the per-collective switch service tasks (one thread per
    /// switch node). Exactly one rank does the spawning so each collective
    /// gets one service; rank 0 is the deterministic choice. The deadline
    /// bounds each node's waits so a broken tree sheds its service
    /// threads instead of leaking them; a service that errors out simply
    /// exits (the ranks below see the failure on their own receives).
    pub(crate) fn spawn_switch_service<T, F>(
        &self,
        topo: &Arc<SwitchTopology>,
        tag: u64,
        op: F,
        deadline: Option<std::time::Instant>,
    ) where
        T: Clone + Send + 'static,
        F: Fn(&T, &T) -> T + Send + Sync + Clone + 'static,
    {
        if self.rank != 0 {
            return;
        }
        for node in 0..topo.nodes {
            let transport = self.transport.clone();
            let topo = topo.clone();
            let op = op.clone();
            let tele = hear_telemetry::spawn_context();
            std::thread::spawn(move || {
                // Switch nodes are infrastructure, not ranks: record into
                // the spawning rank's registry but under a rankless lane.
                let _tele = tele.map(|(reg, _)| reg.install(None));
                let _ = crate::inc::switch_node_service::<T, F>(
                    &transport, &topo, node, tag, &op, deadline,
                );
            });
        }
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn world(&self) -> usize {
        self.world
    }

    /// The transport's estimate of one small-message round trip: modeled
    /// for the in-memory fabric, measured during connection establishment
    /// for TCP. Deadline budgets (engine retries, the chaos suite) should
    /// scale from this instead of assuming in-process delivery latency.
    pub fn transport_rtt(&self) -> Duration {
        self.transport.rtt_estimate()
    }

    /// Short name of the transport backend carrying this communicator's
    /// traffic (`"mem"` or `"tcp"`).
    pub fn transport_name(&self) -> &'static str {
        self.transport.name()
    }

    /// Allocate the tag block for the next collective operation. All ranks
    /// call collectives in the same program order, so the per-rank counters
    /// stay aligned without any coordination.
    pub(crate) fn next_coll_tag(&self) -> u64 {
        self.reserve_coll_tags(1)
    }

    /// Reserve `n` consecutive collective tag blocks in one step and
    /// return the first. The engine reserves a whole epoch's blocks up
    /// front so per-block retries (which advance tags *within* a block's
    /// attempt slots) can never desynchronise the shared sequence across
    /// ranks that observe different failures.
    pub fn reserve_coll_tags(&self, n: u64) -> u64 {
        hear_telemetry::add(hear_telemetry::Metric::Collectives, n);
        COLL_TAG_BASE + (self.coll_seq.fetch_add(n, Ordering::Relaxed) << 8)
    }

    /// Send a typed vector to `dst` with a user tag (must be < 2^32).
    pub fn send<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^32");
        self.send_internal(dst, tag, data);
    }

    pub(crate) fn send_internal<T: Send + 'static>(&self, dst: usize, tag: u64, data: Vec<T>) {
        assert!(dst < self.world, "destination out of range");
        let bytes = std::mem::size_of::<T>() * data.len();
        let _s = hear_telemetry::span!("send", bytes = bytes, dst = dst, tag = tag);
        self.transport.send_boxed(
            self.endpoint(self.rank),
            self.endpoint(dst),
            self.tag_with_context(tag),
            Box::new(data),
            bytes,
        );
    }

    /// Like [`Communicator::send`] but reports a dead destination (or a
    /// dead caller) as [`CommError::PeerDead`] instead of silently
    /// dropping the message on the fabric floor.
    pub fn send_checked<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        data: Vec<T>,
    ) -> Result<(), CommError> {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^32");
        self.try_send_internal(dst, tag, data)
    }

    pub(crate) fn try_send_internal<T: Send + 'static>(
        &self,
        dst: usize,
        tag: u64,
        data: Vec<T>,
    ) -> Result<(), CommError> {
        if self.transport.is_dead(self.endpoint(dst)) {
            return Err(CommError::PeerDead { peer: dst });
        }
        if self.transport.is_dead(self.endpoint(self.rank)) {
            return Err(CommError::PeerDead { peer: self.rank });
        }
        self.send_internal(dst, tag, data);
        Ok(())
    }

    /// Downcast a received envelope, turning a tag collision into a
    /// diagnosable [`CommError::TypeMismatch`] instead of a panic.
    fn open_payload<T: Send + 'static>(
        env: Envelope,
        src: usize,
        tag: u64,
    ) -> Result<Vec<T>, CommError> {
        env.payload
            .downcast::<Vec<T>>()
            .map(|b| *b)
            .map_err(|_| CommError::TypeMismatch {
                source: src,
                tag,
                expected: std::any::type_name::<Vec<T>>(),
            })
    }

    /// Blocking typed receive matching `(src, tag)`.
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^32");
        self.recv_internal(src, tag)
    }

    /// Deadline-bounded typed receive: returns [`CommError::Timeout`]
    /// when nothing matching `(src, tag)` arrives within `timeout`, and
    /// [`CommError::PeerDead`] if `src` dies while we wait.
    pub fn recv_timeout<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<T>, CommError> {
        assert!(tag < COLL_TAG_BASE, "user tags must be below 2^32");
        self.try_recv_internal(src, tag, Some(Instant::now() + timeout))
    }

    pub(crate) fn recv_internal<T: Send + 'static>(&self, src: usize, tag: u64) -> Vec<T> {
        self.try_recv_internal(src, tag, None)
            .unwrap_or_else(|e| panic!("recv from rank {src} tag {tag:#x} failed: {e}"))
    }

    pub(crate) fn try_recv_internal<T: Send + 'static>(
        &self,
        src: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError> {
        let _s = hear_telemetry::span!("recv", src = src, tag = tag);
        let env = self.transport.recv_on(
            self.endpoint(self.rank),
            self.endpoint(src),
            self.tag_with_context(tag),
            deadline,
        )?;
        Self::open_payload(env, src, tag)
    }

    /// Combined send+recv (deadlock-free pairwise exchange).
    pub fn sendrecv<T: Send + 'static>(
        &self,
        dst: usize,
        send_tag: u64,
        data: Vec<T>,
        src: usize,
        recv_tag: u64,
    ) -> Vec<T> {
        self.send(dst, send_tag, data);
        self.recv(src, recv_tag)
    }

    pub(crate) fn sendrecv_internal<T: Send + 'static>(
        &self,
        dst: usize,
        send_tag: u64,
        data: Vec<T>,
        src: usize,
        recv_tag: u64,
    ) -> Vec<T> {
        self.send_internal(dst, send_tag, data);
        self.recv_internal(src, recv_tag)
    }

    pub(crate) fn try_sendrecv_internal<T: Send + 'static>(
        &self,
        dst: usize,
        send_tag: u64,
        data: Vec<T>,
        src: usize,
        recv_tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<T>, CommError> {
        self.try_send_internal(dst, send_tag, data)?;
        self.try_recv_internal(src, recv_tag, deadline)
    }
}

#[cfg(test)]
mod tests {
    use crate::simulator::Simulator;

    #[test]
    fn p2p_ping_pong() {
        let results = Simulator::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1u64, 2, 3]);
                comm.recv::<u64>(1, 6)
            } else {
                let v = comm.recv::<u64>(0, 5);
                let doubled: Vec<u64> = v.iter().map(|x| x * 2).collect();
                comm.send(0, 6, doubled.clone());
                doubled
            }
        });
        assert_eq!(results[0], vec![2, 4, 6]);
        assert_eq!(results[1], vec![2, 4, 6]);
    }

    #[test]
    fn messages_with_same_tag_keep_order() {
        let results = Simulator::new(2).run(|comm| {
            if comm.rank() == 0 {
                for i in 0..10u32 {
                    comm.send(1, 1, vec![i]);
                }
                vec![]
            } else {
                (0..10).map(|_| comm.recv::<u32>(0, 1)[0]).collect()
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn different_tags_do_not_interfere() {
        let results = Simulator::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 2, vec![20u8]);
                comm.send(1, 1, vec![10u8]);
                0
            } else {
                // Receive in the opposite order of sending.
                let a = comm.recv::<u8>(0, 1)[0];
                let b = comm.recv::<u8>(0, 2)[0];
                (a as u32) * 100 + b as u32
            }
        });
        assert_eq!(results[1], 1020);
    }

    #[test]
    #[should_panic(expected = "below 2^32")]
    fn oversized_user_tag_rejected() {
        Simulator::new(1).run(|comm| {
            comm.send(0, 1 << 33, vec![0u8]);
        });
    }

    #[test]
    fn tag_collision_is_a_typed_mismatch_not_a_panic() {
        use std::time::Duration;
        let results = Simulator::new(2).run(|comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, vec![1u64]);
                String::new()
            } else {
                comm.recv_timeout::<u32>(0, 5, Duration::from_secs(1))
                    .expect_err("u64 payload must not downcast to u32")
                    .to_string()
            }
        });
        assert!(
            results[1].contains("Vec<u32>") && results[1].contains("source=0"),
            "{}",
            results[1]
        );
    }

    #[test]
    fn recv_timeout_expires_with_typed_error() {
        use crate::error::CommError;
        use std::time::Duration;
        let results = Simulator::new(2).run(|comm| {
            if comm.rank() == 1 {
                comm.recv_timeout::<u8>(0, 9, Duration::from_millis(20))
                    .err()
            } else {
                None
            }
        });
        assert!(matches!(results[1], Some(CommError::Timeout { .. })));
    }

    #[test]
    fn sendrecv_exchanges_between_pair() {
        let results = Simulator::new(2).run(|comm| {
            let partner = 1 - comm.rank();
            comm.sendrecv(partner, 3, vec![comm.rank() as u32], partner, 3)
        });
        assert_eq!(results[0], vec![1]);
        assert_eq!(results[1], vec![0]);
    }
}

#[cfg(test)]
mod split_tests {
    use crate::simulator::Simulator;

    #[test]
    fn split_by_parity() {
        let results = Simulator::new(6).run(|comm| {
            let sub = comm.split(comm.rank() as u64 % 2, comm.rank() as i64);
            // Each subgroup sums its own ranks' contributions.
            let sum = sub.allreduce(&[comm.rank() as u64], |a, b| a + b)[0];
            (sub.rank(), sub.world(), sum)
        });
        // Evens: 0+2+4 = 6; odds: 1+3+5 = 9.
        for (r, (sub_rank, sub_world, sum)) in results.iter().enumerate() {
            assert_eq!(*sub_world, 3);
            assert_eq!(*sub_rank, r / 2);
            assert_eq!(*sum, if r % 2 == 0 { 6 } else { 9 });
        }
    }

    #[test]
    fn split_key_reorders_ranks() {
        let results = Simulator::new(4).run(|comm| {
            // One group, ranks ordered in reverse.
            let sub = comm.split(0, -(comm.rank() as i64));
            sub.rank()
        });
        assert_eq!(results, vec![3, 2, 1, 0]);
    }

    #[test]
    fn parent_and_child_traffic_do_not_cross() {
        let results = Simulator::new(4).run(|comm| {
            let sub = comm.split(comm.rank() as u64 / 2, 0);
            // Interleave parent and child collectives with identical
            // payload shapes: context ids must keep them separate.
            let a = sub.allreduce(&[1u32], |a, b| a + b)[0];
            let b = comm.allreduce(&[10u32], |a, b| a + b)[0];
            let c = sub.allreduce(&[100u32], |a, b| a + b)[0];
            (a, b, c)
        });
        for r in &results {
            assert_eq!(*r, (2, 40, 200));
        }
    }

    #[test]
    fn nested_splits() {
        let results = Simulator::new(8).run(|comm| {
            let half = comm.split(comm.rank() as u64 / 4, 0); // two groups of 4
            let quarter = half.split(half.rank() as u64 / 2, 0); // pairs
            let s = quarter.allreduce(&[comm.rank() as u32], |a, b| a + b)[0];
            (quarter.world(), s)
        });
        // Pairs: (0,1)=1, (2,3)=5, (4,5)=9, (6,7)=13.
        for (r, (w, s)) in results.iter().enumerate() {
            assert_eq!(*w, 2);
            let pair_base = (r / 2) * 2;
            assert_eq!(*s as usize, pair_base * 2 + 1);
        }
    }

    #[test]
    fn shrink_remaps_ranks_and_collectives_work() {
        let results = Simulator::new(4).run(|comm| {
            if comm.rank() == 2 {
                // The "dead" rank stays out of the shrunk communicator.
                return (usize::MAX, usize::MAX, 0);
            }
            let sub = comm.shrink(&[0, 1, 3]);
            let sum = sub.allreduce(&[comm.rank() as u64], |a, b| a + b)[0];
            (sub.rank(), sub.world(), sum)
        });
        assert_eq!((results[0].0, results[0].1), (0, 3));
        assert_eq!((results[1].0, results[1].1), (1, 3));
        assert_eq!((results[3].0, results[3].1), (2, 3));
        for r in [0, 1, 3] {
            // Survivor contributions: ranks 0 + 1 + 3.
            assert_eq!(results[r].2, 4);
        }
    }

    #[test]
    fn shrink_traffic_does_not_cross_parent() {
        let results = Simulator::new(3).run(|comm| {
            if comm.rank() == 1 {
                return 0;
            }
            let sub = comm.shrink(&[0, 2]);
            // Identical payload shape on parent-compatible tags: the fresh
            // context must keep the shrunk ring's wires separate.
            sub.allreduce(&[comm.rank() as u32 + 1], |a, b| a + b)[0]
        });
        assert_eq!(results[0], 4);
        assert_eq!(results[2], 4);
    }

    #[test]
    #[should_panic(expected = "survivor set")]
    fn shrink_rejects_non_member_caller() {
        Simulator::new(2).run(|comm| {
            if comm.rank() == 1 {
                comm.shrink(&[0]);
            }
        });
    }

    #[test]
    fn p2p_within_split_uses_virtual_ranks() {
        let results = Simulator::new(4).run(|comm| {
            let sub = comm.split(comm.rank() as u64 % 2, 0);
            if sub.rank() == 0 {
                sub.send(1, 5, vec![comm.rank() as u32]);
                0
            } else {
                sub.recv::<u32>(0, 5)[0]
            }
        });
        // Global rank 2 (evens' sub-rank 1) hears from global 0; global 3
        // from global 1.
        assert_eq!(results[2], 0);
        assert_eq!(results[3], 1);
    }
}
