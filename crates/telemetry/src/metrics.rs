//! Metric identifiers and storage cells.
//!
//! All metrics are enum-indexed into fixed atomic arrays owned by a
//! [`Registry`](crate::Registry), so recording a counter is one
//! `fetch_add(Relaxed)` with no hashing, no allocation and no locks.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters on the allreduce critical path.
///
/// Prometheus identity is `prom_name()` plus an optional fixed label
/// (`label()`); several variants share one Prometheus family and are
/// distinguished by label (e.g. the per-backend PRF block counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// 16-byte PRF blocks evaluated by the software AES backend.
    PrfBlocksAesSoft = 0,
    /// 16-byte PRF blocks evaluated by the AES-NI backend.
    PrfBlocksAesNi,
    /// 16-byte PRF blocks evaluated by the software SHA-1 backend.
    PrfBlocksSha1,
    /// 16-byte PRF blocks evaluated by the SHA-NI backend.
    PrfBlocksSha1Ni,
    /// Keystream bytes expanded into caller buffers (`keystream_*`).
    KeystreamBytes,
    /// Collective-key progressions `kc <- F_kp(kc)` (`CommKeys::advance`).
    KeyAdvances,
    /// Collective operations posted (one per `next_coll_tag`).
    Collectives,
    /// Messages handed to the fabric (`Fabric::send_boxed`).
    FabricMsgs,
    /// Payload bytes handed to the fabric.
    FabricBytes,
    /// Mailbox receives satisfied inside the spin window (fast path).
    MailboxSpinHits,
    /// Mailbox receives that had to park on the condvar (slow path).
    MailboxParks,
    /// Pipeline blocks posted by the pipelined allreduce drivers.
    PipelineBlocks,
    /// HoMAC verifications that passed.
    HomacVerifyPass,
    /// HoMAC verifications that failed.
    HomacVerifyFail,
    /// Pool `take()` calls served from the free list.
    PoolTakeReuse,
    /// Pool `take()` calls that had to allocate a fresh buffer.
    PoolTakeFresh,
    /// Pool `put()` calls (buffers returned to the free list).
    PoolPuts,
    /// Keystream requests served from the prefetch cache.
    PrefetchHits,
    /// Keystream requests that missed the prefetch cache (cold, stale
    /// epoch, or uncovered range) and fell back to inline generation.
    PrefetchMisses,
    /// Payload bytes masked/unmasked through the fused kernels, software
    /// AES backend.
    MaskedBytesAesSoft,
    /// Payload bytes masked/unmasked through the fused kernels, AES-NI.
    MaskedBytesAesNi,
    /// Payload bytes masked/unmasked through the fused kernels, SHA-1.
    MaskedBytesSha1,
    /// Payload bytes masked/unmasked through the fused kernels, SHA-NI.
    MaskedBytesSha1Ni,
    /// Block-level retries attempted by the engine's `RetryPolicy`.
    RetriesTotal,
    /// Messages dropped by the fault-injection plan.
    FaultDrop,
    /// Messages delayed by the fault-injection plan.
    FaultDelay,
    /// Messages duplicated by the fault-injection plan.
    FaultDuplicate,
    /// Messages bit-flipped by the fault-injection plan.
    FaultCorrupt,
    /// Endpoints killed by a fault-plan trigger.
    FaultKill,
    /// Engine calls that degraded from the INC switch tree to a
    /// host-based algorithm after `SwitchDown`.
    DegradedEpochs,
    /// Nanoseconds spent sleeping out modeled message transit time.
    TransitWaitNanos,
    /// Heartbeat probes emitted by the transport supervision loop.
    HeartbeatsTotal,
    /// Transient transport faults healed by reconnect/retry (a send that
    /// succeeded after at least one failed delivery attempt, or a
    /// suspect window that closed without an eviction).
    ReconnectsTotal,
    /// Epochs run over a shrunk membership (counted once at each shrink
    /// plus once per collective entered while the world stays shrunk, so
    /// a permanently small job keeps showing up in rate queries).
    MembershipEpochs,
    /// Ranks evicted from the membership by shrink-and-continue.
    RanksEvicted,
    /// Transient disconnect windows injected by the fault plan.
    FaultDisconnect,
}

impl Metric {
    pub const ALL: [Metric; 36] = [
        Metric::PrfBlocksAesSoft,
        Metric::PrfBlocksAesNi,
        Metric::PrfBlocksSha1,
        Metric::PrfBlocksSha1Ni,
        Metric::KeystreamBytes,
        Metric::KeyAdvances,
        Metric::Collectives,
        Metric::FabricMsgs,
        Metric::FabricBytes,
        Metric::MailboxSpinHits,
        Metric::MailboxParks,
        Metric::PipelineBlocks,
        Metric::HomacVerifyPass,
        Metric::HomacVerifyFail,
        Metric::PoolTakeReuse,
        Metric::PoolTakeFresh,
        Metric::PoolPuts,
        Metric::PrefetchHits,
        Metric::PrefetchMisses,
        Metric::MaskedBytesAesSoft,
        Metric::MaskedBytesAesNi,
        Metric::MaskedBytesSha1,
        Metric::MaskedBytesSha1Ni,
        Metric::RetriesTotal,
        Metric::FaultDrop,
        Metric::FaultDelay,
        Metric::FaultDuplicate,
        Metric::FaultCorrupt,
        Metric::FaultKill,
        Metric::DegradedEpochs,
        Metric::TransitWaitNanos,
        Metric::HeartbeatsTotal,
        Metric::ReconnectsTotal,
        Metric::MembershipEpochs,
        Metric::RanksEvicted,
        Metric::FaultDisconnect,
    ];
    pub const COUNT: usize = Self::ALL.len();

    /// Prometheus metric family name.
    pub fn prom_name(self) -> &'static str {
        match self {
            Metric::PrfBlocksAesSoft
            | Metric::PrfBlocksAesNi
            | Metric::PrfBlocksSha1
            | Metric::PrfBlocksSha1Ni => "hear_prf_blocks_total",
            Metric::KeystreamBytes => "hear_prf_keystream_bytes_total",
            Metric::KeyAdvances => "hear_key_advances_total",
            Metric::Collectives => "hear_collectives_total",
            Metric::FabricMsgs => "hear_fabric_messages_total",
            Metric::FabricBytes => "hear_fabric_bytes_total",
            Metric::MailboxSpinHits | Metric::MailboxParks => "hear_mailbox_waits_total",
            Metric::PipelineBlocks => "hear_pipeline_blocks_total",
            Metric::HomacVerifyPass | Metric::HomacVerifyFail => "hear_homac_verifications_total",
            Metric::PoolTakeReuse | Metric::PoolTakeFresh => "hear_pool_takes_total",
            Metric::PoolPuts => "hear_pool_puts_total",
            Metric::PrefetchHits | Metric::PrefetchMisses => "hear_prefetch_total",
            Metric::MaskedBytesAesSoft
            | Metric::MaskedBytesAesNi
            | Metric::MaskedBytesSha1
            | Metric::MaskedBytesSha1Ni => "hear_masked_bytes_total",
            Metric::RetriesTotal => "hear_retries_total",
            Metric::FaultDrop
            | Metric::FaultDelay
            | Metric::FaultDuplicate
            | Metric::FaultCorrupt
            | Metric::FaultKill
            | Metric::FaultDisconnect => "hear_faults_injected_total",
            Metric::DegradedEpochs => "hear_degraded_epochs_total",
            Metric::TransitWaitNanos => "hear_transit_wait_nanos_total",
            Metric::HeartbeatsTotal => "hear_heartbeats_total",
            Metric::ReconnectsTotal => "hear_reconnects_total",
            Metric::MembershipEpochs => "hear_membership_epochs_total",
            Metric::RanksEvicted => "hear_ranks_evicted_total",
        }
    }

    /// Fixed `key="value"` label distinguishing variants that share a
    /// Prometheus family, if any.
    pub fn label(self) -> Option<(&'static str, &'static str)> {
        match self {
            Metric::PrfBlocksAesSoft => Some(("backend", "aes_soft")),
            Metric::PrfBlocksAesNi => Some(("backend", "aes_ni")),
            Metric::PrfBlocksSha1 => Some(("backend", "sha1")),
            Metric::PrfBlocksSha1Ni => Some(("backend", "sha1_ni")),
            Metric::MailboxSpinHits => Some(("path", "spin")),
            Metric::MailboxParks => Some(("path", "park")),
            Metric::HomacVerifyPass => Some(("result", "pass")),
            Metric::HomacVerifyFail => Some(("result", "fail")),
            Metric::PoolTakeReuse => Some(("source", "reuse")),
            Metric::PoolTakeFresh => Some(("source", "fresh")),
            Metric::PrefetchHits => Some(("result", "hit")),
            Metric::PrefetchMisses => Some(("result", "miss")),
            Metric::MaskedBytesAesSoft => Some(("backend", "aes_soft")),
            Metric::MaskedBytesAesNi => Some(("backend", "aes_ni")),
            Metric::MaskedBytesSha1 => Some(("backend", "sha1")),
            Metric::MaskedBytesSha1Ni => Some(("backend", "sha1_ni")),
            Metric::FaultDrop => Some(("kind", "drop")),
            Metric::FaultDelay => Some(("kind", "delay")),
            Metric::FaultDuplicate => Some(("kind", "duplicate")),
            Metric::FaultCorrupt => Some(("kind", "corrupt")),
            Metric::FaultKill => Some(("kind", "kill")),
            Metric::FaultDisconnect => Some(("kind", "disconnect")),
            _ => None,
        }
    }

    /// Unique textual key (`family` or `family{label="value"}`) used by the
    /// JSON snapshot and the Prometheus dump.
    pub fn key(self) -> String {
        match self.label() {
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.prom_name(), k, v),
            None => self.prom_name().to_string(),
        }
    }
}

/// Instantaneous (up/down) gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Pipeline blocks currently posted but not yet completed.
    PipelineInFlight = 0,
    /// Buffers currently sitting in the memory pool's free list.
    PoolAvailable,
}

impl Gauge {
    pub const ALL: [Gauge; 2] = [Gauge::PipelineInFlight, Gauge::PoolAvailable];
    pub const COUNT: usize = Self::ALL.len();

    pub fn prom_name(self) -> &'static str {
        match self {
            Gauge::PipelineInFlight => "hear_pipeline_blocks_in_flight",
            Gauge::PoolAvailable => "hear_pool_blocks_available",
        }
    }
}

/// Histograms (power-of-two buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Per-message payload size handed to the fabric, in bytes.
    FabricMsgBytes = 0,
}

impl Hist {
    pub const ALL: [Hist; 1] = [Hist::FabricMsgBytes];
    pub const COUNT: usize = Self::ALL.len();
    /// Number of finite buckets; values `>= 2^(BUCKETS-1)` land in `+Inf`.
    pub const BUCKETS: usize = 32;

    pub fn prom_name(self) -> &'static str {
        match self {
            Hist::FabricMsgBytes => "hear_fabric_message_bytes",
        }
    }
}

/// Lock-free histogram cell: bucket `i` counts observations `v` with
/// `v <= 2^i` (bucket 0 additionally holds `v == 0`), plus running sum
/// and count for the Prometheus `_sum`/`_count` series.
pub struct HistCell {
    pub(crate) buckets: [AtomicU64; Hist::BUCKETS],
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl HistCell {
    pub(crate) const fn new() -> Self {
        HistCell {
            buckets: [const { AtomicU64::new(0) }; Hist::BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Index of the smallest power-of-two bucket holding `v`.
    pub fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            let idx = (64 - (v - 1).leading_zeros()) as usize;
            idx.min(Hist::BUCKETS - 1)
        }
    }

    pub(crate) fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }

    pub(crate) fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    pub(crate) fn totals(&self) -> (u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_keys_are_unique() {
        let mut keys: Vec<String> = Metric::ALL.iter().map(|m| m.key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), Metric::COUNT, "metric keys must be unique");
    }

    #[test]
    fn bucket_index_is_monotone_pow2() {
        assert_eq!(HistCell::bucket_index(0), 0);
        assert_eq!(HistCell::bucket_index(1), 0);
        assert_eq!(HistCell::bucket_index(2), 1);
        assert_eq!(HistCell::bucket_index(3), 2);
        assert_eq!(HistCell::bucket_index(4), 2);
        assert_eq!(HistCell::bucket_index(5), 3);
        assert_eq!(HistCell::bucket_index(1 << 20), 20);
        assert_eq!(HistCell::bucket_index(u64::MAX), Hist::BUCKETS - 1);
    }

    #[test]
    fn histogram_cell_accumulates() {
        let h = HistCell::new();
        h.observe(0);
        h.observe(16);
        h.observe(17);
        let (count, sum) = h.totals();
        assert_eq!(count, 3);
        assert_eq!(sum, 33);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(4), 1); // 16 -> le 2^4
        assert_eq!(h.bucket(5), 1); // 17 -> le 2^5
    }
}
