//! In-repo parsers for the exporter formats — used by CI's schema
//! validation (`trace_validate`) and by tests, so the repo can check its
//! own emissions without a JSON dependency.

use std::collections::BTreeMap;
use std::fmt;

/// Minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: msg.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| ParseError {
            offset: start,
            message: "invalid utf8 in number".into(),
        })?;
        s.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number '{s}'"),
        })
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| ParseError {
                                    offset: self.pos,
                                    message: "invalid \\u escape".into(),
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| ParseError {
                                offset: self.pos,
                                message: "invalid \\u escape".into(),
                            })?;
                            // Surrogate pairs are not needed for our own
                            // emissions; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| ParseError {
                            offset: self.pos,
                            message: "invalid utf8 in string".into(),
                        })?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a complete JSON document.
pub fn parse_json(input: &str) -> Result<Json, ParseError> {
    let mut p = JsonParser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after JSON value");
    }
    Ok(v)
}

/// One event from a chrome-trace file, schema-checked.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    pub name: String,
    pub ph: String,
    pub pid: u64,
    pub tid: u64,
    /// Microseconds; 0 for metadata events.
    pub ts: f64,
    /// Microseconds; 0 for metadata events.
    pub dur: f64,
    pub args: BTreeMap<String, Json>,
}

/// Parse and schema-validate a chrome-trace JSON document as emitted by
/// [`crate::export::chrome_trace`] (and accepted by Perfetto): a top-level
/// object with a `traceEvents` array whose entries carry `name`/`ph`/
/// `pid`/`tid`, and `ts`+`dur` for `ph == "X"` complete events.
pub fn parse_chrome_trace(input: &str) -> Result<Vec<ChromeEvent>, ParseError> {
    let doc = parse_json(input)?;
    let schema_err = |msg: &str| ParseError {
        offset: 0,
        message: msg.to_string(),
    };
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .ok_or_else(|| schema_err("top-level object must have a traceEvents array"))?;
    let mut out = Vec::with_capacity(events.len());
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| schema_err(&format!("event {i}: missing string 'name'")))?;
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| schema_err(&format!("event {i}: missing string 'ph'")))?;
        let pid = ev
            .get("pid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| schema_err(&format!("event {i}: missing numeric 'pid'")))?;
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| schema_err(&format!("event {i}: missing numeric 'tid'")))?;
        let (ts, dur) = if ph == "X" {
            let ts = ev
                .get("ts")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| schema_err(&format!("event {i}: X event missing 'ts'")))?;
            let dur = ev
                .get("dur")
                .and_then(|v| v.as_f64())
                .ok_or_else(|| schema_err(&format!("event {i}: X event missing 'dur'")))?;
            if ts < 0.0 || dur < 0.0 {
                return Err(schema_err(&format!("event {i}: negative ts/dur")));
            }
            (ts, dur)
        } else {
            (0.0, 0.0)
        };
        let args = match ev.get("args") {
            Some(Json::Obj(m)) => m.clone(),
            None => BTreeMap::new(),
            Some(_) => return Err(schema_err(&format!("event {i}: 'args' must be an object"))),
        };
        out.push(ChromeEvent {
            name: name.to_string(),
            ph: ph.to_string(),
            pid: pid as u64,
            tid: tid as u64,
            ts,
            dur,
            args,
        });
    }
    Ok(out)
}

/// One sample from a Prometheus text dump.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl PromSample {
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse a Prometheus text-exposition dump as emitted by
/// [`crate::export::prometheus`]. Validates `# TYPE` comment syntax,
/// metric-name charset and `name{labels} value` sample lines.
pub fn parse_prometheus(input: &str) -> Result<Vec<PromSample>, ParseError> {
    let mut out = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let err = |msg: String| ParseError {
            offset: lineno,
            message: format!("line {}: {msg}", lineno + 1),
        };
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(ty) = rest.strip_prefix("TYPE ") {
                let mut parts = ty.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name)
                    || !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    )
                {
                    return Err(err(format!("malformed TYPE comment: '{line}'")));
                }
            }
            continue; // HELP and other comments pass through
        }
        // Sample line: name[{k="v",...}] value
        let (ident, value_str) = match line.find(|c: char| c.is_whitespace()) {
            Some(i) if !line[..i].contains('{') => (&line[..i], line[i..].trim()),
            _ => match line.rfind('}') {
                Some(close) => (&line[..=close], line[close + 1..].trim()),
                None => match line.find(|c: char| c.is_whitespace()) {
                    Some(i) => (&line[..i], line[i..].trim()),
                    None => return Err(err(format!("sample line without value: '{line}'"))),
                },
            },
        };
        let (name, labels) = match ident.find('{') {
            None => (ident.to_string(), Vec::new()),
            Some(open) => {
                let name = &ident[..open];
                let body = ident[open..]
                    .strip_prefix('{')
                    .and_then(|s| s.strip_suffix('}'))
                    .ok_or_else(|| err(format!("malformed label set in '{ident}'")))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| err(format!("malformed label pair '{pair}'")))?;
                    let v = v
                        .strip_prefix('"')
                        .and_then(|s| s.strip_suffix('"'))
                        .ok_or_else(|| err(format!("label value must be quoted: '{pair}'")))?;
                    labels.push((k.to_string(), v.to_string()));
                }
                (name.to_string(), labels)
            }
        };
        if !valid_metric_name(&name) {
            return Err(err(format!("invalid metric name '{name}'")));
        }
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            s => s
                .parse::<f64>()
                .map_err(|_| err(format!("invalid sample value '{s}'")))?,
        };
        out.push(PromSample {
            name,
            labels,
            value,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_nesting_and_escapes() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\"y\n"},"d":true,"e":null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\"y\n")
        );
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn chrome_parser_enforces_schema() {
        let ok = r#"{"traceEvents":[{"name":"e","ph":"X","pid":1,"tid":0,"ts":1.5,"dur":2.0,"args":{"n":4}}]}"#;
        let evs = parse_chrome_trace(ok).unwrap();
        assert_eq!(evs[0].name, "e");
        assert_eq!(evs[0].args.get("n").unwrap().as_f64(), Some(4.0));

        let missing_dur = r#"{"traceEvents":[{"name":"e","ph":"X","pid":1,"tid":0,"ts":1.5}]}"#;
        assert!(parse_chrome_trace(missing_dur).is_err());
        assert!(parse_chrome_trace(r#"{"events":[]}"#).is_err());
    }

    #[test]
    fn prometheus_parser_reads_labels_and_types() {
        let text = "# TYPE hear_prf_blocks_total counter\n\
                    hear_prf_blocks_total{backend=\"aes_ni\"} 42\n\
                    # TYPE g gauge\n\
                    g -3\n\
                    h_bucket{le=\"+Inf\"} 7\n";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].label("backend"), Some("aes_ni"));
        assert_eq!(samples[0].value, 42.0);
        assert_eq!(samples[1].value, -3.0);
        assert_eq!(samples[2].label("le"), Some("+Inf"));
    }

    #[test]
    fn prometheus_parser_rejects_malformed() {
        assert!(parse_prometheus("# TYPE bad kind\nx 1\n").is_err());
        assert!(parse_prometheus("3name 1\n").is_err());
        assert!(parse_prometheus("name{k=unquoted} 1\n").is_err());
        assert!(parse_prometheus("name notanumber\n").is_err());
    }
}
