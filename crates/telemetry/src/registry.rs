//! The metric/span registry and the per-thread recording context.
//!
//! A [`Registry`] owns enum-indexed atomic counter/gauge/histogram arrays
//! plus a list of *lanes* — per-thread span ring buffers, each tagged with
//! the MPI rank that produced it. There is one process-wide
//! [`Registry::global()`] (enabled at first use iff `HEAR_TRACE` is set),
//! and tests or `measure_phases` can create private registries for
//! isolated, exact-count measurements.
//!
//! Recording goes through a thread-local context stack: `install(rank)`
//! pushes a (registry, lane) pair for the current thread and returns a
//! guard that pops it. Worker threads spawned by the simulator, the
//! nonblocking progress engine and the switch service re-install the
//! parent's context via [`spawn_context`] so spans land in the lane of the
//! logical rank, not of some anonymous OS thread.
//!
//! The disabled fast path is a single branch on the relaxed atomic
//! [`active()`]: when no registry in the process is enabled, `span!` and
//! every counter helper return before touching any thread-local state.

use crate::metrics::{Gauge, Hist, HistCell, Metric};
use crate::span::SpanEvent;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Count of currently-enabled registries in the process. The record fast
/// path is `load(Relaxed) != 0`; with tracing off this is the *only* work
/// the instrumentation does.
static ACTIVE_REGISTRIES: AtomicUsize = AtomicUsize::new(0);

/// True iff at least one registry in the process is enabled. This is the
/// branch the disabled record path reduces to.
#[inline]
pub fn active() -> bool {
    ACTIVE_REGISTRIES.load(Ordering::Relaxed) != 0
}

/// Mutex locking that shrugs off poisoning — a panicking rank thread must
/// not wedge telemetry for the surviving ranks (same policy as hear-mpi).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default per-lane span ring capacity (overridable via `HEAR_TRACE_BUF`).
const DEFAULT_RING_CAP: usize = 1 << 16;

pub(crate) struct LaneBuf {
    ring: VecDeque<SpanEvent>,
    cap: usize,
    dropped: u64,
}

/// One span ring buffer, owned by (at most) one recording thread at a time
/// and tagged with the rank it represents (`None` for untracked threads,
/// e.g. the main thread or the switch service).
pub(crate) struct Lane {
    pub(crate) rank: Option<usize>,
    buf: Mutex<LaneBuf>,
}

impl Lane {
    fn new(rank: Option<usize>, cap: usize) -> Self {
        Lane {
            rank,
            buf: Mutex::new(LaneBuf {
                ring: VecDeque::new(),
                cap,
                dropped: 0,
            }),
        }
    }

    /// Push an event, evicting the oldest when the ring is full. The lock
    /// is normally uncontended (one writer thread per lane; readers only
    /// at export time), so this is cheap.
    pub(crate) fn push(&self, ev: SpanEvent) {
        let mut b = lock_unpoisoned(&self.buf);
        if b.ring.len() >= b.cap {
            b.ring.pop_front();
            b.dropped += 1;
        }
        b.ring.push_back(ev);
    }
}

pub(crate) struct Inner {
    enabled: AtomicBool,
    epoch: Instant,
    ring_cap: usize,
    lanes: Mutex<Vec<Arc<Lane>>>,
    counters: [AtomicU64; Metric::COUNT],
    gauges: [AtomicI64; Gauge::COUNT],
    hists: [HistCell; Hist::COUNT],
}

impl Drop for Inner {
    fn drop(&mut self) {
        if *self.enabled.get_mut() {
            ACTIVE_REGISTRIES.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Handle to a span/metric store. Cloning is cheap (`Arc`); clones share
/// the same store.
#[derive(Clone)]
pub struct Registry {
    pub(crate) inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    fn new_with(enabled: bool, ring_cap: usize) -> Registry {
        if enabled {
            ACTIVE_REGISTRIES.fetch_add(1, Ordering::SeqCst);
        }
        Registry {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                ring_cap,
                lanes: Mutex::new(Vec::new()),
                counters: [const { AtomicU64::new(0) }; Metric::COUNT],
                gauges: [const { AtomicI64::new(0) }; Gauge::COUNT],
                hists: [const { HistCell::new() }; Hist::COUNT],
            }),
        }
    }

    /// A fresh, disabled registry.
    pub fn new() -> Registry {
        Registry::new_with(false, DEFAULT_RING_CAP)
    }

    /// A fresh, enabled registry — the usual choice for isolated
    /// measurements (private exact-count tests, `measure_phases`).
    pub fn new_enabled() -> Registry {
        Registry::new_with(true, DEFAULT_RING_CAP)
    }

    /// The process-wide registry. Enabled at first use iff `HEAR_TRACE`
    /// is set (to anything but `0`/empty); flip later with
    /// [`Registry::set_enabled`].
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cap = std::env::var("HEAR_TRACE_BUF")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(DEFAULT_RING_CAP);
            Registry::new_with(crate::env_enabled(), cap)
        })
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording into this registry, keeping the global
    /// fast-path count in sync.
    pub fn set_enabled(&self, on: bool) {
        let was = self.inner.enabled.swap(on, Ordering::SeqCst);
        if on && !was {
            ACTIVE_REGISTRIES.fetch_add(1, Ordering::SeqCst);
        } else if !on && was {
            ACTIVE_REGISTRIES.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Instant all span timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.inner.epoch
    }

    /// Make this registry the recording target for the current thread,
    /// writing spans into a fresh lane attributed to `rank`. Returns a
    /// guard; recording reverts to the previous target when it drops.
    /// Contexts nest (innermost wins), which is how `measure_phases`
    /// captures an isolated span stream even under global tracing.
    pub fn install(&self, rank: Option<usize>) -> CtxGuard {
        let lane = Arc::new(Lane::new(rank, self.inner.ring_cap));
        lock_unpoisoned(&self.inner.lanes).push(lane.clone());
        CTX.with(|c| {
            c.borrow_mut().push(ThreadCtx {
                inner: self.inner.clone(),
                lane,
                epoch: self.inner.epoch,
                depth: 0,
            })
        });
        CtxGuard {
            _not_send: PhantomData,
        }
    }

    pub fn counter(&self, m: Metric) -> u64 {
        self.inner.counters[m as usize].load(Ordering::Relaxed)
    }

    pub fn gauge(&self, g: Gauge) -> i64 {
        self.inner.gauges[g as usize].load(Ordering::Relaxed)
    }

    /// `(count, sum)` of a histogram.
    pub fn hist_totals(&self, h: Hist) -> (u64, u64) {
        self.inner.hists[h as usize].totals()
    }

    /// Count in finite bucket `i` (observations `<= 2^i`).
    pub fn hist_bucket(&self, h: Hist, i: usize) -> u64 {
        self.inner.hists[h as usize].bucket(i)
    }

    /// Span events dropped to ring-buffer eviction, across all lanes.
    pub fn dropped_events(&self) -> u64 {
        lock_unpoisoned(&self.inner.lanes)
            .iter()
            .map(|l| lock_unpoisoned(&l.buf).dropped)
            .sum()
    }

    /// All recorded span events, merged across lanes and sorted by start
    /// time. Non-destructive.
    pub fn span_events(&self) -> Vec<SpanEvent> {
        let lanes = lock_unpoisoned(&self.inner.lanes);
        let mut evs: Vec<SpanEvent> = lanes
            .iter()
            .flat_map(|l| {
                lock_unpoisoned(&l.buf)
                    .ring
                    .iter()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        evs.sort_by_key(|e| e.start_ns);
        evs
    }

    /// Remove and return all recorded span events (merged, sorted by start
    /// time). Lets long loops consume the stream incrementally instead of
    /// overflowing the rings.
    pub fn drain_span_events(&self) -> Vec<SpanEvent> {
        let lanes = lock_unpoisoned(&self.inner.lanes);
        let mut evs: Vec<SpanEvent> = Vec::new();
        for l in lanes.iter() {
            let mut b = lock_unpoisoned(&l.buf);
            evs.extend(b.ring.drain(..));
        }
        evs.sort_by_key(|e| e.start_ns);
        evs
    }

    /// Zero every counter/gauge/histogram and clear all span rings.
    pub fn reset(&self) {
        for c in &self.inner.counters {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.inner.gauges {
            g.store(0, Ordering::Relaxed);
        }
        for h in &self.inner.hists {
            h.reset();
        }
        for l in lock_unpoisoned(&self.inner.lanes).iter() {
            let mut b = lock_unpoisoned(&l.buf);
            b.ring.clear();
            b.dropped = 0;
        }
    }

    /// Ranks that own at least one lane (sorted, deduplicated).
    pub fn lane_ranks(&self) -> Vec<Option<usize>> {
        let mut ranks: Vec<Option<usize>> = lock_unpoisoned(&self.inner.lanes)
            .iter()
            .map(|l| l.rank)
            .collect();
        ranks.sort();
        ranks.dedup();
        ranks
    }
}

pub(crate) struct ThreadCtx {
    pub(crate) inner: Arc<Inner>,
    pub(crate) lane: Arc<Lane>,
    pub(crate) epoch: Instant,
    pub(crate) depth: u32,
}

thread_local! {
    pub(crate) static CTX: RefCell<Vec<ThreadCtx>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`Registry::install`]; pops the thread's recording
/// context when dropped. `!Send` — must drop on the installing thread.
pub struct CtxGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Run `f` against the store that should receive a counter/gauge/histogram
/// record from this thread, if any: the innermost installed context wins
/// (even over the global registry — that shadowing is what gives private
/// registries exact counts); otherwise the enabled global registry.
#[inline]
pub(crate) fn with_record_target<R>(f: impl FnOnce(&Inner) -> R) -> Option<R> {
    CTX.with(|c| {
        if let Some(top) = c.borrow().last() {
            if top.inner.enabled.load(Ordering::Relaxed) {
                return Some(f(&top.inner));
            }
            return None;
        }
        let g = Registry::global();
        if g.inner.enabled.load(Ordering::Relaxed) {
            Some(f(&g.inner))
        } else {
            None
        }
    })
}

/// Ensure the current thread has a recording context (auto-installing a
/// rankless lane on the global registry if needed) and run `f` on it.
/// Used by the span path, which needs a lane, not just counters.
pub(crate) fn with_span_ctx<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
    CTX.with(|c| {
        let mut stack = c.borrow_mut();
        if stack.is_empty() {
            let g = Registry::global();
            if !g.inner.enabled.load(Ordering::Relaxed) {
                return None;
            }
            // Base context for an untracked thread: lives for the whole
            // thread (never popped), lane rank None.
            let lane = Arc::new(Lane::new(None, g.inner.ring_cap));
            lock_unpoisoned(&g.inner.lanes).push(lane.clone());
            stack.push(ThreadCtx {
                inner: g.inner.clone(),
                lane,
                epoch: g.inner.epoch,
                depth: 0,
            });
        }
        let top = stack.last_mut().expect("just ensured non-empty");
        if !top.inner.enabled.load(Ordering::Relaxed) {
            return None;
        }
        Some(f(top))
    })
}

/// Decrement the span-depth counter if `lane` is still the thread's
/// current lane (guards against non-LIFO guard drops across contexts).
pub(crate) fn depth_dec(lane: &Arc<Lane>) {
    CTX.with(|c| {
        if let Some(top) = c.borrow_mut().last_mut() {
            if Arc::ptr_eq(&top.lane, lane) && top.depth > 0 {
                top.depth -= 1;
            }
        }
    });
}

/// Add `n` to counter `m` on the thread's record target. With tracing
/// disabled this is one relaxed load and a branch.
#[inline]
pub fn add(m: Metric, n: u64) {
    if !active() {
        return;
    }
    record_add(m, n);
}

fn record_add(m: Metric, n: u64) {
    with_record_target(|inn| {
        inn.counters[m as usize].fetch_add(n, Ordering::Relaxed);
    });
}

/// Increment counter `m` by one.
#[inline]
pub fn incr(m: Metric) {
    add(m, 1);
}

/// Move gauge `g` by `delta` (may be negative).
#[inline]
pub fn gauge_add(g: Gauge, delta: i64) {
    if !active() {
        return;
    }
    with_record_target(|inn| {
        inn.gauges[g as usize].fetch_add(delta, Ordering::Relaxed);
    });
}

/// Set gauge `g` to `v`.
#[inline]
pub fn gauge_set(g: Gauge, v: i64) {
    if !active() {
        return;
    }
    with_record_target(|inn| {
        inn.gauges[g as usize].store(v, Ordering::Relaxed);
    });
}

/// Record one observation `v` into histogram `h`.
#[inline]
pub fn observe(h: Hist, v: u64) {
    if !active() {
        return;
    }
    with_record_target(|inn| {
        inn.hists[h as usize].observe(v);
    });
}

/// The (registry, rank) a worker thread spawned from this thread should
/// inherit, or `None` when nothing is recording. Spawn sites capture this
/// before `thread::spawn` and `install` it inside the new thread so spans
/// stay attributed to the logical rank.
pub fn spawn_context() -> Option<(Registry, Option<usize>)> {
    CTX.with(|c| {
        if let Some(top) = c.borrow().last() {
            if top.inner.enabled.load(Ordering::Relaxed) {
                return Some((
                    Registry {
                        inner: top.inner.clone(),
                    },
                    top.lane.rank,
                ));
            }
            return None;
        }
        let g = Registry::global();
        if g.is_enabled() {
            Some((g.clone(), None))
        } else {
            None
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_toggles_active() {
        let before = active();
        let r = Registry::new();
        assert!(!r.is_enabled());
        r.set_enabled(true);
        assert!(active());
        r.set_enabled(false);
        assert_eq!(active(), before);
    }

    #[test]
    fn counters_record_only_under_installed_ctx() {
        let r = Registry::new_enabled();
        add(Metric::FabricMsgs, 5); // no ctx, global disabled -> dropped
        {
            let _g = r.install(Some(0));
            add(Metric::FabricMsgs, 2);
            incr(Metric::FabricMsgs);
        }
        add(Metric::FabricMsgs, 9); // ctx popped -> dropped again
        assert_eq!(r.counter(Metric::FabricMsgs), 3);
    }

    #[test]
    fn contexts_nest_and_shadow() {
        let outer = Registry::new_enabled();
        let inner = Registry::new_enabled();
        let _go = outer.install(Some(1));
        add(Metric::KeyAdvances, 1);
        {
            let _gi = inner.install(Some(1));
            add(Metric::KeyAdvances, 10);
        }
        add(Metric::KeyAdvances, 1);
        assert_eq!(outer.counter(Metric::KeyAdvances), 2);
        assert_eq!(inner.counter(Metric::KeyAdvances), 10);
    }

    #[test]
    fn gauges_and_histograms_record() {
        let r = Registry::new_enabled();
        let _g = r.install(None);
        gauge_add(Gauge::PipelineInFlight, 3);
        gauge_add(Gauge::PipelineInFlight, -1);
        gauge_set(Gauge::PoolAvailable, 7);
        observe(Hist::FabricMsgBytes, 256);
        observe(Hist::FabricMsgBytes, 300);
        assert_eq!(r.gauge(Gauge::PipelineInFlight), 2);
        assert_eq!(r.gauge(Gauge::PoolAvailable), 7);
        assert_eq!(r.hist_totals(Hist::FabricMsgBytes), (2, 556));
        assert_eq!(r.hist_bucket(Hist::FabricMsgBytes, 8), 1); // 256
        assert_eq!(r.hist_bucket(Hist::FabricMsgBytes, 9), 1); // 300
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new_enabled();
        {
            let _g = r.install(Some(0));
            add(Metric::FabricBytes, 123);
            let _s = crate::span!("x");
        }
        r.reset();
        assert_eq!(r.counter(Metric::FabricBytes), 0);
        assert!(r.span_events().is_empty());
    }

    #[test]
    fn spawn_context_carries_rank() {
        let r = Registry::new_enabled();
        let _g = r.install(Some(3));
        let (reg, rank) = spawn_context().expect("ctx installed");
        assert_eq!(rank, Some(3));
        let h = std::thread::spawn(move || {
            let _g = reg.install(rank);
            add(Metric::Collectives, 1);
        });
        h.join().unwrap();
        assert_eq!(r.counter(Metric::Collectives), 1);
    }
}
