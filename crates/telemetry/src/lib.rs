//! # hear-telemetry — zero-dependency tracing + metrics for the HEAR stack
//!
//! The paper's entire evaluation is an observability exercise: Fig. 4's
//! `mem_alloc → encrypt → comm → decrypt → mem_free` breakdown, Fig. 5's
//! PRF throughput, Fig. 6's pipelining overlap. This crate is the
//! substrate those measurements (and any future perf claim) stand on:
//!
//! * **Spans** — `let _s = span!("encrypt", elems = n);` times a region
//!   and appends a [`SpanEvent`] to a per-thread ring buffer (a *lane*)
//!   keyed by MPI rank inside a [`Registry`].
//! * **Metrics** — enum-indexed monotonic counters ([`Metric`]), gauges
//!   ([`Gauge`]) and power-of-two histograms ([`Hist`]): PRF blocks per
//!   backend, keystream bytes, key advances, fabric messages/bytes,
//!   mailbox spin-vs-park outcomes, pipeline blocks in flight, HoMAC
//!   verify pass/fail, pool allocation stats.
//! * **Exporters** ([`export`]) — chrome-trace JSON (one lane per rank,
//!   viewable in Perfetto), a Prometheus text dump, and a JSON snapshot
//!   the testkit bench harness embeds into `BENCH_*.json`.
//! * **Parsers** ([`parse`]) — std-only parsers for all emitted formats,
//!   used by CI to schema-validate the traces the repo produces.
//!
//! ## Cost model
//!
//! Telemetry is **off by default**. With no enabled registry the record
//! path of every `span!`/counter is a single branch on one relaxed
//! atomic ([`active`]) — no thread-local access, no clock read, no
//! allocation. Enabling is per-registry: either set `HEAR_TRACE=1`
//! (enables the process-global [`Registry::global`]) or create a private
//! [`Registry::new_enabled`] and [`Registry::install`] it on the threads
//! of interest, which *shadows* the global one and gives isolated,
//! exact-count measurements (this is how `measure_phases` and the
//! exact-schedule tests work).
//!
//! ## Environment
//!
//! * `HEAR_TRACE` — set (non-empty, not `0`) to enable the global
//!   registry at first use.
//! * `HEAR_TRACE_OUT` — path prefix for [`dump_if_env`]; writes
//!   `<prefix>.trace.json`, `<prefix>.prom`, `<prefix>.snapshot.json`.
//! * `HEAR_TRACE_BUF` — per-lane span ring capacity (default 65536).

pub mod export;
pub mod metrics;
pub mod parse;
mod registry;
mod span;

pub use metrics::{Gauge, Hist, Metric};
pub use registry::{
    active, add, gauge_add, gauge_set, incr, observe, spawn_context, CtxGuard, Registry,
};
pub use span::{SpanArgs, SpanEvent, SpanGuard, MAX_SPAN_ARGS};

use std::path::PathBuf;

/// True iff `HEAR_TRACE` is set to anything but empty/`0`.
pub fn env_enabled() -> bool {
    matches!(std::env::var("HEAR_TRACE"), Ok(v) if !v.is_empty() && v != "0")
}

/// Path prefix for trace dumps: `HEAR_TRACE_OUT`, defaulting to
/// `hear_telemetry` in the working directory.
pub fn out_prefix() -> String {
    std::env::var("HEAR_TRACE_OUT").unwrap_or_else(|_| "hear_telemetry".to_string())
}

/// If `HEAR_TRACE` is enabled, write all three exports of the global
/// registry under [`out_prefix`] and return the paths written. No-op
/// (returns `None`) when tracing is off. Call this at the end of
/// examples/binaries; it is the hook `scripts/ci.sh`'s traced smoke run
/// relies on.
pub fn dump_if_env() -> Option<Vec<PathBuf>> {
    if !env_enabled() {
        return None;
    }
    match export::write_all(Registry::global(), &out_prefix()) {
        Ok(paths) => Some(paths),
        Err(e) => {
            eprintln!("hear-telemetry: failed to write trace dump: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn dump_if_env_respects_disabled() {
        if env_enabled() {
            return; // environment has HEAR_TRACE exported; nothing to assert
        }
        assert!(dump_if_env().is_none());
    }

    /// The issue's compile-out check: with tracing disabled the record
    /// path must stay within nanoseconds — i.e. indistinguishable from a
    /// plain branch. Generous bound so debug builds and noisy CI pass.
    #[test]
    fn disabled_record_path_is_cheap() {
        if active() {
            return; // some other registry is live; measurement is moot
        }
        const N: u32 = 100_000;
        // Warm up, then best-of-5 to shrug off scheduler noise.
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for i in 0..N {
                let _s = span!("noop", i = i);
                add(Metric::FabricMsgs, 1);
            }
            let per_op = t0.elapsed().as_nanos() as f64 / f64::from(N);
            best = best.min(per_op);
        }
        // One span! + one counter with tracing off. Release builds run
        // this in ~1–2 ns; allow 500 ns so debug/loaded CI never flakes
        // while still catching accidental always-on work (lock, alloc,
        // clock read ≈ µs-scale in debug).
        assert!(
            best < 500.0,
            "disabled record path too slow: {best:.1} ns/op"
        );
    }
}
