//! Exporters: chrome-trace JSON (Perfetto / `chrome://tracing`),
//! Prometheus text exposition, and a compact JSON snapshot for embedding
//! into `BENCH_*.json`.
//!
//! All output is hand-built strings — no serialization dependency — and
//! round-trips through the in-repo parsers in [`crate::parse`], which CI
//! uses for schema validation.

use crate::metrics::{Gauge, Hist, Metric};
use crate::span::SpanEvent;
use crate::Registry;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Lane id used in the chrome trace for spans recorded by threads with no
/// rank attribution (main thread, switch service).
pub const UNTRACKED_TID: u64 = 999_999;

fn tid_of(rank: Option<usize>) -> u64 {
    match rank {
        Some(r) => r as u64,
        None => UNTRACKED_TID,
    }
}

/// Render all recorded spans as a chrome-trace JSON object
/// (`{"traceEvents": [...]}`) with one lane (`tid`) per rank. Load the
/// result in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn chrome_trace(reg: &Registry) -> String {
    let evs = reg.span_events();
    let mut out = String::with_capacity(128 + evs.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;

    // One thread_name metadata record per lane so Perfetto labels rows.
    let mut ranks = reg.lane_ranks();
    ranks.sort_by_key(|r| tid_of(*r));
    for rank in ranks {
        let name = match rank {
            Some(r) => format!("rank {r}"),
            None => "untracked".to_string(),
        };
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid_of(rank),
            name
        );
    }

    for ev in &evs {
        if !first {
            out.push(',');
        }
        first = false;
        push_complete_event(&mut out, ev);
    }
    out.push_str("]}");
    out
}

fn push_complete_event(out: &mut String, ev: &SpanEvent) {
    // ts/dur are microseconds (float) per the chrome trace event format.
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"depth\":{}",
        ev.name,
        tid_of(ev.rank),
        ev.start_ns as f64 / 1000.0,
        ev.dur_ns as f64 / 1000.0,
        ev.depth
    );
    for (k, v) in ev.args.iter() {
        let _ = write!(out, ",\"{k}\":{v}");
    }
    out.push_str("}}");
}

/// Render counters, gauges and histograms in the Prometheus text
/// exposition format.
pub fn prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for m in Metric::ALL {
        let fam = m.prom_name();
        if fam != last_family {
            let _ = writeln!(out, "# TYPE {fam} counter");
            last_family = fam;
        }
        let _ = writeln!(out, "{} {}", m.key(), reg.counter(m));
    }
    for g in Gauge::ALL {
        let _ = writeln!(out, "# TYPE {} gauge", g.prom_name());
        let _ = writeln!(out, "{} {}", g.prom_name(), reg.gauge(g));
    }
    for h in Hist::ALL {
        let fam = h.prom_name();
        let _ = writeln!(out, "# TYPE {fam} histogram");
        let mut cumulative = 0u64;
        for i in 0..Hist::BUCKETS {
            cumulative += reg.hist_bucket(h, i);
            // Only print buckets up to the last non-empty one to keep the
            // dump short; always print +Inf below.
            if reg.hist_bucket(h, i) != 0 {
                let _ = writeln!(out, "{fam}_bucket{{le=\"{}\"}} {cumulative}", 1u64 << i);
            }
        }
        let (count, sum) = reg.hist_totals(h);
        let _ = writeln!(out, "{fam}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{fam}_sum {sum}");
        let _ = writeln!(out, "{fam}_count {count}");
    }
    out
}

/// Render a compact JSON snapshot of all metrics:
/// `{"counters":{...},"gauges":{...},"histograms":{...},"span_events":n,"dropped_events":n}`.
/// This is what the testkit bench harness embeds into `BENCH_*.json`.
pub fn json_snapshot(reg: &Registry) -> String {
    let mut out = String::from("{\"counters\":{");
    let mut first = true;
    for m in Metric::ALL {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", json_escape(&m.key()), reg.counter(m));
    }
    out.push_str("},\"gauges\":{");
    first = true;
    for g in Gauge::ALL {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{}\":{}", g.prom_name(), reg.gauge(g));
    }
    out.push_str("},\"histograms\":{");
    first = true;
    for h in Hist::ALL {
        if !first {
            out.push(',');
        }
        first = false;
        let (count, sum) = reg.hist_totals(h);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{count},\"sum\":{sum}}}",
            h.prom_name()
        );
    }
    let _ = write!(
        out,
        "}},\"span_events\":{},\"dropped_events\":{}}}",
        reg.span_events().len(),
        reg.dropped_events()
    );
    out
}

/// Minimal JSON string escaping (sufficient for metric keys and names).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Write all three exports with a shared path prefix:
/// `<prefix>.trace.json`, `<prefix>.prom`, `<prefix>.snapshot.json`.
/// Returns the paths written.
pub fn write_all(reg: &Registry, prefix: &str) -> std::io::Result<Vec<PathBuf>> {
    let trace = PathBuf::from(format!("{prefix}.trace.json"));
    let prom = PathBuf::from(format!("{prefix}.prom"));
    let snap = PathBuf::from(format!("{prefix}.snapshot.json"));
    if let Some(dir) = trace.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&trace, chrome_trace(reg))?;
    std::fs::write(&prom, prometheus(reg))?;
    std::fs::write(&snap, json_snapshot(reg))?;
    Ok(vec![trace, prom, snap])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metric;

    fn sample_registry() -> Registry {
        let r = Registry::new_enabled();
        {
            let _g = r.install(Some(0));
            crate::add(Metric::FabricMsgs, 4);
            crate::add(Metric::FabricBytes, 1024);
            crate::observe(Hist::FabricMsgBytes, 256);
            let _s = crate::span!("encrypt", elems = 8usize);
        }
        {
            let _g = r.install(Some(1));
            let _s = crate::span!("decrypt", elems = 8usize);
        }
        r
    }

    #[test]
    fn chrome_trace_has_lane_per_rank() {
        let r = sample_registry();
        let trace = chrome_trace(&r);
        let parsed = crate::parse::parse_chrome_trace(&trace).expect("self-parse");
        let spans: Vec<_> = parsed.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(spans.len(), 2);
        let tids: Vec<u64> = spans.iter().map(|e| e.tid).collect();
        assert!(tids.contains(&0) && tids.contains(&1));
        assert!(parsed
            .iter()
            .any(|e| e.ph == "M" && e.name == "thread_name"));
    }

    #[test]
    fn prometheus_round_trips_through_parser() {
        let r = sample_registry();
        let text = prometheus(&r);
        let samples = crate::parse::parse_prometheus(&text).expect("self-parse");
        let msgs = samples
            .iter()
            .find(|s| s.name == "hear_fabric_messages_total")
            .expect("counter present");
        assert_eq!(msgs.value, 4.0);
        let hist_count = samples
            .iter()
            .find(|s| s.name == "hear_fabric_message_bytes_count")
            .expect("hist count present");
        assert_eq!(hist_count.value, 1.0);
    }

    #[test]
    fn snapshot_is_valid_json_with_counters() {
        let r = sample_registry();
        let snap = json_snapshot(&r);
        let v = crate::parse::parse_json(&snap).expect("valid json");
        let counters = v.get("counters").expect("counters key");
        let msgs = counters
            .get("hear_fabric_messages_total")
            .expect("fabric msgs");
        assert_eq!(msgs.as_f64(), Some(4.0));
        assert_eq!(v.get("span_events").and_then(|n| n.as_f64()), Some(2.0));
    }
}
