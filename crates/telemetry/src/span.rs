//! Lightweight spans: RAII guards that time a region and append a
//! [`SpanEvent`] to the current thread's lane ring buffer on drop.
//!
//! Use the [`span!`](crate::span!) macro:
//!
//! ```
//! let _s = hear_telemetry::span!("encrypt", elems = 1024usize);
//! // ... timed region ...
//! ```
//!
//! When no registry is enabled, `span!` is a relaxed atomic load and a
//! branch — no thread-local access, no clock read, no allocation.

use crate::registry::{self, Lane};
use std::sync::Arc;
use std::time::Instant;

/// Maximum number of `key = value` arguments a span carries (inline,
/// no allocation).
pub const MAX_SPAN_ARGS: usize = 3;

/// Fixed-capacity inline argument list.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanArgs {
    kv: [(&'static str, u64); MAX_SPAN_ARGS],
    len: u8,
}

impl SpanArgs {
    pub fn from_slice(args: &[(&'static str, u64)]) -> SpanArgs {
        debug_assert!(
            args.len() <= MAX_SPAN_ARGS,
            "span! supports at most {MAX_SPAN_ARGS} args"
        );
        let mut kv = [("", 0u64); MAX_SPAN_ARGS];
        let n = args.len().min(MAX_SPAN_ARGS);
        kv[..n].copy_from_slice(&args[..n]);
        SpanArgs { kv, len: n as u8 }
    }

    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.kv[..self.len as usize].iter().copied()
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of argument `key`, if present.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One completed span, as stored in a lane ring buffer.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Static span name (`"encrypt"`, `"send"`, ...).
    pub name: &'static str,
    /// Rank of the lane that recorded the span (`None` for untracked
    /// threads).
    pub rank: Option<usize>,
    /// Nesting depth at record time (0 = top-level on its thread).
    pub depth: u32,
    /// Start offset from the registry epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Inline `key = value` arguments.
    pub args: SpanArgs,
}

impl SpanEvent {
    pub fn duration(&self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.dur_ns)
    }
}

struct LiveSpan {
    name: &'static str,
    args: SpanArgs,
    start: Instant,
    epoch: Instant,
    depth: u32,
    lane: Arc<Lane>,
}

/// RAII timer created by [`span!`](crate::span!); records a [`SpanEvent`]
/// when dropped. Inert (`None` inside) when tracing is off.
pub struct SpanGuard(Option<LiveSpan>);

impl SpanGuard {
    #[inline]
    pub fn start(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
        if !registry::active() {
            return SpanGuard(None);
        }
        SpanGuard::start_slow(name, args)
    }

    fn start_slow(name: &'static str, args: &[(&'static str, u64)]) -> SpanGuard {
        let live = registry::with_span_ctx(|ctx| {
            let depth = ctx.depth;
            ctx.depth += 1;
            LiveSpan {
                name,
                args: SpanArgs::from_slice(args),
                start: Instant::now(),
                epoch: ctx.epoch,
                depth,
                lane: ctx.lane.clone(),
            }
        });
        SpanGuard(live)
    }

    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            let dur_ns = s.start.elapsed().as_nanos() as u64;
            let start_ns = s.start.saturating_duration_since(s.epoch).as_nanos() as u64;
            s.lane.push(SpanEvent {
                name: s.name,
                rank: s.lane.rank,
                depth: s.depth,
                start_ns,
                dur_ns,
                args: s.args,
            });
            registry::depth_dec(&s.lane);
        }
    }
}

/// Open a span over the enclosing scope:
/// `let _s = span!("send", bytes = n, tag = t);`
///
/// Arguments are `ident = expr` pairs; each value is cast `as u64`
/// (at most [`MAX_SPAN_ARGS`]). Bind the result to a named `_s`-style
/// variable — binding to `_` drops the guard immediately and records a
/// zero-length span.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::SpanGuard::start($name, &[$((stringify!($k), ($v) as u64)),*])
    };
}

#[cfg(test)]
mod tests {
    use crate::{Metric, Registry};

    #[test]
    fn spans_record_name_args_depth_rank() {
        let r = Registry::new_enabled();
        {
            let _g = r.install(Some(2));
            let _outer = crate::span!("comm", elems = 4usize);
            {
                let _inner = crate::span!("send", bytes = 16usize, tag = 7u64);
            }
        }
        let evs = r.span_events();
        assert_eq!(evs.len(), 2);
        // Inner span completes (and is recorded) first.
        let send = &evs.iter().find(|e| e.name == "send").unwrap();
        let comm = &evs.iter().find(|e| e.name == "comm").unwrap();
        assert_eq!(send.depth, 1);
        assert_eq!(comm.depth, 0);
        assert_eq!(send.rank, Some(2));
        assert_eq!(send.args.get("bytes"), Some(16));
        assert_eq!(send.args.get("tag"), Some(7));
        assert_eq!(comm.args.get("elems"), Some(4));
        assert!(comm.dur_ns >= send.dur_ns);
        assert!(comm.start_ns <= send.start_ns);
    }

    #[test]
    fn disabled_span_is_inert() {
        // No enabled registry installed on this thread and the global one
        // is off (HEAR_TRACE unset under cargo test): guard must be inert.
        if crate::env_enabled() {
            return; // someone exported HEAR_TRACE; skip
        }
        let s = crate::span!("noop", x = 1u32);
        assert!(!s.is_recording());
        // And counters vanish too.
        crate::add(Metric::FabricMsgs, 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let r = Registry::new_enabled();
        let _g = r.install(Some(0));
        // Default cap is 65536; push a couple more than that.
        for _ in 0..(1 << 16) + 10 {
            let _s = crate::span!("tick");
        }
        drop(_g);
        assert_eq!(r.span_events().len(), 1 << 16);
        assert_eq!(r.dropped_events(), 10);
    }
}
