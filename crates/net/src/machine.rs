//! Machine and crypto-rate parameters for the performance model.
//!
//! The paper's testbed is Piz Daint: two 18-core Xeon E5-2695 v4 per node,
//! 128 GB DDR3, 100 Gbit/s Aries. The model below captures the quantities
//! the allreduce cost formulas need; defaults reproduce the paper's
//! headline numbers and every parameter can be overridden with values
//! *measured on this host* (the fig5 harness feeds its measured AES/SHA
//! throughput back into [`CryptoRates`]).

/// Static cluster-node description (Piz Daint defaults).
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Cores (= max ranks) per node.
    pub cores_per_node: usize,
    /// NIC bandwidth per node, bytes/s (Aries: 100 Gbit/s = 12.5 GB/s).
    pub nic_bw: f64,
    /// Per-rank MPI processing rate for large messages, bytes/s — the
    /// pipeline rate of one rank pushing a ring allreduce (copy + fold +
    /// injection). Paper: 11.1 GB/s node peak / 36 PPN ≈ 0.31 GB/s.
    pub per_rank_rate: f64,
    /// Aggregate memory bandwidth per node, bytes/s (DDR3 quad channel,
    /// two sockets). Caps the crypto rate at high PPN.
    pub mem_bw: f64,
    /// Small-message latency between ranks on the same node, seconds.
    pub intra_alpha: f64,
    /// Small-message latency across nodes (one Aries hop), seconds.
    pub inter_alpha: f64,
}

impl Machine {
    /// The paper's testbed.
    pub fn piz_daint() -> Machine {
        Machine {
            cores_per_node: 36,
            nic_bw: 12.5e9,
            per_rank_rate: 0.32e9,
            mem_bw: 68.0e9,
            intra_alpha: 0.5e-6,
            inter_alpha: 1.4e-6,
        }
    }
}

/// Per-core encryption/decryption rates of a PRF backend plus the fixed
/// per-call latency cost (key progression + two PRF blocks for a 16 B
/// message).
#[derive(Debug, Clone, Copy)]
pub struct CryptoRates {
    /// Encryption throughput, bytes/s per core.
    pub enc_bps: f64,
    /// Decryption throughput, bytes/s per core.
    pub dec_bps: f64,
    /// Fixed crypto latency added to one small-message allreduce, seconds.
    pub per_call: f64,
}

impl CryptoRates {
    /// The paper's hand-tuned AES-NI + SSE2 backend (9 / 18 GB/s per core,
    /// ~7% of a ~2 µs 16 B allreduce as fixed latency).
    pub fn aes_ni_paper() -> CryptoRates {
        CryptoRates {
            enc_bps: 9.0e9,
            dec_bps: 18.0e9,
            per_call: 0.15e-6,
        }
    }

    /// The paper's OpenSSL-SHA1 backend (< 1 GB/s, 75.5 % latency add).
    pub fn sha1_paper() -> CryptoRates {
        CryptoRates {
            enc_bps: 0.8e9,
            dec_bps: 0.8e9,
            per_call: 1.6e-6,
        }
    }

    /// Build from rates measured on this host (bytes/s), as produced by
    /// the fig5 harness.
    pub fn measured(enc_bps: f64, dec_bps: f64, per_call: f64) -> CryptoRates {
        assert!(enc_bps > 0.0 && dec_bps > 0.0 && per_call >= 0.0);
        CryptoRates {
            enc_bps,
            dec_bps,
            per_call,
        }
    }

    /// Effective per-core rates once `ppn` cores hammer the shared memory
    /// bus simultaneously: AES-NI is far faster than DRAM, so at full PPN
    /// the crypto streams are memory-bound.
    pub fn effective_at_ppn(&self, machine: &Machine, ppn: usize) -> CryptoRates {
        // Each crypto byte moves ~3 bytes of DRAM traffic (read plaintext,
        // read/write buffer), competing with the MPI data path.
        let mem_share = machine.mem_bw / (3.0 * ppn.max(1) as f64);
        CryptoRates {
            enc_bps: self.enc_bps.min(mem_share),
            dec_bps: self.dec_bps.min(mem_share),
            per_call: self.per_call,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_headline_numbers() {
        let m = Machine::piz_daint();
        assert_eq!(m.cores_per_node, 36);
        assert!((m.nic_bw - 12.5e9).abs() < 1e6);
        // Peak node throughput ≈ per_rank_rate × 36 ≈ 11.5 GB/s, clipped by
        // the NIC below 12.5 GB/s.
        let peak = (m.per_rank_rate * 36.0).min(m.nic_bw);
        assert!(peak > 10.0e9 && peak < 12.5e9);
    }

    #[test]
    fn aes_dominates_sha() {
        let aes = CryptoRates::aes_ni_paper();
        let sha = CryptoRates::sha1_paper();
        assert!(aes.enc_bps / sha.enc_bps > 5.0);
        assert!(aes.per_call < sha.per_call);
    }

    #[test]
    fn memory_contention_caps_rates_at_high_ppn() {
        let m = Machine::piz_daint();
        let aes = CryptoRates::aes_ni_paper();
        let solo = aes.effective_at_ppn(&m, 1);
        let full = aes.effective_at_ppn(&m, 36);
        assert_eq!(solo.enc_bps, aes.enc_bps, "one core is compute-bound");
        assert!(full.enc_bps < aes.enc_bps, "36 cores are memory-bound");
        assert!(full.enc_bps > 0.3e9, "but still far above the NIC share");
    }

    #[test]
    #[should_panic]
    fn measured_rejects_nonpositive() {
        CryptoRates::measured(0.0, 1.0, 0.0);
    }
}
