//! Measured α–β parameters over real sockets.
//!
//! The cost model's `Machine` defaults come from the paper's testbed; this
//! module replaces the two link parameters with numbers measured on *this*
//! host over a genuine TCP loopback connection — the same socket path the
//! [`hear_mpi::tcp`] transport uses — so model predictions and
//! socket-backend measurements share a common baseline.
//!
//! α is half the minimum ping-pong round trip of a 1-byte message (minimum,
//! not mean: scheduler noise only ever adds latency). β is the inverse of
//! the streaming bandwidth of one bulk transfer, with the handshake α
//! subtracted. Both are deliberately crude single-link estimates — the
//! point is a *self-consistent* (α, β) pair for loopback experiments, not
//! a NIC benchmark.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// One measured loopback link: the Hockney parameters of this host.
#[derive(Debug, Clone, Copy)]
pub struct LinkEstimate {
    /// Small-message one-way latency (half the minimum observed RTT).
    pub alpha: Duration,
    /// Streaming bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Ping-pong round trips behind the α estimate.
    pub samples: usize,
    /// Bytes behind the β estimate.
    pub bulk_bytes: usize,
}

impl LinkEstimate {
    /// Seconds per byte (the β of α + nβ·n).
    pub fn beta(&self) -> f64 {
        1.0 / self.bandwidth
    }

    /// Predicted one-way time for an `n`-byte message on this link.
    pub fn message_time(&self, n: usize) -> Duration {
        Duration::from_secs_f64(self.alpha.as_secs_f64() + n as f64 * self.beta())
    }
}

/// Measure (α, β) over a fresh TCP loopback connection.
///
/// `pings` round trips of a 1-byte message bound α; one `bulk_bytes`
/// streaming transfer (acknowledged by 1 byte) bounds β. Uses only
/// `std::net` and one echo thread; takes well under a second for the
/// defaults used by [`measure_loopback_default`].
pub fn measure_loopback(pings: usize, bulk_bytes: usize) -> std::io::Result<LinkEstimate> {
    assert!(pings > 0 && bulk_bytes > 0);
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    let server = std::thread::spawn(move || -> std::io::Result<()> {
        let (mut s, _) = listener.accept()?;
        s.set_nodelay(true)?;
        // Echo each ping byte back.
        let mut b = [0u8; 1];
        for _ in 0..pings {
            s.read_exact(&mut b)?;
            s.write_all(&b)?;
        }
        // Drain the bulk stream, then ack with one byte.
        let mut sink = vec![0u8; 64 << 10];
        let mut left = bulk_bytes;
        while left > 0 {
            let n = s.read(&mut sink)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "bulk stream ended early",
                ));
            }
            left -= n;
        }
        s.write_all(&[0xA5])?;
        Ok(())
    });

    let mut client = TcpStream::connect(addr)?;
    client.set_nodelay(true)?;

    let mut min_rtt = Duration::MAX;
    let mut b = [0u8; 1];
    for i in 0..pings {
        let t0 = Instant::now();
        client.write_all(&[i as u8])?;
        client.read_exact(&mut b)?;
        min_rtt = min_rtt.min(t0.elapsed());
    }

    let chunk = vec![0x5Au8; 64 << 10];
    let t0 = Instant::now();
    let mut left = bulk_bytes;
    while left > 0 {
        let n = left.min(chunk.len());
        client.write_all(&chunk[..n])?;
        left -= n;
    }
    client.read_exact(&mut b)?;
    let bulk_elapsed = t0.elapsed();

    server
        .join()
        .map_err(|_| std::io::Error::other("echo thread panicked"))??;

    // Clamp away the α share of the acked transfer; floor the remainder so
    // a pathological clock can't produce a zero or negative bandwidth.
    let alpha = min_rtt / 2;
    let xfer = bulk_elapsed
        .saturating_sub(min_rtt)
        .max(Duration::from_nanos(1));
    Ok(LinkEstimate {
        alpha,
        bandwidth: bulk_bytes as f64 / xfer.as_secs_f64(),
        samples: pings,
        bulk_bytes,
    })
}

/// [`measure_loopback`] with defaults balanced for CI: 32 pings, 4 MiB
/// bulk. Under a second on any machine that can run the test suite.
pub fn measure_loopback_default() -> std::io::Result<LinkEstimate> {
    measure_loopback(32, 4 << 20)
}

impl crate::Machine {
    /// This machine, with the two link parameters replaced by a measured
    /// loopback estimate: intra-node α from the ping-pong, both the NIC
    /// and per-rank rates capped by the measured streaming bandwidth.
    /// Inter-node α keeps its testbed default scaled by the same factor
    /// the intra-node measurement moved (loopback cannot observe a second
    /// node).
    pub fn calibrated_from(self, link: &LinkEstimate) -> crate::Machine {
        let scale = link.alpha.as_secs_f64() / self.intra_alpha;
        crate::Machine {
            intra_alpha: link.alpha.as_secs_f64(),
            inter_alpha: self.inter_alpha * scale,
            nic_bw: self.nic_bw.min(link.bandwidth),
            per_rank_rate: self.per_rank_rate.min(link.bandwidth),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;

    #[test]
    fn loopback_estimate_is_physical() {
        let link = measure_loopback(16, 1 << 20).expect("loopback probe");
        assert!(link.alpha > Duration::ZERO, "α must be positive");
        assert!(
            link.alpha < Duration::from_millis(100),
            "loopback α of {:?} is not plausible",
            link.alpha
        );
        assert!(
            link.bandwidth.is_finite() && link.bandwidth > 0.0,
            "bandwidth {} must be positive and finite",
            link.bandwidth
        );
        assert_eq!(link.samples, 16);
        assert_eq!(link.bulk_bytes, 1 << 20);
    }

    #[test]
    fn message_time_is_monotone_in_size() {
        let link = LinkEstimate {
            alpha: Duration::from_micros(20),
            bandwidth: 1e9,
            samples: 1,
            bulk_bytes: 1,
        };
        assert!(link.message_time(1 << 20) > link.message_time(1 << 10));
        assert!(link.message_time(0) >= link.alpha);
    }

    #[test]
    fn calibration_replaces_link_parameters_consistently() {
        let link = LinkEstimate {
            alpha: Duration::from_micros(5),
            bandwidth: 2.0e9,
            samples: 8,
            bulk_bytes: 1 << 20,
        };
        let m = Machine::piz_daint().calibrated_from(&link);
        assert_eq!(m.intra_alpha, 5e-6);
        // Inter-node latency scales by the same 10× the intra measurement moved.
        let scale = 5e-6 / Machine::piz_daint().intra_alpha;
        assert!((m.inter_alpha - Machine::piz_daint().inter_alpha * scale).abs() < 1e-12);
        // Bandwidths are capped, never raised, by a loopback measurement.
        assert_eq!(m.nic_bw, 2.0e9);
        assert_eq!(m.per_rank_rate, Machine::piz_daint().per_rank_rate);
        assert_eq!(m.cores_per_node, 36);
    }

    #[test]
    fn two_probes_do_not_collide() {
        // Ephemeral ports mean concurrent probes must coexist.
        let a = std::thread::spawn(|| measure_loopback(8, 1 << 16));
        let b = measure_loopback(8, 1 << 16).expect("second probe");
        let a = a.join().unwrap().expect("first probe");
        assert!(a.bandwidth > 0.0 && b.bandwidth > 0.0);
    }
}
