//! Allreduce cost model — the Piz Daint substitute behind Figures 7–9.
//!
//! Functional behaviour (who computes what, on which ciphertexts) is
//! exercised by the thread-backed `hear-mpi` runtime; *scaling* behaviour
//! at up to 1152 ranks cannot be timeshared onto one host, so this module
//! evaluates the classical ring/recursive-doubling cost formulas with the
//! machine parameters of [`crate::machine`] and the measured (or paper)
//! crypto rates layered on top. The model is deliberately simple and every
//! term is named; EXPERIMENTS.md records how its output compares with the
//! paper's curves.

use crate::machine::{CryptoRates, Machine};

/// A cluster allocation: `nodes × ppn` ranks.
#[derive(Debug, Clone, Copy)]
pub struct Allocation {
    pub machine: Machine,
    pub nodes: usize,
    pub ppn: usize,
}

impl Allocation {
    pub fn ranks(&self) -> usize {
        self.nodes * self.ppn
    }

    /// The paper's scaling walk (Figs. 7–8): PPN scaling on two nodes
    /// (2→72 ranks), then node scaling at full PPN (72→1152 ranks).
    pub fn paper_scaling_points(machine: Machine) -> Vec<Allocation> {
        let mut out = Vec::new();
        for ranks in [2usize, 4, 8, 36, 72] {
            out.push(Allocation {
                machine,
                nodes: 2,
                ppn: ranks / 2,
            });
        }
        for nodes in [4usize, 8, 16, 32] {
            out.push(Allocation {
                machine,
                nodes,
                ppn: machine.cores_per_node,
            });
        }
        out
    }
}

/// Time for one ring allreduce of `msg` bytes (the large-message
/// algorithm): `2(P−1)` steps of `msg/P` bytes each, at the per-rank
/// pipeline rate, NIC-capped per node, plus the latency term.
pub fn ring_allreduce_time(a: &Allocation, msg: f64, crypto: Option<&CryptoRates>) -> f64 {
    let p = a.ranks() as f64;
    if a.ranks() == 1 {
        return crypto.map_or(0.0, |c| msg / c.enc_bps + msg / c.dec_bps);
    }
    // Bandwidth term: each rank pushes ~2·msg·(P−1)/P bytes through its
    // pipeline; the node NIC carries the boundary flows of its ppn ranks.
    let per_rank_rate = a.machine.per_rank_rate.min(a.machine.nic_bw / a.ppn as f64);
    let volume = 2.0 * msg * (p - 1.0) / p;
    let mut t = volume / per_rank_rate;
    // Latency term: 2(P−1) steps; the fraction of ring hops crossing nodes
    // is nodes/P with a linear rank placement.
    let inter_frac = (a.nodes as f64 / p).min(1.0);
    let alpha = a.machine.intra_alpha * (1.0 - inter_frac) + a.machine.inter_alpha * inter_frac;
    t += 2.0 * (p - 1.0) * alpha;
    // Multi-node network efficiency: adaptive routing contention and
    // noise shave throughput as the job spans more nodes (the paper's
    // "steadily reducing performance" beyond 2 nodes).
    t /= network_efficiency(a.nodes);
    // HEAR: encrypt the send buffer and decrypt the result. The pipelined
    // implementation overlaps part of it with the reduction; the residual
    // serial fraction is what Fig. 6 measures (~best case 86% overlapped →
    // keep 0.5 as the conservative non-overlapped share of one direction).
    if let Some(c) = crypto {
        let eff = c.effective_at_ppn(&a.machine, a.ppn);
        let crypto_t = msg / eff.enc_bps + msg / eff.dec_bps;
        t += 0.5 * crypto_t + c.per_call;
    }
    t
}

/// Time for one recursive-doubling allreduce of `msg` bytes (the
/// small-message algorithm of Fig. 8).
pub fn rd_allreduce_time(a: &Allocation, msg: f64, crypto: Option<&CryptoRates>) -> f64 {
    let p = a.ranks();
    if p == 1 {
        return crypto.map_or(0.0, |c| c.per_call);
    }
    let rounds = (p as f64).log2().ceil();
    // Rounds whose partner distance stays inside the node are cheap; the
    // last log2(nodes) rounds cross nodes.
    let inter_rounds = (a.nodes as f64).log2().ceil().min(rounds);
    let intra_rounds = rounds - inter_rounds;
    let per_byte = 1.0 / a.machine.per_rank_rate;
    let mut t = intra_rounds * (a.machine.intra_alpha + msg * per_byte)
        + inter_rounds * (a.machine.inter_alpha + msg * per_byte);
    if let Some(c) = crypto {
        t += c.per_call + msg / c.enc_bps + msg / c.dec_bps;
    }
    t
}

/// Network efficiency loss as the allocation spans more nodes.
pub fn network_efficiency(nodes: usize) -> f64 {
    if nodes <= 2 {
        1.0
    } else {
        // ~5% per doubling beyond two nodes, floored.
        (1.0 - 0.05 * ((nodes as f64) / 2.0).log2()).max(0.70)
    }
}

/// OSU-style bus bandwidth for an allreduce: algorithm bytes per second,
/// reported per node (the Fig. 7 y-axis).
pub fn throughput_per_node(a: &Allocation, msg: f64, crypto: Option<&CryptoRates>) -> f64 {
    let t = ring_allreduce_time(a, msg, crypto);
    let p = a.ranks() as f64;
    let algo_bytes_per_rank = 2.0 * msg * (p - 1.0) / p;
    algo_bytes_per_rank * a.ppn as f64 / t
}

/// One point of the Fig. 8 latency plot with its noise band.
#[derive(Debug, Clone, Copy)]
pub struct LatencyPoint {
    pub ranks: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
}

/// Latency of a 16 B allreduce with the paper's noise model: OS and
/// network jitter widen the min/max band as the job grows (§7.1 cites
/// noise growing considerably with rank count).
pub fn latency_with_noise(a: &Allocation, msg: f64, crypto: Option<&CryptoRates>) -> LatencyPoint {
    let mean = rd_allreduce_time(a, msg, crypto);
    let p = a.ranks() as f64;
    // Relative jitter grows with log(P): a handful of percent at 2 ranks,
    // about half the mean at a thousand ranks.
    let jitter = 0.04 + 0.06 * p.log2();
    LatencyPoint {
        ranks: a.ranks(),
        mean,
        min: mean * (1.0 - 0.3 * jitter),
        max: mean * (1.0 + jitter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(nodes: usize, ppn: usize) -> Allocation {
        Allocation {
            machine: Machine::piz_daint(),
            nodes,
            ppn,
        }
    }

    const MIB16: f64 = 16.0 * 1024.0 * 1024.0;

    #[test]
    fn cost_model_invariants_hold_on_random_points() {
        // Randomized sweep over (nodes, ppn, msg) from the testkit PRNG:
        // times are finite and positive, adding crypto never makes an
        // algorithm faster, and time is monotone in message size.
        let mut rng = hear_testkit::TestRng::seed_from_u64(0x0e7_3057);
        let aes = CryptoRates::aes_ni_paper();
        for _ in 0..32 {
            let a = alloc(rng.gen_range(1usize..=64), rng.gen_range(2usize..=36));
            let msg = rng.gen_range(8.0f64..32e6);
            for f in [ring_allreduce_time, rd_allreduce_time] {
                let plain = f(&a, msg, None);
                let hear = f(&a, msg, Some(&aes));
                assert!(plain.is_finite() && plain > 0.0, "{a:?} msg={msg}");
                assert!(hear >= plain, "crypto made it faster: {a:?} msg={msg}");
                assert!(f(&a, msg * 2.0, None) >= plain, "{a:?} msg={msg}");
            }
        }
    }

    #[test]
    fn native_peak_matches_paper() {
        // Paper: Cray MPICH peaks at 11.1 GB/s per node (2 nodes, 36 PPN).
        let t = throughput_per_node(&alloc(2, 36), MIB16, None);
        assert!(
            (10.0e9..12.5e9).contains(&t),
            "native peak {:.2} GB/s out of range",
            t / 1e9
        );
    }

    #[test]
    fn hear_reaches_about_80_percent_of_native() {
        let aes = CryptoRates::aes_ni_paper();
        for a in Allocation::paper_scaling_points(Machine::piz_daint()) {
            if a.ranks() < 8 {
                continue; // tiny runs are latency-dominated
            }
            let native = throughput_per_node(&a, MIB16, None);
            let hear = throughput_per_node(&a, MIB16, Some(&aes));
            let ratio = hear / native;
            assert!(
                (0.70..0.97).contains(&ratio),
                "nodes={} ppn={}: ratio {:.3}",
                a.nodes,
                a.ppn,
                ratio
            );
        }
    }

    #[test]
    fn sha1_is_far_worse_than_aes() {
        // The Fig. 4 contrast is a latency one: SHA-1's fixed crypto cost
        // is a large fraction of a 16 B allreduce, AES-NI's a small one.
        let a = alloc(1, 2);
        let base = rd_allreduce_time(&a, 16.0, None);
        let aes_over = rd_allreduce_time(&a, 16.0, Some(&CryptoRates::aes_ni_paper())) - base;
        let sha_over = rd_allreduce_time(&a, 16.0, Some(&CryptoRates::sha1_paper())) - base;
        assert!(
            sha_over / aes_over > 5.0,
            "sha {sha_over} vs aes {aes_over}"
        );
        assert!(
            aes_over / base < 0.5,
            "AES overhead must be a small fraction"
        );
        assert!(sha_over / base > 1.0, "SHA overhead must dominate the call");
        // And throughput: at moderate PPN (crypto not yet memory-bound)
        // AES sustains more than SHA.
        let a = alloc(2, 4);
        let aes = throughput_per_node(&a, MIB16, Some(&CryptoRates::aes_ni_paper()));
        let sha = throughput_per_node(&a, MIB16, Some(&CryptoRates::sha1_paper()));
        assert!(
            aes / sha > 1.1,
            "aes {:.2} vs sha {:.2} GB/s",
            aes / 1e9,
            sha / 1e9
        );
    }

    #[test]
    fn ppn_scaling_rises_then_node_scaling_declines() {
        // The Fig. 7 shape: throughput grows with PPN on two nodes, peaks
        // at full PPN, and declines gently as nodes are added.
        let up = [
            throughput_per_node(&alloc(2, 2), MIB16, None),
            throughput_per_node(&alloc(2, 8), MIB16, None),
            throughput_per_node(&alloc(2, 36), MIB16, None),
        ];
        assert!(up[0] < up[1] && up[1] < up[2], "{up:?}");
        let down = [
            throughput_per_node(&alloc(2, 36), MIB16, None),
            throughput_per_node(&alloc(8, 36), MIB16, None),
            throughput_per_node(&alloc(32, 36), MIB16, None),
        ];
        assert!(down[0] > down[1] && down[1] > down[2], "{down:?}");
        // But the decline is gentle, not a collapse.
        assert!(down[2] > down[0] * 0.6);
    }

    #[test]
    fn latency_grows_with_rank_count_and_noise_widens() {
        let msg = 16.0;
        let small = latency_with_noise(&alloc(2, 1), msg, None);
        let large = latency_with_noise(&alloc(32, 36), msg, None);
        assert!(large.mean > small.mean);
        let small_band = (small.max - small.min) / small.mean;
        let large_band = (large.max - large.min) / large.mean;
        assert!(large_band > small_band, "noise must widen with scale");
    }

    #[test]
    fn hear_latency_overhead_hides_in_noise_at_scale() {
        // Fig. 8's observation: at high rank counts the HEAR overhead is
        // smaller than the native jitter band.
        let a = alloc(32, 36);
        let native = latency_with_noise(&a, 16.0, None);
        let hear = latency_with_noise(&a, 16.0, Some(&CryptoRates::aes_ni_paper()));
        assert!(hear.mean > native.mean);
        assert!(
            hear.mean < native.max,
            "overhead must sit inside the noise band"
        );
    }

    #[test]
    fn single_rank_edge_cases() {
        assert_eq!(ring_allreduce_time(&alloc(1, 1), MIB16, None), 0.0);
        assert!(rd_allreduce_time(&alloc(1, 1), 16.0, None) == 0.0);
        let c = CryptoRates::aes_ni_paper();
        assert!(ring_allreduce_time(&alloc(1, 1), MIB16, Some(&c)) > 0.0);
    }

    #[test]
    fn efficiency_monotone() {
        assert_eq!(network_efficiency(1), 1.0);
        assert_eq!(network_efficiency(2), 1.0);
        assert!(network_efficiency(4) < 1.0);
        assert!(network_efficiency(32) < network_efficiency(8));
        assert!(network_efficiency(1 << 20) >= 0.70);
    }
}

/// Which allreduce algorithm the model predicts to be faster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    RecursiveDoubling,
    Ring,
}

/// Pick the faster algorithm for a message size (the latency/bandwidth
/// crossover every MPI implementation encodes; Cray MPICH switches in the
/// kilobyte range).
pub fn best_algorithm(a: &Allocation, msg: f64, crypto: Option<&CryptoRates>) -> Algo {
    if rd_allreduce_time(a, msg, crypto) <= ring_allreduce_time(a, msg, crypto) {
        Algo::RecursiveDoubling
    } else {
        Algo::Ring
    }
}

/// Binary-search the message size where ring overtakes recursive doubling.
pub fn crossover_bytes(a: &Allocation, crypto: Option<&CryptoRates>) -> f64 {
    let (mut lo, mut hi) = (16.0f64, 64.0 * 1024.0 * 1024.0);
    if best_algorithm(a, lo, crypto) == Algo::Ring {
        return lo;
    }
    if best_algorithm(a, hi, crypto) == Algo::RecursiveDoubling {
        return hi;
    }
    for _ in 0..64 {
        let mid = (lo * hi).sqrt();
        if best_algorithm(a, mid, crypto) == Algo::RecursiveDoubling {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

#[cfg(test)]
mod crossover_tests {
    use super::*;

    fn alloc(nodes: usize, ppn: usize) -> Allocation {
        Allocation {
            machine: Machine::piz_daint(),
            nodes,
            ppn,
        }
    }

    #[test]
    fn small_messages_prefer_recursive_doubling() {
        let a = alloc(8, 36);
        assert_eq!(best_algorithm(&a, 16.0, None), Algo::RecursiveDoubling);
        assert_eq!(
            best_algorithm(&a, 16.0 * 1024.0 * 1024.0, None),
            Algo::Ring,
            "16 MiB must use the bandwidth-optimal ring"
        );
    }

    #[test]
    fn crossover_in_a_plausible_band() {
        // MPI implementations switch somewhere between a few KiB and a few
        // hundred KiB depending on scale.
        for (nodes, ppn) in [(2usize, 36usize), (8, 36), (32, 36)] {
            let x = crossover_bytes(&alloc(nodes, ppn), None);
            assert!(
                (256.0..8.0 * 1024.0 * 1024.0).contains(&x),
                "crossover {x} out of band at {nodes}x{ppn}"
            );
        }
    }

    #[test]
    fn crypto_shifts_crossover_modestly() {
        let a = alloc(8, 36);
        let plain = crossover_bytes(&a, None);
        let hear = crossover_bytes(&a, Some(&CryptoRates::aes_ni_paper()));
        // HEAR adds per-byte cost to both algorithms; the crossover moves
        // but stays in the same order of magnitude.
        assert!(hear / plain < 10.0 && plain / hear < 10.0);
    }
}
