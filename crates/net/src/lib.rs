//! # hear-net — cluster performance model (the Piz Daint substitute)
//!
//! Evaluates allreduce cost formulas (ring, recursive doubling) over a
//! parameterized machine ([`Machine`], defaults = the paper's testbed)
//! with HEAR's crypto costs ([`CryptoRates`], either the paper's numbers
//! or rates measured on this host) layered on top. Used by the Fig. 7/8
//! scaling harnesses and by `hear-dnn` for the Fig. 9 training study.

pub mod machine;
pub mod model;
pub mod probe;

pub use machine::{CryptoRates, Machine};
pub use model::{
    best_algorithm, crossover_bytes, latency_with_noise, network_efficiency, rd_allreduce_time,
    ring_allreduce_time, throughput_per_node, Algo, Allocation, LatencyPoint,
};
pub use probe::{measure_loopback, measure_loopback_default, LinkEstimate};
