//! # HEAR — Homomorphically Encrypted Allreduce
//!
//! A from-scratch Rust reproduction of *HEAR: Homomorphically Encrypted
//! Allreduce* (Chrapek, Khalilov, Hoefler — SC '23): the first
//! high-performance system for securing in-network compute (INC) and
//! MPI Allreduce with homomorphic encryption.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`core`] ([`hear_core`]) — the encryption schemes: integer
//!   SUM/PROD/XOR on rings (lossless, IND-CPA), fixed point, the HFP
//!   float schemes (SUM v1/v2, PROD; COA), key generation/progression,
//!   HoMAC result verification, and the MAP-adversary estimator.
//! * [`hfp`] ([`hear_hfp`]) — the ring-exponent floating-point format.
//! * [`prf`] ([`hear_prf`]) — AES-128 (software + AES-NI) and SHA-1 PRFs.
//! * [`mpi`] ([`hear_mpi`]) — a thread-backed MPI-like runtime with an
//!   in-network switch aggregation tree.
//! * [`layer`] ([`hear_layer`]) — the libhear interposition layer:
//!   transparent encrypted Allreduce, memory pool, pipelining.
//! * [`net`] ([`hear_net`]) — the Piz Daint performance model behind the
//!   scaling figures.
//! * [`dnn`] ([`hear_dnn`]) — the DNN-training proxy workloads of §7.2.
//! * [`num`] ([`hear_num`]) — exact arithmetic (MPFR/GMP substitute).
//! * [`baselines`] ([`hear_baselines`]) — Paillier/RSA/ElGamal for the
//!   requirements comparison.
//! * [`telemetry`] ([`hear_telemetry`]) — zero-dependency tracing and
//!   metrics: spans, counters, chrome-trace/Prometheus/JSON exporters
//!   (set `HEAR_TRACE=1`).
//!
//! ## Quickstart
//!
//! ```
//! use hear::layer::SecureComm;
//! use hear::core::{Backend, CommKeys};
//! use hear::mpi::Simulator;
//!
//! // Four ranks; each contributes a vector; the network (untrusted!)
//! // only ever sees ciphertexts.
//! let sums = Simulator::new(4).run(|comm| {
//!     let keys = CommKeys::generate(4, 0x5eed, Backend::best_available())
//!         .into_iter()
//!         .nth(comm.rank())
//!         .unwrap();
//!     let mut secure = SecureComm::new(comm.clone(), keys);
//!     secure.allreduce_sum_i32(&[comm.rank() as i32 + 1, 10])
//! });
//! assert!(sums.iter().all(|v| *v == vec![10, 40]));
//! ```

pub use hear_baselines as baselines;
pub use hear_core as core;
pub use hear_dnn as dnn;
pub use hear_hfp as hfp;
pub use hear_layer as layer;
pub use hear_mpi as mpi;
pub use hear_net as net;
pub use hear_num as num;
pub use hear_prf as prf;
pub use hear_telemetry as telemetry;
