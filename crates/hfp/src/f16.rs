//! Soft IEEE-754 half precision (`binary16`).
//!
//! The paper's Fig. 3 and Table 3 cover FP16 workloads; Rust has no stable
//! `f16`, so this module provides the conversions and the native reference
//! arithmetic (add/mul computed in `f64` and rounded back, which is exact
//! for multiplication and correct to within a double-rounding corner case
//! for addition — far below the precision-loss signal being measured).

/// An IEEE-754 binary16 value stored in its bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F16(pub u16);

impl F16 {
    pub const ZERO: F16 = F16(0);
    pub const ONE: F16 = F16(0x3c00);

    /// Convert from `f64` with round-to-nearest-even, handling subnormals
    /// and overflow-to-infinity.
    pub fn from_f64(v: f64) -> F16 {
        if v.is_nan() {
            return F16(0x7e00);
        }
        let sign = if v.is_sign_negative() { 0x8000u16 } else { 0 };
        let a = v.abs();
        if a.is_infinite() || a >= 65520.0 {
            // Values ≥ 65520 round to +inf in f16.
            return F16(sign | 0x7c00);
        }
        if a == 0.0 {
            return F16(sign);
        }
        if a < f64::powi(2.0, -24) {
            // Below half the smallest subnormal: rounds to zero... except
            // exactly 2^-25 with sticky rounds to 0; values in
            // (2^-25, 2^-24) round to the smallest subnormal.
            if a <= f64::powi(2.0, -25) {
                return F16(sign);
            }
            return F16(sign | 1);
        }
        if a < f64::powi(2.0, -14) {
            // Subnormal range: value = m × 2^-24, m in [1, 1024).
            let scaled = a * f64::powi(2.0, 24);
            let m = scaled.round_ties_even() as u16;
            if m >= 1024 {
                // Rounded up into the normal range.
                return F16(sign | 0x0400);
            }
            return F16(sign | m);
        }
        // Normal range: find the exponent and round the 10-bit mantissa.
        let bits = a.to_bits();
        let e = ((bits >> 52) as i64) - 1023; // a is normal f64 here
        let frac = bits & ((1u64 << 52) - 1);
        // Round 52-bit fraction to 10 bits.
        let keep = (frac >> 42) as u16;
        let round = (frac >> 41) & 1;
        let sticky = frac & ((1u64 << 41) - 1);
        let mut m = keep;
        let mut e16 = e + 15;
        if round == 1 && (sticky != 0 || m & 1 == 1) {
            m += 1;
            if m == 1024 {
                m = 0;
                e16 += 1;
            }
        }
        if e16 >= 31 {
            return F16(sign | 0x7c00);
        }
        F16(sign | ((e16 as u16) << 10) | m)
    }

    pub fn from_f32(v: f32) -> F16 {
        Self::from_f64(v as f64)
    }

    pub fn to_f64(self) -> f64 {
        let sign = if self.0 & 0x8000 != 0 { -1.0 } else { 1.0 };
        let e = ((self.0 >> 10) & 0x1f) as i32;
        let m = (self.0 & 0x3ff) as f64;
        match e {
            0 => sign * m * f64::powi(2.0, -24),
            31 => {
                if m == 0.0 {
                    sign * f64::INFINITY
                } else {
                    f64::NAN
                }
            }
            _ => sign * (1024.0 + m) * f64::powi(2.0, e - 15 - 10),
        }
    }

    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    pub fn is_nan(self) -> bool {
        (self.0 >> 10) & 0x1f == 31 && self.0 & 0x3ff != 0
    }

    pub fn is_infinite(self) -> bool {
        self.0 & 0x7fff == 0x7c00
    }

    pub fn is_finite(self) -> bool {
        (self.0 >> 10) & 0x1f != 31
    }

    /// Native f16 addition (computed exactly in f64, rounded once back).
    #[allow(clippy::should_implement_trait)] // named after the MPI op, not std::ops
    pub fn add(self, other: F16) -> F16 {
        F16::from_f64(self.to_f64() + other.to_f64())
    }

    /// Native f16 multiplication (exact in f64, single rounding back).
    #[allow(clippy::should_implement_trait)] // named after the MPI op, not std::ops
    pub fn mul(self, other: F16) -> F16 {
        F16::from_f64(self.to_f64() * other.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_constants() {
        assert_eq!(F16::from_f64(1.0).0, 0x3c00);
        assert_eq!(F16::from_f64(-2.0).0, 0xc000);
        assert_eq!(F16::from_f64(0.5).0, 0x3800);
        assert_eq!(F16::from_f64(65504.0).0, 0x7bff); // f16::MAX
        assert_eq!(F16::from_f64(f64::powi(2.0, -14)).0, 0x0400); // min normal
        assert_eq!(F16::from_f64(f64::powi(2.0, -24)).0, 0x0001); // min subnormal
        assert_eq!(F16::from_f64(0.0).0, 0x0000);
        assert_eq!(F16::from_f64(-0.0).0, 0x8000);
    }

    #[test]
    fn infinity_and_nan() {
        assert!(F16::from_f64(1e10).is_infinite());
        assert!(F16::from_f64(f64::INFINITY).is_infinite());
        assert!(F16::from_f64(f64::NAN).is_nan());
        assert!(F16::from_f64(65520.0).is_infinite());
        assert!(!F16::from_f64(65519.9).is_infinite());
    }

    #[test]
    fn roundtrip_all_finite_bit_patterns() {
        // Exhaustive: every finite f16 converts to f64 and back unchanged.
        for bits in 0..=0xffffu16 {
            let h = F16(bits);
            if !h.is_finite() {
                continue;
            }
            let back = F16::from_f64(h.to_f64());
            // -0 and +0 both map to themselves.
            assert_eq!(back.0, bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10: ties to even → 1.0.
        assert_eq!(F16::from_f64(1.0 + f64::powi(2.0, -11)).0, 0x3c00);
        // 1 + 3×2^-11 is halfway between 1+2^-10 and 1+2^-9: ties to even → 1+2^-9.
        assert_eq!(F16::from_f64(1.0 + 3.0 * f64::powi(2.0, -11)).0, 0x3c02);
        // Slightly above the tie rounds up.
        assert_eq!(F16::from_f64(1.0 + f64::powi(2.0, -11) * 1.001).0, 0x3c01);
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // Largest value below 2.0 plus a nudge rounds to 2.0.
        assert_eq!(F16::from_f64(1.9999).0, 0x4000);
    }

    #[test]
    fn subnormal_arithmetic() {
        let tiny = F16::from_f64(f64::powi(2.0, -24));
        let sum = tiny.add(tiny);
        assert_eq!(sum.to_f64(), f64::powi(2.0, -23));
    }

    #[test]
    fn add_and_mul_match_expected() {
        let a = F16::from_f64(1.5);
        let b = F16::from_f64(2.25);
        assert_eq!(a.add(b).to_f64(), 3.75);
        assert_eq!(a.mul(b).to_f64(), 3.375);
        // Rounding case: 1/3 is inexact.
        let third = F16::from_f64(1.0 / 3.0);
        assert!((third.to_f64() - 1.0 / 3.0).abs() < f64::powi(2.0, -11));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn from_f64_error_within_half_ulp(m in 1.0f64..2.0, e in -14i32..15) {
            let v = m * f64::powi(2.0, e);
            let h = F16::from_f64(v);
            prop_assert!((h.to_f64() - v).abs() <= f64::powi(2.0, e - 11));
        }

        #[test]
        fn sign_symmetry(m in 1.0f64..2.0, e in -14i32..15) {
            let v = m * f64::powi(2.0, e);
            prop_assert_eq!(F16::from_f64(-v).0, F16::from_f64(v).0 | 0x8000);
        }
    }
}
