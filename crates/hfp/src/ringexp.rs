//! Ring arithmetic on exponents (paper §5.3.5).
//!
//! HFP exponents are two's-complement integers that live on the ring
//! `Z_{2^w}` so that adding encryption noise wraps instead of saturating
//! (a saturating cap such as IEEE's infinity exponent would let an adversary
//! anchor the ring — §5.3.5's rainbow-table argument). Comparison of two
//! ring exponents is performed with the paper's two-difference trick: of
//! `e1 ⊖ e2` and `e2 ⊖ e1`, the smaller difference is the true gap and the
//! minuend of that difference is the larger exponent.

use std::cmp::Ordering;

/// Mask for a `w`-bit ring (1 ≤ w ≤ 64).
#[inline]
pub fn mask(w: u32) -> u64 {
    debug_assert!((1..=64).contains(&w));
    if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// `a + b` on the `w`-bit ring.
#[inline]
pub fn ring_add(a: u64, b: u64, w: u32) -> u64 {
    a.wrapping_add(b) & mask(w)
}

/// `a - b` on the `w`-bit ring.
#[inline]
pub fn ring_sub(a: u64, b: u64, w: u32) -> u64 {
    a.wrapping_sub(b) & mask(w)
}

/// `-a` on the `w`-bit ring.
#[inline]
pub fn ring_neg(a: u64, w: u32) -> u64 {
    a.wrapping_neg() & mask(w)
}

/// Embed a signed value into the `w`-bit ring (two's complement).
#[inline]
pub fn ring_from_i64(v: i64, w: u32) -> u64 {
    (v as u64) & mask(w)
}

/// Interpret a `w`-bit ring element as a signed (two's complement) value.
#[inline]
pub fn to_signed(v: u64, w: u32) -> i64 {
    let m = mask(w);
    let v = v & m;
    if w < 64 && (v >> (w - 1)) & 1 == 1 {
        (v | !m) as i64
    } else {
        v as i64
    }
}

/// Sign-extend a two's-complement value from width `from_w` to width `to_w`.
#[inline]
pub fn sign_extend(v: u64, from_w: u32, to_w: u32) -> u64 {
    debug_assert!(from_w <= to_w);
    ring_from_i64(to_signed(v, from_w), to_w)
}

/// The paper's ring comparison: returns the ordering of `e1` relative to
/// `e2` and the magnitude gap between them.
///
/// Ties at exactly half the ring (where both differences are equal) are
/// resolved as `e1 ≥ e2`; the δ=2 headroom of the addition scheme ensures
/// honest ciphertexts never reach that point.
#[inline]
pub fn ring_cmp(e1: u64, e2: u64, w: u32) -> (Ordering, u64) {
    let d12 = ring_sub(e1, e2, w);
    if d12 == 0 {
        return (Ordering::Equal, 0);
    }
    let d21 = ring_sub(e2, e1, w);
    if d12 <= d21 {
        (Ordering::Greater, d12)
    } else {
        (Ordering::Less, d21)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(5), 31);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn ring_ops_wrap() {
        assert_eq!(ring_add(30, 5, 5), 3); // 35 mod 32
        assert_eq!(ring_sub(2, 5, 5), 29);
        assert_eq!(ring_neg(1, 5), 31);
        assert_eq!(ring_neg(0, 5), 0);
    }

    #[test]
    fn signed_roundtrip() {
        for w in [4u32, 5, 8, 13, 63, 64] {
            for v in [-3i64, -1, 0, 1, 5] {
                assert_eq!(to_signed(ring_from_i64(v, w), w), v, "w={w} v={v}");
            }
        }
        assert_eq!(to_signed(0b1000, 4), -8);
        assert_eq!(to_signed(0b0111, 4), 7);
    }

    #[test]
    fn sign_extension() {
        // -3 in 4 bits is 1101; in 6 bits it is 111101.
        assert_eq!(sign_extend(0b1101, 4, 6), 0b111101);
        assert_eq!(sign_extend(0b0101, 4, 6), 0b000101);
        assert_eq!(to_signed(sign_extend(0b1000, 4, 8), 8), -8);
    }

    #[test]
    fn paper_example_ring_compare() {
        // §5.3.5: l_e = 4, arithmetic mod 2^5 = 32, e1 = 2, e2 = 21:
        // e1 - e2 = 13, e2 - e1 = 19, so e1 > e2 with gap 13.
        let (ord, gap) = ring_cmp(2, 21, 5);
        assert_eq!(ord, Ordering::Greater);
        assert_eq!(gap, 13);
        let (ord, gap) = ring_cmp(21, 2, 5);
        assert_eq!(ord, Ordering::Less);
        assert_eq!(gap, 13);
    }

    #[test]
    fn compare_equal_and_adjacent() {
        assert_eq!(ring_cmp(7, 7, 5), (Ordering::Equal, 0));
        assert_eq!(ring_cmp(0, 31, 5), (Ordering::Greater, 1)); // wraps
        assert_eq!(ring_cmp(31, 0, 5), (Ordering::Less, 1));
    }

    #[test]
    fn compare_is_antisymmetric_off_tie() {
        for e1 in 0u64..32 {
            for e2 in 0u64..32 {
                let (o12, g12) = ring_cmp(e1, e2, 5);
                let (o21, g21) = ring_cmp(e2, e1, 5);
                assert_eq!(g12, g21);
                if g12 != 16 && e1 != e2 {
                    assert_eq!(o12, o21.reverse(), "e1={e1} e2={e2}");
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn add_sub_inverse(a in any::<u64>(), b in any::<u64>(), w in 1u32..=64) {
            let a = a & mask(w);
            let b = b & mask(w);
            prop_assert_eq!(ring_add(ring_sub(a, b, w), b, w), a);
        }

        #[test]
        fn compare_matches_signed_when_close(base in -1000i64..1000, off in -7i64..=7, w in 6u32..=16) {
            // When the true gap is far below the ring size, ring_cmp must
            // agree with ordinary signed comparison.
            let e1 = ring_from_i64(base, w);
            let e2 = ring_from_i64(base + off, w);
            let (ord, gap) = ring_cmp(e1, e2, w);
            prop_assert_eq!(ord, 0i64.cmp(&off), "base={} off={}", base, off);
            prop_assert_eq!(gap, off.unsigned_abs());
        }

        #[test]
        fn sign_extend_preserves_value(v in any::<i32>(), from in 33u32..48, to in 48u32..=64) {
            let r = sign_extend(ring_from_i64(v as i64, from), from, to);
            prop_assert_eq!(to_signed(r, to), v as i64);
        }
    }
}
