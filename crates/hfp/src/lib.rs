//! # hear-hfp — HEAR's homomorphic floating-point format
//!
//! HFP (paper §5.3) re-encodes floating-point numbers so that encryption can
//! shift them along a ring: the exponent becomes a two's-complement value on
//! `Z_{2^{l_e+δ}}` with genuine wraparound (no infinity cap), the mantissa
//! keeps a hidden leading one, and the homomorphic ⊗ operator (Eq. 5)
//! multiplies a plaintext by PRF-derived noise. δ is 0 for the
//! multiplicative scheme and 2 for the additive scheme (§5.3.5); γ trades
//! ciphertext inflation against mantissa precision (§5.3.1).
//!
//! Modules:
//! * [`ringexp`] — modular exponent arithmetic and the two-difference
//!   ring comparison,
//! * [`format`] — [`HfpFormat`] / [`Hfp`] encode/decode and wire layout,
//! * [`ops`] — ⊗ ([`ops::mul`]), ciphertext addition ([`ops::add`]),
//!   division/reciprocal for decryption,
//! * [`f16`] — soft IEEE binary16 for FP16 workloads.

pub mod f16;
pub mod format;
pub mod ops;
pub mod ringexp;
pub mod wire;

pub use f16::F16;
pub use format::{Hfp, HfpError, HfpFormat};
pub use wire::PackedHfp;
