//! Bit-exact wire serialization for HFP ciphertext vectors.
//!
//! The R1 requirement is about *bandwidth*: an FP32 γ=2 ciphertext is 34
//! bits and must cost 34 bits on the wire, not a rounded-up 64. This
//! module packs a ciphertext vector into a dense little-endian bitstream
//! (and back), which is also how the harnesses account inflation. Hardware
//! INC implementations would operate on exactly this layout.

use crate::format::Hfp;

/// A densely packed vector of equal-width HFP values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedHfp {
    pub ew: u32,
    pub mw: u32,
    pub len: usize,
    words: Vec<u64>,
}

impl PackedHfp {
    /// Bits per element: sign + exponent + stored mantissa.
    pub fn bits_per_element(ew: u32, mw: u32) -> u32 {
        1 + ew + mw
    }

    /// Total payload size in bytes (the bandwidth a NIC would see).
    pub fn wire_bytes(&self) -> usize {
        let bits = Self::bits_per_element(self.ew, self.mw) as usize * self.len;
        bits.div_ceil(8)
    }

    /// Pack a ciphertext slice. All elements must share the pack's widths
    /// and must be nonzero (HFP has no zero wire encoding; encoders map
    /// zero to the smallest magnitude first — see `Hfp::to_bits`).
    pub fn pack(values: &[Hfp]) -> PackedHfp {
        let (ew, mw) = values.first().map_or((8, 23), |v| (v.ew, v.mw));
        let bits = Self::bits_per_element(ew, mw) as usize;
        // fp64 addition ciphertexts (1+13+52 = 66 bits) exceed the u64
        // element path; hardware would use wider lanes there.
        assert!(bits <= 64, "elements wider than 64 bits are not packable");
        let total_bits = bits * values.len();
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        for (i, v) in values.iter().enumerate() {
            assert_eq!((v.ew, v.mw), (ew, mw), "mixed widths in one pack");
            let raw = v.to_bits();
            let raw = raw as u64 & (u64::MAX >> (64 - bits as u32));
            let bit_pos = i * bits;
            let (w, off) = (bit_pos / 64, bit_pos % 64);
            words[w] |= raw << off;
            if off + bits > 64 {
                words[w + 1] |= raw >> (64 - off);
            }
        }
        PackedHfp {
            ew,
            mw,
            len: values.len(),
            words,
        }
    }

    /// Unpack back into ciphertext values.
    pub fn unpack(&self) -> Vec<Hfp> {
        let bits = Self::bits_per_element(self.ew, self.mw) as usize;
        let mask = u64::MAX >> (64 - bits as u32);
        (0..self.len)
            .map(|i| {
                let bit_pos = i * bits;
                let (w, off) = (bit_pos / 64, bit_pos % 64);
                let mut raw = self.words[w] >> off;
                if off + bits > 64 {
                    raw |= self.words[w + 1] << (64 - off);
                }
                Hfp::from_bits((raw & mask) as u128, self.ew, self.mw)
            })
            .collect()
    }

    /// The raw words (e.g. for hashing or transport).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassemble a pack from transported raw words (the receiving side of
    /// a hardware INC path). `words` must hold at least
    /// `len × bits_per_element` bits.
    pub fn from_words(ew: u32, mw: u32, len: usize, words: Vec<u64>) -> PackedHfp {
        let bits = Self::bits_per_element(ew, mw) as usize;
        assert!(bits <= 64, "elements wider than 64 bits are not packable");
        assert!(
            words.len() * 64 >= len * bits,
            "word buffer too short for {len} elements"
        );
        PackedHfp { ew, mw, len, words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, ew: u32, mw: u32) -> Vec<Hfp> {
        (0..n)
            .map(|i| {
                let v = (i as f64 * 0.37 + 0.5).sin() * 100.0 + 101.0;
                Hfp::from_f64(v, ew, mw).unwrap()
            })
            .collect()
    }

    #[test]
    fn roundtrip_fp32_gamma2_layout() {
        // 34-bit elements straddle word boundaries constantly.
        let v = vals(100, 10, 23);
        let p = PackedHfp::pack(&v);
        assert_eq!(p.unpack(), v);
        assert_eq!(p.wire_bytes(), (34usize * 100).div_ceil(8));
    }

    #[test]
    fn roundtrip_various_widths() {
        for (ew, mw) in [(5u32, 10u32), (7, 8), (8, 23), (11, 52), (13, 50)] {
            let v = vals(33, ew, mw);
            let p = PackedHfp::pack(&v);
            assert_eq!(p.unpack(), v, "ew={ew} mw={mw}");
        }
    }

    #[test]
    fn empty_and_single() {
        let p = PackedHfp::pack(&[]);
        assert_eq!(p.len, 0);
        assert_eq!(p.wire_bytes(), 0);
        assert!(p.unpack().is_empty());
        let v = vals(1, 8, 23);
        assert_eq!(PackedHfp::pack(&v).unpack(), v);
    }

    #[test]
    fn wire_size_shows_gamma_only_inflation() {
        // 1000 FP32 plaintexts: 4000 bytes. γ=2 ciphertexts: 34 bits each
        // → 4250 bytes = exactly 2 bits/element of inflation.
        let ct = vals(1000, 10, 23);
        let packed = PackedHfp::pack(&ct);
        assert_eq!(packed.wire_bytes(), 4250);
        // γ=0 (δ=0 multiplicative layout): zero inflation.
        let ct = vals(1000, 8, 23);
        assert_eq!(PackedHfp::pack(&ct).wire_bytes(), 4000);
    }

    #[test]
    #[should_panic(expected = "mixed widths")]
    fn mixed_widths_rejected() {
        let a = Hfp::from_f64(1.0, 8, 23).unwrap();
        let b = Hfp::from_f64(1.0, 5, 10).unwrap();
        PackedHfp::pack(&[a, b]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_random(
            n in 0usize..64,
            seeds in proptest::collection::vec((1.0f64..2.0, -60i32..60, any::<bool>()), 64),
        ) {
            let v: Vec<Hfp> = seeds
                .iter()
                .take(n)
                .map(|(m, e, s)| {
                    let x = if *s { -m } else { *m } * f64::powi(2.0, *e);
                    Hfp::from_f64(x, 10, 23).unwrap()
                })
                .collect();
            let p = PackedHfp::pack(&v);
            prop_assert_eq!(p.unpack(), v);
        }
    }
}
