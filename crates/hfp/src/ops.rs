//! Arithmetic on HFP values: the homomorphic ⊗ operator (Eq. 5), the
//! ciphertext-domain addition executed by the network (§5.3.5), and the
//! division used for decryption (Table 3's "De-noise / Divide" row).
//!
//! All exponent updates happen on the ring; nothing in this module caps or
//! saturates an exponent — that is the security-critical property of HFP.

use crate::format::Hfp;
use crate::ringexp::{ring_add, ring_cmp, ring_from_i64, ring_sub, sign_extend};
use std::cmp::Ordering;

/// Normalize an exact intermediate significand `r` (an integer, any number
/// of bits up to 128) into an `mw+1`-bit significand with RTNE rounding.
///
/// The value represented is `r × 2^{base_exp} / 2^{mw}` where `base_exp` is
/// an `ew`-bit ring element; the returned `Hfp` preserves that value up to
/// rounding, with the exponent adjusted on the ring.
#[inline]
fn normalize_round(r: u128, base_exp: u64, sign: bool, ew: u32, mw: u32) -> Hfp {
    if r == 0 {
        return Hfp::zero(ew, mw);
    }
    let len = 128 - r.leading_zeros();
    let target = mw + 1;
    if len <= target {
        // Widen exactly.
        let shift = target - len;
        return Hfp {
            sign,
            exp: ring_sub(base_exp, shift as u64, ew),
            sig: (r << shift) as u64,
            ew,
            mw,
        };
    }
    // Round down to target bits.
    let drop = len - target;
    let kept = (r >> drop) as u64;
    let round = (r >> (drop - 1)) & 1;
    let sticky = r & ((1u128 << (drop - 1)) - 1);
    let mut sig = kept;
    if round == 1 && (sticky != 0 || kept & 1 == 1) {
        sig += 1;
    }
    let mut exp = ring_add(base_exp, drop as u64, ew);
    if sig >> target != 0 {
        sig >>= 1;
        exp = ring_add(exp, 1, ew);
    }
    Hfp {
        sign,
        exp,
        sig,
        ew,
        mw,
    }
}

/// The ⊗ operator (Eq. 5): signs add mod 2, exponents add on the output
/// ring, mantissas multiply with normalization into `out_mw` stored bits.
///
/// The inputs may have different widths (plaintext ⊗ noise); each input
/// exponent is sign-extended from its own width onto the output ring, which
/// is the identity once a value already lives on the ciphertext ring.
#[inline]
pub fn mul(a: &Hfp, b: &Hfp, out_ew: u32, out_mw: u32) -> Hfp {
    if a.is_zero() || b.is_zero() {
        return Hfp::zero(out_ew, out_mw);
    }
    let ea = sign_extend(a.exp, a.ew, out_ew);
    let eb = sign_extend(b.exp, b.ew, out_ew);
    let p = (a.sig as u128) * (b.sig as u128);
    // Value = p × 2^{ea+eb-mwa-mwb}; normalize_round wants base such that
    // value = p × 2^{base-out_mw}.
    let base = ring_add(
        ring_add(ea, eb, out_ew),
        ring_from_i64(out_mw as i64 - a.mw as i64 - b.mw as i64, out_ew),
        out_ew,
    );
    normalize_round(p, base, a.sign ^ b.sign, out_ew, out_mw)
}

/// Division `a / b` with the same width conventions as [`mul`]; used by
/// decryption to strip the noise.
#[inline]
pub fn div(a: &Hfp, b: &Hfp, out_ew: u32, out_mw: u32) -> Hfp {
    assert!(!b.is_zero(), "HFP division by zero");
    if a.is_zero() {
        return Hfp::zero(out_ew, out_mw);
    }
    let ea = sign_extend(a.exp, a.ew, out_ew);
    let eb = sign_extend(b.exp, b.ew, out_ew);
    // q ≈ (siga/sigb) << k, with the remainder folded into a sticky bit.
    // k guarantees ≥ out_mw+2 quotient bits while keeping the shifted
    // numerator within 128 bits even at fp64 widths (mw ≤ 52).
    let k = out_mw + 2 + b.mw.saturating_sub(a.mw);
    debug_assert!(a.mw + 1 + k < 128);
    let num = (a.sig as u128) << k;
    let q = num / b.sig as u128;
    let rem = num % b.sig as u128;
    let r = (q << 1) | u128::from(rem != 0);
    // Value = r × 2^{ea-eb-mwa+mwb-k-1}; base = that exponent + out_mw.
    let base = ring_add(
        ring_sub(ea, eb, out_ew),
        ring_from_i64(
            out_mw as i64 - a.mw as i64 + b.mw as i64 - k as i64 - 1,
            out_ew,
        ),
        out_ew,
    );
    normalize_round(r, base, a.sign ^ b.sign, out_ew, out_mw)
}

/// Reciprocal of a noise value (used by Eq. 7 decryption:
/// `F^{-1} = (-1)^{s_f} × 1/m_f × 2^{-e_f}`).
pub fn recip(b: &Hfp, out_ew: u32, out_mw: u32) -> Hfp {
    div(&Hfp::one(b.ew, b.mw), b, out_ew, out_mw)
}

/// Ciphertext-domain addition (§5.3.5) — the operation the untrusted
/// network performs. Both operands must share the same widths. Exponent
/// comparison uses the two-difference ring trick; mantissa alignment,
/// addition/subtraction and renormalization otherwise follow ordinary
/// floating-point addition, with every exponent adjustment on the ring.
#[inline]
pub fn add(a: &Hfp, b: &Hfp) -> Hfp {
    assert_eq!(
        (a.ew, a.mw),
        (b.ew, b.mw),
        "HFP addition requires equal widths"
    );
    let (ew, mw) = (a.ew, a.mw);
    if a.is_zero() {
        return *b;
    }
    if b.is_zero() {
        return *a;
    }
    // Order operands: l has the ring-larger exponent (ties by significand).
    let (ord, gap) = ring_cmp(a.exp, b.exp, ew);
    let (l, s) = match ord {
        Ordering::Greater => (a, b),
        Ordering::Less => (b, a),
        Ordering::Equal => {
            if a.sig >= b.sig {
                (a, b)
            } else {
                (b, a)
            }
        }
    };
    // Beyond mw+2 bits of misalignment the small operand only contributes
    // a sticky bit; cap the shift so the intermediate fits 128 bits.
    let gap = gap.min(mw as u64 + 3) as u32;
    let big = (l.sig as u128) << gap;
    let small = s.sig as u128;
    let (sign, r) = if l.sign == s.sign {
        (l.sign, big + small)
    } else {
        match big.cmp(&small) {
            Ordering::Greater => (l.sign, big - small),
            Ordering::Less => (s.sign, small - big),
            Ordering::Equal => return Hfp::zero(ew, mw),
        }
    };
    // Value = r × 2^{el-gap-mw} = r × 2^{base-mw} with base = el - gap.
    let base = ring_sub(l.exp, gap as u64, ew);
    normalize_round(r, base, sign, ew, mw)
}

/// Negation (sign flip; exact).
pub fn neg(a: &Hfp) -> Hfp {
    let mut out = *a;
    if !out.is_zero() {
        out.sign = !out.sign;
    }
    out
}

/// Re-round a value into different widths (e.g. demote a decrypted result
/// from the ciphertext ring back to the plaintext layout). Exponent bits
/// are truncated on the ring, which is only meaningful when the value is
/// known to fit — callers check [`Hfp::exponent`] first.
pub fn round_to(a: &Hfp, out_ew: u32, out_mw: u32) -> Hfp {
    if a.is_zero() {
        return Hfp::zero(out_ew, out_mw);
    }
    normalize_round(
        a.sig as u128,
        ring_add(
            ring_from_i64(a.exponent(), out_ew),
            ring_from_i64(out_mw as i64 - a.mw as i64, out_ew),
            out_ew,
        ),
        a.sign,
        out_ew,
        out_mw,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f64, ew: u32, mw: u32) -> Hfp {
        Hfp::from_f64(v, ew, mw).unwrap()
    }

    #[test]
    fn mul_exact_values() {
        let a = h(1.5, 8, 23);
        let b = h(2.0, 8, 23);
        assert_eq!(mul(&a, &b, 8, 23).to_f64(), 3.0);
        assert_eq!(mul(&a, &h(-4.0, 8, 23), 8, 23).to_f64(), -6.0);
        assert_eq!(mul(&h(-2.0, 8, 23), &h(-8.0, 8, 23), 8, 23).to_f64(), 16.0);
    }

    #[test]
    fn mul_mantissa_overflow_normalizes() {
        // 1.5 × 1.5 = 2.25: product of mantissas ≥ 2 ⇒ exponent +1.
        let r = mul(&h(1.5, 8, 23), &h(1.5, 8, 23), 8, 23);
        assert_eq!(r.to_f64(), 2.25);
        assert_eq!(r.exponent(), 1);
        assert!(r.is_canonical());
    }

    #[test]
    fn mul_exponent_wraps_on_ring() {
        // 2^100 × 2^100 wraps the 8-bit ring: 200 mod 256 = 200 → signed -56.
        let a = Hfp {
            sign: false,
            exp: ring_from_i64(100, 8),
            sig: 1 << 23,
            ew: 8,
            mw: 23,
        };
        let r = mul(&a, &a, 8, 23);
        assert_eq!(r.exponent(), to_signed_check(200, 8));
        assert!(r.is_canonical());
    }

    fn to_signed_check(v: i64, w: u32) -> i64 {
        crate::ringexp::to_signed(ring_from_i64(v, w), w)
    }

    #[test]
    fn mul_widening_plaintext_times_noise() {
        // Plaintext (8,23) ⊗ noise (10,23) → ciphertext (10,23): the
        // paper's FP32 addition layout with γ=2.
        let x = h(3.75, 8, 23);
        let noise = h(1.25 * f64::powi(2.0, 200), 10, 23);
        let c = mul(&x, &noise, 10, 23);
        assert_eq!((c.ew, c.mw), (10, 23));
        // Decrypting recovers the plaintext.
        let back = div(&c, &noise, 10, 23);
        assert_eq!(back.to_f64(), 3.75);
    }

    #[test]
    fn div_exact() {
        assert_eq!(div(&h(12.0, 8, 23), &h(4.0, 8, 23), 8, 23).to_f64(), 3.0);
        assert_eq!(div(&h(1.0, 8, 23), &h(2.0, 8, 23), 8, 23).to_f64(), 0.5);
        assert_eq!(div(&h(-9.0, 8, 23), &h(3.0, 8, 23), 8, 23).to_f64(), -3.0);
    }

    #[test]
    fn div_rounds_to_nearest() {
        // 1/3 in (8,23): compare against f32 semantics (same mantissa width).
        let r = div(&h(1.0, 8, 23), &h(3.0, 8, 23), 8, 23);
        assert_eq!(r.to_f64(), (1.0f32 / 3.0f32) as f64);
    }

    #[test]
    fn recip_matches_div() {
        let b = h(1.7, 10, 21);
        let r1 = recip(&b, 10, 21);
        let r2 = div(&Hfp::one(10, 21), &b, 10, 21);
        assert_eq!(r1, r2);
        // recip(recip(x)) ≈ x.
        let back = recip(&r1, 10, 21);
        let rel = (back.to_f64() - 1.7).abs() / 1.7;
        assert!(rel < 1e-5, "rel {rel}");
    }

    #[test]
    fn add_basic() {
        assert_eq!(add(&h(1.5, 8, 23), &h(2.25, 8, 23)).to_f64(), 3.75);
        assert_eq!(add(&h(-1.5, 8, 23), &h(1.5, 8, 23)).to_f64(), 0.0);
        assert_eq!(add(&h(-1.5, 8, 23), &h(0.5, 8, 23)).to_f64(), -1.0);
        assert_eq!(add(&h(4.0, 8, 23), &Hfp::zero(8, 23)).to_f64(), 4.0);
        assert_eq!(add(&Hfp::zero(8, 23), &h(4.0, 8, 23)).to_f64(), 4.0);
    }

    #[test]
    fn add_matches_f32_on_random_pairs() {
        // (8,23) addition must agree with IEEE f32 for in-range normals.
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let a = f32::from_bits((next() as u32 & 0x3fff_ffff) | 0x2000_0000);
            let b = f32::from_bits((next() as u32 & 0x3fff_ffff) | 0x2000_0000);
            if !a.is_normal() || !b.is_normal() {
                continue;
            }
            let r = add(&h(a as f64, 8, 23), &h(b as f64, 8, 23));
            let expect = a + b;
            if expect.is_normal() {
                assert_eq!(r.to_f64(), expect as f64, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_with_large_gap_keeps_big_operand() {
        let big = h(f64::powi(2.0, 30), 10, 23);
        let tiny = h(f64::powi(2.0, -30), 10, 23);
        let r = add(&big, &tiny);
        assert_eq!(r.to_f64(), f64::powi(2.0, 30));
    }

    #[test]
    fn add_cancellation_normalizes() {
        // 1.0 + (-0.9999999) leaves a tiny result requiring a long left
        // shift; (8,23) mirrors f32.
        let a = 1.0f32;
        let b = -0.999_999_94f32; // 1 - 2^-24 ≈ largest f32 below 1
        let r = add(&h(a as f64, 8, 23), &h(b as f64, 8, 23));
        assert_eq!(r.to_f64(), (a + b) as f64);
    }

    #[test]
    fn add_ring_ordering_across_wrap() {
        // Exponents 130 and -120 on an 8-bit ring: signed values wrap, but
        // the ring comparison still identifies the closer/larger operand as
        // long as the true gap is below half the ring. Gap here: 130-(-120)
        // = 250 > 128 — deliberately ambiguous, so instead test a valid one:
        // exponents 100 and 120 (gap 20).
        let a = Hfp {
            sign: false,
            exp: ring_from_i64(120, 8),
            sig: 1 << 23,
            ew: 8,
            mw: 23,
        };
        let b = Hfp {
            sign: false,
            exp: ring_from_i64(100, 8),
            sig: 1 << 23,
            ew: 8,
            mw: 23,
        };
        let r = add(&a, &b);
        // 2^120 + 2^100 ≈ 2^120 (the 2^100 is far below the mantissa).
        assert_eq!(r.exponent(), 120);
    }

    #[test]
    fn add_commutes() {
        let xs = [1.5, -2.25, 1024.0, 3.0e-5, -7.0];
        for &x in &xs {
            for &y in &xs {
                let a = h(x, 10, 21);
                let b = h(y, 10, 21);
                assert_eq!(add(&a, &b), add(&b, &a), "x={x} y={y}");
            }
        }
    }

    #[test]
    fn neg_flips_sign_only() {
        let a = h(2.5, 8, 23);
        assert_eq!(neg(&a).to_f64(), -2.5);
        assert_eq!(neg(&neg(&a)), a);
        assert_eq!(neg(&Hfp::zero(8, 23)), Hfp::zero(8, 23));
    }

    #[test]
    fn round_to_demotes() {
        let wide = h(1.0 + f64::powi(2.0, -20), 10, 23);
        let narrow = round_to(&wide, 5, 10);
        assert_eq!(narrow.to_f64(), 1.0);
        assert_eq!((narrow.ew, narrow.mw), (5, 10));
    }

    #[test]
    fn table3_mul_example() {
        // Table 3 (MPI_PROD, half precision): rank 1 value 1.125×2^9 with
        // noise 1.75×2^22 encrypts to 1.969×2^31 — but the printed table
        // shows the product path; here verify the core identity
        // enc = x ⊗ n and dec = enc ⊘ n restores x.
        // The noise exponent 22 lives on the 5-bit ring (wraps to signed
        // -10): noise is constructed directly, never via from_f64.
        let x = h(1.125 * f64::powi(2.0, 9), 5, 10);
        let n = Hfp {
            sign: false,
            exp: ring_from_i64(22, 5),
            sig: (1 << 10) | 0b11_0000_0000, // 1.75 in 10 mantissa bits
            ew: 5,
            mw: 10,
        };
        let c = mul(&x, &n, 5, 10);
        assert!(c.is_canonical());
        let back = div(&c, &n, 5, 10);
        assert_eq!(back.to_f64(), 1.125 * f64::powi(2.0, 9));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn hfp32(m: f64, e: i32, neg: bool) -> Hfp {
        let v = if neg { -m } else { m } * f64::powi(2.0, e);
        Hfp::from_f64(v, 8, 23).unwrap()
    }

    proptest! {
        #[test]
        fn mul_matches_f64_within_ulp(
            ma in 1.0f64..2.0, ea in -30i32..30, na in any::<bool>(),
            mb in 1.0f64..2.0, eb in -30i32..30, nb in any::<bool>(),
        ) {
            let a = hfp32(ma, ea, na);
            let b = hfp32(mb, eb, nb);
            let r = mul(&a, &b, 8, 23).to_f64();
            let expect = a.to_f64() * b.to_f64();
            let ulp = expect.abs() * f64::powi(2.0, -23);
            prop_assert!((r - expect).abs() <= ulp, "r={} expect={}", r, expect);
        }

        #[test]
        fn add_matches_f64_within_ulp(
            ma in 1.0f64..2.0, ea in -20i32..20, na in any::<bool>(),
            mb in 1.0f64..2.0, eb in -20i32..20, nb in any::<bool>(),
        ) {
            let a = hfp32(ma, ea, na);
            let b = hfp32(mb, eb, nb);
            let r = add(&a, &b).to_f64();
            let expect = a.to_f64() + b.to_f64();
            let scale = a.to_f64().abs().max(b.to_f64().abs());
            prop_assert!((r - expect).abs() <= scale * f64::powi(2.0, -23));
        }

        #[test]
        fn mul_div_roundtrip(
            ma in 1.0f64..2.0, ea in -30i32..30,
            mb in 1.0f64..2.0, eb in -30i32..30,
        ) {
            let a = hfp32(ma, ea, false);
            let b = hfp32(mb, eb, false);
            let r = div(&mul(&a, &b, 10, 25), &b, 10, 25);
            let rel = (r.to_f64() - a.to_f64()).abs() / a.to_f64();
            // Two roundings at 25-bit mantissa.
            prop_assert!(rel <= f64::powi(2.0, -24), "rel={}", rel);
        }

        #[test]
        fn results_are_canonical(
            ma in 1.0f64..2.0, ea in -30i32..30, na in any::<bool>(),
            mb in 1.0f64..2.0, eb in -30i32..30, nb in any::<bool>(),
        ) {
            let a = hfp32(ma, ea, na);
            let b = hfp32(mb, eb, nb);
            prop_assert!(mul(&a, &b, 8, 23).is_canonical());
            prop_assert!(add(&a, &b).is_canonical());
            prop_assert!(div(&a, &b, 8, 23).is_canonical());
        }
    }
}
