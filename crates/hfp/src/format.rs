//! The HFP number format (paper §5.3, Eq. 4–5).
//!
//! An HFP value is `(-1)^sign × 1.m × 2^e` with
//!
//! * a sign bit,
//! * an exponent `e` stored in two's complement on a ring of width `ew`
//!   bits (no bias, no infinity cap — see [`crate::ringexp`]),
//! * a hidden-one mantissa of `mw` stored bits.
//!
//! Plaintext values use widths `(l_e, l_m)`; ciphertexts use
//! `(l_e + δ, l_m − δ + γ)` so the total ciphertext size is exactly γ bits
//! larger than the plaintext (the paper's inflation knob). `δ = 0` for the
//! multiplicative scheme and `δ = 2` for the additive scheme.

use crate::ringexp::{mask, ring_from_i64, to_signed};

/// Errors raised by HFP encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HfpError {
    /// NaN and ±∞ are unsupported by design (§5.3.6): a special cap would
    /// anchor the exponent ring and break the security argument.
    NonFinite,
    /// The value's exponent does not fit the two's-complement exponent
    /// field (signed value attached for diagnostics).
    ExponentOverflow(i64),
}

impl std::fmt::Display for HfpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HfpError::NonFinite => write!(f, "HFP cannot represent NaN or infinity"),
            HfpError::ExponentOverflow(e) => {
                write!(f, "exponent {e} does not fit the HFP exponent field")
            }
        }
    }
}

impl std::error::Error for HfpError {}

/// Static description of an HFP instantiation: plaintext widths plus the
/// δ (operation-determined) and γ (user inflation/precision trade-off)
/// parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HfpFormat {
    /// Plaintext exponent bits `l_e`.
    pub le: u32,
    /// Plaintext stored mantissa bits `l_m` (hidden one excluded).
    pub lm: u32,
    /// Exponent expansion: 0 for multiplication, 2 for addition (§5.3.5).
    pub delta: u32,
    /// Ciphertext inflation bits recovering mantissa precision (§5.3.1).
    pub gamma: u32,
}

impl HfpFormat {
    pub fn new(le: u32, lm: u32, delta: u32, gamma: u32) -> Self {
        assert!(le >= 2 && le + delta <= 16, "exponent width out of range");
        assert!(lm >= delta, "mantissa must be at least δ bits");
        assert!(
            lm <= 52,
            "plaintext mantissas above 52 bits are unsupported"
        );
        assert!(
            lm - delta + gamma <= 52,
            "ciphertext mantissas above 52 bits are unsupported"
        );
        HfpFormat {
            le,
            lm,
            delta,
            gamma,
        }
    }

    /// IEEE-half-like plaintext layout (l_e = 5, l_m = 10), as in Table 3.
    pub fn fp16(delta: u32, gamma: u32) -> Self {
        Self::new(5, 10, delta, gamma)
    }

    /// IEEE-single-like plaintext layout (l_e = 8, l_m = 23).
    pub fn fp32(delta: u32, gamma: u32) -> Self {
        Self::new(8, 23, delta, gamma)
    }

    /// IEEE-double-like plaintext layout (l_e = 11, l_m = 52). γ is capped
    /// by δ so the ciphertext significand still fits 53 bits.
    pub fn fp64(delta: u32, gamma: u32) -> Self {
        Self::new(11, 52, delta, gamma)
    }

    /// Widths of the plaintext encoding.
    pub fn plain_widths(&self) -> (u32, u32) {
        (self.le, self.lm)
    }

    /// Widths of ciphertexts and of the PRF noise (Eq. 5: `l_ef = l_e + δ`,
    /// `l_mf = l_m − δ + γ`).
    pub fn cipher_widths(&self) -> (u32, u32) {
        (self.le + self.delta, self.lm - self.delta + self.gamma)
    }

    /// Total plaintext size in bits (1 sign + exponent + mantissa).
    pub fn plain_bits(&self) -> u32 {
        1 + self.le + self.lm
    }

    /// Total ciphertext size in bits.
    pub fn cipher_bits(&self) -> u32 {
        let (ew, mw) = self.cipher_widths();
        1 + ew + mw
    }

    /// Ciphertext inflation in bits — always exactly γ.
    pub fn inflation_bits(&self) -> u32 {
        self.cipher_bits() - self.plain_bits()
    }
}

/// One HFP value. `sig` is the full significand *including* the hidden one,
/// so a finite value has `sig` in `[2^mw, 2^{mw+1})`; `sig == 0` denotes
/// exact zero (which can arise transiently from ciphertext cancellation,
/// even though the encoder never produces it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hfp {
    pub sign: bool,
    /// Exponent as a `ew`-bit ring element (two's complement semantics).
    pub exp: u64,
    /// Significand with hidden one, `mw+1` bits; 0 means value zero.
    pub sig: u64,
    pub ew: u32,
    pub mw: u32,
}

impl Hfp {
    pub fn zero(ew: u32, mw: u32) -> Self {
        Hfp {
            sign: false,
            exp: 0,
            sig: 0,
            ew,
            mw,
        }
    }

    pub fn one(ew: u32, mw: u32) -> Self {
        Hfp {
            sign: false,
            exp: 0,
            sig: 1 << mw,
            ew,
            mw,
        }
    }

    /// The smallest positive magnitude: `1.0 × 2^{-2^{ew-1}}`. Input zeros
    /// are encoded as this value (§5.3.6).
    pub fn smallest(ew: u32, mw: u32) -> Self {
        Hfp {
            sign: false,
            exp: ring_from_i64(-(1i64 << (ew - 1)), ew),
            sig: 1 << mw,
            ew,
            mw,
        }
    }

    pub fn is_zero(&self) -> bool {
        self.sig == 0
    }

    /// Check the representation invariants (used by debug assertions and
    /// property tests).
    pub fn is_canonical(&self) -> bool {
        self.exp & !mask(self.ew) == 0
            && (self.sig == 0 || (self.sig >> self.mw == 1 && self.sig >> (self.mw + 1) == 0))
    }

    /// Encode a finite `f64` into the given widths. Zero becomes
    /// [`Hfp::smallest`]; exponent underflow clamps to the smallest
    /// magnitude; exponent overflow is an error.
    #[inline]
    pub fn from_f64(v: f64, ew: u32, mw: u32) -> Result<Self, HfpError> {
        if !v.is_finite() {
            return Err(HfpError::NonFinite);
        }
        if v == 0.0 {
            return Ok(Self::smallest(ew, mw));
        }
        let sign = v < 0.0;
        let bits = v.abs().to_bits();
        let biased = (bits >> 52) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // Full 53-bit significand and unbiased exponent of the leading one.
        let (sig53, exp) = if biased == 0 {
            // Subnormal: normalize manually.
            let shift = frac.leading_zeros() as i64 - 11;
            (frac << shift, -1022 - 52 - shift + 52)
        } else {
            ((1u64 << 52) | frac, biased - 1023)
        };
        // Round the 53-bit significand to mw+1 bits (RTNE).
        let (sig, exp) = round_sig(sig53, 52, mw, exp);
        let min_e = -(1i64 << (ew - 1));
        let max_e = (1i64 << (ew - 1)) - 1;
        if exp < min_e {
            let mut s = Self::smallest(ew, mw);
            s.sign = sign;
            return Ok(s);
        }
        if exp > max_e {
            return Err(HfpError::ExponentOverflow(exp));
        }
        Ok(Hfp {
            sign,
            exp: ring_from_i64(exp, ew),
            sig,
            ew,
            mw,
        })
    }

    /// Decode to `f64`, interpreting the exponent as two's complement of
    /// width `ew`. Values beyond the f64 range saturate naturally.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let e = to_signed(self.exp, self.ew) - self.mw as i64;
        let mut r = self.sig as f64;
        let mut e = e;
        while e > 511 {
            r *= f64::powi(2.0, 511);
            e -= 511;
        }
        while e < -511 {
            r *= f64::powi(2.0, -511);
            e += 511;
        }
        r *= f64::powi(2.0, e as i32);
        if self.sign {
            -r
        } else {
            r
        }
    }

    /// Signed exponent value.
    pub fn exponent(&self) -> i64 {
        to_signed(self.exp, self.ew)
    }

    /// Pack into the on-wire layout `sign | exp | frac` (hidden one
    /// dropped). Panics on zero: the HFP wire format has no zero encoding
    /// by design — encoders map zero to the smallest magnitude first.
    pub fn to_bits(&self) -> u128 {
        assert!(!self.is_zero(), "HFP zero has no wire encoding");
        let frac = (self.sig - (1u64 << self.mw)) as u128;
        ((self.sign as u128) << (self.ew + self.mw)) | ((self.exp as u128) << self.mw) | frac
    }

    /// Unpack from the on-wire layout with the given widths.
    pub fn from_bits(bits: u128, ew: u32, mw: u32) -> Self {
        let frac = (bits & ((1u128 << mw) - 1)) as u64;
        let exp = ((bits >> mw) as u64) & mask(ew);
        let sign = (bits >> (ew + mw)) & 1 == 1;
        Hfp {
            sign,
            exp,
            sig: (1u64 << mw) | frac,
            ew,
            mw,
        }
    }
}

/// Round a significand with `from_mw` stored bits down to `to_mw` stored
/// bits, RTNE, adjusting the exponent on mantissa-carry. Widening shifts
/// left exactly. Returns `(sig, exp)`.
pub(crate) fn round_sig(sig: u64, from_mw: u32, to_mw: u32, exp: i64) -> (u64, i64) {
    if to_mw >= from_mw {
        return (sig << (to_mw - from_mw), exp);
    }
    let drop = from_mw - to_mw;
    let kept = sig >> drop;
    let round = (sig >> (drop - 1)) & 1;
    let sticky = sig & ((1u64 << (drop - 1)) - 1);
    let mut out = kept;
    if round == 1 && (sticky != 0 || kept & 1 == 1) {
        out += 1;
    }
    if out >> (to_mw + 1) != 0 {
        (out >> 1, exp + 1)
    } else {
        (out, exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_widths_match_paper() {
        // Addition on FP32 with γ=2: ciphertext exponent 10 bits,
        // mantissa 23 bits, total inflation 2 bits.
        let f = HfpFormat::fp32(2, 2);
        assert_eq!(f.cipher_widths(), (10, 23));
        assert_eq!(f.inflation_bits(), 2);
        // Multiplication (δ=0, γ=0): zero inflation.
        let f = HfpFormat::fp32(0, 0);
        assert_eq!(f.cipher_widths(), (8, 23));
        assert_eq!(f.inflation_bits(), 0);
        assert_eq!(f.plain_bits(), 32);
        assert_eq!(f.cipher_bits(), 32);
        // Table 3 half precision: l_e = 5, l_m = 10.
        let f = HfpFormat::fp16(2, 0);
        assert_eq!(f.plain_bits(), 16);
        assert_eq!(f.cipher_widths(), (7, 8));
    }

    #[test]
    #[should_panic(expected = "mantissa")]
    fn delta_larger_than_mantissa_rejected() {
        HfpFormat::new(5, 1, 2, 0);
    }

    #[test]
    fn f64_roundtrip_exact_values() {
        for v in [1.0, -1.0, 1.5, -3.25, 0.0078125, 1024.0, 1.75 * 128.0] {
            let h = Hfp::from_f64(v, 8, 23).unwrap();
            assert!(h.is_canonical());
            assert_eq!(h.to_f64(), v, "{v}");
        }
    }

    #[test]
    fn zero_becomes_smallest() {
        let h = Hfp::from_f64(0.0, 8, 23).unwrap();
        assert_eq!(h.exponent(), -128);
        assert_eq!(h.sig, 1 << 23);
        assert!(h.to_f64() > 0.0);
    }

    #[test]
    fn nan_inf_rejected() {
        assert_eq!(Hfp::from_f64(f64::NAN, 8, 23), Err(HfpError::NonFinite));
        assert_eq!(
            Hfp::from_f64(f64::INFINITY, 8, 23),
            Err(HfpError::NonFinite)
        );
    }

    #[test]
    fn exponent_overflow_detected() {
        // 2^200 does not fit an 8-bit exponent (max 127).
        let v = f64::powi(2.0, 200);
        assert_eq!(
            Hfp::from_f64(v, 8, 23),
            Err(HfpError::ExponentOverflow(200))
        );
        // But fits a 11-bit exponent.
        assert!(Hfp::from_f64(v, 11, 52).is_ok());
    }

    #[test]
    fn underflow_clamps_to_smallest() {
        let v = f64::powi(2.0, -300);
        let h = Hfp::from_f64(v, 8, 23).unwrap();
        assert_eq!(h.exponent(), -128);
        let h = Hfp::from_f64(-v, 8, 23).unwrap();
        assert!(h.sign);
    }

    #[test]
    fn subnormal_f64_handled() {
        let v = 5e-324; // smallest positive subnormal
        let h = Hfp::from_f64(v, 12, 52).unwrap();
        assert_eq!(h.to_f64(), v);
    }

    #[test]
    fn mantissa_rounding_to_narrow_format() {
        // 1 + 2^-20 rounds to 1.0 in a 10-bit mantissa.
        let v = 1.0 + f64::powi(2.0, -20);
        let h = Hfp::from_f64(v, 5, 10).unwrap();
        assert_eq!(h.to_f64(), 1.0);
        // 1 + 2^-10 is exactly representable.
        let v = 1.0 + f64::powi(2.0, -10);
        let h = Hfp::from_f64(v, 5, 10).unwrap();
        assert_eq!(h.to_f64(), v);
    }

    #[test]
    fn rounding_carry_bumps_exponent() {
        // 1.9999999 rounds up to 2.0 in a small mantissa.
        let h = Hfp::from_f64(1.999_999_9, 5, 10).unwrap();
        assert_eq!(h.to_f64(), 2.0);
        assert_eq!(h.exponent(), 1);
        assert!(h.is_canonical());
    }

    #[test]
    fn bits_roundtrip() {
        let h = Hfp::from_f64(-13.375, 8, 23).unwrap();
        let packed = h.to_bits();
        let back = Hfp::from_bits(packed, 8, 23);
        assert_eq!(back, h);
        // Bit budget is exactly 1 + ew + mw.
        assert!(packed < 1u128 << 32);
    }

    #[test]
    #[should_panic(expected = "no wire encoding")]
    fn zero_has_no_bits() {
        Hfp::zero(8, 23).to_bits();
    }

    #[test]
    fn negative_exponents_roundtrip() {
        let v = 0.015625; // 2^-6
        let h = Hfp::from_f64(v, 5, 10).unwrap();
        assert_eq!(h.exponent(), -6);
        assert_eq!(h.to_f64(), v);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn roundtrip_fp64_widths(m in 1.0f64..2.0, e in -1000i32..1000, neg in any::<bool>()) {
            let v = if neg { -m } else { m } * f64::powi(2.0, e);
            let h = Hfp::from_f64(v, 12, 52).unwrap();
            prop_assert!(h.is_canonical());
            prop_assert_eq!(h.to_f64(), v);
        }

        #[test]
        fn narrow_roundtrip_error_bounded(m in 1.0f64..2.0, e in -14i32..14) {
            // Encoding into (5,10) and back loses at most half an ulp:
            // 2^{e-11}.
            let v = m * f64::powi(2.0, e);
            let h = Hfp::from_f64(v, 5, 10).unwrap();
            let err = (h.to_f64() - v).abs();
            prop_assert!(err <= f64::powi(2.0, e - 11), "v={} err={}", v, err);
        }

        #[test]
        fn bits_roundtrip_random(m in 1.0f64..2.0, e in -120i32..120, neg in any::<bool>()) {
            let v = if neg { -m } else { m } * f64::powi(2.0, e);
            let h = Hfp::from_f64(v, 8, 23).unwrap();
            prop_assert_eq!(Hfp::from_bits(h.to_bits(), 8, 23), h);
        }
    }
}
