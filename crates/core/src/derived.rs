//! Derived operations (paper §5.4): what HEAR can and cannot compute.
//!
//! HEAR's speed comes from invertible noise, so only invertible reductions
//! are direct. This module implements the paper's workarounds and encodes
//! its impossibility results in the API:
//!
//! * `AND`/`OR` have no inverse, but ride on summation: reduce the 0/1
//!   indicator with SUM; `sum == 0` ⇒ both 0, `sum == P` ⇒ both 1,
//!   otherwise OR=1, AND=0. The indicator needs ⌈log₂(P+1)⌉ bits, the
//!   paper's O(log₂ P) ciphertext growth.
//! * Variance of a zero-mean variable: ranks square locally (inside the
//!   secure environment) and SUM-reduce `x²` — the preprocessing pattern.
//! * Mixed-mode reductions: e.g. add even ranks' data and subtract odd
//!   ranks' (negate locally, then SUM).
//! * `MIN`/`MAX` and arbitrary user functions are *rejected*: letting the
//!   network compare ciphertexts would hand an adversary a binary-search
//!   oracle on the plaintext (§5.4). [`UnsupportedOp`] spells this out.

/// Operations HEAR refuses by design, with the security rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsupportedOp {
    /// Comparisons let the network binary-search plaintexts.
    MinMax,
    /// Arbitrary functions would need FHE or TEE evaluation.
    UserDefined,
}

impl std::fmt::Display for UnsupportedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnsupportedOp::MinMax => write!(
                f,
                "MPI_MIN/MPI_MAX are insecure under HEAR: an in-network comparator \
                 gives the adversary a plaintext binary-search oracle (§5.4); \
                 use an FHE scheme or evaluate inside the TEE"
            ),
            UnsupportedOp::UserDefined => write!(
                f,
                "arbitrary MPI_Op user functions are unsupported: only single-operation \
                 reductions (or secure-environment preprocessing thereof) are allowed (§5.4)"
            ),
        }
    }
}

impl std::error::Error for UnsupportedOp {}

/// Guard used by the layer: which MPI reduction operators have a HEAR
/// scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiOp {
    Sum,
    Prod,
    Bxor,
    Lxor,
    Land,
    Lor,
    Min,
    Max,
    UserDefined,
}

impl MpiOp {
    /// Whether the operator can be reduced under HEAR, and how.
    pub fn support(self) -> Result<&'static str, UnsupportedOp> {
        match self {
            MpiOp::Sum => Ok("Eq. 1 (int/fixed) or Eq. 7 (float)"),
            MpiOp::Prod => Ok("Eq. 2 (int/fixed) or Eq. 6 (float)"),
            MpiOp::Bxor | MpiOp::Lxor => Ok("Eq. 3"),
            MpiOp::Land | MpiOp::Lor => Ok("summation encoding (§5.4, O(log P) growth)"),
            MpiOp::Min | MpiOp::Max => Err(UnsupportedOp::MinMax),
            MpiOp::UserDefined => Err(UnsupportedOp::UserDefined),
        }
    }
}

/// Encode a boolean vector for the summation-based AND/OR reduction.
pub fn encode_bools(bits: &[bool], out: &mut Vec<u32>) {
    out.clear();
    out.extend(bits.iter().map(|b| u32::from(*b)));
}

/// Decode a SUM-reduced indicator vector into (OR, AND) pairs (§5.4).
pub fn decode_logical(sums: &[u32], world: usize) -> Vec<(bool, bool)> {
    sums.iter()
        .map(|&s| {
            debug_assert!(s as usize <= world, "indicator sum exceeds world size");
            if s == 0 {
                (false, false)
            } else if s as usize == world {
                (true, true)
            } else {
                (true, false)
            }
        })
        .collect()
}

/// Bits of ciphertext growth the logical encoding costs (the paper's
/// O(log₂ P) remark): the indicator needs ⌈log₂(P+1)⌉ bits instead of 1.
pub fn logical_growth_bits(world: usize) -> u32 {
    usize::BITS - world.leading_zeros()
}

/// Local preprocessing for a variance reduction of a zero-mean variable:
/// returns the per-rank (Σx, Σx²) moment pair to SUM-reduce.
pub fn variance_moments(samples: &[f64]) -> (f64, f64) {
    let s: f64 = samples.iter().sum();
    let s2: f64 = samples.iter().map(|x| x * x).sum();
    (s, s2)
}

/// Combine globally SUM-reduced moments into (mean, variance).
pub fn moments_to_stats(sum: f64, sum_sq: f64, n: u64) -> (f64, f64) {
    let mean = sum / n as f64;
    (mean, sum_sq / n as f64 - mean * mean)
}

/// Mixed-mode preprocessing (§5.4's example): even ranks contribute `+x`,
/// odd ranks `−x`, all through the one SUM reduction.
pub fn signed_mode_encode(rank: usize, data: &[i64], out: &mut Vec<i64>) {
    out.clear();
    if rank.is_multiple_of(2) {
        out.extend_from_slice(data);
    } else {
        out.extend(data.iter().map(|v| v.wrapping_neg()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_support_matrix() {
        assert!(MpiOp::Sum.support().is_ok());
        assert!(MpiOp::Prod.support().is_ok());
        assert!(MpiOp::Bxor.support().is_ok());
        assert!(MpiOp::Land.support().is_ok());
        assert_eq!(MpiOp::Min.support(), Err(UnsupportedOp::MinMax));
        assert_eq!(MpiOp::Max.support(), Err(UnsupportedOp::MinMax));
        assert_eq!(
            MpiOp::UserDefined.support(),
            Err(UnsupportedOp::UserDefined)
        );
        // The error message carries the security rationale.
        assert!(UnsupportedOp::MinMax.to_string().contains("binary-search"));
    }

    #[test]
    fn logical_truth_table() {
        // world = 3: sums 0..=3.
        let got = decode_logical(&[0, 1, 2, 3], 3);
        assert_eq!(
            got,
            vec![(false, false), (true, false), (true, false), (true, true)]
        );
    }

    #[test]
    fn logical_encode_roundtrip_world_1() {
        let mut enc = Vec::new();
        encode_bools(&[true, false], &mut enc);
        assert_eq!(enc, vec![1, 0]);
        let got = decode_logical(&enc, 1);
        assert_eq!(got, vec![(true, true), (false, false)]);
    }

    #[test]
    fn growth_bits_is_log2() {
        assert_eq!(logical_growth_bits(1), 1);
        assert_eq!(logical_growth_bits(2), 2);
        assert_eq!(logical_growth_bits(3), 2);
        assert_eq!(logical_growth_bits(4), 3);
        assert_eq!(logical_growth_bits(1024), 11);
    }

    #[test]
    fn variance_pipeline() {
        let a = [1.0, -1.0, 2.0];
        let b = [0.5, -0.5, -2.0];
        let (sa, sa2) = variance_moments(&a);
        let (sb, sb2) = variance_moments(&b);
        let (mean, var) = moments_to_stats(sa + sb, sa2 + sb2, 6);
        let all = [1.0, -1.0, 2.0, 0.5, -0.5, -2.0];
        let m: f64 = all.iter().sum::<f64>() / 6.0;
        let v: f64 = all.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / 6.0;
        assert!((mean - m).abs() < 1e-12);
        assert!((var - v).abs() < 1e-12);
    }

    #[test]
    fn signed_mode() {
        let mut out = Vec::new();
        signed_mode_encode(0, &[5, -3], &mut out);
        assert_eq!(out, vec![5, -3]);
        signed_mode_encode(1, &[5, -3], &mut out);
        assert_eq!(out, vec![-5, 3]);
        signed_mode_encode(3, &[i64::MIN], &mut out);
        assert_eq!(out, vec![i64::MIN]); // wrapping negation of MIN
    }
}
