//! The scheme abstraction behind the single allreduce engine.
//!
//! The paper's libhear exposes one interposed `MPI_Allreduce` and picks the
//! cipher internally (§5, Table 2). This module gives that choice a type:
//! a [`Scheme`] turns a plaintext block into wire values (`mask_block`),
//! recovers plaintexts from an aggregated wire block (`unmask_block`) and
//! names the associative operation the untrusted network applies (`op`).
//! Everything else — reduction algorithm, blocked/pipelined chunking,
//! HoMAC verification — composes orthogonally on top in the layer crate's
//! engine, so a cell like "verified pipelined float sum on a switch tree"
//! needs no hand-rolled method.
//!
//! For verified mode every scheme also defines a *digest*: up to four `u64`
//! summation lanes per element that (a) ride the lossless [`IntSum`] cipher
//! regardless of the payload cipher and (b) let the receiver re-check the
//! decrypted result against the HoMAC-authenticated lane sums. Integer and
//! fixed-point digests are exact; float digests are quantized with the
//! scheme's Table 2 lossiness tolerance.

use crate::fixed::FixedCodec;
use crate::float::{FloatProd, FloatSum, FloatSumExp};
use crate::int::{IntProd, IntSum, IntXor, Scratch};
use crate::keys::CommKeys;
use crate::word::RingWord;
use hear_hfp::{Hfp, HfpError, HfpFormat};

/// Number of `u64` digest lanes per element in verified mode.
pub const DIGEST_LANES: usize = 4;

/// PRF index base for the digest side-channel: digest lanes of element `j`
/// are encrypted at indices `DIGEST_BASE + j·4 + lane`, far above any
/// payload index, so payload and digest keystreams never collide.
pub const DIGEST_BASE: u64 = 1 << 48;

/// A HEAR cipher as seen by the generic allreduce engine.
///
/// `mask_block`/`unmask_block` are block-composable: masking `[a, b]` at
/// `first` and `[c]` at `first + 2` must equal masking `[a, b, c]` at
/// `first` (pipelining relies on this, and every underlying cipher already
/// guarantees it).
pub trait Scheme {
    /// Caller-facing element type.
    type Input: Clone + Send + 'static;
    /// On-the-wire element type the network reduces.
    type Wire: Clone + Send + PartialEq + std::fmt::Debug + 'static;

    /// Stable name for telemetry and the composition matrix.
    const NAME: &'static str;
    /// Row of [`crate::properties::TABLE2`] describing this scheme.
    const TABLE2_ROW: usize;
    /// Largest world size the digest stays sound for (only [`IntXor`]'s
    /// nibble counters saturate; everything else is unbounded).
    const MAX_VERIFIED_WORLD: usize = usize::MAX;

    /// Encrypt one block; element `j` of the global vector is
    /// `input[j - first]`.
    fn mask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[Self::Input],
        out: &mut Vec<Self::Wire>,
    ) -> Result<(), HfpError>;

    /// Decrypt one aggregated block.
    fn unmask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        agg: &[Self::Wire],
        out: &mut Vec<Self::Input>,
    );

    /// The associative combiner the (untrusted) network applies. An
    /// associated function — `S::op` is a plain `fn` pointer, which every
    /// transport (including the switch tree's service threads) can carry.
    fn op(a: &Self::Wire, b: &Self::Wire) -> Self::Wire;

    /// Fill the four digest lanes for one plaintext element. Lane sums
    /// accumulate with wrapping `u64` addition across ranks.
    fn digest(&self, x: &Self::Input, out: &mut [u64; DIGEST_LANES]);

    /// Check a decrypted result element against the aggregated lane sums.
    fn digest_check(
        &self,
        result: &Self::Input,
        lane_sums: &[u64; DIGEST_LANES],
        world: usize,
    ) -> bool;

    /// Encrypt an arbitrarily long slice in one call. The default loops
    /// over [`Scheme::mask_block`] in bounded chunks through a staging
    /// vector; schemes whose masking is a single fused keystream pass
    /// override this with one direct `mask_block` call, which allocates
    /// nothing beyond `out`'s growth.
    fn mask_slice(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[Self::Input],
        out: &mut Vec<Self::Wire>,
    ) -> Result<(), HfpError> {
        out.clear();
        let mut staged = Vec::new();
        for (i, chunk) in input.chunks(SLICE_CHUNK).enumerate() {
            self.mask_block(keys, first + (i * SLICE_CHUNK) as u64, chunk, &mut staged)?;
            out.extend_from_slice(&staged);
        }
        Ok(())
    }

    /// Decrypt an arbitrarily long aggregated slice in one call; same
    /// contract and default strategy as [`Scheme::mask_slice`].
    fn unmask_slice(
        &mut self,
        keys: &CommKeys,
        first: u64,
        agg: &[Self::Wire],
        out: &mut Vec<Self::Input>,
    ) {
        out.clear();
        let mut staged = Vec::new();
        for (i, chunk) in agg.chunks(SLICE_CHUNK).enumerate() {
            self.unmask_block(keys, first + (i * SLICE_CHUNK) as u64, chunk, &mut staged);
            out.extend_from_slice(&staged);
        }
    }

    /// Byte width of the noise words this scheme draws from the payload
    /// streams (`base_own`/`base_next`/`base_zero`) when masking is a
    /// fused keystream combine — what a keystream prefetcher needs to plan
    /// block generation one epoch ahead. `None` opts the scheme out of
    /// prefetch: its noise is consumed some other way (product exponents,
    /// float codecs).
    fn noise_width(&self) -> Option<usize> {
        None
    }

    /// Encode one element as a raw `u64` cell for single-origin transport
    /// (allgather, alltoall): the data is never combined homomorphically,
    /// so the wire carries the exact bit pattern, XOR-padded on the
    /// *collective* keystream. Must be lossless:
    /// `cell_decode(cell_encode(x))` is bit-for-bit `x` for every scheme,
    /// floats included.
    fn cell_encode(x: &Self::Input) -> u64;

    /// Inverse of [`Scheme::cell_encode`].
    fn cell_decode(cell: u64) -> Self::Input;
}

/// Chunk size (elements) of the default `mask_slice`/`unmask_slice` loops.
const SLICE_CHUNK: usize = 1 << 14;

// ---------------------------------------------------------------------------
// Integer sum
// ---------------------------------------------------------------------------

/// [`IntSum`] (Eq. 1) as a [`Scheme`]; lossless, exact digest.
#[derive(Default)]
pub struct IntSumScheme<W: RingWord> {
    scratch: Scratch<W>,
}

impl<W: RingWord> IntSumScheme<W> {
    /// Wrap an existing noise scratch (the layer crate keeps one per lane
    /// width so the hot path never allocates).
    pub fn with_scratch(scratch: Scratch<W>) -> Self {
        IntSumScheme { scratch }
    }

    /// Hand the scratch back to the owner.
    pub fn into_scratch(self) -> Scratch<W> {
        self.scratch
    }
}

impl<W: RingWord> Scheme for IntSumScheme<W> {
    type Input = W;
    type Wire = W;

    const NAME: &'static str = "int-sum";
    const TABLE2_ROW: usize = 0;

    fn mask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[W],
        out: &mut Vec<W>,
    ) -> Result<(), HfpError> {
        out.clear();
        out.extend_from_slice(input);
        IntSum::encrypt_in_place(keys, first, out, &mut self.scratch);
        Ok(())
    }

    fn unmask_block(&mut self, keys: &CommKeys, first: u64, agg: &[W], out: &mut Vec<W>) {
        out.clear();
        out.extend_from_slice(agg);
        IntSum::decrypt_in_place(keys, first, out, &mut self.scratch);
    }

    fn op(a: &W, b: &W) -> W {
        IntSum::combine(*a, *b)
    }

    fn digest(&self, x: &W, out: &mut [u64; DIGEST_LANES]) {
        *out = [x.to_u64(), 0, 0, 0];
    }

    fn digest_check(&self, result: &W, lane_sums: &[u64; DIGEST_LANES], _world: usize) -> bool {
        // The wire sum and the lane sum wrap identically mod 2^b.
        W::from_u64_trunc(lane_sums[0]) == *result
    }

    fn mask_slice(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[W],
        out: &mut Vec<W>,
    ) -> Result<(), HfpError> {
        self.mask_block(keys, first, input, out)
    }

    fn unmask_slice(&mut self, keys: &CommKeys, first: u64, agg: &[W], out: &mut Vec<W>) {
        self.unmask_block(keys, first, agg, out);
    }

    fn noise_width(&self) -> Option<usize> {
        Some(std::mem::size_of::<W>())
    }

    fn cell_encode(x: &W) -> u64 {
        x.to_u64()
    }

    fn cell_decode(cell: u64) -> W {
        W::from_u64_trunc(cell)
    }
}

// ---------------------------------------------------------------------------
// Integer product
// ---------------------------------------------------------------------------

/// [`IntProd`] (Eq. 2) as a [`Scheme`]; lossless, exact digest via the
/// 2-adic decomposition `x = (−1)^s · 3^e · 2^v` in `Z_{2^b}`.
#[derive(Default)]
pub struct IntProdScheme<W: RingWord> {
    scratch: Scratch<W>,
}

impl<W: RingWord> IntProdScheme<W> {
    pub fn with_scratch(scratch: Scratch<W>) -> Self {
        IntProdScheme { scratch }
    }

    pub fn into_scratch(self) -> Scratch<W> {
        self.scratch
    }
}

impl<W: RingWord> Scheme for IntProdScheme<W> {
    type Input = W;
    type Wire = W;

    const NAME: &'static str = "int-prod";
    const TABLE2_ROW: usize = 1;

    fn mask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[W],
        out: &mut Vec<W>,
    ) -> Result<(), HfpError> {
        out.clear();
        out.extend_from_slice(input);
        IntProd::encrypt_in_place(keys, first, out, &mut self.scratch);
        Ok(())
    }

    fn unmask_block(&mut self, keys: &CommKeys, first: u64, agg: &[W], out: &mut Vec<W>) {
        out.clear();
        out.extend_from_slice(agg);
        IntProd::decrypt_in_place(keys, first, out, &mut self.scratch);
    }

    fn op(a: &W, b: &W) -> W {
        IntProd::combine(*a, *b)
    }

    fn digest(&self, x: &W, out: &mut [u64; DIGEST_LANES]) {
        let (e, v, s) = prod_digest(x.to_u64(), W::BITS);
        *out = [e, v, s, 0];
    }

    fn mask_slice(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[W],
        out: &mut Vec<W>,
    ) -> Result<(), HfpError> {
        self.mask_block(keys, first, input, out)
    }

    fn unmask_slice(&mut self, keys: &CommKeys, first: u64, agg: &[W], out: &mut Vec<W>) {
        self.unmask_block(keys, first, agg, out);
    }

    fn digest_check(&self, result: &W, lane_sums: &[u64; DIGEST_LANES], _world: usize) -> bool {
        let sum_v = lane_sums[1];
        if sum_v >= W::BITS as u64 {
            // Enough factors of two to annihilate the ring.
            return *result == W::zero();
        }
        // (−1)^{Σs} · 3^{Σe} · 2^{Σv}; Σe mod 2^64 is sound because
        // ord(3) = 2^{b−2} divides 2^64, and the odd part only matters
        // mod 2^{b−Σv}, which the full-width product preserves.
        let mut expect = W::GENERATOR.wpow(W::from_u64_trunc(lane_sums[0]));
        if lane_sums[2] & 1 == 1 {
            expect = W::zero().wsub(expect);
        }
        expect = expect.wmul(W::from_u64_trunc(1u64 << sum_v));
        *result == expect
    }

    fn cell_encode(x: &W) -> u64 {
        x.to_u64()
    }

    fn cell_decode(cell: u64) -> W {
        W::from_u64_trunc(cell)
    }
}

/// Multiply on `Z_{2^b}` represented in the low bits of a `u64`.
#[inline]
fn mul_b(a: u64, c: u64, mask: u64) -> u64 {
    a.wrapping_mul(c) & mask
}

/// Inverse of an odd element of `Z_{2^b}` (Newton, doubling precision:
/// six steps cover 64 bits).
fn inv_odd64(a: u64, mask: u64) -> u64 {
    debug_assert_eq!(a & 1, 1);
    let mut x = a;
    for _ in 0..6 {
        x = mul_b(x, 2u64.wrapping_sub(a.wrapping_mul(x)) & mask, mask);
    }
    debug_assert_eq!(mul_b(a, x, mask), 1);
    x
}

/// Decompose `x ∈ Z_{2^bits}` as `(−1)^s · 3^e · 2^v` (the structure of
/// `(Z/2^k)^* = {±1} × ⟨3⟩`), with `x = 0` encoded as `v = bits`. The
/// exponent `e` is found by 2-adic discrete-log lifting on base 9:
/// `9^{2^i} ≡ 1 + 2^{i+3} (mod 2^{i+4})`, so one squaring chain clears
/// one bit of `u` per step.
pub fn prod_digest(x: u64, bits: u32) -> (u64, u64, u64) {
    if x == 0 {
        return (0, bits as u64, 0);
    }
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let v = x.trailing_zeros() as u64;
    let mut u = (x >> v) & mask;
    let mut e = 0u64;
    let mut s = 0u64;
    // ⟨3⟩ mod 8 = {1, 3}; the −1 coset is {5, 7}.
    if u & 7 == 5 || u & 7 == 7 {
        s = 1;
        u = u.wrapping_neg() & mask;
    }
    if u & 3 == 3 {
        e += 1;
        u = mul_b(u, inv_odd64(3, mask), mask);
    }
    // u ∈ ⟨9⟩ now, i.e. u ≡ 1 (mod 8): lift bit by bit.
    let mut base = 9u64 & mask;
    for i in 0..bits.saturating_sub(3) {
        if u == 1 {
            break;
        }
        if (u >> (i + 3)) & 1 == 1 {
            e += 2u64 << i;
            u = mul_b(u, inv_odd64(base, mask), mask);
        }
        base = mul_b(base, base, mask);
    }
    debug_assert_eq!(u, 1, "2-adic dlog lifting must terminate at 1");
    (e, v, s)
}

// ---------------------------------------------------------------------------
// Integer xor
// ---------------------------------------------------------------------------

/// [`IntXor`] (Eq. 3) as a [`Scheme`]; lossless. The digest spreads each
/// payload bit into its own 4-bit nibble counter, so the additive lane sum
/// counts per-bit multiplicity and the XOR result must equal its parity —
/// sound up to 15 ranks.
#[derive(Default)]
pub struct IntXorScheme<W: RingWord> {
    scratch: Scratch<W>,
}

impl<W: RingWord> IntXorScheme<W> {
    pub fn with_scratch(scratch: Scratch<W>) -> Self {
        IntXorScheme { scratch }
    }

    pub fn into_scratch(self) -> Scratch<W> {
        self.scratch
    }
}

impl<W: RingWord> Scheme for IntXorScheme<W> {
    type Input = W;
    type Wire = W;

    const NAME: &'static str = "int-xor";
    const TABLE2_ROW: usize = 2;
    /// Nibble counters saturate at 15 contributions per bit.
    const MAX_VERIFIED_WORLD: usize = 15;

    fn mask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[W],
        out: &mut Vec<W>,
    ) -> Result<(), HfpError> {
        out.clear();
        out.extend_from_slice(input);
        IntXor::encrypt_in_place(keys, first, out, &mut self.scratch);
        Ok(())
    }

    fn unmask_block(&mut self, keys: &CommKeys, first: u64, agg: &[W], out: &mut Vec<W>) {
        out.clear();
        out.extend_from_slice(agg);
        IntXor::decrypt_in_place(keys, first, out, &mut self.scratch);
    }

    fn op(a: &W, b: &W) -> W {
        IntXor::combine(*a, *b)
    }

    fn digest(&self, x: &W, out: &mut [u64; DIGEST_LANES]) {
        *out = [0; DIGEST_LANES];
        let bits = x.to_u64();
        for k in 0..W::BITS as usize {
            if (bits >> k) & 1 == 1 {
                out[k / 16] |= 1u64 << (4 * (k % 16));
            }
        }
    }

    fn digest_check(&self, result: &W, lane_sums: &[u64; DIGEST_LANES], _world: usize) -> bool {
        let bits = result.to_u64();
        for k in 0..W::BITS as usize {
            let count = (lane_sums[k / 16] >> (4 * (k % 16))) & 0xF;
            if count & 1 != (bits >> k) & 1 {
                return false;
            }
        }
        true
    }

    fn mask_slice(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[W],
        out: &mut Vec<W>,
    ) -> Result<(), HfpError> {
        self.mask_block(keys, first, input, out)
    }

    fn unmask_slice(&mut self, keys: &CommKeys, first: u64, agg: &[W], out: &mut Vec<W>) {
        self.unmask_block(keys, first, agg, out);
    }

    fn noise_width(&self) -> Option<usize> {
        Some(std::mem::size_of::<W>())
    }

    fn cell_encode(x: &W) -> u64 {
        x.to_u64()
    }

    fn cell_decode(cell: u64) -> W {
        W::from_u64_trunc(cell)
    }
}

// ---------------------------------------------------------------------------
// Fixed-point sum
// ---------------------------------------------------------------------------

/// The §5.2 fixed-point codec riding on [`IntSum`]: `f64` in, `u64` lanes
/// on the wire. Bitwise-exact digest (the digest decodes the identical
/// wrapped lane sum the unmask path decodes).
pub struct FixedSumScheme {
    codec: FixedCodec,
    scratch: Scratch<u64>,
    lanes: Vec<u64>,
}

impl FixedSumScheme {
    pub fn new(codec: FixedCodec) -> Self {
        FixedSumScheme {
            codec,
            scratch: Scratch::default(),
            lanes: Vec::new(),
        }
    }

    pub fn with_scratch(codec: FixedCodec, scratch: Scratch<u64>) -> Self {
        FixedSumScheme {
            codec,
            scratch,
            lanes: Vec::new(),
        }
    }

    pub fn into_scratch(self) -> Scratch<u64> {
        self.scratch
    }
}

impl Scheme for FixedSumScheme {
    type Input = f64;
    type Wire = u64;

    const NAME: &'static str = "fixed-sum";
    const TABLE2_ROW: usize = 0;

    fn mask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[f64],
        out: &mut Vec<u64>,
    ) -> Result<(), HfpError> {
        self.codec.encode_slice(input, out);
        IntSum::encrypt_in_place(keys, first, out, &mut self.scratch);
        Ok(())
    }

    fn unmask_block(&mut self, keys: &CommKeys, first: u64, agg: &[u64], out: &mut Vec<f64>) {
        self.lanes.clear();
        self.lanes.extend_from_slice(agg);
        IntSum::decrypt_in_place(keys, first, &mut self.lanes, &mut self.scratch);
        self.codec.decode_slice(&self.lanes, out);
    }

    fn op(a: &u64, b: &u64) -> u64 {
        a.wrapping_add(*b)
    }

    fn digest(&self, x: &f64, out: &mut [u64; DIGEST_LANES]) {
        *out = [self.codec.encode(*x), 0, 0, 0];
    }

    fn digest_check(&self, result: &f64, lane_sums: &[u64; DIGEST_LANES], _world: usize) -> bool {
        self.codec.decode(lane_sums[0]) == *result
    }

    fn mask_slice(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[f64],
        out: &mut Vec<u64>,
    ) -> Result<(), HfpError> {
        self.mask_block(keys, first, input, out)
    }

    fn unmask_slice(&mut self, keys: &CommKeys, first: u64, agg: &[u64], out: &mut Vec<f64>) {
        self.unmask_block(keys, first, agg, out);
    }

    fn noise_width(&self) -> Option<usize> {
        // Fixed-point lanes ride the u64 IntSum cipher.
        Some(std::mem::size_of::<u64>())
    }

    fn cell_encode(x: &f64) -> u64 {
        x.to_bits()
    }

    fn cell_decode(cell: u64) -> f64 {
        f64::from_bits(cell)
    }
}

// ---------------------------------------------------------------------------
// Float schemes
// ---------------------------------------------------------------------------

/// Quantized-digest tolerance: `world` quantization steps plus the
/// scheme's Table 2 relative loss plus an absolute floor.
#[inline]
fn float_digest_ok(result: f64, decoded: f64, world: usize, res: f64, rel: f64, abs: f64) -> bool {
    (decoded - result).abs() <= world as f64 * res + result.abs() * rel + abs
}

/// [`FloatSum`] (Eq. 7, v1) as a [`Scheme`]; minor loss, quantized digest.
pub struct FloatSumScheme {
    inner: FloatSum,
    digest_codec: FixedCodec,
}

impl FloatSumScheme {
    pub fn new(fmt: HfpFormat) -> Self {
        FloatSumScheme {
            inner: FloatSum::new(fmt),
            digest_codec: FixedCodec::new(24),
        }
    }

    pub fn format(&self) -> HfpFormat {
        self.inner.format()
    }
}

impl Scheme for FloatSumScheme {
    type Input = f64;
    type Wire = Hfp;

    const NAME: &'static str = "float-sum-v1";
    const TABLE2_ROW: usize = 3;

    fn mask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[f64],
        out: &mut Vec<Hfp>,
    ) -> Result<(), HfpError> {
        self.inner.encrypt_f64(keys, first, input, out)
    }

    fn unmask_block(&mut self, keys: &CommKeys, first: u64, agg: &[Hfp], out: &mut Vec<f64>) {
        self.inner.decrypt_f64(keys, first, agg, out);
    }

    fn op(a: &Hfp, b: &Hfp) -> Hfp {
        FloatSum::combine(a, b)
    }

    fn digest(&self, x: &f64, out: &mut [u64; DIGEST_LANES]) {
        *out = [self.digest_codec.encode(*x), 0, 0, 0];
    }

    fn digest_check(&self, result: &f64, lane_sums: &[u64; DIGEST_LANES], world: usize) -> bool {
        let decoded = self.digest_codec.decode(lane_sums[0]);
        float_digest_ok(
            *result,
            decoded,
            world,
            self.digest_codec.resolution(),
            1e-4,
            1e-9,
        )
    }

    fn cell_encode(x: &f64) -> u64 {
        x.to_bits()
    }

    fn cell_decode(cell: u64) -> f64 {
        f64::from_bits(cell)
    }
}

/// [`FloatSumExp`] (§5.3.4, v2) as a [`Scheme`]; medium loss, so the
/// digest tolerance is looser than v1's.
pub struct FloatSumExpScheme {
    inner: FloatSumExp,
    digest_codec: FixedCodec,
}

impl FloatSumExpScheme {
    pub fn new(fmt: HfpFormat) -> Self {
        FloatSumExpScheme {
            inner: FloatSumExp::new(fmt),
            digest_codec: FixedCodec::new(24),
        }
    }

    pub fn format(&self) -> HfpFormat {
        self.inner.format()
    }
}

impl Scheme for FloatSumExpScheme {
    type Input = f64;
    type Wire = Hfp;

    const NAME: &'static str = "float-sum-v2";
    const TABLE2_ROW: usize = 4;

    fn mask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[f64],
        out: &mut Vec<Hfp>,
    ) -> Result<(), HfpError> {
        self.inner.encrypt_f64(keys, first, input, out)
    }

    fn unmask_block(&mut self, keys: &CommKeys, first: u64, agg: &[Hfp], out: &mut Vec<f64>) {
        self.inner.decrypt_f64(keys, first, agg, out);
    }

    fn op(a: &Hfp, b: &Hfp) -> Hfp {
        FloatSumExp::combine(a, b)
    }

    fn digest(&self, x: &f64, out: &mut [u64; DIGEST_LANES]) {
        *out = [self.digest_codec.encode(*x), 0, 0, 0];
    }

    fn digest_check(&self, result: &f64, lane_sums: &[u64; DIGEST_LANES], world: usize) -> bool {
        let decoded = self.digest_codec.decode(lane_sums[0]);
        float_digest_ok(
            *result,
            decoded,
            world,
            self.digest_codec.resolution(),
            1e-3,
            1e-6,
        )
    }

    fn cell_encode(x: &f64) -> u64 {
        x.to_bits()
    }

    fn cell_decode(cell: u64) -> f64 {
        f64::from_bits(cell)
    }
}

/// [`FloatProd`] (Eq. 6) as a [`Scheme`]; minor loss. The digest carries
/// the log-magnitude (products become sums) plus sign and zero counters.
pub struct FloatProdScheme {
    inner: FloatProd,
    digest_codec: FixedCodec,
}

impl FloatProdScheme {
    pub fn new(fmt: HfpFormat) -> Self {
        FloatProdScheme {
            inner: FloatProd::new(fmt),
            digest_codec: FixedCodec::new(32),
        }
    }

    pub fn format(&self) -> HfpFormat {
        self.inner.format()
    }
}

impl Scheme for FloatProdScheme {
    type Input = f64;
    type Wire = Hfp;

    const NAME: &'static str = "float-prod";
    const TABLE2_ROW: usize = 5;

    fn mask_block(
        &mut self,
        keys: &CommKeys,
        first: u64,
        input: &[f64],
        out: &mut Vec<Hfp>,
    ) -> Result<(), HfpError> {
        self.inner.encrypt_f64(keys, first, input, out)
    }

    fn unmask_block(&mut self, keys: &CommKeys, first: u64, agg: &[Hfp], out: &mut Vec<f64>) {
        self.inner.decrypt_f64(keys, first, agg, out);
    }

    fn op(a: &Hfp, b: &Hfp) -> Hfp {
        FloatProd::combine(a, b)
    }

    fn digest(&self, x: &f64, out: &mut [u64; DIGEST_LANES]) {
        let is_zero = *x == 0.0;
        let log_mag = if is_zero {
            0
        } else {
            self.digest_codec.encode(x.abs().ln())
        };
        *out = [
            log_mag,
            (x.is_sign_negative() && !is_zero) as u64 | ((is_zero as u64) << 32),
            0,
            0,
        ];
    }

    fn digest_check(&self, result: &f64, lane_sums: &[u64; DIGEST_LANES], world: usize) -> bool {
        let zero_count = lane_sums[1] >> 32;
        if zero_count > 0 {
            // A zero factor annihilates the product; the cipher only
            // approximates zero, so accept any tiny magnitude.
            return result.abs() < 1e-6;
        }
        if *result == 0.0 {
            return false;
        }
        let neg_count = lane_sums[1] & 0xFFFF_FFFF;
        if (*result < 0.0) != (neg_count & 1 == 1) {
            return false;
        }
        let decoded = self.digest_codec.decode(lane_sums[0]);
        float_digest_ok(
            result.abs().ln(),
            decoded,
            world,
            2.0 * self.digest_codec.resolution(),
            0.0,
            1e-4,
        )
    }

    fn cell_encode(x: &f64) -> u64 {
        x.to_bits()
    }

    fn cell_decode(cell: u64) -> f64 {
        f64::from_bits(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_prf::Backend;

    #[test]
    fn cells_round_trip_bit_for_bit() {
        for x in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert_eq!(
                IntSumScheme::<u32>::cell_decode(IntSumScheme::<u32>::cell_encode(&x)),
                x
            );
            assert_eq!(
                IntProdScheme::<u32>::cell_decode(IntProdScheme::<u32>::cell_encode(&x)),
                x
            );
            assert_eq!(
                IntXorScheme::<u32>::cell_decode(IntXorScheme::<u32>::cell_encode(&x)),
                x
            );
        }
        for x in [0.0f64, -0.0, 1.5, -3.25e-7, f64::INFINITY, f64::NAN] {
            // Compare bit patterns so -0.0 and NaN survive exactly.
            let bits = x.to_bits();
            assert_eq!(
                FixedSumScheme::cell_decode(FixedSumScheme::cell_encode(&x)).to_bits(),
                bits
            );
            assert_eq!(
                FloatSumScheme::cell_decode(FloatSumScheme::cell_encode(&x)).to_bits(),
                bits
            );
            assert_eq!(
                FloatSumExpScheme::cell_decode(FloatSumExpScheme::cell_encode(&x)).to_bits(),
                bits
            );
            assert_eq!(
                FloatProdScheme::cell_decode(FloatProdScheme::cell_encode(&x)).to_bits(),
                bits
            );
        }
    }

    /// In-process encrypted allreduce over a [`Scheme`]: every rank masks,
    /// the "network" folds with `S::op`, rank 0 unmasks.
    fn roundtrip<S: Scheme>(
        mk: impl Fn() -> S,
        world: usize,
        data: &[Vec<S::Input>],
    ) -> Vec<S::Input> {
        let keys = CommKeys::generate(world, 0x5eed, Backend::AesSoft);
        let mut agg: Option<Vec<S::Wire>> = None;
        for (rank, k) in keys.iter().enumerate() {
            let mut scheme = mk();
            let mut wire = Vec::new();
            scheme.mask_block(k, 0, &data[rank], &mut wire).unwrap();
            agg = Some(match agg {
                None => wire,
                Some(a) => a.iter().zip(&wire).map(|(x, y)| S::op(x, y)).collect(),
            });
        }
        let mut out = Vec::new();
        mk().unmask_block(&keys[0], 0, &agg.unwrap(), &mut out);
        out
    }

    /// Aggregate digests the way the engine does: lane-wise wrapping sum.
    fn digest_sums<S: Scheme>(scheme: &S, col: &[S::Input]) -> [u64; DIGEST_LANES] {
        let mut sums = [0u64; DIGEST_LANES];
        let mut lanes = [0u64; DIGEST_LANES];
        for x in col {
            scheme.digest(x, &mut lanes);
            for (s, l) in sums.iter_mut().zip(lanes.iter()) {
                *s = s.wrapping_add(*l);
            }
        }
        sums
    }

    #[test]
    fn int_schemes_roundtrip_and_digest() {
        let world = 3;
        let data: Vec<Vec<u32>> = (0..world)
            .map(|r| (0..17).map(|j| (r as u32 + 1) * 1000 + j * 7).collect())
            .collect();
        let sum = roundtrip(IntSumScheme::<u32>::default, world, &data);
        let prod = roundtrip(IntProdScheme::<u32>::default, world, &data);
        let xor = roundtrip(IntXorScheme::<u32>::default, world, &data);
        let s = IntSumScheme::<u32>::default();
        let p = IntProdScheme::<u32>::default();
        let x = IntXorScheme::<u32>::default();
        for j in 0..17 {
            let col: Vec<u32> = data.iter().map(|v| v[j]).collect();
            assert_eq!(
                sum[j],
                col.iter().fold(0u32, |a, b| a.wrapping_add(*b)),
                "sum j={j}"
            );
            assert_eq!(
                prod[j],
                col.iter().fold(1u32, |a, b| a.wrapping_mul(*b)),
                "prod j={j}"
            );
            assert_eq!(xor[j], col.iter().fold(0u32, |a, b| a ^ b), "xor j={j}");
            assert!(s.digest_check(&sum[j], &digest_sums(&s, &col), world));
            assert!(p.digest_check(&prod[j], &digest_sums(&p, &col), world));
            assert!(x.digest_check(&xor[j], &digest_sums(&x, &col), world));
            // Tamper: a flipped result must fail every digest.
            assert!(!s.digest_check(&sum[j].wrapping_add(1), &digest_sums(&s, &col), world));
            assert!(!p.digest_check(&prod[j].wrapping_add(1), &digest_sums(&p, &col), world));
            assert!(!x.digest_check(&(xor[j] ^ 1), &digest_sums(&x, &col), world));
        }
    }

    #[test]
    fn prod_digest_decomposition_is_exact() {
        // Every x < 2^b must satisfy x ≡ (−1)^s 3^e 2^v.
        for bits in [8u32, 16, 32, 64] {
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let samples = [
                0u64,
                1,
                2,
                3,
                5,
                7,
                9,
                1 << (bits - 1),
                mask,
                mask - 1,
                0xdead_beef_cafe_f00d & mask,
                0x1234_5678_9abc_def1 & mask,
            ];
            for &x in &samples {
                let (e, v, s) = prod_digest(x, bits);
                if x == 0 {
                    assert_eq!(v, bits as u64);
                    continue;
                }
                let mut rebuilt = 1u64;
                // 3^e by square-and-multiply on the masked ring.
                let mut base = 3u64 & mask;
                let mut exp = e;
                while exp > 0 {
                    if exp & 1 == 1 {
                        rebuilt = mul_b(rebuilt, base, mask);
                    }
                    base = mul_b(base, base, mask);
                    exp >>= 1;
                }
                if s == 1 {
                    rebuilt = rebuilt.wrapping_neg() & mask;
                }
                rebuilt = mul_b(rebuilt, 1u64 << v, mask);
                assert_eq!(rebuilt, x, "bits={bits} x={x:#x}");
            }
        }
    }

    #[test]
    fn prod_digest_sums_verify_products() {
        // Multi-rank: sums of (e, v, s) lanes must verify the ring product,
        // including even values and a zero.
        let cases: [&[u64]; 4] = [
            &[2, 6, 10],
            &[0xdead_beef, 3, 1 << 40],
            &[0, 5, 9],
            &[u64::MAX, u64::MAX - 1, 12345],
        ];
        let scheme = IntProdScheme::<u64>::default();
        for col in cases {
            let product = col.iter().fold(1u64, |a, b| a.wrapping_mul(*b));
            let sums = digest_sums(&scheme, col);
            assert!(scheme.digest_check(&product, &sums, col.len()));
            assert!(!scheme.digest_check(&product.wrapping_add(2), &sums, col.len()));
        }
    }

    #[test]
    fn xor_digest_narrow_lanes() {
        let s8 = IntXorScheme::<u8>::default();
        let s64 = IntXorScheme::<u64>::default();
        let col8: Vec<u8> = vec![0xFF, 0x0F, 0xAA];
        let col64: Vec<u64> = vec![u64::MAX, 0x0123_4567_89ab_cdef, 1 << 63];
        let x8 = col8.iter().fold(0u8, |a, b| a ^ b);
        let x64 = col64.iter().fold(0u64, |a, b| a ^ b);
        assert!(s8.digest_check(&x8, &digest_sums(&s8, &col8), 3));
        assert!(s64.digest_check(&x64, &digest_sums(&s64, &col64), 3));
        assert!(!s64.digest_check(&(x64 ^ (1 << 63)), &digest_sums(&s64, &col64), 3));
    }

    #[test]
    fn fixed_sum_roundtrip_and_digest() {
        let codec = FixedCodec::new(20);
        let world = 3;
        let data = vec![
            vec![1.25, -3.5, 0.875],
            vec![2.5, 1.0, -0.125],
            vec![-1.0, 0.5, 4.0],
        ];
        let got = roundtrip(|| FixedSumScheme::new(codec), world, &data);
        let scheme = FixedSumScheme::new(codec);
        let expect = [2.75, -2.0, 4.75];
        for j in 0..3 {
            assert!((got[j] - expect[j]).abs() < 1e-5, "j={j}");
            let col: Vec<f64> = data.iter().map(|v| v[j]).collect();
            let sums = digest_sums(&scheme, &col);
            assert!(scheme.digest_check(&got[j], &sums, world));
            assert!(!scheme.digest_check(&(got[j] + 1.0), &sums, world));
        }
    }

    #[test]
    fn float_schemes_roundtrip_and_digest() {
        let world = 3;
        let data = vec![
            vec![1.5, -2.25, 0.003],
            vec![0.5, 4.5, 0.002],
            vec![-1.0, 1.75, -0.001],
        ];
        let sum = roundtrip(|| FloatSumScheme::new(HfpFormat::fp32(2, 2)), world, &data);
        let v2 = roundtrip(
            || FloatSumExpScheme::new(HfpFormat::fp64(0, 0)),
            world,
            &data,
        );
        let s1 = FloatSumScheme::new(HfpFormat::fp32(2, 2));
        let s2 = FloatSumExpScheme::new(HfpFormat::fp64(0, 0));
        for j in 0..3 {
            let col: Vec<f64> = data.iter().map(|v| v[j]).collect();
            let expect: f64 = col.iter().sum();
            assert!(
                (sum[j] - expect).abs() / expect.abs().max(1e-9) < 1e-4,
                "v1 j={j}"
            );
            assert!((v2[j] - expect).abs() < 1e-6, "v2 j={j}");
            assert!(s1.digest_check(&sum[j], &digest_sums(&s1, &col), world));
            assert!(s2.digest_check(&v2[j], &digest_sums(&s2, &col), world));
            assert!(!s1.digest_check(&(sum[j] + 1.0), &digest_sums(&s1, &col), world));
            assert!(!s2.digest_check(&(v2[j] + 1.0), &digest_sums(&s2, &col), world));
        }
        // Product: nonzero inputs of both signs, plus a zero column.
        let pdata = vec![vec![1.5, -2.0, 0.0], vec![2.0, 3.0, 4.0]];
        let prod = roundtrip(|| FloatProdScheme::new(HfpFormat::fp64(0, 0)), 2, &pdata);
        let sp = FloatProdScheme::new(HfpFormat::fp64(0, 0));
        let expects = [3.0, -6.0, 0.0];
        for j in 0..3 {
            let col: Vec<f64> = pdata.iter().map(|v| v[j]).collect();
            assert!(
                (prod[j] - expects[j]).abs() < 1e-5,
                "prod j={j} got {}",
                prod[j]
            );
            let sums = digest_sums(&sp, &col);
            assert!(sp.digest_check(&prod[j], &sums, 2), "j={j}");
        }
        // Tamper on the nonzero columns: sign flip and magnitude change.
        let col: Vec<f64> = pdata.iter().map(|v| v[1]).collect();
        let sums = digest_sums(&sp, &col);
        assert!(!sp.digest_check(&6.0, &sums, 2), "sign flip must fail");
        assert!(!sp.digest_check(&-12.0, &sums, 2), "magnitude must fail");
    }

    #[test]
    fn mask_blocks_compose_across_offsets() {
        // Engine pipelining masks per block; per-block masking at offsets
        // must equal whole-vector masking for a wire-format scheme too.
        let keys = CommKeys::generate(2, 0xabc, Backend::AesSoft);
        let mut scheme = FloatSumScheme::new(HfpFormat::fp32(2, 2));
        let x: Vec<f64> = (1..=8).map(f64::from).collect();
        let mut whole = Vec::new();
        scheme.mask_block(&keys[0], 0, &x, &mut whole).unwrap();
        let (mut p1, mut p2) = (Vec::new(), Vec::new());
        scheme.mask_block(&keys[0], 0, &x[..3], &mut p1).unwrap();
        scheme.mask_block(&keys[0], 3, &x[3..], &mut p2).unwrap();
        assert_eq!(&whole[..3], &p1[..]);
        assert_eq!(&whole[3..], &p2[..]);
    }

    #[test]
    fn slice_forms_equal_block_forms() {
        // Both the default chunking implementation (float) and the fused
        // overrides (int) must mask exactly like mask_block.
        let keys = CommKeys::generate(2, 0x51ce, Backend::AesSoft);

        let mut fscheme = FloatSumScheme::new(HfpFormat::fp32(2, 2));
        let fx: Vec<f64> = (0..300).map(|i| f64::from(i) * 0.25 - 30.0).collect();
        let (mut by_block, mut by_slice) = (Vec::new(), Vec::new());
        fscheme.mask_block(&keys[0], 3, &fx, &mut by_block).unwrap();
        fscheme.mask_slice(&keys[0], 3, &fx, &mut by_slice).unwrap();
        assert_eq!(by_block, by_slice);
        let (mut un_block, mut un_slice) = (Vec::new(), Vec::new());
        fscheme.unmask_block(&keys[0], 3, &by_block, &mut un_block);
        fscheme.unmask_slice(&keys[0], 3, &by_block, &mut un_slice);
        assert_eq!(un_block, un_slice);

        let mut ischeme = IntSumScheme::<u32>::default();
        let ix: Vec<u32> = (0..500u32).map(|i| i.wrapping_mul(977)).collect();
        let (mut by_block, mut by_slice) = (Vec::new(), Vec::new());
        ischeme.mask_block(&keys[1], 7, &ix, &mut by_block).unwrap();
        ischeme.mask_slice(&keys[1], 7, &ix, &mut by_slice).unwrap();
        assert_eq!(by_block, by_slice);
    }

    #[test]
    fn noise_width_matches_prefetchability() {
        assert_eq!(IntSumScheme::<u16>::default().noise_width(), Some(2));
        assert_eq!(IntXorScheme::<u64>::default().noise_width(), Some(8));
        assert_eq!(IntProdScheme::<u32>::default().noise_width(), None);
        assert_eq!(
            FixedSumScheme::new(FixedCodec::new(20)).noise_width(),
            Some(8)
        );
        assert_eq!(
            FloatSumScheme::new(HfpFormat::fp32(2, 2)).noise_width(),
            None
        );
    }

    #[test]
    fn scratch_handoff_roundtrips() {
        let scratch = Scratch::<u32>::with_capacity(16);
        let scheme = IntSumScheme::with_scratch(scratch);
        let _back: Scratch<u32> = scheme.into_scratch();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prod_digest_random_u64(x in any::<u64>()) {
            let (e, v, s) = prod_digest(x, 64);
            if x == 0 {
                prop_assert_eq!(v, 64);
            } else {
                let mut rebuilt = 3u64.wpow(e);
                if s == 1 { rebuilt = rebuilt.wrapping_neg(); }
                prop_assert_eq!(rebuilt.wrapping_mul(1u64 << v), x);
            }
        }

        #[test]
        fn prod_digest_random_pairs_multiply(a in any::<u32>(), b in any::<u32>()) {
            let scheme = IntProdScheme::<u32>::default();
            let mut la = [0u64; DIGEST_LANES];
            let mut lb = [0u64; DIGEST_LANES];
            scheme.digest(&a, &mut la);
            scheme.digest(&b, &mut lb);
            let sums = [
                la[0].wrapping_add(lb[0]),
                la[1].wrapping_add(lb[1]),
                la[2].wrapping_add(lb[2]),
                0,
            ];
            prop_assert!(scheme.digest_check(&a.wrapping_mul(b), &sums, 2));
        }

        #[test]
        fn xor_digest_random(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
            let scheme = IntXorScheme::<u64>::default();
            let mut sums = [0u64; DIGEST_LANES];
            let mut lanes = [0u64; DIGEST_LANES];
            for x in [a, b, c] {
                scheme.digest(&x, &mut lanes);
                for (s, l) in sums.iter_mut().zip(lanes.iter()) {
                    *s = s.wrapping_add(*l);
                }
            }
            prop_assert!(scheme.digest_check(&(a ^ b ^ c), &sums, 3));
        }
    }
}
