//! Fixed-point transmissions (paper §5.2).
//!
//! Fixed-point values ride on the integer schemes: an implicit binary
//! scale factor is agreed before any computation and shared securely with
//! all ranks. Summation needs no scale adjustment; for multiplication the
//! number of involved processes determines the output scale
//! (`P` factors of `2^{-f}` multiply to `2^{-Pf}`).

/// Codec between `f64` values and scaled two's-complement integers carried
/// on `u64` ring lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedCodec {
    frac_bits: u32,
}

impl FixedCodec {
    pub fn new(frac_bits: u32) -> Self {
        assert!(frac_bits < 63, "scale must leave room for an integer part");
        FixedCodec { frac_bits }
    }

    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Quantization step `2^{-f}`.
    pub fn resolution(&self) -> f64 {
        f64::powi(2.0, -(self.frac_bits as i32))
    }

    /// Encode to the ring lane (round-to-nearest).
    pub fn encode(&self, v: f64) -> u64 {
        let scaled = v * f64::powi(2.0, self.frac_bits as i32);
        (scaled.round_ties_even() as i64) as u64
    }

    /// Decode a summed value (scale unchanged under addition).
    pub fn decode(&self, lane: u64) -> f64 {
        (lane as i64) as f64 * self.resolution()
    }

    /// Decode a product of `world` factors: the scale compounds to
    /// `world × frac_bits`.
    pub fn decode_prod(&self, lane: u64, world: usize) -> f64 {
        let total = self.frac_bits as i64 * world as i64;
        let mut v = (lane as i64) as f64;
        let mut t = total;
        while t > 60 {
            v *= f64::powi(2.0, -60);
            t -= 60;
        }
        v * f64::powi(2.0, -(t as i32))
    }

    pub fn encode_slice(&self, vals: &[f64], out: &mut Vec<u64>) {
        out.clear();
        out.extend(vals.iter().map(|v| self.encode(*v)));
    }

    pub fn decode_slice(&self, lanes: &[u64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(lanes.iter().map(|l| self.decode(*l)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int::{IntProd, IntSum, Scratch};
    use crate::keys::CommKeys;
    use hear_prf::Backend;

    #[test]
    fn encode_decode_roundtrip() {
        let c = FixedCodec::new(16);
        for v in [
            0.0,
            1.0,
            -1.0,
            std::f64::consts::PI,
            -1000.5,
            0.0000152587890625,
        ] {
            let got = c.decode(c.encode(v));
            assert!((got - v).abs() <= c.resolution() / 2.0, "{v} -> {got}");
        }
    }

    #[test]
    fn negative_values_wrap_correctly() {
        let c = FixedCodec::new(8);
        assert_eq!(c.decode(c.encode(-2.5)), -2.5);
        assert_eq!(c.decode(c.encode(-0.00390625)), -0.00390625); // -2^-8
    }

    #[test]
    fn rounding_is_to_nearest() {
        let c = FixedCodec::new(1); // resolution 0.5
        assert_eq!(c.decode(c.encode(0.3)), 0.5);
        assert_eq!(c.decode(c.encode(0.2)), 0.0);
        assert_eq!(c.decode(c.encode(0.25)), 0.0); // tie to even (0)
        assert_eq!(c.decode(c.encode(0.75)), 1.0); // tie to even (2×0.5)
    }

    #[test]
    fn encrypted_fixed_sum_end_to_end() {
        let c = FixedCodec::new(20);
        let keys = CommKeys::generate(3, 13, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let data = [
            vec![1.25, -3.5, 0.875],
            vec![2.5, 1.0, -0.125],
            vec![-1.0, 0.5, 4.0],
        ];
        let mut agg = vec![0u64; 3];
        let mut lanes = Vec::new();
        for (rank, keys) in keys.iter().enumerate() {
            c.encode_slice(&data[rank], &mut lanes);
            IntSum::encrypt_in_place(keys, 0, &mut lanes, &mut scratch);
            for (a, l) in agg.iter_mut().zip(&lanes) {
                *a = a.wrapping_add(*l);
            }
        }
        IntSum::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
        let mut out = Vec::new();
        c.decode_slice(&agg, &mut out);
        let expect = [2.75, -2.0, 4.75];
        for j in 0..3 {
            assert!(
                (out[j] - expect[j]).abs() < 1e-6,
                "j={j}: {} vs {}",
                out[j],
                expect[j]
            );
        }
    }

    #[test]
    fn encrypted_fixed_prod_scales_by_world() {
        // 2 ranks: product scale is 2×frac_bits.
        let c = FixedCodec::new(12);
        let keys = CommKeys::generate(2, 17, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let data = [vec![1.5, 2.0], vec![3.0, 0.25]];
        let mut agg = vec![1u64; 2];
        let mut lanes = Vec::new();
        for (rank, keys) in keys.iter().enumerate() {
            c.encode_slice(&data[rank], &mut lanes);
            IntProd::encrypt_in_place(keys, 0, &mut lanes, &mut scratch);
            for (a, l) in agg.iter_mut().zip(&lanes) {
                *a = a.wrapping_mul(*l);
            }
        }
        IntProd::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
        assert!((c.decode_prod(agg[0], 2) - 4.5).abs() < 1e-5);
        assert!((c.decode_prod(agg[1], 2) - 0.5).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn oversized_scale_rejected() {
        FixedCodec::new(63);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn quantization_error_bounded(v in -1.0e6f64..1.0e6, f in 4u32..32) {
            let c = FixedCodec::new(f);
            let err = (c.decode(c.encode(v)) - v).abs();
            prop_assert!(err <= c.resolution() / 2.0 + 1e-12);
        }

        #[test]
        fn addition_homomorphism(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
            let c = FixedCodec::new(24);
            let sum = c.decode(c.encode(a).wrapping_add(c.encode(b)));
            prop_assert!((sum - (a + b)).abs() <= c.resolution() + 1e-12);
        }
    }
}
