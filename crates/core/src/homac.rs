//! Homomorphic message authentication codes (paper §5.5).
//!
//! HE is malleable; HoMACs let ranks verify that the network actually
//! computed the requested reduction. Each rank derives a per-ciphertext
//! key `s_i[j]` from the PRF, tags every ciphertext word with
//! `σ = (s_i[j] − c_i[j]) / Z mod p`, and the network sums `(c, σ)` pairs
//! component-wise. After reduction `Σ s_i[j] = c_t[j] + σ_t[j]·Z (mod p)`
//! must hold. The cancelling variant replaces `s_i` with `s_i − s_{i+1}`
//! so verification needs only `s_0` — the same Θ(1) trick as encryption.
//!
//! One honest bookkeeping detail: the data channel reduces ciphertexts
//! modulo `2^b`, while tags live modulo `p`, so the true integer sum
//! `Σ c_i` equals the transported `c_t` plus `k·2^b` for some overflow
//! count `k < P`. Verification therefore scans the `P` candidate values of
//! `k` — constant work per word for a fixed communicator.

use crate::keys::{CommKeys, KeyRegistry};
use crate::word::RingWord;
use hear_prf::{blocks_metric, for_each_shard, Backend, Prf, PrfCipher, WorkerPool};
use std::sync::atomic::{AtomicBool, Ordering};

/// The HoMAC field modulus: the Mersenne prime `2^61 − 1` (λ = 61).
pub const HOMAC_P: u64 = (1u64 << 61) - 1;

#[inline]
fn add_p(a: u64, b: u64) -> u64 {
    let s = a as u128 + b as u128;
    (s % HOMAC_P as u128) as u64
}

#[inline]
fn sub_p(a: u64, b: u64) -> u64 {
    add_p(a, HOMAC_P - b % HOMAC_P)
}

#[inline]
fn mul_p(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % HOMAC_P as u128) as u64
}

fn pow_p(mut base: u64, mut e: u64) -> u64 {
    let mut acc = 1u64;
    while e != 0 {
        if e & 1 == 1 {
            acc = mul_p(acc, base);
        }
        base = mul_p(base, base);
        e >>= 1;
    }
    acc
}

/// Smallest tag/verify batch worth fanning out. Every element costs a
/// full PRF block (or two), so the crossover sits far below the mask
/// kernels' byte threshold.
const PAR_MIN_ELEMS: usize = 1 << 15;

/// Shard count for an `n`-element digest batch: one shard per half
/// [`PAR_MIN_ELEMS`], capped by the pool budget; 1 below the threshold.
fn digest_shards(pool: &WorkerPool, n: usize) -> usize {
    if n < PAR_MIN_ELEMS {
        1
    } else {
        (n / (PAR_MIN_ELEMS / 2)).clamp(1, pool.threads())
    }
}

/// Per-communicator HoMAC state: the verification key `Z` (with its
/// precomputed field inverse) and the tag PRF. All ranks hold identical
/// copies, distributed during the secure initialization alongside the
/// encryption keys.
#[derive(Clone)]
pub struct Homac {
    z: u64,
    z_inv: u64,
    prf: PrfCipher,
}

impl Homac {
    pub fn generate(seed: u64, backend: Backend) -> Homac {
        let mut rng = crate::rng::KeyRng::new(seed ^ 0x48_6f_4d_41_43_u64); // "HoMAC"
        let z = rng.next_u64() % (HOMAC_P - 2) + 2;
        let z_inv = pow_p(z, HOMAC_P - 2);
        debug_assert_eq!(mul_p(z, z_inv), 1);
        let khs = rng.next_u128();
        Homac {
            z,
            z_inv,
            prf: PrfCipher::new(backend, khs).expect("backend availability checked by caller"),
        }
    }

    /// Per-ciphertext key `s(base, j)` as a field element.
    #[inline]
    fn s_at(&self, base: u128, j: u64) -> u64 {
        (self.prf.eval_block(base.wrapping_add(j as u128)) as u64) % HOMAC_P
    }

    /// [`Homac::s_at`] without telemetry — for pool workers, which have no
    /// registry context. The submitting thread attributes the exact block
    /// total (one or two per element) before fanning out.
    #[inline]
    fn s_at_uncounted(&self, base: u128, j: u64) -> u64 {
        (self.prf.eval_block_uncounted(base.wrapping_add(j as u128)) as u64) % HOMAC_P
    }

    /// Cancelling tags for this rank's ciphertext block (Θ(1) verification).
    pub fn tag<W: RingWord>(&self, keys: &CommKeys, first: u64, cipher: &[W]) -> Vec<u64> {
        let mut out = Vec::new();
        self.tag_into(keys, first, cipher, &mut out);
        out
    }

    /// [`Homac::tag`] into a caller-owned vector — the engine stages tags
    /// through its pooled arena so verified steady state allocates nothing.
    ///
    /// Large batches fan out over the shared worker pool: tags are pure in
    /// `(base, j)` like the pads, so contiguous index ranges compute
    /// bit-identically on any thread. Workers evaluate uncounted; this
    /// thread attributes the exact serial block total up front.
    pub fn tag_into<W: RingWord>(
        &self,
        keys: &CommKeys,
        first: u64,
        cipher: &[W],
        out: &mut Vec<u64>,
    ) {
        let _s = hear_telemetry::span!("homac_tag", elems = cipher.len());
        out.clear();
        let nshards = WorkerPool::with_current(|pool| digest_shards(pool, cipher.len()));
        if nshards <= 1 {
            out.extend(cipher.iter().enumerate().map(|(i, c)| {
                let j = first + i as u64;
                let c_res = c.to_u64() % HOMAC_P;
                let s = if keys.is_last() {
                    self.s_at(keys.base_own(), j)
                } else {
                    sub_p(
                        self.s_at(keys.base_own(), j),
                        self.s_at(keys.base_next(), j),
                    )
                };
                mul_p(sub_p(s, c_res), self.z_inv)
            }));
            return;
        }
        let streams: u64 = if keys.is_last() { 1 } else { 2 };
        hear_telemetry::add(
            blocks_metric(self.prf.backend()),
            streams * cipher.len() as u64,
        );
        out.resize(cipher.len(), 0);
        WorkerPool::with_current(|pool| {
            for_each_shard(pool, out.as_mut_slice(), nshards, |start, shard| {
                for (i, o) in shard.iter_mut().enumerate() {
                    let idx = start + i;
                    let j = first + idx as u64;
                    let c_res = cipher[idx].to_u64() % HOMAC_P;
                    let s = if keys.is_last() {
                        self.s_at_uncounted(keys.base_own(), j)
                    } else {
                        sub_p(
                            self.s_at_uncounted(keys.base_own(), j),
                            self.s_at_uncounted(keys.base_next(), j),
                        )
                    };
                    *o = mul_p(sub_p(s, c_res), self.z_inv);
                }
            })
        });
    }

    /// Non-cancelling tags (Θ(P) verification via [`Homac::verify_plain`]).
    pub fn tag_plain<W: RingWord>(&self, keys: &CommKeys, first: u64, cipher: &[W]) -> Vec<u64> {
        cipher
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let j = first + i as u64;
                let c_res = c.to_u64() % HOMAC_P;
                let s = self.s_at(keys.base_own(), j);
                mul_p(sub_p(s, c_res), self.z_inv)
            })
            .collect()
    }

    /// The tag-channel reduction the network applies.
    #[inline]
    pub fn combine(a: u64, b: u64) -> u64 {
        add_p(a, b)
    }

    /// Verify an aggregated block against its aggregated tags (cancelling
    /// variant: only rank 0's key stream is reconstructed).
    pub fn verify<W: RingWord>(
        &self,
        keys: &CommKeys,
        first: u64,
        agg: &[W],
        tags: &[u64],
    ) -> bool {
        assert_eq!(agg.len(), tags.len());
        let _s = hear_telemetry::span!("homac_verify", elems = agg.len());
        let two_b = pow_p(2, W::BITS as u64); // 2^b mod p
        let nshards = WorkerPool::with_current(|pool| digest_shards(pool, agg.len()));
        let check = |c: &W, sigma: &u64, s0: u64| {
            let base = add_p(c.to_u64() % HOMAC_P, mul_p(*sigma, self.z));
            // Σc_i = c_t + k·2^b for some overflow count k < P.
            (0..keys.world() as u64).any(|k| add_p(base, mul_p(k % HOMAC_P, two_b)) == s0)
        };
        let ok = if nshards <= 1 {
            agg.iter().zip(tags).enumerate().all(|(i, (c, sigma))| {
                let j = first + i as u64;
                check(c, sigma, self.s_at(keys.base_zero(), j))
            })
        } else {
            // Workers evaluate uncounted; attribute one block per element
            // here. (On a failing batch the serial path short-circuits and
            // counts fewer blocks, but failures abort the collective
            // anyway — only the honest path's totals are load-bearing.)
            hear_telemetry::add(blocks_metric(self.prf.backend()), agg.len() as u64);
            let all_ok = AtomicBool::new(true);
            let chunk = agg.len().div_ceil(nshards);
            WorkerPool::with_current(|pool| {
                pool.run(nshards, &|k| {
                    if !all_ok.load(Ordering::Relaxed) {
                        return;
                    }
                    let s = (k * chunk).min(agg.len());
                    let e = ((k + 1) * chunk).min(agg.len());
                    let fine = (s..e).all(|i| {
                        let j = first + i as u64;
                        check(&agg[i], &tags[i], self.s_at_uncounted(keys.base_zero(), j))
                    });
                    if !fine {
                        all_ok.store(false, Ordering::Relaxed);
                    }
                })
            });
            all_ok.load(Ordering::Relaxed)
        };
        hear_telemetry::incr(if ok {
            hear_telemetry::Metric::HomacVerifyPass
        } else {
            hear_telemetry::Metric::HomacVerifyFail
        });
        ok
    }

    /// Verify non-cancelling tags: reconstructs all `P` key streams.
    pub fn verify_plain<W: RingWord>(
        &self,
        registry: &KeyRegistry,
        first: u64,
        agg: &[W],
        tags: &[u64],
    ) -> bool {
        assert_eq!(agg.len(), tags.len());
        let _s = hear_telemetry::span!("homac_verify", elems = agg.len());
        let two_b = pow_p(2, W::BITS as u64);
        let ok = agg.iter().zip(tags).enumerate().all(|(i, (c, sigma))| {
            let j = first + i as u64;
            let s_sum = (0..registry.world())
                .fold(0u64, |acc, r| add_p(acc, self.s_at(registry.base_of(r), j)));
            let base = add_p(c.to_u64() % HOMAC_P, mul_p(*sigma, self.z));
            (0..registry.world() as u64).any(|k| add_p(base, mul_p(k % HOMAC_P, two_b)) == s_sum)
        });
        hear_telemetry::incr(if ok {
            hear_telemetry::Metric::HomacVerifyPass
        } else {
            hear_telemetry::Metric::HomacVerifyFail
        });
        ok
    }

    /// Tags for single-origin data on the *shared* collective stream
    /// (allgather/alltoall chunks): unlike [`Homac::tag_into`] there is
    /// nothing to cancel — the chunk is never summed across ranks, so
    /// every rank derives the same key `s(base, first+i)` from the
    /// collective base and any rank can verify any chunk. The MAC stream
    /// index must be disjoint from the chunk's pad indices (callers
    /// offset by `DIGEST_BASE`), or σ would leak pad words.
    pub fn tag_shared(&self, base: u128, first: u64, cipher: &[u64], out: &mut Vec<u64>) {
        let _s = hear_telemetry::span!("homac_tag", elems = cipher.len());
        out.clear();
        let nshards = WorkerPool::with_current(|pool| digest_shards(pool, cipher.len()));
        if nshards <= 1 {
            out.extend(cipher.iter().enumerate().map(|(i, c)| {
                let s = self.s_at(base, first + i as u64);
                mul_p(sub_p(s, c % HOMAC_P), self.z_inv)
            }));
            return;
        }
        hear_telemetry::add(blocks_metric(self.prf.backend()), cipher.len() as u64);
        out.resize(cipher.len(), 0);
        WorkerPool::with_current(|pool| {
            for_each_shard(pool, out.as_mut_slice(), nshards, |start, shard| {
                for (i, o) in shard.iter_mut().enumerate() {
                    let idx = start + i;
                    let s = self.s_at_uncounted(base, first + idx as u64);
                    *o = mul_p(sub_p(s, cipher[idx] % HOMAC_P), self.z_inv);
                }
            })
        });
    }

    /// Verify single-origin ciphertexts against [`Homac::tag_shared`]
    /// tags. One contributor means no wrap-around, so there is no
    /// overflow-candidate scan: `c + σ·Z ≡ s (mod p)` must hold exactly.
    pub fn verify_shared(&self, base: u128, first: u64, cipher: &[u64], tags: &[u64]) -> bool {
        assert_eq!(cipher.len(), tags.len());
        let _s = hear_telemetry::span!("homac_verify", elems = cipher.len());
        let nshards = WorkerPool::with_current(|pool| digest_shards(pool, cipher.len()));
        let ok = if nshards <= 1 {
            cipher.iter().zip(tags).enumerate().all(|(i, (c, sigma))| {
                let s = self.s_at(base, first + i as u64);
                add_p(c % HOMAC_P, mul_p(*sigma, self.z)) == s
            })
        } else {
            hear_telemetry::add(blocks_metric(self.prf.backend()), cipher.len() as u64);
            let all_ok = AtomicBool::new(true);
            let chunk = cipher.len().div_ceil(nshards);
            WorkerPool::with_current(|pool| {
                pool.run(nshards, &|k| {
                    if !all_ok.load(Ordering::Relaxed) {
                        return;
                    }
                    let s = (k * chunk).min(cipher.len());
                    let e = ((k + 1) * chunk).min(cipher.len());
                    let fine = (s..e).all(|i| {
                        let key = self.s_at_uncounted(base, first + i as u64);
                        add_p(cipher[i] % HOMAC_P, mul_p(tags[i], self.z)) == key
                    });
                    if !fine {
                        all_ok.store(false, Ordering::Relaxed);
                    }
                })
            });
            all_ok.load(Ordering::Relaxed)
        };
        hear_telemetry::incr(if ok {
            hear_telemetry::Metric::HomacVerifyPass
        } else {
            hear_telemetry::Metric::HomacVerifyFail
        });
        ok
    }

    /// Wire overhead of the tag channel relative to the data channel, as a
    /// fraction (e.g. 2.0 = 200% for 32-bit data words).
    pub fn inflation_for_width(bits: u32) -> f64 {
        64.0 / bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int::{IntSum, Scratch};

    fn setup(world: usize) -> (Vec<CommKeys>, KeyRegistry, Homac) {
        let (keys, reg) = CommKeys::generate_with_registry(world, 99, Backend::AesSoft);
        let homac = Homac::generate(1234, Backend::AesSoft);
        (keys, reg, homac)
    }

    /// Run a tagged encrypted allreduce; returns (agg, tags, keys, homac).
    fn run_tagged(world: usize, tamper: impl Fn(&mut Vec<u32>, &mut Vec<u64>)) -> bool {
        let (keys, _, homac) = setup(world);
        let mut scratch = Scratch::default();
        let n = 9;
        let mut agg = vec![0u32; n];
        let mut tags = vec![0u64; n];
        for (rank, keys) in keys.iter().enumerate() {
            let mut buf: Vec<u32> = (0..n as u32).map(|j| rank as u32 * 100 + j).collect();
            IntSum::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
            let t = homac.tag(keys, 0, &buf);
            for i in 0..n {
                agg[i] = agg[i].wrapping_add(buf[i]);
                tags[i] = Homac::combine(tags[i], t[i]);
            }
        }
        tamper(&mut agg, &mut tags);
        homac.verify(&keys[0], 0, &agg, &tags)
    }

    #[test]
    fn honest_reduction_verifies() {
        for world in [1usize, 2, 3, 7] {
            assert!(run_tagged(world, |_, _| {}), "world={world}");
        }
    }

    #[test]
    fn tampered_ciphertext_detected() {
        assert!(!run_tagged(3, |agg, _| {
            agg[4] = agg[4].wrapping_add(1);
        }));
    }

    #[test]
    fn tampered_tag_detected() {
        assert!(!run_tagged(3, |_, tags| {
            tags[0] = add_p(tags[0], 1);
        }));
    }

    #[test]
    fn swapped_elements_detected() {
        assert!(!run_tagged(4, |agg, _| {
            agg.swap(0, 1);
        }));
    }

    #[test]
    fn plain_variant_verifies_and_detects() {
        let (keys, reg, homac) = setup(3);
        let mut scratch = Scratch::default();
        let n = 5;
        let mut agg = vec![0u32; n];
        let mut tags = vec![0u64; n];
        for keys in &keys {
            let mut buf: Vec<u32> = (0..n as u32).collect();
            IntSum::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
            let t = homac.tag_plain(keys, 0, &buf);
            for i in 0..n {
                agg[i] = agg[i].wrapping_add(buf[i]);
                tags[i] = Homac::combine(tags[i], t[i]);
            }
        }
        assert!(homac.verify_plain(&reg, 0, &agg, &tags));
        agg[2] ^= 1;
        assert!(!homac.verify_plain(&reg, 0, &agg, &tags));
    }

    #[test]
    fn u64_words_with_ring_overflow_verify() {
        // Large u64 ciphertexts whose sum wraps 2^64 exercise the overflow
        // candidate scan.
        let (keys, _, homac) = setup(4);
        let mut scratch = Scratch::default();
        let mut agg = vec![0u64; 3];
        let mut tags = vec![0u64; 3];
        for keys in &keys {
            let mut buf = vec![u64::MAX - 3, 1u64 << 63, 12345];
            IntSum::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
            let t = homac.tag(keys, 0, &buf);
            for i in 0..3 {
                agg[i] = agg[i].wrapping_add(buf[i]);
                tags[i] = Homac::combine(tags[i], t[i]);
            }
        }
        assert!(homac.verify(&keys[0], 0, &agg, &tags));
        agg[1] = agg[1].wrapping_sub(1);
        assert!(!homac.verify(&keys[0], 0, &agg, &tags));
    }

    #[test]
    fn shared_stream_tags_verify_across_ranks_and_detect_tampering() {
        let (keys, _, homac) = setup(3);
        let base = keys[1].base_collective();
        // Rank 1 tags its chunk; rank 2 (same collective base) verifies.
        let cipher: Vec<u64> = (0..6)
            .map(|j| j * 0x0123_4567_89ab + u64::MAX / 3)
            .collect();
        let mut tags = Vec::new();
        homac.tag_shared(base, 1 << 20, &cipher, &mut tags);
        assert_eq!(keys[2].base_collective(), base);
        assert!(homac.verify_shared(base, 1 << 20, &cipher, &tags));
        // Wrong offset, tampered word, tampered tag all fail.
        assert!(!homac.verify_shared(base, (1 << 20) + 1, &cipher, &tags));
        let mut bad = cipher.clone();
        bad[3] ^= 1 << 40;
        assert!(!homac.verify_shared(base, 1 << 20, &bad, &tags));
        let mut bad_tags = tags.clone();
        bad_tags[0] = add_p(bad_tags[0], 1);
        assert!(!homac.verify_shared(base, 1 << 20, &cipher, &bad_tags));
    }

    #[test]
    fn field_arithmetic_sane() {
        assert_eq!(mul_p(HOMAC_P - 1, HOMAC_P - 1), 1); // (-1)^2
        assert_eq!(add_p(HOMAC_P - 1, 1), 0);
        assert_eq!(sub_p(0, 1), HOMAC_P - 1);
        assert_eq!(pow_p(2, 61), 1); // 2^61 ≡ 1 (Mersenne)
        let z = 0x1234_5678_9abc_u64;
        assert_eq!(mul_p(z, pow_p(z, HOMAC_P - 2)), 1);
    }

    #[test]
    fn inflation_matches_paper_estimate() {
        // "might cause more than 200% inflation for reasonable 64-bit p":
        // our 61-bit tags ride in 64-bit words over 32-bit data.
        assert_eq!(Homac::inflation_for_width(32), 2.0);
        assert_eq!(Homac::inflation_for_width(64), 1.0);
    }

    #[test]
    fn epoch_advance_changes_tags() {
        let (mut keys, _, homac) = setup(2);
        let cipher = vec![5u32; 4];
        let t1 = homac.tag(&keys[0], 0, &cipher);
        keys[0].advance();
        let t2 = homac.tag(&keys[0], 0, &cipher);
        assert_ne!(t1, t2);
    }
}
