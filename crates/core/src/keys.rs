//! Key generation and progression (paper §5, "Key Generation").
//!
//! Per communicator, each rank `i` of `P` draws a local starting key
//! `ks_i`; rank 0 additionally draws the collective key `kc`, the
//! encryption PRF key `ke` and the progression PRF key `kp`, which are
//! broadcast securely. After initialization every rank holds exactly six
//! keys — `ks_i`, `ks_{(i+1) mod P}`, `ks_0`, `kc`, `ke`, `kp` — so key
//! state is Θ(1) in the communicator size.
//!
//! (The paper's prose says ranks store the keys of ranks *i−1* and 0, but
//! its Eq. 1 cancels against rank *i+1*'s noise; we follow the equation —
//! see DESIGN.md.)
//!
//! Before every Allreduce all ranks advance the collective key,
//! `kc ← F_kp(kc)`, which provides temporal safety: the same plaintext
//! encrypts differently across consecutive calls.

use crate::prefetch::KeystreamCache;
use crate::rng::KeyRng;
use hear_prf::{Backend, Prf, PrfCipher};
use std::sync::Arc;

/// The Θ(1) per-rank key state for one communicator.
pub struct CommKeys {
    rank: usize,
    world: usize,
    ks_own: u64,
    ks_next: u64,
    ks_zero: u64,
    kc: u64,
    ke_prf: PrfCipher,
    kp_prf: PrfCipher,
    /// Optional prefetched-keystream cache the schemes consult before
    /// generating noise inline. `None` until a layer attaches one.
    cache: Option<Arc<KeystreamCache>>,
}

impl CommKeys {
    /// Run the initialization phase for a `world`-rank communicator,
    /// returning each rank's key state. Deterministic in `seed` (the secure
    /// environment's entropy source in the real deployment).
    pub fn generate(world: usize, seed: u64, backend: Backend) -> Vec<CommKeys> {
        let (keys, _) = Self::generate_with_registry(world, seed, backend);
        keys
    }

    /// Like [`CommKeys::generate`] but also returns the full key registry,
    /// needed by the non-cancelling naive scheme (Fig. 1) whose decryption
    /// aggregates all `P` local keys, and by white-box tests.
    pub fn generate_with_registry(
        world: usize,
        seed: u64,
        backend: Backend,
    ) -> (Vec<CommKeys>, KeyRegistry) {
        let _s = hear_telemetry::span!("keygen", world = world);
        assert!(world >= 1, "communicator needs at least one rank");
        assert!(
            backend.is_available(),
            "PRF backend not available on this CPU"
        );
        let mut rng = KeyRng::new(seed);
        let ks: Vec<u64> = (0..world).map(|_| rng.next_u64()).collect();
        let kc = rng.next_u64();
        let ke = rng.next_u128();
        let kp = rng.next_u128();
        let keys = (0..world)
            .map(|rank| CommKeys {
                rank,
                world,
                ks_own: ks[rank],
                ks_next: ks[(rank + 1) % world],
                ks_zero: ks[0],
                kc,
                ke_prf: PrfCipher::new(backend, ke).expect("backend availability checked"),
                kp_prf: PrfCipher::new(backend, kp).expect("backend availability checked"),
                cache: None,
            })
            .collect();
        let registry = KeyRegistry {
            ks,
            kc,
            ke_prf: PrfCipher::new(backend, ke).expect("backend availability checked"),
            kp_prf: PrfCipher::new(backend, kp).expect("backend availability checked"),
        };
        (keys, registry)
    }

    pub fn rank(&self) -> usize {
        self.rank
    }

    pub fn world(&self) -> usize {
        self.world
    }

    /// True for the rank that applies un-cancelled noise (Eq. 1's `i = P−1`
    /// case).
    pub fn is_last(&self) -> bool {
        self.rank == self.world - 1
    }

    /// Advance the collective key: `kc ← F_kp(kc)`. Every rank of the
    /// communicator must call this once per Allreduce, in the same order.
    pub fn advance(&mut self) {
        hear_telemetry::incr(hear_telemetry::Metric::KeyAdvances);
        self.kc = self.kp_prf.eval_block(self.kc as u128) as u64;
    }

    /// Current collective-key epoch (for cross-rank consistency asserts).
    pub fn epoch(&self) -> u64 {
        self.kc
    }

    /// The encryption PRF `F_ke`.
    pub fn prf(&self) -> &PrfCipher {
        &self.ke_prf
    }

    /// PRF input base `ks_i + kc` for this rank's own noise stream.
    pub fn base_own(&self) -> u128 {
        self.ks_own.wrapping_add(self.kc) as u128
    }

    /// PRF input base for the next rank's noise stream (cancellation).
    pub fn base_next(&self) -> u128 {
        self.ks_next.wrapping_add(self.kc) as u128
    }

    /// PRF input base for rank 0's noise stream (decryption).
    pub fn base_zero(&self) -> u128 {
        self.ks_zero.wrapping_add(self.kc) as u128
    }

    /// PRF input base `kc` alone — the shared noise stream of the float
    /// addition scheme (Eq. 7), which deliberately involves no per-rank key.
    pub fn base_collective(&self) -> u128 {
        self.kc as u128
    }

    /// Attach a prefetched-keystream cache; the schemes consult it before
    /// generating noise inline.
    pub fn attach_cache(&mut self, cache: Arc<KeystreamCache>) {
        self.cache = Some(cache);
    }

    /// The attached prefetch cache, if any.
    pub fn cache(&self) -> Option<&Arc<KeystreamCache>> {
        self.cache.as_ref()
    }

    /// The epoch the *next* [`CommKeys::advance`] will move to, without
    /// advancing and without touching the `KeyAdvances` counter (the real
    /// advance, not the peek, is the accountable event). This is what makes
    /// prefetching possible: a producer can generate epoch *i+1*'s
    /// keystream while epoch *i* is still live.
    pub fn peek_next_epoch(&self) -> u64 {
        self.kp_prf.eval_block_uncounted(self.kc as u128) as u64
    }

    /// The three noise-stream bases `(own, next, zero)` this rank would use
    /// at collective-key value `epoch` — for planning prefetch work against
    /// [`CommKeys::peek_next_epoch`].
    pub fn bases_at(&self, epoch: u64) -> (u128, u128, u128) {
        (
            self.ks_own.wrapping_add(epoch) as u128,
            self.ks_next.wrapping_add(epoch) as u128,
            self.ks_zero.wrapping_add(epoch) as u128,
        )
    }

    /// Re-derive the ring keys over a survivor set at a fresh membership
    /// epoch (shrink-and-continue after a `PeerDead` eviction).
    ///
    /// `members` are the *old* ranks of the survivors in ascending order
    /// (must contain this rank); `salt` is the agreed membership-epoch
    /// value every survivor computes identically. Each survivor derives
    /// the new ring from material it already shares — the progression
    /// PRF `F_kp` — so no extra key exchange is needed: old rank `m`'s
    /// new starting key is `F_kp(salt ∥ m+1)` and the new collective key
    /// is `F_kp(salt ∥ 0)` (the low word 0 is reserved for `kc`, so the
    /// domains never collide). Every survivor can evaluate every ring
    /// position, but each keeps only the Θ(1) triple the ring protocol
    /// needs, exactly like initial generation.
    ///
    /// Temporal safety across the shrink: the new `kc'` is drawn from a
    /// PRF domain (`salt ∥ 0`) disjoint from the progression chain
    /// `kc ← F_kp(kc)`, so no pad position of the shrunk ring coincides
    /// with a pre-shrink pad — a resend of the surviving contributions
    /// under the new keys is never a two-time pad (see DESIGN.md §11).
    pub fn rebase(&self, members: &[usize], salt: u64) -> CommKeys {
        assert!(!members.is_empty(), "survivor set cannot be empty");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "survivor set must be strictly ascending"
        );
        assert!(
            members.iter().all(|&m| m < self.world),
            "survivor outside the old world"
        );
        let pos = members
            .iter()
            .position(|&m| m == self.rank)
            .expect("rebase caller must be in the survivor set");
        let world = members.len();
        let key_for = |old_rank: usize| {
            self.kp_prf
                .eval_block(mix_rebase(salt, old_rank as u64 + 1)) as u64
        };
        CommKeys {
            rank: pos,
            world,
            ks_own: key_for(members[pos]),
            ks_next: key_for(members[(pos + 1) % world]),
            ks_zero: key_for(members[0]),
            kc: self.kp_prf.eval_block(mix_rebase(salt, 0)) as u64,
            ke_prf: self.ke_prf.clone(),
            kp_prf: self.kp_prf.clone(),
            cache: None,
        }
    }
}

/// Domain-separated PRF input for [`CommKeys::rebase`]: the salt in the
/// high word, the (shifted) old rank in the low word.
fn mix_rebase(salt: u64, slot: u64) -> u128 {
    ((salt as u128) << 64) | slot as u128
}

/// The full key material of a communicator, as known to the trusted
/// initialization context. Required only by the naive (non-cancelling)
/// scheme whose decryption cost is Θ(P), and by tests.
pub struct KeyRegistry {
    ks: Vec<u64>,
    kc: u64,
    ke_prf: PrfCipher,
    kp_prf: PrfCipher,
}

impl KeyRegistry {
    pub fn world(&self) -> usize {
        self.ks.len()
    }

    pub fn advance(&mut self) {
        self.kc = self.kp_prf.eval_block(self.kc as u128) as u64;
    }

    pub fn epoch(&self) -> u64 {
        self.kc
    }

    pub fn prf(&self) -> &PrfCipher {
        &self.ke_prf
    }

    /// PRF base `ks_r + kc` for an arbitrary rank `r`.
    pub fn base_of(&self, rank: usize) -> u128 {
        self.ks[rank].wrapping_add(self.kc) as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(world: usize) -> Vec<CommKeys> {
        CommKeys::generate(world, 0xc0ffee, Backend::AesSoft)
    }

    #[test]
    fn ring_of_keys_is_consistent() {
        let keys = gen(4);
        for i in 0..4 {
            assert_eq!(keys[i].rank(), i);
            assert_eq!(keys[i].world(), 4);
            // ks_next of rank i equals ks_own of rank i+1 (mod P):
            assert_eq!(keys[i].base_next(), keys[(i + 1) % 4].base_own());
            // everyone agrees on rank 0's stream:
            assert_eq!(keys[i].base_zero(), keys[0].base_own());
        }
        assert!(keys[3].is_last());
        assert!(!keys[0].is_last());
    }

    #[test]
    fn single_rank_communicator() {
        let keys = gen(1);
        assert!(keys[0].is_last());
        assert_eq!(keys[0].base_next(), keys[0].base_own());
        assert_eq!(keys[0].base_zero(), keys[0].base_own());
    }

    #[test]
    fn advance_stays_synchronized() {
        let mut keys = gen(3);
        let e0 = keys[0].epoch();
        for k in &mut keys {
            k.advance();
        }
        assert_ne!(keys[0].epoch(), e0, "temporal safety: kc must change");
        assert!(keys.iter().all(|k| k.epoch() == keys[0].epoch()));
        // Bases change with the epoch.
        for k in &mut keys {
            let b = k.base_own();
            k.advance();
            assert_ne!(k.base_own(), b);
        }
    }

    #[test]
    fn registry_matches_rank_views() {
        let (mut keys, mut reg) = CommKeys::generate_with_registry(5, 7, Backend::AesSoft);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(reg.base_of(i), k.base_own());
        }
        // Registry advances in lockstep.
        reg.advance();
        for k in &mut keys {
            k.advance();
        }
        assert_eq!(reg.epoch(), keys[0].epoch());
        assert_eq!(reg.base_of(2), keys[2].base_own());
    }

    #[test]
    fn different_seeds_different_keys() {
        let a = CommKeys::generate(2, 1, Backend::AesSoft);
        let b = CommKeys::generate(2, 2, Backend::AesSoft);
        assert_ne!(a[0].base_own(), b[0].base_own());
    }

    #[test]
    fn prf_streams_agree_across_ranks() {
        use hear_prf::word_u32;
        let keys = gen(3);
        // Rank 0's cancellation noise for rank 1 equals rank 1's own noise.
        for j in 0..64 {
            assert_eq!(
                word_u32(keys[0].prf(), keys[0].base_next(), j),
                word_u32(keys[1].prf(), keys[1].base_own(), j)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_world_rejected() {
        CommKeys::generate(0, 1, Backend::AesSoft);
    }

    #[test]
    fn rebase_survivor_ring_is_consistent() {
        let keys = gen(4);
        // Rank 2 died; survivors re-derive a 3-ring.
        let members = [0usize, 1, 3];
        let salt = 0xdead_beef;
        let shrunk: Vec<CommKeys> = members
            .iter()
            .map(|&m| keys[m].rebase(&members, salt))
            .collect();
        for (pos, k) in shrunk.iter().enumerate() {
            assert_eq!(k.rank(), pos);
            assert_eq!(k.world(), 3);
            assert_eq!(k.base_next(), shrunk[(pos + 1) % 3].base_own());
            assert_eq!(k.base_zero(), shrunk[0].base_own());
        }
        assert!(shrunk[2].is_last());
        // Every survivor lands on the same fresh collective key...
        assert!(shrunk.iter().all(|k| k.epoch() == shrunk[0].epoch()));
        // ...distinct from the pre-shrink epoch (no pad reuse).
        assert_ne!(shrunk[0].epoch(), keys[0].epoch());
        // And the re-derived bases differ from the old ring's.
        for (&m, k) in members.iter().zip(&shrunk) {
            assert_ne!(k.base_own(), keys[m].base_own());
        }
    }

    #[test]
    fn rebase_is_deterministic_and_salt_separated() {
        let keys = gen(3);
        let members = [0usize, 2];
        let a = keys[0].rebase(&members, 7);
        let b = keys[0].rebase(&members, 7);
        assert_eq!(a.base_own(), b.base_own());
        assert_eq!(a.epoch(), b.epoch());
        let c = keys[0].rebase(&members, 8);
        assert_ne!(
            a.epoch(),
            c.epoch(),
            "distinct salts must give distinct epochs"
        );
    }

    #[test]
    fn rebase_to_singleton_world() {
        let keys = gen(2);
        let solo = keys[1].rebase(&[1], 3);
        assert_eq!(solo.rank(), 0);
        assert_eq!(solo.world(), 1);
        assert!(solo.is_last());
        assert_eq!(solo.base_next(), solo.base_own());
        assert_eq!(solo.base_zero(), solo.base_own());
    }

    #[test]
    #[should_panic(expected = "survivor set")]
    fn rebase_rejects_caller_outside_survivors() {
        let keys = gen(3);
        keys[1].rebase(&[0, 2], 1);
    }
}
