//! Minimal deterministic generator for key-material sampling.
//!
//! Key generation in the paper happens inside the secure environment with a
//! real entropy source; for a reproducible library the caller provides a
//! seed and we stretch it with SplitMix64. This is ten lines on purpose —
//! even an in-repo general-purpose RNG on the *production* key path would
//! be worse than being explicit that seeding strategy is the caller's
//! responsibility.
//!
//! For **test-only** randomness (drawing workloads, fuzzing inputs,
//! shuffling), do not reach for this type: use `hear_testkit::TestRng`
//! (xoshiro256++, `rand`-compatible surface) from `crates/testkit`. The
//! two share the same SplitMix64 stretcher — `hear_testkit::SplitMix64`
//! is bit-for-bit identical to [`KeyRng`]'s step, and the cross-check
//! test below pins that equivalence so the implementations cannot drift.

#[derive(Clone)]
pub struct KeyRng {
    state: u64,
}

impl KeyRng {
    pub fn new(seed: u64) -> Self {
        KeyRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = KeyRng::new(1);
        let mut b = KeyRng::new(1);
        let mut c = KeyRng::new(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert_ne!(a.next_u128(), b.next_u128() ^ 1);
    }

    #[test]
    fn matches_testkit_splitmix64() {
        // KeyRng *is* SplitMix64; the testkit carries the reference
        // implementation (used there to seed xoshiro256++). Pin the two
        // together so neither can be "fixed" independently. (This crate's
        // dev-dependency on the testkit is named `proptest` — the alias
        // that lets the property tests compile unchanged.)
        use proptest::SplitMix64;
        for seed in [0u64, 1, 0x5eed, u64::MAX] {
            let mut key = KeyRng::new(seed);
            let mut reference = SplitMix64::new(seed);
            for _ in 0..64 {
                assert_eq!(key.next_u64(), reference.next_u64(), "seed={seed:#x}");
            }
        }
    }
}
