//! # hear-core — the HEAR encryption schemes
//!
//! This crate implements the paper's primary contribution: homomorphic
//! encryption schemes tailored to in-network Allreduce (paper §5).
//!
//! Every scheme follows the shape `E(x) = x ★ noise`, `D(x) = x ★ noise⁻¹`
//! with noise derived from a PRF over Θ(1) per-rank key state:
//!
//! | Scheme | Paper | Type | Lossiness | Security |
//! |---|---|---|---|---|
//! | [`int::IntSum`]   | Eq. 1 | int/fixed | lossless | IND-CPA |
//! | [`int::IntProd`]  | Eq. 2 | int/fixed | lossless | IND-CPA |
//! | [`int::IntXor`]   | Eq. 3 | int/bool  | lossless | IND-CPA |
//! | [`float::FloatSum`] (v1) | Eq. 7 | float | minor | COA |
//! | [`float::FloatSumExp`] (v2) | §5.3.4 | float | medium | COA |
//! | [`float::FloatProd`] | Eq. 6 | float | minor | COA |
//!
//! Supporting modules: [`keys`] (key generation & `kc ← F_kp(kc)`
//! progression), [`fixed`] (§5.2 fixed-point codec), [`homac`] (§5.5 result
//! verification), [`security`] (§5.3.1 MAP-adversary estimator), [`word`]
//! (ring-word abstraction), [`properties`] (the Table 2 property matrix).

pub mod derived;
pub mod fixed;
pub mod float;
pub mod homac;
pub mod int;
pub mod keys;
pub mod prefetch;
pub mod properties;
pub mod rng;
pub mod scheme;
pub mod security;
pub mod word;

pub use derived::{MpiOp, UnsupportedOp};
pub use fixed::FixedCodec;
pub use float::{noise_at, noise_fill_n, FloatProd, FloatSum, FloatSumExp};
pub use homac::{Homac, HOMAC_P};
pub use int::{IntProd, IntSum, IntXor, NaiveIntSum, Scratch};
pub use keys::{CommKeys, KeyRegistry};
pub use prefetch::{CacheSlot, KeystreamCache, StreamPlan};
pub use scheme::{
    FixedSumScheme, FloatProdScheme, FloatSumExpScheme, FloatSumScheme, IntProdScheme,
    IntSumScheme, IntXorScheme, Scheme, DIGEST_BASE, DIGEST_LANES,
};
pub use security::{map_adversary, MapStats};
pub use word::RingWord;

// Re-export what downstream users need to speak our vocabulary without
// naming every substrate crate.
pub use hear_hfp::{Hfp, HfpError, HfpFormat};
pub use hear_prf::Backend;
