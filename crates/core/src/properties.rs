//! The scheme property matrix of paper Table 2, as data.
//!
//! Kept in the core crate (next to the schemes it describes) so the Table 2
//! regenerator and the documentation can never drift from the code: each
//! row's claims are asserted by the scheme's own test suite.

/// Lossiness classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lossiness {
    Lossless,
    Minor,
    Medium,
}

/// Security classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SecurityClass {
    IndCpa,
    Coa,
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeRow {
    pub datatype: &'static str,
    pub operation: &'static str,
    pub lossiness: Lossiness,
    pub security: SecurityClass,
    /// None / "precision tradeoff".
    pub inflation: &'static str,
    /// None / "Minimal, FPU".
    pub hardware: &'static str,
}

/// The six supported schemes, in Table 2's column order.
pub const TABLE2: [SchemeRow; 6] = [
    SchemeRow {
        datatype: "Int, Fixed point",
        operation: "MPI_SUM",
        lossiness: Lossiness::Lossless,
        security: SecurityClass::IndCpa,
        inflation: "None",
        hardware: "None",
    },
    SchemeRow {
        datatype: "Int, Fixed point",
        operation: "MPI_PROD",
        lossiness: Lossiness::Lossless,
        security: SecurityClass::IndCpa,
        inflation: "None",
        hardware: "None",
    },
    SchemeRow {
        datatype: "Int, Bool",
        operation: "MPI_LXOR, MPI_BXOR",
        lossiness: Lossiness::Lossless,
        security: SecurityClass::IndCpa,
        inflation: "None",
        hardware: "None",
    },
    SchemeRow {
        datatype: "Float, Complex",
        operation: "MPI_SUM v1",
        lossiness: Lossiness::Minor,
        security: SecurityClass::Coa,
        inflation: "Precision tradeoff",
        hardware: "Minimal, FPU",
    },
    SchemeRow {
        datatype: "Float, Complex",
        operation: "MPI_SUM v2",
        lossiness: Lossiness::Medium,
        security: SecurityClass::Coa,
        inflation: "Precision tradeoff",
        hardware: "Minimal, FPU",
    },
    SchemeRow {
        datatype: "Float, Complex",
        operation: "MPI_PROD",
        lossiness: Lossiness::Minor,
        security: SecurityClass::Coa,
        inflation: "Precision tradeoff",
        hardware: "Minimal, FPU",
    },
];

/// Render Table 2 as a GitHub-flavoured markdown table. README/DESIGN
/// embed this output verbatim (a docs-sync test keeps them current), so
/// the documentation cannot drift from the code.
pub fn table2_markdown() -> String {
    let mut s = String::from(
        "| Datatype | Operation | Lossiness | Security | Inflation | Hardware |\n\
         |---|---|---|---|---|---|\n",
    );
    for row in &TABLE2 {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            row.datatype, row.operation, row.lossiness, row.security, row.inflation, row.hardware
        ));
    }
    s
}

/// Render the engine's composition matrix: every Table 2 scheme composes
/// with every reduction algorithm, chunking mode and verification mode.
/// The orthogonality is structural (one generic engine), so each cell is
/// simply "yes" — except XOR verification, whose nibble-counter digest is
/// sound only up to 15 ranks.
pub fn composition_matrix_markdown() -> String {
    let mut s = String::from(
        "| Scheme | Recursive doubling | Ring | Switch (INC) | Hierarchical | Pipelined | HoMAC verified |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for row in &TABLE2 {
        let verified = if row.operation.contains("XOR") {
            "yes (≤ 15 ranks)"
        } else {
            "yes"
        };
        s.push_str(&format!(
            "| {} {} | yes | yes | yes | yes | yes | {} |\n",
            row.datatype, row.operation, verified
        ));
    }
    s
}

impl std::fmt::Display for Lossiness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lossiness::Lossless => write!(f, "Lossless"),
            Lossiness::Minor => write!(f, "Minor"),
            Lossiness::Medium => write!(f, "Medium"),
        }
    }
}

impl std::fmt::Display for SecurityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SecurityClass::IndCpa => write!(f, "IND-CPA"),
            SecurityClass::Coa => write!(f, "COA"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_shape() {
        assert_eq!(TABLE2.len(), 6);
        // Integer schemes: lossless, IND-CPA, no inflation, no HW changes.
        for row in &TABLE2[..3] {
            assert_eq!(row.lossiness, Lossiness::Lossless);
            assert_eq!(row.security, SecurityClass::IndCpa);
            assert_eq!(row.inflation, "None");
            assert_eq!(row.hardware, "None");
        }
        // Float schemes: COA, precision tradeoff, FPU changes.
        for row in &TABLE2[3..] {
            assert_eq!(row.security, SecurityClass::Coa);
            assert_eq!(row.inflation, "Precision tradeoff");
            assert_eq!(row.hardware, "Minimal, FPU");
        }
        // v2 is the only medium-loss scheme.
        assert_eq!(TABLE2[4].lossiness, Lossiness::Medium);
    }

    #[test]
    fn markdown_renders_every_row() {
        let t2 = table2_markdown();
        let matrix = composition_matrix_markdown();
        for row in &TABLE2 {
            assert!(t2.contains(row.operation), "{} missing", row.operation);
            assert!(matrix.contains(row.operation), "{} missing", row.operation);
        }
        // Header + separator + six scheme rows.
        assert_eq!(t2.lines().count(), 8);
        assert_eq!(matrix.lines().count(), 8);
        assert!(matrix.contains("≤ 15 ranks"));
    }
}
