//! Integer schemes (paper §5.1): SUM on the additive ring (Eq. 1), PROD on
//! the multiplicative subgroup (Eq. 2), XOR (Eq. 3). All three are
//! lossless, have zero ciphertext inflation and are IND-CPA secure given a
//! secure PRF with unique inputs.
//!
//! Each scheme uses the *cancelling technique* (§5.1.4): rank `i < P−1`
//! folds in the inverse of rank `i+1`'s noise so that aggregation
//! telescopes to rank 0's noise alone, making decryption Θ(1). The
//! non-cancelling variant of Fig. 1 is provided as [`NaiveIntSum`] for the
//! ablation benchmark (its decryption is Θ(P)).

use crate::keys::{CommKeys, KeyRegistry};
use crate::word::RingWord;
use hear_prf::{
    par_add_blocks_into, par_add_keystream_into, par_sub_blocks_into, par_sub_keystream_into,
    par_xor_blocks_into, par_xor_keystream_into, WorkerPool,
};
use hear_telemetry::Metric;

/// The three group operations the fused kernels implement.
#[derive(Clone, Copy)]
enum FusedOp {
    Add,
    Sub,
    Xor,
}

/// Fold one noise stream into `buf` with a single fused pass, consulting
/// the prefetch cache first.
///
/// On a cache hit the blocks were generated uncounted by the producer
/// thread, so this consumer attributes them here — per-backend block
/// count, keystream bytes and masked bytes — which keeps every counter
/// total identical whether or not the prefetcher is running. Any miss
/// falls back to inline fused generation, which does its own accounting.
///
/// Both passes go through the parallel kernels of `hear-prf::par`: large
/// buffers are cut at PRF-block boundaries and masked across the shared
/// worker pool (bit-identical by pad purity in `(epoch, offset)`), while
/// small buffers and single-thread budgets take the serial kernels
/// unchanged.
fn apply_stream<W: RingWord>(keys: &CommKeys, base: u128, first: u64, buf: &mut [W], op: FusedOp) {
    if buf.is_empty() {
        return;
    }
    WorkerPool::with_current(|pool| apply_stream_on(pool, keys, base, first, buf, op))
}

fn apply_stream_on<W: RingWord>(
    pool: &WorkerPool,
    keys: &CommKeys,
    base: u128,
    first: u64,
    buf: &mut [W],
    op: FusedOp,
) {
    if let Some(cache) = keys.cache() {
        let per = W::PER_BLOCK as u64;
        let first_block = first / per;
        let last_word = first + buf.len() as u64 - 1;
        let nblocks = (last_word / per - first_block + 1) as usize;
        let skip = first - first_block * per;
        let hit = cache.with_blocks(
            keys.epoch(),
            base,
            first_block,
            nblocks,
            |blocks| match op {
                FusedOp::Add => par_add_blocks_into(pool, blocks, skip, buf),
                FusedOp::Sub => par_sub_blocks_into(pool, blocks, skip, buf),
                FusedOp::Xor => par_xor_blocks_into(pool, blocks, skip, buf),
            },
        );
        if hit.is_some() {
            let backend = keys.prf().backend();
            hear_telemetry::incr(Metric::PrefetchHits);
            hear_telemetry::add(hear_prf::blocks_metric(backend), nblocks as u64);
            hear_telemetry::add(Metric::KeystreamBytes, std::mem::size_of_val(buf) as u64);
            hear_telemetry::add(
                hear_prf::masked_metric(backend),
                std::mem::size_of_val(buf) as u64,
            );
            return;
        }
        hear_telemetry::incr(Metric::PrefetchMisses);
    }
    match op {
        FusedOp::Add => par_add_keystream_into(pool, keys.prf(), base, first, buf),
        FusedOp::Sub => par_sub_keystream_into(pool, keys.prf(), base, first, buf),
        FusedOp::Xor => par_xor_keystream_into(pool, keys.prf(), base, first, buf),
    }
}

/// Reusable noise scratch so the hot path performs no allocation when the
/// caller (e.g. the libhear memory pool) keeps one around.
pub struct Scratch<W> {
    own: Vec<W>,
    next: Vec<W>,
}

impl<W: RingWord> Default for Scratch<W> {
    fn default() -> Self {
        Scratch {
            own: Vec::new(),
            next: Vec::new(),
        }
    }
}

impl<W: RingWord> Scratch<W> {
    pub fn with_capacity(n: usize) -> Self {
        Scratch {
            own: vec![W::zero(); n],
            next: vec![W::zero(); n],
        }
    }

    fn ensure(&mut self, n: usize) {
        if self.own.len() < n {
            self.own.resize(n, W::zero());
            self.next.resize(n, W::zero());
        }
    }
}

/// Integer summation, Eq. (1).
pub struct IntSum;

impl IntSum {
    /// Encrypt `buf` in place for this rank; element `j` of the global
    /// vector is `buf[j - first]` (callers encrypting a pipelined block
    /// pass the block's base index as `first`).
    pub fn encrypt_in_place<W: RingWord>(
        keys: &CommKeys,
        first: u64,
        buf: &mut [W],
        scratch: &mut Scratch<W>,
    ) {
        let _s = hear_telemetry::span!("encrypt", elems = buf.len());
        let _ = scratch; // fused path needs no noise staging
        apply_stream(keys, keys.base_own(), first, buf, FusedOp::Add);
        if !keys.is_last() {
            apply_stream(keys, keys.base_next(), first, buf, FusedOp::Sub);
        }
    }

    /// Decrypt an aggregated vector in place: subtract rank 0's noise.
    pub fn decrypt_in_place<W: RingWord>(
        keys: &CommKeys,
        first: u64,
        agg: &mut [W],
        scratch: &mut Scratch<W>,
    ) {
        let _s = hear_telemetry::span!("decrypt", elems = agg.len());
        let _ = scratch;
        apply_stream(keys, keys.base_zero(), first, agg, FusedOp::Sub);
    }

    /// The associative operation the (untrusted) network applies.
    #[inline]
    pub fn combine<W: RingWord>(a: W, b: W) -> W {
        a.wadd(b)
    }
}

/// Integer product, Eq. (2): noise enters as a power of the subgroup
/// generator `g = 3`, whose order divides `2^{b−2}`, so every noise factor
/// is odd and exactly invertible — the scheme stays lossless.
pub struct IntProd;

impl IntProd {
    pub fn encrypt_in_place<W: RingWord>(
        keys: &CommKeys,
        first: u64,
        buf: &mut [W],
        scratch: &mut Scratch<W>,
    ) {
        let _s = hear_telemetry::span!("encrypt", elems = buf.len());
        scratch.ensure(buf.len());
        let own = &mut scratch.own[..buf.len()];
        W::fill_noise(keys.prf(), keys.base_own(), first, own);
        if keys.is_last() {
            for (b, n) in buf.iter_mut().zip(own.iter()) {
                *b = b.wmul(W::GENERATOR.wpow(*n));
            }
        } else {
            let next = &mut scratch.next[..buf.len()];
            W::fill_noise(keys.prf(), keys.base_next(), first, next);
            for ((b, n), m) in buf.iter_mut().zip(own.iter()).zip(next.iter()) {
                *b = b.wmul(W::GENERATOR.wpow(n.wsub(*m)));
            }
        }
    }

    pub fn decrypt_in_place<W: RingWord>(
        keys: &CommKeys,
        first: u64,
        agg: &mut [W],
        scratch: &mut Scratch<W>,
    ) {
        let _s = hear_telemetry::span!("decrypt", elems = agg.len());
        scratch.ensure(agg.len());
        let zero = &mut scratch.own[..agg.len()];
        W::fill_noise(keys.prf(), keys.base_zero(), first, zero);
        for (a, n) in agg.iter_mut().zip(zero.iter()) {
            *a = a.wmul(W::GENERATOR.wpow(*n).inv_odd());
        }
    }

    #[inline]
    pub fn combine<W: RingWord>(a: W, b: W) -> W {
        a.wmul(b)
    }
}

/// Logical/binary XOR, Eq. (3) — structurally AES-CTR.
pub struct IntXor;

impl IntXor {
    pub fn encrypt_in_place<W: RingWord>(
        keys: &CommKeys,
        first: u64,
        buf: &mut [W],
        scratch: &mut Scratch<W>,
    ) {
        let _s = hear_telemetry::span!("encrypt", elems = buf.len());
        let _ = scratch;
        apply_stream(keys, keys.base_own(), first, buf, FusedOp::Xor);
        if !keys.is_last() {
            apply_stream(keys, keys.base_next(), first, buf, FusedOp::Xor);
        }
    }

    pub fn decrypt_in_place<W: RingWord>(
        keys: &CommKeys,
        first: u64,
        agg: &mut [W],
        scratch: &mut Scratch<W>,
    ) {
        let _s = hear_telemetry::span!("decrypt", elems = agg.len());
        let _ = scratch;
        apply_stream(keys, keys.base_zero(), first, agg, FusedOp::Xor);
    }

    #[inline]
    pub fn combine<W: RingWord>(a: W, b: W) -> W {
        a.bxor(b)
    }
}

/// The intuitive non-cancelling scheme of Fig. 1: every rank adds only its
/// own noise, so encryption saves one PRF stream but decryption must
/// reconstruct and subtract *all* `P` noise streams — Θ(P) work that the
/// cancelling technique eliminates. Kept for the ablation benchmark.
pub struct NaiveIntSum;

impl NaiveIntSum {
    pub fn encrypt_in_place<W: RingWord>(
        keys: &CommKeys,
        first: u64,
        buf: &mut [W],
        scratch: &mut Scratch<W>,
    ) {
        let _s = hear_telemetry::span!("encrypt", elems = buf.len());
        let _ = scratch;
        apply_stream(keys, keys.base_own(), first, buf, FusedOp::Add);
    }

    /// Θ(P) decryption: needs the full key registry.
    pub fn decrypt_in_place<W: RingWord>(
        registry: &KeyRegistry,
        first: u64,
        agg: &mut [W],
        scratch: &mut Scratch<W>,
    ) {
        let _s = hear_telemetry::span!("decrypt", elems = agg.len());
        scratch.ensure(agg.len());
        let noise = &mut scratch.own[..agg.len()];
        for rank in 0..registry.world() {
            W::fill_noise(registry.prf(), registry.base_of(rank), first, noise);
            for (a, n) in agg.iter_mut().zip(noise.iter()) {
                *a = a.wsub(*n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::CommKeys;
    use hear_prf::Backend;

    /// Simulate a full encrypted allreduce in-process: every rank encrypts,
    /// the "network" folds with `combine`, one rank decrypts.
    fn roundtrip_sum_u32(world: usize, data: &[Vec<u32>]) -> Vec<u32> {
        let keys = CommKeys::generate(world, 42, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let n = data[0].len();
        let mut agg = vec![0u32; n];
        for (rank, keys) in keys.iter().enumerate() {
            let mut buf = data[rank].clone();
            IntSum::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
            for (a, c) in agg.iter_mut().zip(buf.iter()) {
                *a = IntSum::combine(*a, *c);
            }
        }
        IntSum::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
        agg
    }

    #[test]
    fn sum_telescopes_various_world_sizes() {
        for world in [1usize, 2, 3, 5, 8] {
            let data: Vec<Vec<u32>> = (0..world)
                .map(|r| (0..13).map(|j| (r as u32 + 1) * 1000 + j).collect())
                .collect();
            let got = roundtrip_sum_u32(world, &data);
            for j in 0..13 {
                let expect: u32 = data.iter().map(|v| v[j]).fold(0, |a, b| a.wrapping_add(b));
                assert_eq!(got[j], expect, "world={world} j={j}");
            }
        }
    }

    #[test]
    fn sum_is_lossless_on_wrapping_values() {
        // Values near the ring boundary: modulo arithmetic loses nothing.
        let data = vec![vec![u32::MAX, u32::MAX - 5], vec![7u32, 10]];
        let got = roundtrip_sum_u32(2, &data);
        assert_eq!(got, vec![6, 4]); // wrapped sums
    }

    #[test]
    fn sum_signed_via_two_complement() {
        use crate::word::{as_unsigned_i32, as_unsigned_i32_mut};
        let keys = CommKeys::generate(2, 9, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let a = [-100i32, 50, i32::MIN];
        let b = [30i32, -80, -1];
        let mut ca = a;
        let mut cb = b;
        IntSum::encrypt_in_place(&keys[0], 0, as_unsigned_i32_mut(&mut ca), &mut scratch);
        IntSum::encrypt_in_place(&keys[1], 0, as_unsigned_i32_mut(&mut cb), &mut scratch);
        let mut agg: Vec<u32> = as_unsigned_i32(&ca)
            .iter()
            .zip(as_unsigned_i32(&cb))
            .map(|(x, y)| x.wrapping_add(*y))
            .collect();
        IntSum::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
        let got: Vec<i32> = agg.iter().map(|v| *v as i32).collect();
        assert_eq!(got, vec![-70, -30, i32::MIN.wrapping_add(-1)]);
    }

    #[test]
    fn sum_block_offsets_compose() {
        // Encrypting [0..8) in two blocks with first=0 and first=5 must
        // equal encrypting the whole vector at once (pipelining relies on
        // this).
        let keys = CommKeys::generate(2, 3, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let full: Vec<u32> = (0..8).collect();
        let mut whole = full.clone();
        IntSum::encrypt_in_place(&keys[0], 0, &mut whole, &mut scratch);
        let mut part1 = full[..5].to_vec();
        let mut part2 = full[5..].to_vec();
        IntSum::encrypt_in_place(&keys[0], 0, &mut part1, &mut scratch);
        IntSum::encrypt_in_place(&keys[0], 5, &mut part2, &mut scratch);
        assert_eq!(&whole[..5], &part1[..]);
        assert_eq!(&whole[5..], &part2[..]);
    }

    #[test]
    fn prod_roundtrip_u32_u64() {
        fn run<W: RingWord>(world: usize, vals: &[Vec<W>]) {
            let keys = CommKeys::generate(world, 11, Backend::AesSoft);
            let mut scratch = Scratch::default();
            let n = vals[0].len();
            let mut agg = vec![W::one(); n];
            for (rank, keys) in keys.iter().enumerate() {
                let mut buf = vals[rank].clone();
                IntProd::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
                for (a, c) in agg.iter_mut().zip(buf.iter()) {
                    *a = IntProd::combine(*a, *c);
                }
            }
            IntProd::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
            for j in 0..n {
                let expect = vals.iter().map(|v| v[j]).fold(W::one(), |a, b| a.wmul(b));
                assert_eq!(agg[j], expect, "j={j}");
            }
        }
        run::<u32>(3, &[vec![2, 7, 0], vec![5, 3, 9], vec![4, 1, 6]]);
        run::<u64>(2, &[vec![1 << 40, 12345, u64::MAX], vec![3, 99999, 2]]);
    }

    #[test]
    fn prod_even_and_zero_values_survive() {
        // Even plaintexts are outside the subgroup but noise is always odd,
        // so they still decrypt exactly; zero stays zero.
        let keys = CommKeys::generate(2, 5, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let mut a = vec![0u32, 8, 1024];
        let mut b = vec![6u32, 2, 2];
        IntProd::encrypt_in_place(&keys[0], 0, &mut a, &mut scratch);
        IntProd::encrypt_in_place(&keys[1], 0, &mut b, &mut scratch);
        let mut agg: Vec<u32> = a.iter().zip(&b).map(|(x, y)| x.wrapping_mul(*y)).collect();
        IntProd::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
        assert_eq!(agg, vec![0, 16, 2048]);
    }

    #[test]
    fn xor_roundtrip() {
        let keys = CommKeys::generate(4, 6, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let data: Vec<Vec<u64>> = (0..4)
            .map(|r| (0..7).map(|j| ((r as u64) << 32) | (j * 77)).collect())
            .collect();
        let mut agg = vec![0u64; 7];
        for (rank, keys) in keys.iter().enumerate() {
            let mut buf = data[rank].clone();
            IntXor::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
            for (a, c) in agg.iter_mut().zip(buf.iter()) {
                *a = IntXor::combine(*a, *c);
            }
        }
        IntXor::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
        for j in 0..7 {
            let expect = data.iter().map(|v| v[j]).fold(0, |a, b| a ^ b);
            assert_eq!(agg[j], expect);
        }
    }

    #[test]
    fn naive_matches_cancelling_result() {
        let world = 3;
        let (keys, reg) = CommKeys::generate_with_registry(world, 77, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let data: Vec<Vec<u32>> = (0..world)
            .map(|r| vec![r as u32 * 10 + 1, r as u32 * 10 + 2])
            .collect();
        let mut agg = vec![0u32; 2];
        for (rank, keys) in keys.iter().enumerate() {
            let mut buf = data[rank].clone();
            NaiveIntSum::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
            for (a, c) in agg.iter_mut().zip(buf.iter()) {
                *a = a.wrapping_add(*c);
            }
        }
        NaiveIntSum::decrypt_in_place(&reg, 0, &mut agg, &mut scratch);
        assert_eq!(agg, vec![1 + 11 + 21, 2 + 12 + 22]);
    }

    #[test]
    fn temporal_safety_ciphertexts_change_across_epochs() {
        let mut keys = CommKeys::generate(2, 8, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let plain = vec![42u32; 16];
        let mut c1 = plain.clone();
        IntSum::encrypt_in_place(&keys[0], 0, &mut c1, &mut scratch);
        keys[0].advance();
        let mut c2 = plain.clone();
        IntSum::encrypt_in_place(&keys[0], 0, &mut c2, &mut scratch);
        assert_ne!(
            c1, c2,
            "same plaintext must encrypt differently across calls"
        );
    }

    #[test]
    fn local_safety_equal_elements_encrypt_differently() {
        let keys = CommKeys::generate(2, 8, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let mut buf = vec![7u32; 64];
        IntSum::encrypt_in_place(&keys[0], 0, &mut buf, &mut scratch);
        let distinct: std::collections::HashSet<u32> = buf.iter().copied().collect();
        assert!(
            distinct.len() > 60,
            "vector positions must use distinct noise"
        );
    }

    #[test]
    fn global_safety_ranks_encrypt_differently() {
        let keys = CommKeys::generate(3, 8, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let plain = vec![7u32; 32];
        let mut c0 = plain.clone();
        let mut c1 = plain.clone();
        IntSum::encrypt_in_place(&keys[0], 0, &mut c0, &mut scratch);
        IntSum::encrypt_in_place(&keys[1], 0, &mut c1, &mut scratch);
        assert_ne!(
            c0, c1,
            "different ranks must use different noise (global safety)"
        );
    }

    #[test]
    fn empty_vector_is_ok() {
        let keys = CommKeys::generate(2, 8, Backend::AesSoft);
        let mut scratch = Scratch::default();
        let mut buf: Vec<u32> = vec![];
        IntSum::encrypt_in_place(&keys[0], 0, &mut buf, &mut scratch);
        IntSum::decrypt_in_place(&keys[0], 0, &mut buf, &mut scratch);
        assert!(buf.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::keys::CommKeys;
    use hear_prf::Backend;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sum_roundtrip_random(
            world in 1usize..6,
            data in proptest::collection::vec(any::<u64>(), 1..40),
            seed in any::<u64>(),
        ) {
            let keys = CommKeys::generate(world, seed, Backend::AesSoft);
            let mut scratch = Scratch::default();
            let mut agg = vec![0u64; data.len()];
            for keys in &keys {
                let mut buf = data.clone();
                IntSum::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
                for (a, c) in agg.iter_mut().zip(buf.iter()) {
                    *a = a.wrapping_add(*c);
                }
            }
            IntSum::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
            for (j, a) in agg.iter().enumerate() {
                prop_assert_eq!(*a, data[j].wrapping_mul(world as u64));
            }
        }

        #[test]
        fn xor_even_world_cancels(
            data in proptest::collection::vec(any::<u32>(), 1..20),
            seed in any::<u64>(),
        ) {
            // XOR of the same vector an even number of times is zero.
            let keys = CommKeys::generate(4, seed, Backend::AesSoft);
            let mut scratch = Scratch::default();
            let mut agg = vec![0u32; data.len()];
            for keys in &keys {
                let mut buf = data.clone();
                IntXor::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
                for (a, c) in agg.iter_mut().zip(buf.iter()) {
                    *a ^= *c;
                }
            }
            IntXor::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
            prop_assert!(agg.iter().all(|v| *v == 0));
        }

        #[test]
        fn prod_roundtrip_random(
            world in 1usize..5,
            data in proptest::collection::vec(any::<u32>(), 1..20),
            seed in any::<u64>(),
        ) {
            let keys = CommKeys::generate(world, seed, Backend::AesSoft);
            let mut scratch = Scratch::default();
            let mut agg = vec![1u32; data.len()];
            for keys in &keys {
                let mut buf = data.clone();
                IntProd::encrypt_in_place(keys, 0, &mut buf, &mut scratch);
                for (a, c) in agg.iter_mut().zip(buf.iter()) {
                    *a = a.wrapping_mul(*c);
                }
            }
            IntProd::decrypt_in_place(&keys[0], 0, &mut agg, &mut scratch);
            for (j, a) in agg.iter().enumerate() {
                let mut expect = 1u32;
                for _ in 0..world { expect = expect.wrapping_mul(data[j]); }
                prop_assert_eq!(*a, expect);
            }
        }
    }
}
