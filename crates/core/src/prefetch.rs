//! Keystream prefetch cache: the hand-off point between a rank-local
//! producer thread and the scheme hot path.
//!
//! Key progression is deterministic (`kc ← F_kp(kc)`), so the PRF blocks
//! an allreduce will consume are computable one epoch ahead. The layer
//! crate runs a worker that fills [`CacheSlot`]s for epoch *i+1* while
//! epoch *i* is in its communication phase and publishes them here; the
//! integer schemes consult [`KeystreamCache::with_blocks`] before falling
//! back to inline generation. A lookup can miss for any reason — cold
//! cache, epoch mismatch after an unexpected extra `advance`, a stream the
//! producer skipped, or a block range the plan did not cover — and a miss
//! is always safe: the consumer regenerates inline and the result is
//! bit-identical.
//!
//! The cache keeps the **two** most recent generations. That matters for
//! overlap: the producer publishes epoch *i+1* while the consumer may
//! still be draining epoch *i* (e.g. the decrypt at the tail of a
//! pipelined call), so evicting on publish would turn the tail of every
//! call into misses. Double buffering falls out of
//! [`KeystreamCache::publish`] returning the evicted generation: the
//! producer keeps recycling generations of block buffers, so the steady
//! state allocates nothing.

use std::sync::{Arc, Mutex};

/// How many epochs of keystream stay live at once (current + prefetched).
const LIVE_GENERATIONS: usize = 2;

/// What the producer should generate for one noise stream of an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamPlan {
    /// PRF input base of the stream (`ks_* + kc` for the target epoch).
    pub base: u128,
    /// First 128-bit block index the consumer will touch.
    pub first_block: u64,
    /// Number of consecutive blocks to generate.
    pub nblocks: usize,
}

/// A generated run of PRF blocks for one stream.
#[derive(Debug, Default)]
pub struct CacheSlot {
    /// PRF input base the blocks belong to.
    pub base: u128,
    /// Block index of `blocks[0]` within the stream.
    pub first_block: u64,
    /// `blocks[i] = F_ke(base + first_block + i)`.
    pub blocks: Vec<u128>,
}

struct Generation {
    /// Epoch (`kc` value) the slots were generated for.
    epoch: u64,
    slots: Vec<CacheSlot>,
}

#[derive(Default)]
struct Inner {
    /// Oldest first; at most [`LIVE_GENERATIONS`] entries.
    gens: Vec<Generation>,
}

/// Shared keystream cache (one per communicator and rank) holding the two
/// most recent epochs' streams.
///
/// The mutex is uncontended in steady state: the producer touches it once
/// per epoch, the consumer a handful of times, and lookups against epoch
/// *i* never contend with the producer publishing *i+1* for long — the
/// blocks are generated outside the lock.
#[derive(Default)]
pub struct KeystreamCache {
    inner: Mutex<Inner>,
}

impl KeystreamCache {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Install `slots` as the cached keystream for `epoch`. Once more than
    /// [`LIVE_GENERATIONS`] epochs are live the oldest is evicted and
    /// returned so the producer can reuse its buffers.
    pub fn publish(&self, epoch: u64, slots: Vec<CacheSlot>) -> Vec<CacheSlot> {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.gens.push(Generation { epoch, slots });
        if inner.gens.len() > LIVE_GENERATIONS {
            inner.gens.remove(0).slots
        } else {
            Vec::new()
        }
    }

    /// Run `f` over the cached blocks `[first_block, first_block + nblocks)`
    /// of the stream at `base`, if some live generation holds exactly
    /// `epoch` and the full range. Returns `None` (a miss) otherwise; the
    /// caller counts the hit/miss telemetry since only scheme-level callers
    /// know a lookup happened on the hot path.
    pub fn with_blocks<R>(
        &self,
        epoch: u64,
        base: u128,
        first_block: u64,
        nblocks: usize,
        f: impl FnOnce(&[u128]) -> R,
    ) -> Option<R> {
        let inner = lock_unpoisoned(&self.inner);
        // Newest generation first: it is the one a healthy steady state hits.
        let gen = inner.gens.iter().rev().find(|g| g.epoch == epoch)?;
        let slot = gen.slots.iter().find(|s| s.base == base)?;
        let end = first_block.checked_add(nblocks as u64)?;
        if first_block < slot.first_block || end > slot.first_block + slot.blocks.len() as u64 {
            return None;
        }
        let off = (first_block - slot.first_block) as usize;
        Some(f(&slot.blocks[off..off + nblocks]))
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(base: u128, first_block: u64, n: usize) -> CacheSlot {
        CacheSlot {
            base,
            first_block,
            blocks: (0..n as u128).map(|i| base * 1000 + i).collect(),
        }
    }

    #[test]
    fn hit_requires_epoch_base_and_full_coverage() {
        let cache = KeystreamCache::new();
        cache.publish(7, vec![slot(100, 2, 10)]);

        // Exact and interior ranges hit.
        assert_eq!(cache.with_blocks(7, 100, 2, 10, <[u128]>::len), Some(10));
        assert_eq!(
            cache.with_blocks(7, 100, 5, 3, |b| b[0]),
            Some(100 * 1000 + 3)
        );
        // Wrong epoch, wrong base, and uncovered ranges miss.
        assert_eq!(cache.with_blocks(8, 100, 2, 10, |_| ()), None);
        assert_eq!(cache.with_blocks(7, 101, 2, 10, |_| ()), None);
        assert_eq!(cache.with_blocks(7, 100, 1, 2, |_| ()), None);
        assert_eq!(cache.with_blocks(7, 100, 11, 2, |_| ()), None);
    }

    #[test]
    fn two_generations_stay_live() {
        let cache = KeystreamCache::new();
        assert!(cache.publish(1, vec![slot(1, 0, 4)]).is_empty());
        assert!(cache.publish(2, vec![slot(2, 0, 4)]).is_empty());
        // Publishing epoch 2 must not evict epoch 1: a consumer can still
        // be draining it while the producer runs ahead.
        assert_eq!(cache.with_blocks(1, 1, 0, 4, |_| ()), Some(()));
        assert_eq!(cache.with_blocks(2, 2, 0, 4, |_| ()), Some(()));
    }

    #[test]
    fn publish_evicts_and_returns_the_oldest_generation() {
        let cache = KeystreamCache::new();
        assert!(cache.publish(1, vec![slot(1, 0, 4)]).is_empty());
        assert!(cache.publish(2, vec![slot(2, 0, 4)]).is_empty());
        let old = cache.publish(3, vec![slot(3, 0, 4)]);
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].base, 1);
        // Epoch 1 is gone; 2 and 3 are live.
        assert_eq!(cache.with_blocks(1, 1, 0, 4, |_| ()), None);
        assert_eq!(cache.with_blocks(2, 2, 0, 4, |_| ()), Some(()));
        assert_eq!(cache.with_blocks(3, 3, 0, 4, |_| ()), Some(()));
    }

    #[test]
    fn empty_cache_always_misses() {
        let cache = KeystreamCache::new();
        assert_eq!(cache.with_blocks(0, 0, 0, 1, |_| ()), None);
        assert_eq!(cache.with_blocks(0, 0, 0, 0, |_| ()), None);
    }
}
