//! Floating-point schemes (paper §5.3) on the HFP format.
//!
//! * [`FloatSum`] — Eq. (7): every rank multiplies by the *same* PRF noise
//!   `F_ke(kc + j)` so the untrusted network can add ciphertexts with the
//!   ring-exponent logic (δ = 2). Provides temporal and local safety but —
//!   by construction — not global safety.
//! * [`FloatProd`] — Eq. (6): per-rank noise with the cancelling technique
//!   (δ = 0, no inflation). We implement the telescoping orientation
//!   consistent with the stated Θ(1) decryption (see DESIGN.md).
//! * [`FloatSumExp`] — §5.3.4 alternative addition: values are encoded as
//!   `e^x` and reduced multiplicatively, trading precision and dynamic
//!   range for global safety.

use crate::keys::CommKeys;
use hear_hfp::format::{Hfp, HfpError, HfpFormat};
use hear_hfp::ops;
use hear_hfp::ringexp::mask;
use hear_prf::Prf;

/// Derive an HFP noise value from one PRF block: uniform sign, uniform
/// ring exponent, uniform mantissa (hidden one attached).
#[inline]
fn noise_from_block(block: u128, ew: u32, mw: u32) -> Hfp {
    let frac = (block as u64) & mask(mw);
    let exp = ((block >> mw) as u64) & mask(ew);
    let sign = (block >> (mw + ew)) & 1 == 1;
    Hfp {
        sign,
        exp,
        sig: (1u64 << mw) | frac,
        ew,
        mw,
    }
}

/// Derive an HFP noise value from the PRF: one PRF block per element.
#[inline]
pub fn noise_at(prf: &dyn Prf, base: u128, j: u64, ew: u32, mw: u32) -> Hfp {
    noise_from_block(prf.eval_block(base.wrapping_add(j as u128)), ew, mw)
}

/// Bulk noise derivation of exactly `n` values starting at element `first`.
pub fn noise_fill_n(
    prf: &dyn Prf,
    base: u128,
    first: u64,
    n: usize,
    ew: u32,
    mw: u32,
    out: &mut Vec<Hfp>,
) {
    out.clear();
    out.reserve(n);
    const BATCH: usize = 256;
    let mut blocks = [0u128; BATCH];
    let mut j = first;
    let mut left = n;
    while left > 0 {
        let take = left.min(BATCH);
        prf.fill_blocks(base.wrapping_add(j as u128), &mut blocks[..take]);
        for b in &blocks[..take] {
            out.push(noise_from_block(*b, ew, mw));
        }
        j += take as u64;
        left -= take;
    }
}

/// Homomorphic float summation, Eq. (7).
pub struct FloatSum {
    fmt: HfpFormat,
}

impl FloatSum {
    /// `fmt` must be an addition layout (δ = 2).
    pub fn new(fmt: HfpFormat) -> Self {
        assert_eq!(fmt.delta, 2, "the addition scheme requires δ = 2 (§5.3.5)");
        FloatSum { fmt }
    }

    pub fn format(&self) -> HfpFormat {
        self.fmt
    }

    /// Encrypt: encode each f64 into the plaintext layout, then ⊗ with the
    /// collective noise stream (no per-rank key — Eq. 7).
    pub fn encrypt_f64(
        &self,
        keys: &CommKeys,
        first: u64,
        x: &[f64],
        out: &mut Vec<Hfp>,
    ) -> Result<(), HfpError> {
        let _s = hear_telemetry::span!("encrypt", elems = x.len());
        let (le, lm) = self.fmt.plain_widths();
        let (cew, cmw) = self.fmt.cipher_widths();
        let mut noise = Vec::new();
        noise_fill_n(
            keys.prf(),
            keys.base_collective(),
            first,
            x.len(),
            cew,
            cmw,
            &mut noise,
        );
        out.clear();
        out.reserve(x.len());
        for (&v, n) in x.iter().zip(&noise) {
            let plain = Hfp::from_f64(v, le, lm)?;
            out.push(ops::mul(&plain, n, cew, cmw));
        }
        Ok(())
    }

    /// Decrypt an aggregated vector: divide by the collective noise.
    pub fn decrypt_f64(&self, keys: &CommKeys, first: u64, agg: &[Hfp], out: &mut Vec<f64>) {
        let _s = hear_telemetry::span!("decrypt", elems = agg.len());
        let (cew, cmw) = self.fmt.cipher_widths();
        let mut noise = Vec::new();
        noise_fill_n(
            keys.prf(),
            keys.base_collective(),
            first,
            agg.len(),
            cew,
            cmw,
            &mut noise,
        );
        out.clear();
        out.reserve(agg.len());
        for (c, n) in agg.iter().zip(&noise) {
            out.push(ops::div(c, n, cew, cmw).to_f64());
        }
    }

    /// The operation the network applies: ring-exponent addition.
    #[inline]
    pub fn combine(a: &Hfp, b: &Hfp) -> Hfp {
        ops::add(a, b)
    }
}

/// Homomorphic float product, Eq. (6) (telescoping orientation).
pub struct FloatProd {
    fmt: HfpFormat,
}

impl FloatProd {
    /// `fmt` must be a multiplication layout (δ = 0).
    pub fn new(fmt: HfpFormat) -> Self {
        assert_eq!(fmt.delta, 0, "the multiplication scheme requires δ = 0");
        FloatProd { fmt }
    }

    pub fn format(&self) -> HfpFormat {
        self.fmt
    }

    pub fn encrypt_f64(
        &self,
        keys: &CommKeys,
        first: u64,
        x: &[f64],
        out: &mut Vec<Hfp>,
    ) -> Result<(), HfpError> {
        let _s = hear_telemetry::span!("encrypt", elems = x.len());
        let (le, lm) = self.fmt.plain_widths();
        let (cew, cmw) = self.fmt.cipher_widths();
        let mut own = Vec::new();
        noise_fill_n(
            keys.prf(),
            keys.base_own(),
            first,
            x.len(),
            cew,
            cmw,
            &mut own,
        );
        let mut next = Vec::new();
        if !keys.is_last() {
            noise_fill_n(
                keys.prf(),
                keys.base_next(),
                first,
                x.len(),
                cew,
                cmw,
                &mut next,
            );
        }
        out.clear();
        out.reserve(x.len());
        for (i, &v) in x.iter().enumerate() {
            let plain = Hfp::from_f64(v, le, lm)?;
            let c = ops::mul(&plain, &own[i], cew, cmw);
            let c = if keys.is_last() {
                c
            } else {
                ops::div(&c, &next[i], cew, cmw)
            };
            out.push(c);
        }
        Ok(())
    }

    pub fn decrypt_f64(&self, keys: &CommKeys, first: u64, agg: &[Hfp], out: &mut Vec<f64>) {
        let _s = hear_telemetry::span!("decrypt", elems = agg.len());
        let (cew, cmw) = self.fmt.cipher_widths();
        let mut zero = Vec::new();
        noise_fill_n(
            keys.prf(),
            keys.base_zero(),
            first,
            agg.len(),
            cew,
            cmw,
            &mut zero,
        );
        out.clear();
        out.reserve(agg.len());
        for (c, z) in agg.iter().zip(&zero) {
            out.push(ops::div(c, z, cew, cmw).to_f64());
        }
    }

    #[inline]
    pub fn combine(a: &Hfp, b: &Hfp) -> Hfp {
        let (ew, mw) = (a.ew, a.mw);
        ops::mul(a, b, ew, mw)
    }
}

/// Alternative addition (§5.3.4): `x → e^x`, multiplicative reduction,
/// `ln` after decryption. Useful for values in a small range (e.g.
/// normalized ML weights); provides global safety, unlike [`FloatSum`].
pub struct FloatSumExp {
    prod: FloatProd,
}

impl FloatSumExp {
    pub fn new(fmt: HfpFormat) -> Self {
        FloatSumExp {
            prod: FloatProd::new(fmt),
        }
    }

    pub fn format(&self) -> HfpFormat {
        self.prod.format()
    }

    pub fn encrypt_f64(
        &self,
        keys: &CommKeys,
        first: u64,
        x: &[f64],
        out: &mut Vec<Hfp>,
    ) -> Result<(), HfpError> {
        let encoded: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        for e in &encoded {
            if !e.is_finite() || *e == 0.0 {
                // exp() over/underflowed: the value is outside the scheme's
                // dynamic range.
                return Err(HfpError::ExponentOverflow(0));
            }
        }
        self.prod.encrypt_f64(keys, first, &encoded, out)
    }

    pub fn decrypt_f64(&self, keys: &CommKeys, first: u64, agg: &[Hfp], out: &mut Vec<f64>) {
        self.prod.decrypt_f64(keys, first, agg, out);
        for v in out.iter_mut() {
            *v = v.ln();
        }
    }

    #[inline]
    pub fn combine(a: &Hfp, b: &Hfp) -> Hfp {
        FloatProd::combine(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hear_prf::{Backend, PrfCipher};

    fn keys(world: usize) -> Vec<CommKeys> {
        CommKeys::generate(world, 0xBEEF, Backend::AesSoft)
    }

    #[test]
    fn noise_is_canonical_and_varied() {
        let prf = PrfCipher::new(Backend::AesSoft, 1).unwrap();
        let mut exps = std::collections::HashSet::new();
        for j in 0..256 {
            let n = noise_at(&prf, 7, j, 10, 23);
            assert!(n.is_canonical());
            assert!(!n.is_zero());
            exps.insert(n.exp);
        }
        // 10-bit exponents over 256 draws: expect wide coverage.
        assert!(
            exps.len() > 150,
            "noise exponents must be spread over the ring"
        );
    }

    /// Full encrypted allreduce for float sum: every rank encrypts, the
    /// network adds ciphertexts, one rank decrypts.
    fn float_sum_roundtrip(world: usize, fmt: HfpFormat, data: &[Vec<f64>]) -> Vec<f64> {
        let keys = keys(world);
        let scheme = FloatSum::new(fmt);
        let n = data[0].len();
        let (cew, cmw) = fmt.cipher_widths();
        let mut agg = vec![Hfp::zero(cew, cmw); n];
        let mut ct = Vec::new();
        for (rank, keys) in keys.iter().enumerate() {
            scheme.encrypt_f64(keys, 0, &data[rank], &mut ct).unwrap();
            for (a, c) in agg.iter_mut().zip(ct.iter()) {
                *a = FloatSum::combine(a, c);
            }
        }
        let mut out = Vec::new();
        scheme.decrypt_f64(&keys[0], 0, &agg, &mut out);
        out
    }

    #[test]
    fn float_sum_fp32_gamma2_accuracy() {
        let fmt = HfpFormat::fp32(2, 2);
        let data = vec![
            vec![1.5, -2.25, 3.0e-3, 1000.0],
            vec![0.5, 4.5, 2.0e-3, -500.0],
            vec![-1.0, 1.75, -1.0e-3, 250.0],
        ];
        let got = float_sum_roundtrip(3, fmt, &data);
        for j in 0..4 {
            let expect: f64 = data.iter().map(|v| v[j]).sum();
            let rel = (got[j] - expect).abs() / expect.abs().max(1e-12);
            assert!(rel < 1e-5, "j={j} got={} expect={expect} rel={rel}", got[j]);
        }
    }

    #[test]
    fn float_sum_large_magnitude_spread() {
        // Exponent differences exercise the ring alignment.
        let fmt = HfpFormat::fp32(2, 2);
        let data = vec![vec![1.0e10, 1.0e-10], vec![-1.0e10, 2.0e-10]];
        let got = float_sum_roundtrip(2, fmt, &data);
        // 1e10 - 1e10 = 0 exactly (same noise, same ciphertext magnitudes).
        assert!(
            got[0].abs() < 1.0,
            "cancellation should be near-exact, got {}",
            got[0]
        );
        let rel = (got[1] - 3.0e-10).abs() / 3.0e-10;
        assert!(rel < 1e-5, "rel={rel}");
    }

    #[test]
    fn float_sum_gamma0_loses_more_precision_than_gamma2() {
        let data: Vec<Vec<f64>> = (0..4)
            .map(|r| {
                (0..64)
                    .map(|j| ((r * 64 + j) as f64).sin() * 3.0 + 3.5)
                    .collect()
            })
            .collect();
        let expect: Vec<f64> = (0..64)
            .map(|j| data.iter().map(|v| v[j]).sum::<f64>())
            .collect();
        let err = |gamma: u32| -> f64 {
            let got = float_sum_roundtrip(4, HfpFormat::fp32(2, gamma), &data);
            got.iter()
                .zip(&expect)
                .map(|(g, e)| ((g - e) / e).abs())
                .sum::<f64>()
                / 64.0
        };
        let (e0, e2) = (err(0), err(2));
        assert!(e0 > e2, "γ=0 mean rel err {e0} should exceed γ=2 {e2}");
        assert!(e2 < 1e-5);
    }

    #[test]
    fn float_sum_rejects_nan() {
        let keys = keys(2);
        let scheme = FloatSum::new(HfpFormat::fp32(2, 2));
        let mut out = Vec::new();
        assert_eq!(
            scheme.encrypt_f64(&keys[0], 0, &[f64::NAN], &mut out),
            Err(HfpError::NonFinite)
        );
    }

    #[test]
    fn float_sum_zero_inputs_become_smallest() {
        let fmt = HfpFormat::fp32(2, 2);
        let data = vec![vec![0.0, 5.0], vec![0.0, 0.0]];
        let got = float_sum_roundtrip(2, fmt, &data);
        // Zeros decode to tiny magnitudes, not exact zero.
        assert!(got[0].abs() < 1e-30);
        assert!((got[1] - 5.0).abs() / 5.0 < 1e-5);
    }

    fn float_prod_roundtrip(world: usize, fmt: HfpFormat, data: &[Vec<f64>]) -> Vec<f64> {
        let keys = keys(world);
        let scheme = FloatProd::new(fmt);
        let n = data[0].len();
        let (cew, cmw) = fmt.cipher_widths();
        let mut agg = vec![Hfp::one(cew, cmw); n];
        let mut ct = Vec::new();
        for (rank, keys) in keys.iter().enumerate() {
            scheme.encrypt_f64(keys, 0, &data[rank], &mut ct).unwrap();
            for (a, c) in agg.iter_mut().zip(ct.iter()) {
                *a = FloatProd::combine(a, c);
            }
        }
        let mut out = Vec::new();
        scheme.decrypt_f64(&keys[0], 0, &agg, &mut out);
        out
    }

    #[test]
    fn float_prod_fp32_accuracy() {
        let fmt = HfpFormat::fp32(0, 0);
        let data = vec![
            vec![1.5, -2.0, 0.125],
            vec![2.0, 3.0, -8.0],
            vec![-4.0, 0.5, 2.0],
        ];
        let got = float_prod_roundtrip(3, fmt, &data);
        let expect = [1.5 * 2.0 * -4.0, -2.0 * 3.0 * 0.5, 0.125 * -8.0 * 2.0];
        for j in 0..3 {
            let rel = (got[j] - expect[j]).abs() / expect[j].abs();
            assert!(
                rel < 1e-5,
                "j={j} got={} expect={} rel={rel}",
                got[j],
                expect[j]
            );
        }
    }

    #[test]
    fn float_prod_single_rank() {
        // world=1: the rank is last, no cancellation division at all.
        let got = float_prod_roundtrip(1, HfpFormat::fp32(0, 0), &[vec![3.25, -0.5]]);
        assert!((got[0] - 3.25).abs() < 1e-6);
        assert!((got[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn float_prod_fp64_tighter_than_fp16() {
        let data = vec![vec![1.1; 8], vec![0.9; 8]];
        let expect = 1.1 * 0.9;
        let rel = |fmt: HfpFormat| -> f64 {
            let got = float_prod_roundtrip(2, fmt, &data);
            got.iter()
                .map(|g| ((g - expect) / expect).abs())
                .sum::<f64>()
                / 8.0
        };
        let r16 = rel(HfpFormat::fp16(0, 0));
        let r64 = rel(HfpFormat::fp64(0, 0));
        assert!(
            r64 < r16 / 1e6,
            "fp64 {r64} must be far tighter than fp16 {r16}"
        );
    }

    #[test]
    fn float_sum_exp_small_range() {
        let keys = keys(2);
        let scheme = FloatSumExp::new(HfpFormat::fp64(0, 0));
        let data = [vec![0.5, -0.25, 0.01], vec![0.1, 0.05, -0.02]];
        let (cew, cmw) = scheme.format().cipher_widths();
        let mut agg = vec![Hfp::one(cew, cmw); 3];
        let mut ct = Vec::new();
        for (rank, k) in keys.iter().enumerate() {
            scheme.encrypt_f64(k, 0, &data[rank], &mut ct).unwrap();
            for (a, c) in agg.iter_mut().zip(ct.iter()) {
                *a = FloatSumExp::combine(a, c);
            }
        }
        let mut out = Vec::new();
        scheme.decrypt_f64(&keys[0], 0, &agg, &mut out);
        let expect = [0.6, -0.2, -0.01];
        for j in 0..3 {
            assert!(
                (out[j] - expect[j]).abs() < 1e-9,
                "j={j} got={} expect={}",
                out[j],
                expect[j]
            );
        }
    }

    #[test]
    fn float_sum_exp_rejects_out_of_range() {
        let keys = keys(2);
        let scheme = FloatSumExp::new(HfpFormat::fp64(0, 0));
        let mut out = Vec::new();
        // e^1000 overflows f64.
        assert!(scheme
            .encrypt_f64(&keys[0], 0, &[1000.0], &mut out)
            .is_err());
    }

    #[test]
    fn sum_no_global_safety_but_prod_has_it() {
        // Same plaintext on two ranks: Eq. 7 (shared noise) produces equal
        // ciphertexts (no global safety — the paper's documented trade),
        // while Eq. 6 (per-rank noise) produces different ones.
        let keys = keys(3);
        let sum = FloatSum::new(HfpFormat::fp32(2, 2));
        let prod = FloatProd::new(HfpFormat::fp32(0, 0));
        let x = [std::f64::consts::PI];
        let (mut c0, mut c1) = (Vec::new(), Vec::new());
        sum.encrypt_f64(&keys[0], 0, &x, &mut c0).unwrap();
        sum.encrypt_f64(&keys[1], 0, &x, &mut c1).unwrap();
        assert_eq!(c0[0], c1[0], "Eq. 7 shares the noise stream");
        prod.encrypt_f64(&keys[0], 0, &x, &mut c0).unwrap();
        prod.encrypt_f64(&keys[1], 0, &x, &mut c1).unwrap();
        assert_ne!(c0[0], c1[0], "Eq. 6 uses per-rank noise");
    }

    #[test]
    fn temporal_safety_for_floats() {
        let mut ks = keys(2);
        let scheme = FloatSum::new(HfpFormat::fp32(2, 2));
        let x = [42.0];
        let (mut c1, mut c2) = (Vec::new(), Vec::new());
        scheme.encrypt_f64(&ks[0], 0, &x, &mut c1).unwrap();
        ks[0].advance();
        scheme.encrypt_f64(&ks[0], 0, &x, &mut c2).unwrap();
        assert_ne!(c1[0], c2[0]);
    }

    #[test]
    fn block_offsets_compose_for_floats() {
        let ks = keys(2);
        let scheme = FloatSum::new(HfpFormat::fp32(2, 2));
        let x: Vec<f64> = (1..=8).map(|v| v as f64).collect();
        let mut whole = Vec::new();
        scheme.encrypt_f64(&ks[0], 0, &x, &mut whole).unwrap();
        let (mut p1, mut p2) = (Vec::new(), Vec::new());
        scheme.encrypt_f64(&ks[0], 0, &x[..3], &mut p1).unwrap();
        scheme.encrypt_f64(&ks[0], 3, &x[3..], &mut p2).unwrap();
        assert_eq!(&whole[..3], &p1[..]);
        assert_eq!(&whole[3..], &p2[..]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use hear_prf::Backend;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn float_sum_roundtrip_error_bounded(
            world in 1usize..5,
            seed in any::<u64>(),
            vals in proptest::collection::vec(0.1f64..10.0, 1..16),
        ) {
            let keys = CommKeys::generate(world, seed, Backend::AesSoft);
            let fmt = HfpFormat::fp32(2, 2);
            let scheme = FloatSum::new(fmt);
            let (cew, cmw) = fmt.cipher_widths();
            let mut agg = vec![Hfp::zero(cew, cmw); vals.len()];
            let mut ct = Vec::new();
            for k in &keys {
                scheme.encrypt_f64(k, 0, &vals, &mut ct).unwrap();
                for (a, c) in agg.iter_mut().zip(ct.iter()) {
                    *a = FloatSum::combine(a, c);
                }
            }
            let mut out = Vec::new();
            scheme.decrypt_f64(&keys[0], 0, &agg, &mut out);
            for (j, got) in out.iter().enumerate() {
                let expect = vals[j] * world as f64;
                let rel = (got - expect).abs() / expect;
                prop_assert!(rel < 1e-4, "j={} got={} expect={} rel={}", j, got, expect, rel);
            }
        }

        #[test]
        fn float_prod_roundtrip_error_bounded(
            world in 1usize..4,
            seed in any::<u64>(),
            vals in proptest::collection::vec(0.5f64..2.0, 1..12),
        ) {
            let keys = CommKeys::generate(world, seed, Backend::AesSoft);
            let fmt = HfpFormat::fp32(0, 0);
            let scheme = FloatProd::new(fmt);
            let (cew, cmw) = fmt.cipher_widths();
            let mut agg = vec![Hfp::one(cew, cmw); vals.len()];
            let mut ct = Vec::new();
            for k in &keys {
                scheme.encrypt_f64(k, 0, &vals, &mut ct).unwrap();
                for (a, c) in agg.iter_mut().zip(ct.iter()) {
                    *a = FloatProd::combine(a, c);
                }
            }
            let mut out = Vec::new();
            scheme.decrypt_f64(&keys[0], 0, &agg, &mut out);
            for (j, got) in out.iter().enumerate() {
                let expect = vals[j].powi(world as i32);
                let rel = (got - expect).abs() / expect;
                prop_assert!(rel < 1e-4, "j={} rel={}", j, rel);
            }
        }
    }
}
