//! The MAP-adversary security estimator (paper §5.3.1).
//!
//! HFP mantissas are multiplied, so ciphertext mantissas follow a piecewise
//! smooth logarithmic distribution rather than a uniform one — a ciphertext-
//! only adversary gains a small statistical edge. The paper quantifies it
//! with a maximum-a-posteriori estimator: observe ciphertext `c`, guess
//! `x_g = argmax_x Pr(C = c | X = x)` with the likelihood measured by
//! enumerating all PRF mantissa outputs.
//!
//! The paper reports FP32 numbers (average guess probability 3.57×10⁻⁷
//! against a uniform baseline of 1.19×10⁻⁷ = 2⁻²³, a ≈3× edge). Exact
//! enumeration at 23-bit widths costs ~2⁴⁶ normalizations, so this module
//! enumerates exactly at configurable reduced widths — the estimator code
//! path is identical and the adversary-edge *ratio* is width-stable, which
//! the experiment binary demonstrates across widths (see EXPERIMENTS.md).

/// Result of the exhaustive MAP experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapStats {
    /// Average success probability of the MAP guess over uniform plaintexts.
    pub avg: f64,
    /// Best case for the adversary: max over plaintexts of P(guess = x | x).
    pub max: f64,
    /// Worst case for the adversary.
    pub min: f64,
    /// The uniform-guess baseline `2^{-mw_plain}`.
    pub uniform: f64,
    pub mw_plain: u32,
    pub mw_noise: u32,
    pub mw_cipher: u32,
}

impl MapStats {
    /// The adversary's statistical edge over brute force.
    pub fn edge_ratio(&self) -> f64 {
        self.avg / self.uniform
    }
}

/// Round a product of two hidden-one significands down to `to_mw` stored
/// bits, RTNE; returns the ciphertext *fraction* (hidden one stripped) —
/// exactly what an eavesdropper sees in the mantissa field.
fn cipher_fraction(sig_x: u64, sig_f: u64, to_mw: u32) -> u64 {
    let p = (sig_x as u128) * (sig_f as u128);
    let len = 128 - p.leading_zeros();
    let target = to_mw + 1;
    let sig = if len <= target {
        (p << (target - len)) as u64
    } else {
        let drop = len - target;
        let kept = (p >> drop) as u64;
        let round = (p >> (drop - 1)) & 1;
        let sticky = p & ((1u128 << (drop - 1)) - 1);
        let mut s = kept;
        if round == 1 && (sticky != 0 || kept & 1 == 1) {
            s += 1;
        }
        if s >> target != 0 {
            s >>= 1;
        }
        s
    };
    debug_assert_eq!(sig >> to_mw, 1, "normalized hidden-one form");
    sig & ((1u64 << to_mw) - 1)
}

/// Exhaustively enumerate all (plaintext mantissa, noise mantissa) pairs at
/// the given widths and compute the MAP adversary's success statistics.
///
/// Memory: `2^{mw_plain + mw_cipher}` u32 counters — keep widths ≤ 12.
pub fn map_adversary(mw_plain: u32, mw_noise: u32, mw_cipher: u32) -> MapStats {
    assert!(
        mw_plain + mw_cipher <= 26,
        "count table would exceed memory budget"
    );
    let nx = 1usize << mw_plain;
    let nf = 1usize << mw_noise;
    let nc = 1usize << mw_cipher;
    // counts[c * nx + x] = #(noise values f such that enc(x, f) has mantissa c)
    let mut counts = vec![0u32; nc * nx];
    for x in 0..nx {
        let sig_x = (1u64 << mw_plain) | x as u64;
        for f in 0..nf {
            let sig_f = (1u64 << mw_noise) | f as u64;
            let c = cipher_fraction(sig_x, sig_f, mw_cipher) as usize;
            counts[c * nx + x] += 1;
        }
    }
    // MAP guess per ciphertext: argmax_x counts[c][x]; ties to the first.
    let mut success_by_x = vec![0u64; nx];
    for c in 0..nc {
        let row = &counts[c * nx..(c + 1) * nx];
        let mut best = 0usize;
        for (x, &cnt) in row.iter().enumerate() {
            if cnt > row[best] {
                best = x;
            }
        }
        if row[best] > 0 {
            success_by_x[best] += row[best] as u64;
        }
    }
    let per_x: Vec<f64> = success_by_x.iter().map(|&s| s as f64 / nf as f64).collect();
    // Average over uniform X of P(success | X = x).
    let avg = per_x.iter().sum::<f64>() / nx as f64;
    let max = per_x.iter().cloned().fold(0.0f64, f64::max);
    let min = per_x.iter().cloned().fold(f64::INFINITY, f64::min);
    MapStats {
        avg,
        max,
        min,
        uniform: 1.0 / nx as f64,
        mw_plain,
        mw_noise,
        mw_cipher,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cipher_fraction_is_normalized() {
        // 1.5 × 1.5 = 2.25 → normalized mantissa 1.125 → fraction 0.125.
        let f = cipher_fraction(0b11 << 2, 0b11 << 2, 3);
        assert_eq!(f, 0b001);
        // 1.0 × 1.0 = 1.0 → fraction 0.
        assert_eq!(cipher_fraction(1 << 3, 1 << 3, 3), 0);
    }

    #[test]
    fn edge_ratio_is_small_and_stable_across_widths() {
        // The paper's FP32 ratio is ≈3×; exact enumeration at small widths
        // must land in the same ballpark and not grow with width.
        let s8 = map_adversary(8, 8, 8);
        let s10 = map_adversary(10, 10, 10);
        for s in [&s8, &s10] {
            assert!(s.avg > s.uniform, "MAP must beat blind guessing");
            assert!(s.edge_ratio() < 4.0, "edge {} too large", s.edge_ratio());
            assert!(
                s.edge_ratio() > 1.5,
                "edge {} implausibly small",
                s.edge_ratio()
            );
            assert!(s.max >= s.avg && s.avg >= s.min);
        }
        let drift = (s8.edge_ratio() - s10.edge_ratio()).abs();
        assert!(
            drift < 0.5,
            "edge ratio should be width-stable, drift {drift}"
        );
    }

    #[test]
    fn gamma_inflation_reduces_edge() {
        // Extra ciphertext mantissa bits (γ > 0) spread the distribution,
        // shrinking the per-guess probability.
        let g0 = map_adversary(8, 8, 8);
        let g2 = map_adversary(8, 10, 10);
        assert!(
            g2.avg <= g0.avg * 1.05,
            "γ=2 avg {} should not exceed γ=0 avg {}",
            g2.avg,
            g0.avg
        );
    }

    #[test]
    fn probabilities_are_valid() {
        let s = map_adversary(6, 6, 6);
        assert!(s.min >= 0.0 && s.max <= 1.0);
        assert!((0.0..=1.0).contains(&s.avg));
    }

    #[test]
    #[should_panic(expected = "memory budget")]
    fn oversized_widths_rejected() {
        map_adversary(14, 14, 14);
    }
}
