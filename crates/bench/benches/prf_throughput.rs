//! PRF backend microbenchmarks: single-block latency and bulk CTR
//! keystream throughput for SHA-1, software AES and AES-NI (the raw
//! numbers behind Fig. 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hear::prf::{Backend, Prf, PrfCipher};

fn bench_single_block(c: &mut Criterion) {
    let mut g = c.benchmark_group("prf_single_block");
    for backend in [Backend::Sha1, Backend::AesSoft, Backend::AesNi] {
        let Some(prf) = PrfCipher::new(backend, 0xABCD) else {
            continue;
        };
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &prf,
            |b, prf| {
                let mut x = 0u128;
                b.iter(|| {
                    x = x.wrapping_add(1);
                    std::hint::black_box(prf.eval_block(x))
                });
            },
        );
    }
    g.finish();
}

fn bench_keystream(c: &mut Criterion) {
    let mut g = c.benchmark_group("prf_keystream_64KiB");
    const BLOCKS: usize = 4096; // 64 KiB
    g.throughput(Throughput::Bytes((BLOCKS * 16) as u64));
    for backend in [Backend::Sha1, Backend::AesSoft, Backend::AesNi] {
        let Some(prf) = PrfCipher::new(backend, 0xABCD) else {
            continue;
        };
        let mut out = vec![0u128; BLOCKS];
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{backend:?}")),
            &prf,
            |b, prf| {
                b.iter(|| {
                    prf.fill_blocks(7, &mut out);
                    std::hint::black_box(out[0])
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_single_block, bench_keystream
}
criterion_main!(benches);
