//! Classical-HE baseline costs (the measured substance behind Table 1's
//! R3 column): per-operation latency of Paillier/RSA/ElGamal next to
//! HEAR's per-word cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hear::baselines::{ElGamal, Paillier, Rsa};
use hear::core::{Backend, CommKeys, IntSum, Scratch};
use hear::num::{BigUint, SplitMix64};

fn bench_baselines(c: &mut Criterion) {
    let mut rng = SplitMix64::new(1);
    // 512-bit keys keep Criterion runtimes sane; Table 1 uses 1024.
    let paillier = Paillier::generate(512, &mut rng);
    let rsa = Rsa::generate(512, &mut rng);
    let elgamal = ElGamal::generate(256, &mut rng);
    let m = BigUint::from_u64(123_456_789);
    let pc = paillier.encrypt(&m, &mut rng);
    let rc = rsa.encrypt(&m);
    let ec = elgamal.encrypt(&m, &mut rng);

    c.bench_function("paillier_encrypt", |b| {
        let mut rng = SplitMix64::new(2);
        b.iter(|| std::hint::black_box(paillier.encrypt(&m, &mut rng)))
    });
    c.bench_function("paillier_homomorphic_add", |b| {
        b.iter(|| std::hint::black_box(paillier.add_ciphertexts(&pc, &pc)))
    });
    c.bench_function("rsa_homomorphic_mul", |b| {
        b.iter(|| std::hint::black_box(rsa.mul_ciphertexts(&rc, &rc)))
    });
    c.bench_function("elgamal_homomorphic_mul", |b| {
        b.iter(|| std::hint::black_box(elgamal.mul_ciphertexts(&ec, &ec)))
    });
    // HEAR's cost for an entire 1024-word vector, for contrast.
    let keys = CommKeys::generate(1, 1, Backend::best_available()).remove(0);
    let mut scratch = Scratch::with_capacity(1024);
    let mut buf = vec![7u32; 1024];
    c.bench_function("hear_encrypt_1024_words", |b| {
        b.iter(|| {
            IntSum::encrypt_in_place(&keys, 0, &mut buf, &mut scratch);
            std::hint::black_box(buf[0])
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_baselines
}
criterion_main!(benches);
