//! The issue's bench-gated overhead check: with tracing disabled, the
//! telemetry record path must vanish into the noise of even the smallest
//! real workload — a 4-element encrypted allreduce on two ranks.
//!
//! Measures (a) the disabled `span!` + counter path and (b) the 4-element
//! encrypted allreduce, reports both through the testkit harness, and
//! *asserts* that one hundred disabled record hits cost less than the
//! allreduce itself — i.e. the instrumentation density of the hot path is
//! orders of magnitude below the work it observes.

use criterion::{criterion_group, criterion_main, Criterion};
use hear::core::{Backend, CommKeys};
use hear::layer::SecureComm;
use hear::mpi::Simulator;
use hear::telemetry::{add, Metric};
use std::time::Instant;

fn measure_disabled_record_ns() -> f64 {
    const N: u32 = 200_000;
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for i in 0..N {
            let _s = hear::telemetry::span!("noop", i = i);
            add(Metric::FabricMsgs, 1);
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / f64::from(N));
    }
    best
}

fn measure_allreduce_4elem_ns() -> f64 {
    let iters = 200u32;
    let times = Simulator::new(2).run(move |comm| {
        let keys = CommKeys::generate(2, 0x7e1e, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let mut sc = SecureComm::new(comm.clone(), keys);
        let data = [1u32, 2, 3, 4];
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(sc.allreduce_sum_u32(&data));
        }
        t0.elapsed()
    });
    times[0].as_nanos() as f64 / f64::from(iters)
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    c.bench_function("disabled_span_plus_counter", |b| {
        b.iter(|| {
            let _s = hear::telemetry::span!("noop", x = 1u32);
            add(Metric::FabricMsgs, 1);
        })
    });
    c.bench_function("allreduce_4elem_untraced", |b| {
        b.iter_custom(|iters| {
            let times = Simulator::new(2).run(move |comm| {
                let keys = CommKeys::generate(2, 0x7e1e, Backend::best_available())
                    .into_iter()
                    .nth(comm.rank())
                    .unwrap();
                let mut sc = SecureComm::new(comm.clone(), keys);
                let data = [1u32, 2, 3, 4];
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(sc.allreduce_sum_u32(&data));
                }
                t0.elapsed()
            });
            times[0]
        })
    });

    // The gate. Skipped when tracing is live (HEAR_TRACE exported), since
    // the disabled path is then not the one being exercised.
    if hear::telemetry::active() {
        eprintln!("telemetry enabled; skipping disabled-overhead gate");
        return;
    }
    let record_ns = measure_disabled_record_ns();
    let allreduce_ns = measure_allreduce_4elem_ns();
    println!(
        "# gate: disabled record {record_ns:.2} ns/op vs 4-elem allreduce {allreduce_ns:.0} ns/op \
         ({:.0}x)",
        allreduce_ns / record_ns.max(1e-9)
    );
    assert!(
        record_ns * 100.0 < allreduce_ns,
        "disabled telemetry not in the noise: {record_ns:.1} ns/op against a \
         {allreduce_ns:.0} ns allreduce"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_telemetry_overhead
}
criterion_main!(benches);
