//! Scheme-level encryption/decryption throughput: the integer SUM hot path
//! (keystream + ring add) and the float SUM path (noise derivation + ⊗),
//! per backend and message size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hear::core::{Backend, CommKeys, FloatSum, HfpFormat, IntSum, Scratch};

fn bench_int_sum(c: &mut Criterion) {
    let mut g = c.benchmark_group("int_sum_encrypt");
    for elems in [4usize, 4096, 262_144] {
        g.throughput(Throughput::Bytes((elems * 4) as u64));
        for backend in [Backend::Sha1, Backend::AesNi] {
            if !backend.is_available() {
                continue;
            }
            let keys = CommKeys::generate(2, 1, backend).remove(0);
            let mut scratch = Scratch::with_capacity(elems);
            let mut buf = vec![7u32; elems];
            g.bench_function(BenchmarkId::new(format!("{backend:?}"), elems), |b| {
                b.iter(|| {
                    IntSum::encrypt_in_place(&keys, 0, &mut buf, &mut scratch);
                    std::hint::black_box(buf[0])
                });
            });
        }
    }
    g.finish();
}

fn bench_int_sum_decrypt(c: &mut Criterion) {
    let mut g = c.benchmark_group("int_sum_decrypt");
    let elems = 262_144;
    g.throughput(Throughput::Bytes((elems * 4) as u64));
    let keys = CommKeys::generate(2, 1, Backend::best_available()).remove(0);
    let mut scratch = Scratch::with_capacity(elems);
    let mut buf = vec![7u32; elems];
    g.bench_function("best_backend_1MiB", |b| {
        b.iter(|| {
            IntSum::decrypt_in_place(&keys, 0, &mut buf, &mut scratch);
            std::hint::black_box(buf[0])
        });
    });
    g.finish();
}

fn bench_float_sum(c: &mut Criterion) {
    let mut g = c.benchmark_group("float_sum_encrypt");
    let elems = 16_384;
    g.throughput(Throughput::Bytes((elems * 4) as u64));
    let keys = CommKeys::generate(2, 1, Backend::best_available()).remove(0);
    let scheme = FloatSum::new(HfpFormat::fp32(2, 2));
    let vals: Vec<f64> = (0..elems).map(|i| i as f64 + 0.5).collect();
    let mut ct = Vec::new();
    g.bench_function("fp32_gamma2_64KiB", |b| {
        b.iter(|| {
            scheme.encrypt_f64(&keys, 0, &vals, &mut ct).unwrap();
            std::hint::black_box(ct.len())
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_int_sum, bench_int_sum_decrypt, bench_float_sum
}
criterion_main!(benches);
