//! HFP arithmetic microbenchmarks: the ⊗ operator, ciphertext-domain ring
//! addition, and decryption division — the FPU operations §5.3.6 says
//! hardware could accelerate.

use criterion::{criterion_group, criterion_main, Criterion};
use hear::hfp::format::Hfp;
use hear::hfp::ops;

fn bench_hfp(c: &mut Criterion) {
    let a = Hfp::from_f64(1.375 * 1024.0, 10, 23).unwrap();
    let b = Hfp::from_f64(-7.25e-3, 10, 23).unwrap();
    c.bench_function("hfp_mul", |bch| {
        bch.iter(|| std::hint::black_box(ops::mul(&a, &b, 10, 23)))
    });
    c.bench_function("hfp_add_ring", |bch| {
        bch.iter(|| std::hint::black_box(ops::add(&a, &b)))
    });
    c.bench_function("hfp_div", |bch| {
        bch.iter(|| std::hint::black_box(ops::div(&a, &b, 10, 23)))
    });
    c.bench_function("hfp_encode_f64", |bch| {
        bch.iter(|| std::hint::black_box(Hfp::from_f64(std::f64::consts::PI, 10, 23).unwrap()))
    });
    // IEEE comparison point.
    c.bench_function("native_f64_mul", |bch| {
        let (x, y) = (1.375e3f64, -7.25e-3f64);
        bch.iter(|| std::hint::black_box(std::hint::black_box(x) * std::hint::black_box(y)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_hfp
}
criterion_main!(benches);
