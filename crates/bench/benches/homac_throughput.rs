//! HoMAC tagging and verification throughput (§5.5 cost quantification).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hear::core::{Backend, CommKeys, Homac, IntSum, Scratch};

fn bench_homac(c: &mut Criterion) {
    const N: usize = 16_384;
    let keys = CommKeys::generate(1, 1, Backend::best_available()).remove(0);
    let homac = Homac::generate(2, Backend::best_available());
    let mut scratch = Scratch::with_capacity(N);
    let mut ct: Vec<u32> = (0..N as u32).collect();
    IntSum::encrypt_in_place(&keys, 0, &mut ct, &mut scratch);
    let tags = homac.tag(&keys, 0, &ct);

    let mut g = c.benchmark_group("homac");
    g.throughput(Throughput::Bytes((N * 4) as u64));
    g.bench_function("tag_64KiB", |b| {
        b.iter(|| std::hint::black_box(homac.tag(&keys, 0, &ct)))
    });
    g.bench_function("verify_64KiB", |b| {
        b.iter(|| std::hint::black_box(homac.verify(&keys, 0, &ct, &tags)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_homac
}
criterion_main!(benches);
