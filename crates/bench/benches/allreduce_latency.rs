//! End-to-end encrypted allreduce latency on the thread-backed runtime:
//! 16 B messages, 2 and 4 ranks, secure vs plain — the Fig. 4 comm-phase
//! numbers, Criterion-grade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hear::core::{Backend, CommKeys};
use hear::layer::SecureComm;
use hear::mpi::Simulator;

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce_16B");
    for world in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("plain", world), &world, |b, &world| {
            b.iter_custom(|iters| {
                let times = Simulator::new(world).run(|comm| {
                    let data = [1u32, 2, 3, 4];
                    let t0 = std::time::Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(comm.allreduce(&data, |x, y| x.wrapping_add(*y)));
                    }
                    t0.elapsed()
                });
                times[0]
            });
        });
        g.bench_with_input(BenchmarkId::new("hear", world), &world, |b, &world| {
            b.iter_custom(|iters| {
                let times = Simulator::new(world).run(move |comm| {
                    let keys = CommKeys::generate(world, 1, Backend::best_available())
                        .into_iter()
                        .nth(comm.rank())
                        .unwrap();
                    let mut sc = SecureComm::new(comm.clone(), keys);
                    let data = [1u32, 2, 3, 4];
                    let t0 = std::time::Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(sc.allreduce_sum_u32(&data));
                    }
                    t0.elapsed()
                });
                times[0]
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_allreduce
}
criterion_main!(benches);
