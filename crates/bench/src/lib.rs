//! Shared helpers for the experiment harness: workload generators,
//! host crypto-rate measurement (feeding measured numbers into the
//! performance model), and small statistics/formatting utilities.

use hear::core::{Backend, CommKeys, IntSum, Scratch};
use hear::prf::{Prf, PrfCipher};
use std::time::Instant;

/// Simple statistics over a sample.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
}

pub fn stats(samples: &[f64]) -> Stats {
    assert!(!samples.is_empty());
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    Stats {
        mean,
        std: var.sqrt(),
        min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
        max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    }
}

/// "Exponential sampling of values" (paper §5.3.2): uniform mantissa,
/// uniform exponent over a range that keeps sums inside the type's range.
pub fn exp_sampled_values(n: usize, exp_range: std::ops::Range<i32>, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            let m = 1.0 + (next() as f64 / u64::MAX as f64);
            let span = (exp_range.end - exp_range.start) as u64;
            let e = exp_range.start + (next() % span.max(1)) as i32;
            m * f64::powi(2.0, e)
        })
        .collect()
}

/// Measured single-core encryption/decryption throughput of the integer
/// SUM scheme (bytes/s) for one backend on this host, plus the fixed
/// per-call cost of a 16 B operation — the Fig. 5 measurement, reusable as
/// model input.
pub struct MeasuredRates {
    pub backend: Backend,
    pub enc_bps: f64,
    pub dec_bps: f64,
    pub per_call_s: f64,
}

pub fn measure_backend(backend: Backend, buf_bytes: usize, iters: u32) -> Option<MeasuredRates> {
    if !backend.is_available() {
        return None;
    }
    let keys = CommKeys::generate(2, 0xBEEF, backend);
    let mut scratch = Scratch::with_capacity(buf_bytes / 4);
    let mut buf = vec![0x5aa5_1234u32; buf_bytes / 4];

    let t0 = Instant::now();
    for _ in 0..iters {
        IntSum::encrypt_in_place(&keys[0], 0, &mut buf, &mut scratch);
    }
    let enc = t0.elapsed().as_secs_f64() / iters as f64;

    let t0 = Instant::now();
    for _ in 0..iters {
        IntSum::decrypt_in_place(&keys[0], 0, &mut buf, &mut scratch);
    }
    let dec = t0.elapsed().as_secs_f64() / iters as f64;

    // Fixed per-call cost: a 16 B encrypt+decrypt.
    let mut tiny = vec![1u32; 4];
    let t0 = Instant::now();
    let small_iters = 20_000;
    for _ in 0..small_iters {
        IntSum::encrypt_in_place(&keys[0], 0, &mut tiny, &mut scratch);
        IntSum::decrypt_in_place(&keys[0], 0, &mut tiny, &mut scratch);
    }
    let per_call = t0.elapsed().as_secs_f64() / small_iters as f64;

    Some(MeasuredRates {
        backend,
        enc_bps: buf_bytes as f64 / enc,
        dec_bps: buf_bytes as f64 / dec,
        per_call_s: per_call,
    })
}

/// Quick PRF raw-block throughput (bytes/s) — isolates the PRF from the
/// scheme arithmetic.
pub fn measure_prf_block_rate(backend: Backend, blocks: usize) -> Option<f64> {
    let prf = PrfCipher::new(backend, 0x1234_5678)?;
    let mut out = vec![0u128; blocks];
    let t0 = Instant::now();
    prf.fill_blocks(0, &mut out);
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(&out);
    Some(blocks as f64 * 16.0 / dt)
}

/// Environment-tunable experiment scale: `HEAR_SCALE=full` runs the
/// paper-sized iteration counts; the default keeps harnesses snappy.
pub fn scale_factor() -> usize {
    match std::env::var("HEAR_SCALE").as_deref() {
        Ok("full") => 10,
        _ => 1,
    }
}

/// True when the binary was invoked with `--json`: experiment regenerators
/// then emit machine-readable output (parseable with
/// `hear::telemetry::parse::parse_json`) instead of the human table.
pub fn json_output() -> bool {
    flag_set(std::env::args(), "--json")
}

fn flag_set(mut args: impl Iterator<Item = String>, flag: &str) -> bool {
    args.any(|a| a == flag)
}

pub fn gib_per_s(bps: f64) -> f64 {
    bps / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_set_matches_exact_argument() {
        let args = |v: &[&str]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        };
        assert!(flag_set(args(&["fig4", "--json"]), "--json"));
        assert!(!flag_set(args(&["fig4"]), "--json"));
        assert!(!flag_set(args(&["fig4", "--jsonx"]), "--json"));
    }

    #[test]
    fn stats_basics() {
        let s = stats(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn exp_sampling_covers_range() {
        let v = exp_sampled_values(2000, -8..8, 42);
        assert!(v.iter().all(|x| x.is_finite() && *x > 0.0));
        let small = v.iter().filter(|x| **x < 0.01).count();
        let large = v.iter().filter(|x| **x > 100.0).count();
        assert!(small > 50 && large > 50, "small={small} large={large}");
    }

    #[test]
    fn measurement_yields_sane_rates() {
        let r = measure_backend(Backend::AesSoft, 64 * 1024, 4).unwrap();
        assert!(r.enc_bps > 1e6, "implausibly slow: {}", r.enc_bps);
        assert!(r.dec_bps > r.enc_bps / 10.0);
        assert!(r.per_call_s > 0.0);
        assert!(measure_backend(Backend::Sha1, 16 * 1024, 2).is_some());
    }
}
