//! Factored-collective throughput: reduce-scatter, allgather, alltoall,
//! the fused allreduce they compose into, and the ZeRO-style sharded SGD
//! step built on top — measured wall-clock over the in-memory world, not
//! modeled. Emits `BENCH_collectives.json` (the per-commit collective
//! trajectory for `scripts/ci.sh`). `HEAR_BENCH_FAST` clamps the payload
//! and sample budget for CI; `HEAR_BENCH_DIR` redirects the artifact.
//!
//! Each sample times `iters` back-to-back collective calls inside one
//! simulated world and reports the slowest rank — collective wall time,
//! with thread spawn and key generation excluded.

use criterion::{Criterion, Throughput};
use hear::core::{Backend, CommKeys, Homac, IntSumScheme};
use hear::dnn::sharded::ShardedSgd;
use hear::layer::{EngineCfg, SecureComm};
use hear::mpi::Simulator;
use std::time::{Duration, Instant};

const WORLD: usize = 4;
const SEED: u64 = 0xBE7C;

fn elems() -> usize {
    if std::env::var("HEAR_BENCH_FAST").is_ok_and(|v| v != "0") {
        4 * 1024
    } else {
        64 * 1024
    }
}

fn secure(comm: &hear::mpi::Communicator) -> SecureComm {
    let keys = CommKeys::generate(WORLD, SEED, Backend::best_available())
        .into_iter()
        .nth(comm.rank())
        .unwrap();
    let homac = Homac::generate(SEED ^ 0x99, Backend::best_available());
    SecureComm::new(comm.clone(), keys).with_homac(homac)
}

/// Time `iters` calls of `op` in one world; the sample is the slowest
/// rank's elapsed time (the collective completes when the last rank does).
fn world_time<F>(iters: u64, op: F) -> Duration
where
    F: Fn(&mut SecureComm, &mut IntSumScheme<u32>, &[u32], &mut Vec<u32>) + Send + Sync,
{
    let n = elems();
    let op = &op;
    let times = Simulator::new(WORLD).run(move |comm| {
        let mut sc = secure(comm);
        let mut s = IntSumScheme::<u32>::default();
        let data: Vec<u32> = (0..n as u32)
            .map(|j| j.wrapping_mul(0x9E37_79B9).wrapping_add(comm.rank() as u32))
            .collect();
        let mut out = Vec::new();
        op(&mut sc, &mut s, &data, &mut out); // size the arenas
        let t = Instant::now();
        for _ in 0..iters {
            op(&mut sc, &mut s, &data, &mut out);
        }
        t.elapsed()
    });
    times.into_iter().max().unwrap_or_default()
}

fn bench_collectives(c: &mut Criterion) {
    let bytes = (elems() * std::mem::size_of::<u32>()) as u64;
    for verified in [false, true] {
        let cfg = if verified {
            EngineCfg::sync().verified()
        } else {
            EngineCfg::sync()
        };
        let suffix = if verified { "verified" } else { "plain" };
        let mut g = c.benchmark_group(format!("collectives_{WORLD}r/{suffix}"));
        g.throughput(Throughput::Bytes(bytes));
        g.bench_function("allreduce", |b| {
            b.iter_custom(|iters| {
                world_time(iters, |sc, s, data, out| {
                    sc.allreduce_with_into(s, data, out, cfg).unwrap();
                })
            })
        });
        g.bench_function("reduce_scatter", |b| {
            b.iter_custom(|iters| {
                world_time(iters, |sc, s, data, out| {
                    sc.reduce_scatter_with_into(s, data, out, cfg).unwrap();
                })
            })
        });
        g.bench_function("allgather", |b| {
            // Shard-sized input: the inverse phase of the reduce-scatter,
            // so rs + ag here is directly comparable to the fused row.
            b.iter_custom(|iters| {
                world_time(iters, |sc, s, data, out| {
                    let (lo, hi) = sc.shard_bounds(data.len());
                    sc.allgather_with_into(s, &data[lo..hi], out, cfg).unwrap();
                })
            })
        });
        g.bench_function("alltoall", |b| {
            b.iter_custom(|iters| {
                world_time(iters, |sc, s, data, out| {
                    sc.alltoall_with_into(s, data, out, cfg).unwrap();
                })
            })
        });
        g.finish();
    }

    // The composed workload: one ZeRO-style sharded SGD step (encrypted
    // reduce-scatter + local update + encrypted allgather) per iteration.
    let n = elems();
    let mut g = c.benchmark_group(format!("sharded_sgd_{WORLD}r"));
    g.throughput(Throughput::Bytes((n * std::mem::size_of::<f64>()) as u64));
    g.bench_function("step", |b| {
        b.iter_custom(|iters| {
            let times = Simulator::new(WORLD).run(move |comm| {
                let mut sc = secure(comm);
                let init: Vec<f64> = (0..n).map(|j| (j as f64 * 0.21).cos()).collect();
                let grads: Vec<f64> = (0..n)
                    .map(|j| ((j + comm.rank()) as f64 * 0.13).sin())
                    .collect();
                let mut opt = ShardedSgd::new(init, 0.05);
                opt.step(&mut sc, &grads).unwrap(); // size the arenas
                let t = Instant::now();
                for _ in 0..iters {
                    opt.step(&mut sc, &grads).unwrap();
                }
                t.elapsed()
            });
            times.into_iter().max().unwrap_or_default()
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::default();
    bench_collectives(&mut c);
    c.emit("collectives");
}
