//! Table 2 regenerator: supported operation/data types and their
//! properties, straight from the property matrix the scheme tests assert.

use hear::core::properties::TABLE2;
use hear::core::HfpFormat;

fn main() {
    println!("# Table 2: supported operations and properties");
    println!(
        "{:<18} {:<20} {:<10} {:<9} {:<20} {:<14}",
        "datatype", "operation", "lossiness", "security", "ciphertext inflation", "hw changes"
    );
    for row in TABLE2 {
        println!(
            "{:<18} {:<20} {:<10} {:<9} {:<20} {:<14}",
            row.datatype,
            row.operation,
            row.lossiness.to_string(),
            row.security.to_string(),
            row.inflation,
            row.hardware
        );
    }
    println!("\n# Float inflation quantified (bits over plaintext = γ):");
    for (name, fmt) in [
        ("FP32 MPI_PROD γ=0", HfpFormat::fp32(0, 0)),
        ("FP32 MPI_SUM  γ=0", HfpFormat::fp32(2, 0)),
        ("FP32 MPI_SUM  γ=2", HfpFormat::fp32(2, 2)),
        ("FP16 MPI_SUM  γ=1", HfpFormat::fp16(2, 1)),
    ] {
        println!(
            "  {name}: plaintext {}b -> ciphertext {}b (+{} bits)",
            fmt.plain_bits(),
            fmt.cipher_bits(),
            fmt.inflation_bits()
        );
    }
}
