//! Figure 4 regenerator: critical-path latency breakdown of a 16 B
//! MPI_Allreduce integer summation on two ranks —
//! `mem_alloc / encrypt / comm / decrypt / mem_free` — for the SHA-1 and
//! AES(-NI) PRF backends, with crypto overhead as a percentage of the
//! communication time (the paper's 75.5 % vs 7.1 % annotation).
//!
//! `HEAR_SCALE=full` multiplies iterations ×10.

use hear::core::{Backend, CommKeys};
use hear::layer::measure_phases;
use hear::mpi::Simulator;
use hear_bench::{json_output, scale_factor};

fn run(backend: Option<Backend>, iters: u32) -> hear::layer::PhaseBreakdown {
    let be = backend.unwrap_or(Backend::AesSoft);
    let results = Simulator::new(2).run(move |comm| {
        let mut keys = CommKeys::generate(2, 0xF04, be)
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        measure_phases(comm, &mut keys, 4, iters, backend.is_some())
    });
    results[0]
}

fn main() {
    let iters = 10_000 * scale_factor() as u32;
    let json = json_output();
    if !json {
        println!("# Figure 4: 16 B MPI_Allreduce critical-path breakdown, 2 ranks, {iters} iters");
        println!("# (per-iteration phase times in nanoseconds)");
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "variant", "mem_alloc", "encrypt", "comm", "decrypt", "mem_free", "total", "crypto%"
        );
    }

    let mut variants: Vec<(String, Option<Backend>)> = vec![
        ("Baseline (no crypto)".into(), None),
        ("HEAR + SHA1".into(), Some(Backend::Sha1)),
        ("HEAR + AES (soft)".into(), Some(Backend::AesSoft)),
    ];
    if Backend::Sha1Ni.is_available() {
        variants.push(("HEAR + SHA-NI".into(), Some(Backend::Sha1Ni)));
    }
    if Backend::AesNi.is_available() {
        variants.push(("HEAR + AES-NI".into(), Some(Backend::AesNi)));
    }

    let mut rows = Vec::new();
    let mut sha_pct = None;
    let mut aes_pct = None;
    for (name, backend) in &variants {
        let b = run(*backend, iters);
        let per = |d: std::time::Duration| d.as_nanos() as f64 / iters as f64;
        let pct = b.crypto_overhead_pct();
        if json {
            rows.push(format!(
                "    {{\"variant\": \"{}\", \"mem_alloc_ns\": {:.1}, \"encrypt_ns\": {:.1}, \
                 \"comm_ns\": {:.1}, \"decrypt_ns\": {:.1}, \"mem_free_ns\": {:.1}, \
                 \"total_ns\": {:.1}, \"crypto_overhead_pct\": {:.2}}}",
                name,
                per(b.mem_alloc),
                per(b.encrypt),
                per(b.comm),
                per(b.decrypt),
                per(b.mem_free),
                per(b.total()),
                pct
            ));
        } else {
            println!(
                "{:<22} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>8.1}%",
                name,
                per(b.mem_alloc),
                per(b.encrypt),
                per(b.comm),
                per(b.decrypt),
                per(b.mem_free),
                per(b.total()),
                pct
            );
        }
        if name.contains("SHA1") {
            sha_pct = Some(pct);
        }
        if name.contains("AES-NI") {
            aes_pct = Some(pct);
        }
    }
    if json {
        println!(
            "{{\n  \"figure\": \"fig4\",\n  \"iterations\": {iters},\n  \"unit\": \"ns_per_iteration\",\n  \"variants\": [\n{}\n  ]\n}}",
            rows.join(",\n")
        );
        return;
    }
    if let (Some(sha), Some(aes)) = (sha_pct, aes_pct) {
        println!(
            "# paper: SHA1 75.5% vs AES-NI 7.1% of comm time; measured here: {sha:.1}% vs {aes:.1}%"
        );
        println!(
            "# shape holds if SHA1/AES-NI ratio >> 1 (paper ~10.6x): {:.1}x",
            sha / aes
        );
    }
}
