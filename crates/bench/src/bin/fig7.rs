//! Figure 7 regenerator: 16 MiB MPI_Allreduce throughput-per-node scaling,
//! PPN section (2 nodes) then node section (4–32 nodes at 36 PPN), for
//! native Cray-MPICH-equivalent and HEAR — evaluated on the Piz Daint cost
//! model with BOTH the paper's crypto rates and the rates measured on this
//! host.
//!
//! The machine's α parameters are calibrated from a live TCP loopback
//! probe ([`hear::net::measure_loopback_default`] →
//! [`Machine::calibrated_from`](hear::net::Machine)); when the probe fails
//! the paper's hard-coded Piz Daint constants are used unchanged. The
//! winning source is printed and recorded in `BENCH_fig7.json`.

use hear::core::Backend;
use hear::net::{throughput_per_node, Allocation, CryptoRates, Machine};
use hear_bench::measure_backend;
use std::io::Write as _;

const MIB16: f64 = 16.0 * 1024.0 * 1024.0;

/// The cost-model machine and where its link parameters came from.
fn machine_model() -> (Machine, &'static str) {
    match hear::net::measure_loopback_default() {
        Ok(link) => (
            Machine::piz_daint().calibrated_from(&link),
            "loopback-probe",
        ),
        Err(_) => (Machine::piz_daint(), "piz-daint-paper-default"),
    }
}

fn main() {
    let (machine, net_source) = machine_model();
    let paper = CryptoRates::aes_ni_paper();
    let host = measure_backend(Backend::best_available(), 4 * 1024 * 1024, 3)
        .map(|r| CryptoRates::measured(r.enc_bps, r.dec_bps, r.per_call_s));

    println!("# Figure 7: 16 MiB allreduce throughput per node (GB/s), ring algorithm");
    println!(
        "# cost model [{net_source}]: intra_alpha {:.2} us, inter_alpha {:.2} us; \
         HEAR = AES-NI crypto layered on top",
        machine.intra_alpha * 1e6,
        machine.inter_alpha * 1e6
    );
    println!(
        "{:<8} {:<7} {:<5} {:>10} {:>12} {:>8} {:>14}",
        "ranks", "nodes", "ppn", "native", "HEAR(paper)", "ratio", "HEAR(host-meas)"
    );
    let mut rows = Vec::new();
    for a in Allocation::paper_scaling_points(machine) {
        let native = throughput_per_node(&a, MIB16, None) / 1e9;
        let hear = throughput_per_node(&a, MIB16, Some(&paper)) / 1e9;
        let hear_host = host
            .as_ref()
            .map(|c| throughput_per_node(&a, MIB16, Some(c)) / 1e9);
        println!(
            "{:<8} {:<7} {:<5} {:>10.2} {:>12.2} {:>7.1}% {:>14}",
            a.ranks(),
            a.nodes,
            a.ppn,
            native,
            hear,
            100.0 * hear / native,
            hear_host.map_or("-".into(), |v| format!("{v:.2}")),
        );
        rows.push(format!(
            "{{\"nodes\":{},\"ppn\":{},\"native_gbps\":{native:.4},\"hear_gbps\":{hear:.4}}}",
            a.nodes, a.ppn
        ));
    }
    let dir = std::env::var("HEAR_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_fig7.json");
    let json = format!(
        "{{\n  \"bench\": \"fig7\",\n  \"net_source\": \"{net_source}\",\n  \
         \"intra_alpha_s\": {:.3e},\n  \"inter_alpha_s\": {:.3e},\n  \"rows\": [\n    {}\n  ]\n}}\n",
        machine.intra_alpha,
        machine.inter_alpha,
        rows.join(",\n    ")
    );
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(json.as_bytes());
    }
    println!("# paper: native peaks at 11.1 GB/s; HEAR at 9.5 GB/s (85%), then both decline");
    println!("# with node count, HEAR holding ~80% of native throughout.");
}
