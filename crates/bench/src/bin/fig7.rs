//! Figure 7 regenerator: 16 MiB MPI_Allreduce throughput-per-node scaling,
//! PPN section (2 nodes) then node section (4–32 nodes at 36 PPN), for
//! native Cray-MPICH-equivalent and HEAR — evaluated on the calibrated
//! Piz Daint cost model with BOTH the paper's crypto rates and the rates
//! measured on this host.

use hear::core::Backend;
use hear::net::{throughput_per_node, Allocation, CryptoRates, Machine};
use hear_bench::measure_backend;

const MIB16: f64 = 16.0 * 1024.0 * 1024.0;

fn main() {
    let machine = Machine::piz_daint();
    let paper = CryptoRates::aes_ni_paper();
    let host = measure_backend(Backend::best_available(), 4 * 1024 * 1024, 3)
        .map(|r| CryptoRates::measured(r.enc_bps, r.dec_bps, r.per_call_s));

    println!("# Figure 7: 16 MiB allreduce throughput per node (GB/s), ring algorithm");
    println!("# cost model: Piz Daint parameters; HEAR = AES-NI crypto layered on top");
    println!(
        "{:<8} {:<7} {:<5} {:>10} {:>12} {:>8} {:>14}",
        "ranks", "nodes", "ppn", "native", "HEAR(paper)", "ratio", "HEAR(host-meas)"
    );
    for a in Allocation::paper_scaling_points(machine) {
        let native = throughput_per_node(&a, MIB16, None) / 1e9;
        let hear = throughput_per_node(&a, MIB16, Some(&paper)) / 1e9;
        let hear_host = host
            .as_ref()
            .map(|c| throughput_per_node(&a, MIB16, Some(c)) / 1e9);
        println!(
            "{:<8} {:<7} {:<5} {:>10.2} {:>12.2} {:>7.1}% {:>14}",
            a.ranks(),
            a.nodes,
            a.ppn,
            native,
            hear,
            100.0 * hear / native,
            hear_host.map_or("-".into(), |v| format!("{v:.2}")),
        );
    }
    println!("# paper: native peaks at 11.1 GB/s; HEAR at 9.5 GB/s (85%), then both decline");
    println!("# with node count, HEAR holding ~80% of native throughout.");
}
