//! Composition-matrix smoke run: every scheme × transport algorithm ×
//! chunking mode × HoMAC verification through the one generic engine
//! call, at small sizes, checked against the plaintext reference. Exits
//! nonzero on the first mismatch — the CI gate that the orthogonality
//! promise (`SecureComm::allreduce_with`) actually holds on this build.

use hear::core::{
    Backend, CommKeys, FixedCodec, FixedSumScheme, FloatProdScheme, FloatSumExpScheme,
    FloatSumScheme, HfpFormat, Homac, IntProdScheme, IntSumScheme, IntXorScheme, Scheme,
};
use hear::layer::{EngineCfg, ReduceAlgo, SecureComm};
use hear::mpi::{SimConfig, Simulator};
use std::process::ExitCode;

const WORLD: usize = 4;
const SEED: u64 = 0x5303e;

fn cells() -> Vec<(ReduceAlgo, bool, bool)> {
    let mut v = Vec::new();
    for algo in [
        ReduceAlgo::RecursiveDoubling,
        ReduceAlgo::Ring,
        ReduceAlgo::Switch,
        // Two leader groups at world 4: every hierarchical stage runs.
        ReduceAlgo::Hierarchical { group: 2 },
    ] {
        for pipelined in [false, true] {
            for verified in [false, true] {
                v.push((algo, pipelined, verified));
            }
        }
    }
    v
}

fn cfg_for(algo: ReduceAlgo, pipelined: bool, verified: bool) -> EngineCfg {
    let base = if pipelined {
        EngineCfg::pipelined(3)
    } else {
        EngineCfg::sync()
    };
    let base = base.with_algo(algo);
    if verified {
        base.verified()
    } else {
        base
    }
}

/// Run one scheme through all 16 cells; return the number of failed cells.
fn smoke<S, MS, CL>(
    name: &str,
    mk_scheme: MS,
    inputs: Vec<Vec<S::Input>>,
    expected: Vec<S::Input>,
    close: CL,
) -> u32
where
    S: Scheme + 'static,
    S::Input: PartialEq + std::fmt::Debug + Sync,
    MS: Fn() -> S + Send + Sync,
    CL: Fn(&S::Input, &S::Input) -> bool,
{
    let inputs = &inputs;
    let mk_scheme = &mk_scheme;
    let results = Simulator::with_config(WORLD, SimConfig::default().with_switch(4)).run(|comm| {
        let keys = CommKeys::generate(WORLD, SEED, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(SEED ^ 0x99, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let data = inputs[comm.rank()].clone();
        cells()
            .into_iter()
            .map(|(algo, pipelined, verified)| {
                let mut s = mk_scheme();
                let got = sc
                    .allreduce_with(&mut s, &data, cfg_for(algo, pipelined, verified))
                    .expect("honest network must reduce and verify");
                (algo, pipelined, verified, got)
            })
            .collect::<Vec<_>>()
    });
    let mut failures = 0u32;
    for (algo, pipelined, verified, got) in &results[0] {
        let ok = results.iter().all(|r| {
            r.iter()
                .find(|(a, p, v, _)| a == algo && p == pipelined && v == verified)
                .map(|(_, _, _, g)| {
                    g.len() == expected.len() && g.iter().zip(&expected).all(|(x, e)| close(x, e))
                })
                .unwrap_or(false)
        }) && got.len() == expected.len();
        let tag = format!(
            "{name:<14} {algo:?}{}{}",
            if *pipelined { " +pipelined" } else { "" },
            if *verified { " +verified" } else { "" },
        );
        if ok {
            println!("ok    {tag}");
        } else {
            println!("FAIL  {tag}");
            failures += 1;
        }
    }
    failures
}

fn rel_close(tol: f64) -> impl Fn(&f64, &f64) -> bool {
    move |g, e| (g - e).abs() / e.abs().max(1.0) < tol
}

/// The factored collective sweep: reduce-scatter ∘ allgather must rebuild
/// the allreduce aggregate and alltoall must transpose, in every chunking
/// × verification cell. The phases are ring-native, so there is no
/// algorithm dimension — chunking and HoMAC are the axes that can break.
fn factored_smoke() -> u32 {
    const LEN: usize = 11;
    const A2A_CHUNK: usize = 3;
    let inputs: Vec<Vec<u32>> = (0..WORLD)
        .map(|r| (0..LEN).map(|j| (j as u32) * 7 + r as u32 + 1).collect())
        .collect();
    let expected: Vec<u32> = (0..LEN)
        .map(|j| inputs.iter().fold(0u32, |a, r| a.wrapping_add(r[j])))
        .collect();
    let cells: [(&str, EngineCfg, usize); 3] = [
        ("sync", EngineCfg::sync(), LEN),
        ("blocked", EngineCfg::blocked(3), 3),
        ("pipelined", EngineCfg::pipelined(3), 3),
    ];
    let inputs = &inputs;
    let results = Simulator::with_config(WORLD, SimConfig::default().with_switch(4)).run(|comm| {
        let keys = CommKeys::generate(WORLD, SEED ^ 0xFAC, Backend::best_available())
            .into_iter()
            .nth(comm.rank())
            .unwrap();
        let homac = Homac::generate(SEED ^ 0xFAC ^ 0x99, Backend::best_available());
        let mut sc = SecureComm::new(comm.clone(), keys).with_homac(homac);
        let mut s = IntSumScheme::<u32>::default();
        let r = comm.rank() as u32;
        let mut out = Vec::new();
        for (name, base, _) in cells {
            for verified in [false, true] {
                let cfg = if verified { base.verified() } else { base };
                let shard = sc
                    .reduce_scatter_with(&mut s, &inputs[comm.rank()], cfg)
                    .expect("honest network must reduce-scatter");
                let full = sc
                    .allgather_with(&mut s, &shard, cfg)
                    .expect("honest network must allgather");
                let a2a_in: Vec<u32> = (0..WORLD as u32)
                    .flat_map(|dst| (0..A2A_CHUNK as u32).map(move |j| r * 1000 + dst * 10 + j))
                    .collect();
                let transposed = sc
                    .alltoall_with(&mut s, &a2a_in, cfg)
                    .expect("honest network must alltoall");
                out.push((name, verified, full, transposed));
            }
        }
        out
    });
    // Blocked reduce-scatter appends per-block shares, so the gathered
    // (rank-contiguous) reference walks ranks then blocks.
    let rs_ag_expect = |block: usize| -> Vec<u32> {
        let mut v = Vec::new();
        for rr in 0..WORLD {
            let mut offset = 0;
            while offset < LEN {
                let end = (offset + block).min(LEN);
                let (lo, hi) = hear::mpi::ring_chunk_bounds(end - offset, WORLD)[rr];
                v.extend_from_slice(&expected[offset + lo..offset + hi]);
                offset = end;
            }
        }
        v
    };
    let mut failures = 0u32;
    for (idx, (name, _, block)) in cells.iter().enumerate() {
        for (vi, verified) in [false, true].into_iter().enumerate() {
            let cell = idx * 2 + vi;
            let want_full = rs_ag_expect(*block);
            let ok = results.iter().enumerate().all(|(rank, per_rank)| {
                let (_, _, full, transposed) = &per_rank[cell];
                let want_a2a: Vec<u32> = (0..WORLD as u32)
                    .flat_map(|src| {
                        (0..A2A_CHUNK as u32).map(move |j| src * 1000 + rank as u32 * 10 + j)
                    })
                    .collect();
                *full == want_full && *transposed == want_a2a
            });
            let tag = format!(
                "rs∘ag+a2a      {name}{}",
                if verified { " +verified" } else { "" },
            );
            if ok {
                println!("ok    {tag}");
            } else {
                println!("FAIL  {tag}");
                failures += 1;
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    let mut failures = 0u32;

    let ints: Vec<Vec<u32>> = (0..WORLD)
        .map(|r| (0..11).map(|j| (j as u32) * 7 + r as u32 + 1).collect())
        .collect();
    let int_sum: Vec<u32> = (0..11)
        .map(|j| ints.iter().fold(0u32, |a, r| a.wrapping_add(r[j])))
        .collect();
    failures += smoke(
        "int-sum",
        IntSumScheme::<u32>::default,
        ints.clone(),
        int_sum,
        |g: &u32, e: &u32| g == e,
    );

    let prods: Vec<Vec<u64>> = (0..WORLD)
        .map(|r| (0..7).map(|j| 1 + ((j + r as u64) % 5)).collect())
        .collect();
    let prod_ref: Vec<u64> = (0..7)
        .map(|j| {
            prods
                .iter()
                .fold(1u64, |a, r| a.wrapping_mul(r[j as usize]))
        })
        .collect();
    failures += smoke(
        "int-prod",
        IntProdScheme::<u64>::default,
        prods,
        prod_ref,
        |g: &u64, e: &u64| g == e,
    );

    let xor_ref: Vec<u32> = (0..11)
        .map(|j| ints.iter().fold(0u32, |a, r| a ^ r[j]))
        .collect();
    failures += smoke(
        "int-xor",
        IntXorScheme::<u32>::default,
        ints,
        xor_ref,
        |g: &u32, e: &u32| g == e,
    );

    let floats: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..9)
                .map(|j| ((r * 9 + j) as f64 * 0.3).cos() + 2.0)
                .collect()
        })
        .collect();
    let fsum: Vec<f64> = (0..9).map(|j| floats.iter().map(|r| r[j]).sum()).collect();
    failures += smoke(
        "fixed-sum",
        || FixedSumScheme::new(FixedCodec::new(16)),
        floats.clone(),
        fsum.clone(),
        rel_close(1e-3),
    );
    failures += smoke(
        "float-sum-v1",
        || FloatSumScheme::new(HfpFormat::fp32(2, 2)),
        floats.clone(),
        fsum,
        rel_close(1e-4),
    );

    let small: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..5)
                .map(|j| ((r * 5 + j) as f64 * 0.7).sin() * 0.3)
                .collect()
        })
        .collect();
    let small_sum: Vec<f64> = (0..5).map(|j| small.iter().map(|r| r[j]).sum()).collect();
    failures += smoke(
        "float-sum-v2",
        || FloatSumExpScheme::new(HfpFormat::fp64(0, 0)),
        small,
        small_sum,
        rel_close(1e-3),
    );

    let mags: Vec<Vec<f64>> = (0..WORLD)
        .map(|r| {
            (0..5)
                .map(|j| 0.7 + ((r * 5 + j) as f64 * 0.5).cos().abs())
                .collect()
        })
        .collect();
    let mag_prod: Vec<f64> = (0..5)
        .map(|j| mags.iter().map(|r| r[j]).product())
        .collect();
    failures += smoke(
        "float-prod",
        || FloatProdScheme::new(HfpFormat::fp64(0, 0)),
        mags,
        mag_prod,
        rel_close(1e-4),
    );

    failures += factored_smoke();

    if failures == 0 {
        println!("matrix smoke: all cells ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("matrix smoke: {failures} cell(s) FAILED");
        ExitCode::FAILURE
    }
}
