//! Roofline sweep for the parallel mask kernels: where does masking sit
//! relative to this host's memory bandwidth, and how does it scale with
//! worker threads?
//!
//! ```text
//! roofline            # full sweep, writes BENCH_roofline.json
//! roofline --gate     # ≥3× scaling on 4 cores at 64 MiB, or skip
//! ```
//!
//! Three measurements:
//!
//! 1. **STREAM triad** (`a[i] = b[i] + s·c[i]`, f64): the classic memory
//!    bandwidth ceiling. Masking reads and writes the payload once while
//!    generating the keystream in registers, so a saturated machine masks
//!    at a bandwidth-shaped rate — that is the roofline the JSON records.
//! 2. **Masked throughput** at 1/4/16/64 MiB for 1..N worker threads,
//!    each size on an explicit [`WorkerPool`] (the global pool is left
//!    alone so `HEAR_THREADS` still governs production behavior).
//! 3. **Scaling curve**: throughput(t)/throughput(1) per size. `--gate`
//!    asserts ≥[`GATE_MIN_SPEEDUP`]× at 4 threads on the 64 MiB payload,
//!    best-of-3; on hosts with fewer than 4 cores the gate prints a
//!    skip notice and exits 0 (a 1-core CI runner cannot scale).
//!
//! Every parallel pass is checked bit-for-bit against the serial kernel
//! before timing — a roofline number for a wrong kernel is worthless.

use hear::prf::kernels::add_keystream_into;
use hear::prf::{par_add_keystream_into, Backend, PrfCipher, WorkerPool};
use std::io::Write as _;
use std::time::Instant;

/// Payload sizes swept (bytes).
const SIZES: [usize; 4] = [1 << 20, 4 << 20, 16 << 20, 64 << 20];

/// `--gate` threshold: parallel masking at 4 threads must reach this
/// speedup over 1 thread on the largest payload. 3× of an ideal 4× leaves
/// room for the memory-bandwidth ceiling the kernel is *supposed* to hit.
const GATE_MIN_SPEEDUP: f64 = 3.0;

/// Gate payload: the largest size, where sharding overhead is negligible
/// and the scaling question is purely bandwidth vs compute.
const GATE_BYTES: usize = 64 << 20;

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// STREAM triad bandwidth in bytes/second (24 bytes traffic per element).
fn stream_triad() -> f64 {
    let n = (32 << 20) / 8; // 32 MiB per array, 3 arrays: out of any cache
    let mut a = vec![0.0f64; n];
    let b: Vec<f64> = (0..n).map(|j| j as f64).collect();
    let c: Vec<f64> = (0..n).map(|j| (j % 17) as f64).collect();
    let s = 3.0f64;
    let secs = best_of(5, || {
        for ((x, y), z) in a.iter_mut().zip(&b).zip(&c) {
            *x = *y + s * *z;
        }
        std::hint::black_box(&a);
    });
    (24 * n) as f64 / secs
}

/// Masked throughput in bytes/second on `pool`, after checking the
/// parallel pass is bit-identical to the serial kernel.
fn masked_bps(pool: &WorkerPool, prf: &PrfCipher, bytes: usize, reps: usize) -> f64 {
    let n = bytes / 4;
    let base: u128 = 0xf00f;
    let mut buf: Vec<u32> = (0..n as u32).collect();
    let mut reference = buf.clone();
    add_keystream_into(prf, base, 0, &mut reference[..]);
    par_add_keystream_into(pool, prf, base, 0, &mut buf[..]);
    assert_eq!(buf, reference, "parallel mask diverged from serial");
    let secs = best_of(reps, || {
        par_add_keystream_into(pool, prf, base, 0, &mut buf[..]);
        std::hint::black_box(&buf);
    });
    bytes as f64 / secs
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Thread counts swept: 1, 2, 4, ... up to the core count (always
/// including the core count itself).
fn thread_counts() -> Vec<usize> {
    let n = cores();
    let mut ts = vec![];
    let mut t = 1;
    while t < n {
        ts.push(t);
        t *= 2;
    }
    ts.push(n);
    ts
}

fn run_gate() -> ! {
    if cores() < 4 {
        println!(
            "roofline_gate: SKIP — host exposes {} core(s); the ≥{GATE_MIN_SPEEDUP}x \
             4-thread scaling assertion needs 4 (gate passes vacuously)",
            cores()
        );
        std::process::exit(0);
    }
    let prf = PrfCipher::new(Backend::best_available(), 0xC0FFEE).expect("best backend constructs");
    let serial_pool = WorkerPool::new(1);
    let quad_pool = WorkerPool::new(4);
    let mut best = 0.0f64;
    for attempt in 1..=3 {
        let t1 = masked_bps(&serial_pool, &prf, GATE_BYTES, 3);
        let t4 = masked_bps(&quad_pool, &prf, GATE_BYTES, 3);
        let speedup = t4 / t1;
        println!(
            "roofline_gate attempt {attempt}: 64 MiB mask {:.2} GB/s @1t vs {:.2} GB/s @4t \
             (speedup {speedup:.2}x, need {GATE_MIN_SPEEDUP}x)",
            t1 / 1e9,
            t4 / 1e9
        );
        if speedup >= GATE_MIN_SPEEDUP {
            println!("roofline_gate: OK");
            std::process::exit(0);
        }
        best = best.max(speedup);
    }
    eprintln!(
        "roofline_gate: FAIL — best 4-thread speedup {best:.2}x < {GATE_MIN_SPEEDUP}x; \
         parallel masking has stopped scaling"
    );
    std::process::exit(1);
}

fn main() {
    if std::env::args().any(|a| a == "--gate") {
        run_gate();
    }
    let backend = Backend::best_available();
    let prf = PrfCipher::new(backend, 0xC0FFEE).expect("best backend constructs");

    println!("# Roofline: {} core(s), backend {backend:?}", cores());
    let triad = stream_triad();
    println!("# STREAM triad: {:.2} GB/s", triad / 1e9);
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>10}",
        "size", "threads", "mask GB/s", "speedup", "% of triad"
    );

    let mut rows = Vec::new();
    for &bytes in &SIZES {
        let reps = if bytes >= 16 << 20 { 3 } else { 5 };
        let mut base_bps = 0.0;
        for &t in &thread_counts() {
            let pool = WorkerPool::new(t);
            let bps = masked_bps(&pool, &prf, bytes, reps);
            if t == 1 {
                base_bps = bps;
            }
            let speedup = bps / base_bps;
            println!(
                "{:<10} {:>8} {:>12.2} {:>11.2}x {:>9.1}%",
                format!("{}MiB", bytes >> 20),
                t,
                bps / 1e9,
                speedup,
                100.0 * bps / triad
            );
            rows.push(format!(
                "{{\"bytes\":{bytes},\"threads\":{t},\"mask_bps\":{bps:.0},\
                 \"speedup\":{speedup:.4}}}"
            ));
        }
    }

    let dir = std::env::var("HEAR_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_roofline.json");
    let json = format!(
        "{{\n  \"bench\": \"roofline\",\n  \"cores\": {},\n  \"backend\": \"{backend:?}\",\n  \
         \"triad_bps\": {triad:.0},\n  \"points\": [\n    {}\n  ]\n}}\n",
        cores(),
        rows.join(",\n    ")
    );
    let mut f = std::fs::File::create(&path).expect("create BENCH_roofline.json");
    f.write_all(json.as_bytes()).expect("write roofline json");
    println!("# wrote {}", path.display());
}
