//! Figure 5 regenerator: single-core encryption/decryption throughput for
//! the PRF backends (the paper's OpenSSL-SHA1 vs AES-NI comparison),
//! measured over multiple buffer sizes; the std column reflects the
//! across-size spread exactly as the paper's error bars do. Also reports
//! the float-scheme throughput against the Aries per-rank line rate.

use hear::core::{Backend, CommKeys, FloatSum, HfpFormat};
use hear_bench::{gib_per_s, measure_backend, scale_factor, stats};
use std::time::Instant;

fn main() {
    let iters = 4 * scale_factor() as u32;
    let sizes: &[usize] = &[
        64 * 1024,
        256 * 1024,
        1024 * 1024,
        4 * 1024 * 1024,
        16 * 1024 * 1024,
    ];
    println!("# Figure 5: single-core int-SUM encryption/decryption throughput");
    println!("# buffer sizes 64 KiB – 16 MiB, {iters} iters each; GB/s, mean ± std across sizes");
    println!(
        "{:<18} {:>12} {:>10} {:>12} {:>10}",
        "backend", "enc GB/s", "± std", "dec GB/s", "± std"
    );
    let mut measured = Vec::new();
    for backend in [
        Backend::Sha1,
        Backend::Sha1Ni,
        Backend::AesSoft,
        Backend::AesNi,
    ] {
        if !backend.is_available() {
            println!("{:<18} (not available on this CPU)", format!("{backend:?}"));
            continue;
        }
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        for &size in sizes {
            let r = measure_backend(backend, size, iters).expect("available");
            enc.push(gib_per_s(r.enc_bps));
            dec.push(gib_per_s(r.dec_bps));
        }
        let (se, sd) = (stats(&enc), stats(&dec));
        println!(
            "{:<18} {:>12.3} {:>10.3} {:>12.3} {:>10.3}",
            format!("{backend:?}"),
            se.mean,
            se.std,
            sd.mean,
            sd.std
        );
        measured.push((backend, se.mean, sd.mean));
    }

    // Float scheme throughput (the paper's FP32 summation encoder).
    let keys = CommKeys::generate(1, 5, Backend::best_available())
        .into_iter()
        .next()
        .unwrap();
    let scheme = FloatSum::new(HfpFormat::fp32(2, 2));
    let vals: Vec<f64> = (0..262_144).map(|i| i as f64 * 0.001 + 1.0).collect();
    let mut ct = Vec::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        scheme.encrypt_f64(&keys, 0, &vals, &mut ct).unwrap();
    }
    let fenc = vals.len() as f64 * 4.0 * iters as f64 / t0.elapsed().as_secs_f64();
    let mut out = Vec::new();
    let t0 = Instant::now();
    for _ in 0..iters {
        scheme.decrypt_f64(&keys, 0, &ct, &mut out);
    }
    let fdec = vals.len() as f64 * 4.0 * iters as f64 / t0.elapsed().as_secs_f64();
    println!(
        "{:<18} {:>12.3} {:>10} {:>12.3} {:>10}",
        "FP32 (HFP, best)",
        gib_per_s(fenc),
        "-",
        gib_per_s(fdec),
        "-"
    );
    println!("# Aries per-rank line rate: 0.347 GB/s — the paper's float encoder is");
    println!("# 'an order of magnitude faster' than it; check the FP32 row above.");
    if let Some((_, enc, _)) = measured.iter().find(|(b, _, _)| *b == Backend::AesNi) {
        let sha = measured
            .iter()
            .find(|(b, _, _)| *b == Backend::Sha1)
            .unwrap();
        println!(
            "# paper shape: AES-NI >> SHA1 (9 vs <1 GB/s): measured {:.2} vs {:.2} GB/s",
            enc, sha.1
        );
    }
}
